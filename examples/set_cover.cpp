/**
 * @file
 * Set covering shoot-out: run all four algorithms (HEA, P-QAOA, Choco-Q,
 * Rasengan) on one exact-cover instance and print the Table-1-style
 * comparison (ARG, in-constraints rate, circuit depth, parameters,
 * estimated quantum latency).
 */

#include <cstdio>

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "core/rasengan.h"
#include "problems/metrics.h"
#include "problems/suite.h"

using namespace rasengan;

int
main()
{
    problems::Problem problem = problems::makeBenchmark("S2");
    std::printf("set cover (exact-cover form): %d sets over %d elements, "
                "%zu feasible covers, optimum %.1f\n\n",
                problem.numVars(), problem.numConstraints(),
                problem.feasibleCount(), problem.optimalValue());

    std::printf("%-10s %10s %12s %8s %8s %12s\n", "method", "ARG",
                "in-constr", "depth", "params", "quantum-s");

    auto print_row = [&](const char *name, double arg, double icr,
                         int depth, int params, double qs) {
        std::printf("%-10s %10.3f %11.1f%% %8d %8d %12.2f\n", name, arg,
                    100.0 * icr, depth, params, qs);
    };

    {
        baselines::HeaOptions options;
        options.maxIterations = 150;
        baselines::VqaResult r = baselines::Hea(problem, options).run();
        print_row("HEA", problem.arg(r.expectedObjective),
                  r.inConstraintsRate, r.circuitDepth, r.numParams,
                  r.quantumSeconds);
    }
    {
        baselines::PqaoaOptions options;
        options.maxIterations = 150;
        baselines::VqaResult r = baselines::Pqaoa(problem, options).run();
        print_row("P-QAOA", problem.arg(r.expectedObjective),
                  r.inConstraintsRate, r.circuitDepth, r.numParams,
                  r.quantumSeconds);
    }
    {
        baselines::ChocoqOptions options;
        options.maxIterations = 150;
        baselines::VqaResult r = baselines::Chocoq(problem, options).run();
        print_row("Choco-Q", problem.arg(r.expectedObjective),
                  r.inConstraintsRate, r.circuitDepth, r.numParams,
                  r.quantumSeconds);
    }
    {
        core::RasenganOptions options;
        options.maxIterations = 150;
        core::RasenganSolver solver(problem, options);
        core::RasenganResult r = solver.run();
        print_row("Rasengan", problem.arg(r.expectedObjective),
                  r.inConstraintsRate, r.maxSegmentDepth, r.numParams,
                  r.quantumSeconds);
    }

    std::printf("\n(compare with Table 1: penalty methods fail the "
                "constraints, Choco-Q is accurate but deep, Rasengan is "
                "accurate at segment depth)\n");
    return 0;
}
