/**
 * @file
 * Graph coloring under hardware noise: run Rasengan gate-level on an
 * IBM-Kyiv-calibrated noise model, with and without purification-based
 * error mitigation (Section 4.3), and compare the output quality.
 */

#include <cstdio>

#include "core/rasengan.h"
#include "device/device.h"
#include "problems/gcp.h"
#include "problems/metrics.h"

using namespace rasengan;

namespace {

core::RasenganResult
runWithPurification(const problems::Problem &problem, bool purify)
{
    core::RasenganOptions options;
    options.execution = core::RasenganOptions::Execution::NoisyGateLevel;
    options.noise = device::DeviceModel::ibmKyiv().toNoiseModel();
    options.noise.readoutError = 0.0; // isolate gate noise
    options.purify = purify;
    options.maxIterations = 25;
    options.shotsPerSegment = 256;
    options.trajectories = 4;
    options.seed = 3;
    core::RasenganSolver solver(problem, options);
    return solver.run();
}

} // namespace

int
main()
{
    Rng rng(7);
    problems::GcpConfig config{.vertices = 3, .colors = 2, .edges = 1};
    problems::Problem problem = problems::makeGcp("gcp-demo", config, rng);

    std::printf("graph coloring: %d vertices, %d colors, %d edges -> "
                "%d qubits, %zu proper colorings\n\n",
                config.vertices, config.colors, config.edges,
                problem.numVars(), problem.feasibleCount());
    std::printf("noise model: IBM Kyiv calibration (2q error %.2f%%)\n\n",
                100.0 * device::DeviceModel::ibmKyiv().error2q);

    core::RasenganResult purified = runWithPurification(problem, true);
    core::RasenganResult raw = runWithPurification(problem, false);

    auto report = [&](const char *label, const core::RasenganResult &r) {
        if (r.failed) {
            std::printf("%-22s failed (no feasible output survived)\n",
                        label);
            return;
        }
        std::printf("%-22s ARG %8.4f   in-constraints %5.1f%%   "
                    "best solution %s\n",
                    label, problem.arg(r.expectedObjective),
                    100.0 * r.inConstraintsRate,
                    r.solution.toString(problem.numVars()).c_str());
    };
    report("with purification", purified);
    report("without purification", raw);

    std::printf("\npre-purification feasible fraction of the final "
                "segment: %.1f%%\n",
                100.0 * purified.finalDistribution
                            .prePurifyFeasibleFraction);
    std::printf("(purification validates C x = b classically between "
                "segments and reallocates shots to surviving states)\n");
    return 0;
}
