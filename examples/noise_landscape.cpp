/**
 * @file
 * Noise-engine walkthrough: run one Rasengan segment under increasing
 * depolarizing noise with BOTH noise engines -- exact density-matrix
 * evolution and Monte-Carlo trajectories -- and watch purity, outcome
 * agreement, and the fraction of feasible outcomes decay.  Also prints
 * the structured pipeline report (core/analysis.h).
 */

#include <cstdio>

#include "core/analysis.h"
#include "core/rasengan.h"
#include "problems/suite.h"
#include "qsim/density.h"
#include "qsim/noise.h"

using namespace rasengan;

int
main()
{
    problems::Problem problem = problems::makeBenchmark("J1");
    core::RasenganSolver solver(problem, {});

    core::PipelineReport report = core::analyzePipeline(solver);
    std::printf("%s\n", report.toString().c_str());

    // One segment circuit, transpiled to {1q, CX}.
    std::vector<double> times(solver.numParams(), 0.7);
    circuit::Circuit segment = circuit::transpile(
        solver.segmentCircuit(0, problem.trivialFeasible(), times));
    const int n = segment.numQubits();
    std::printf("segment 0 transpiled: %d qubits, depth %d, %d CX\n\n",
                n, segment.depth(), segment.countCx());

    std::printf("%10s %10s %12s %12s %12s\n", "2q-error", "purity",
                "feas(exact)", "feas(traj)", "agreement");
    for (double rate : {0.0, 0.002, 0.005, 0.01, 0.02}) {
        qsim::NoiseModel noise;
        noise.depol2q = rate;
        noise.depol1q = rate / 10.0;

        // Exact: density matrix through the noisy circuit.
        qsim::DensityMatrix rho(n, BitVec{});
        rho.applyNoisyCircuit(segment, noise);
        std::vector<double> exact = rho.diagonal();

        double feas_exact = 0.0;
        for (uint64_t idx = 0; idx < exact.size(); ++idx) {
            BitVec x = BitVec::fromIndex(
                idx & ((uint64_t{1} << problem.numVars()) - 1));
            // Only count states whose ancillas returned to zero.
            if (idx < (uint64_t{1} << problem.numVars()) &&
                problem.isFeasible(x)) {
                feas_exact += exact[idx];
            }
        }

        // Sampled: trajectories.
        Rng rng(11);
        qsim::Counts counts = qsim::sampleNoisy(
            segment, n, BitVec{}, noise, rng, 4000, 24,
            problem.numVars());
        double feas_traj = counts.fraction(
            [&](const BitVec &x) { return problem.isFeasible(x); });

        // Agreement: total-variation overlap between exact diagonal
        // (marginalized to problem qubits) and the sampled histogram.
        double tv = 0.0;
        std::vector<double> marginal(
            size_t{1} << problem.numVars(), 0.0);
        for (uint64_t idx = 0; idx < exact.size(); ++idx)
            marginal[idx & ((uint64_t{1} << problem.numVars()) - 1)] +=
                exact[idx];
        for (uint64_t idx = 0; idx < marginal.size(); ++idx) {
            double sampled =
                counts.probability(BitVec::fromIndex(idx));
            tv += std::abs(marginal[idx] - sampled);
        }
        double agreement = 1.0 - tv / 2.0;

        std::printf("%10.3f %10.4f %11.1f%% %11.1f%% %11.1f%%\n", rate,
                    rho.purity(), 100.0 * feas_exact, 100.0 * feas_traj,
                    100.0 * agreement);
    }

    std::printf("\nreading: purity and the feasible fraction decay "
                "together as gate noise grows; the trajectory engine "
                "tracks the exact channel closely (validated rigorously "
                "in tests/test_qsim.cc), which is why the hardware "
                "benches can use trajectories at sizes where density "
                "matrices are too large.\n");
    return 0;
}
