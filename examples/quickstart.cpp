/**
 * @file
 * Quickstart: define a small constrained binary optimization problem with
 * the public API, solve it with Rasengan, and inspect the result.
 *
 * The instance is the paper's running example (Figure 1a):
 *   two constraints over five binary variables,
 *   C = [[1,1,-1,0,0],[0,0,1,1,-1]], b = [0,1],
 * with a simple linear cost to minimize.
 */

#include <cstdio>

#include "core/rasengan.h"
#include "problems/problem.h"

using namespace rasengan;

int
main()
{
    // --- 1. Describe the problem: minimize f(x) s.t. C x = b. ---------
    linalg::IntMat c{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
    linalg::IntVec b{0, 1};

    problems::QuadraticObjective objective(5);
    const double costs[5] = {3.0, 2.0, 4.0, 1.0, 5.0};
    for (int i = 0; i < 5; ++i)
        objective.addLinear(i, costs[i]);

    // One feasible solution, constructible by inspection: x = (0,0,0,1,0).
    BitVec trivial = BitVec::fromString("00010");

    problems::Problem problem("paper-example", "demo", c, b, objective,
                              trivial);

    std::printf("problem: %d variables, %d constraints, %zu feasible\n",
                problem.numVars(), problem.numConstraints(),
                problem.feasibleCount());
    std::printf("optimal objective (brute force): %.1f\n\n",
                problem.optimalValue());

    // --- 2. Solve with Rasengan. ---------------------------------------
    core::RasenganOptions options;
    options.maxIterations = 150;
    core::RasenganSolver solver(problem, options);

    std::printf("pipeline: %zu transition Hamiltonians, chain length %zu, "
                "%zu segments\n",
                solver.transitions().size(), solver.chain().steps.size(),
                solver.segments().size());

    core::RasenganResult result = solver.run();

    // --- 3. Inspect the result. -----------------------------------------
    std::printf("\nsolution: %s  objective %.1f  (ARG %.4f)\n",
                result.solution.toString(problem.numVars()).c_str(),
                result.objectiveValue,
                problem.arg(result.objectiveValue));
    std::printf("expected objective over output distribution: %.3f\n",
                result.expectedObjective);
    std::printf("in-constraints rate: %.1f%%\n",
                100.0 * result.inConstraintsRate);
    std::printf("deepest segment after transpilation: depth %d, %d CX\n",
                result.maxSegmentDepth, result.maxSegmentCx);
    std::printf("final distribution:\n");
    for (const auto &[state, prob] : result.finalDistribution.entries) {
        if (prob > 1e-3) {
            std::printf("  |%s>  p=%.3f  f=%.1f\n",
                        state.toString(problem.numVars()).c_str(), prob,
                        problem.objective(state));
        }
    }
    return 0;
}
