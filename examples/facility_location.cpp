/**
 * @file
 * Facility location walkthrough: generate an FLP instance, inspect the
 * Rasengan pipeline stage by stage (homogeneous basis, Algorithm-1
 * simplification, chain pruning, segmentation), and compare the final
 * accuracy and circuit depth against the Choco-Q baseline.
 */

#include <cstdio>

#include "baselines/chocoq.h"
#include "core/basis.h"
#include "core/rasengan.h"
#include "problems/flp.h"
#include "problems/metrics.h"

using namespace rasengan;

int
main()
{
    // Three candidate facilities, two demand points.
    Rng rng(2025);
    problems::FlpConfig config{.facilities = 3, .demands = 2};
    problems::Problem problem =
        problems::makeFlp("flp-demo", config, rng);

    std::printf("FLP: %d facilities x %d demands -> %d binary variables, "
                "%d constraints, %zu feasible assignments\n\n",
                config.facilities, config.demands, problem.numVars(),
                problem.numConstraints(), problem.feasibleCount());

    // --- Pipeline internals. --------------------------------------------
    auto raw = core::homogeneousBasis(problem);
    auto simplified = core::simplifyBasis(raw);
    std::printf("homogeneous basis: %zu vectors, %d nonzeros; after "
                "Algorithm 1: %d nonzeros\n",
                raw.size(), core::totalNonZeros(raw),
                core::totalNonZeros(simplified));

    core::RasenganOptions options;
    options.maxIterations = 200;
    core::RasenganSolver solver(problem, options);
    std::printf("transition chain: %d kept of %d (pruning + early stop), "
                "%zu segments of <= %d transitions\n",
                static_cast<int>(solver.chain().steps.size()),
                static_cast<int>(solver.chain().unprunedSteps.size()),
                solver.segments().size(), options.transitionsPerSegment);

    // --- Rasengan. --------------------------------------------------------
    core::RasenganResult rasengan = solver.run();
    double rasengan_arg = problem.arg(rasengan.expectedObjective);

    // --- Choco-Q baseline. -------------------------------------------------
    baselines::ChocoqOptions chocoq_options;
    chocoq_options.maxIterations = 200;
    baselines::Chocoq chocoq(problem, chocoq_options);
    baselines::VqaResult baseline = chocoq.run();
    double baseline_arg = problem.arg(baseline.expectedObjective);

    std::printf("\n%-12s %10s %10s %10s\n", "method", "ARG", "depth",
                "params");
    std::printf("%-12s %10.4f %10d %10d\n", "Rasengan", rasengan_arg,
                rasengan.maxSegmentDepth, rasengan.numParams);
    std::printf("%-12s %10.4f %10d %10d\n", "Choco-Q", baseline_arg,
                baseline.circuitDepth, baseline.numParams);

    std::printf("\nRasengan solution %s with cost %.1f (optimum %.1f)\n",
                rasengan.solution.toString(problem.numVars()).c_str(),
                rasengan.objectiveValue, problem.optimalValue());
    return 0;
}
