/**
 * @file
 * Portfolio selection under a budget: demonstrates the inequality
 * constraint compiler (ProblemBuilder) end to end.  The budget row
 * `sum cost_i x_i <= B` becomes an equality with binary slack bits, and
 * Rasengan explores the feasible portfolios exactly as in the
 * equality-only families.
 */

#include <cstdio>

#include "core/rasengan.h"
#include "problems/metrics.h"
#include "problems/portfolio.h"

using namespace rasengan;

int
main()
{
    Rng rng(11);
    problems::PortfolioConfig config;
    config.assets = 6;
    config.pick = 3;
    config.riskAversion = 0.7;
    problems::Problem problem =
        problems::makePortfolio("portfolio-demo", config, rng);

    std::printf("portfolio: choose %d of %d assets under a budget\n",
                config.pick, config.assets);
    std::printf("encoded: %d binary variables (%d assets + %d slack bits "
                "from the budget inequality), %d constraints\n",
                problem.numVars(), config.assets,
                problem.numVars() - config.assets,
                problem.numConstraints());
    std::printf("feasible portfolios: %zu, optimum objective %.2f\n\n",
                problem.feasibleCount(), problem.optimalValue());

    core::RasenganOptions options;
    options.maxIterations = 200;
    core::RasenganSolver solver(problem, options);
    core::RasenganResult result = solver.run();

    std::printf("Rasengan pipeline: %zu transitions, %d segments, "
                "deepest segment depth %d\n",
                solver.transitions().size(), result.numSegments,
                result.maxSegmentDepth);
    std::printf("selected assets: ");
    for (int i = 0; i < config.assets; ++i)
        if (result.solution.get(i))
            std::printf("%d ", i);
    std::printf("\nobjective %.2f (ARG %.4f), expected over output %.2f\n",
                result.objectiveValue, problem.arg(result.objectiveValue),
                result.expectedObjective);
    std::printf("in-constraints rate: %.1f%% (the slack bits make the "
                "budget a hard equality)\n",
                100.0 * result.inConstraintsRate);
    return 0;
}
