/**
 * @file
 * Unit tests for the resilient execution engine: Expected, the retry
 * backoff schedule, the circuit breaker state machine on a virtual
 * clock, deterministic fault injection, the degradation ladder, and
 * checkpoint serialization (round trip + corrupted inputs).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "exec/backend.h"
#include "exec/breaker.h"
#include "exec/checkpoint.h"
#include "exec/clock.h"
#include "exec/executor.h"
#include "exec/expected.h"
#include "exec/faults.h"
#include "exec/retry.h"

namespace rasengan::exec {
namespace {

// ---------------------------------------------------------------- Expected

TEST(Expected, HoldsValueOrError)
{
    Expected<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(ok.valueOr(-1), 42);

    Expected<int> bad(ExecError{ErrorCode::Timeout, "deadline"});
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::Timeout);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(Expected, ErrorTaxonomy)
{
    auto err = [](ErrorCode code) { return ExecError{code, "", 1}; };
    EXPECT_TRUE(err(ErrorCode::Timeout).retryable());
    EXPECT_TRUE(err(ErrorCode::BackendUnavailable).retryable());
    EXPECT_TRUE(err(ErrorCode::ShotLoss).retryable());
    EXPECT_TRUE(err(ErrorCode::CorruptedCounts).retryable());
    EXPECT_FALSE(err(ErrorCode::InvalidJob).retryable());
    EXPECT_FALSE(err(ErrorCode::RetriesExhausted).retryable());
    EXPECT_FALSE(err(ErrorCode::CheckpointCorrupt).retryable());
    // Names are stable (logged and matched in tests).
    EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
}

// ------------------------------------------------------------------ Clock

TEST(VirtualClockTest, SleepAdvancesAndAccumulates)
{
    VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    clock.sleep(1.5);
    clock.advance(0.25); // work time, not sleep
    clock.sleep(-3.0);   // negative requests are ignored
    EXPECT_DOUBLE_EQ(clock.now(), 1.75);
    EXPECT_DOUBLE_EQ(clock.sleptSeconds(), 1.5);
}

// ------------------------------------------------------------------ Retry

TEST(RetryPolicyTest, ExponentialScheduleWithoutJitter)
{
    RetryPolicy policy;
    policy.initialDelaySeconds = 0.1;
    policy.multiplier = 2.0;
    policy.maxDelaySeconds = 0.5;
    policy.jitter = 0.0;
    Rng rng(1);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(0, rng), 0.0);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(1, rng), 0.1);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(2, rng), 0.2);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(3, rng), 0.4);
    EXPECT_DOUBLE_EQ(policy.delaySeconds(4, rng), 0.5); // clamped
    EXPECT_DOUBLE_EQ(policy.delaySeconds(9, rng), 0.5);
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic)
{
    RetryPolicy policy;
    policy.initialDelaySeconds = 0.2;
    policy.multiplier = 1.0;
    policy.maxDelaySeconds = 10.0;
    policy.jitter = 0.5; // factor in [0.75, 1.25]
    Rng rng_a(99), rng_b(99);
    for (int k = 1; k <= 32; ++k) {
        double d = policy.delaySeconds(k, rng_a);
        EXPECT_GE(d, 0.2 * 0.75);
        EXPECT_LE(d, 0.2 * 1.25);
        // Same seed, same schedule: retries are reproducible.
        EXPECT_DOUBLE_EQ(d, policy.delaySeconds(k, rng_b));
    }
}

// ---------------------------------------------------------------- Breaker

TEST(CircuitBreakerTest, OpensAfterThresholdAndCoolsDown)
{
    CircuitBreaker::Options opts;
    opts.failureThreshold = 3;
    opts.cooldownSeconds = 1.0;
    CircuitBreaker breaker(opts);
    VirtualClock clock;

    EXPECT_EQ(breaker.state(clock.now()), CircuitBreaker::State::Closed);
    breaker.recordFailure(clock.now());
    breaker.recordFailure(clock.now());
    EXPECT_TRUE(breaker.allow(clock.now())); // below threshold
    breaker.recordFailure(clock.now());
    EXPECT_EQ(breaker.state(clock.now()), CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allow(clock.now()));
    EXPECT_EQ(breaker.trips(), 1u);

    clock.sleep(0.5);
    EXPECT_FALSE(breaker.allow(clock.now())); // still cooling down
    clock.sleep(0.6);
    EXPECT_EQ(breaker.state(clock.now()),
              CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(breaker.allow(clock.now())); // probe admitted
}

TEST(CircuitBreakerTest, ProbeOutcomeDecidesReopenOrClose)
{
    CircuitBreaker::Options opts;
    opts.failureThreshold = 2;
    opts.cooldownSeconds = 1.0;
    CircuitBreaker breaker(opts);
    VirtualClock clock;

    breaker.recordFailure(clock.now());
    breaker.recordFailure(clock.now());
    clock.sleep(1.0);
    ASSERT_EQ(breaker.state(clock.now()),
              CircuitBreaker::State::HalfOpen);
    // A failed probe re-opens immediately (one failure, not threshold).
    breaker.recordFailure(clock.now());
    EXPECT_EQ(breaker.state(clock.now()), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.trips(), 2u);

    clock.sleep(1.0);
    ASSERT_EQ(breaker.state(clock.now()),
              CircuitBreaker::State::HalfOpen);
    breaker.recordSuccess();
    EXPECT_EQ(breaker.state(clock.now()), CircuitBreaker::State::Closed);
    EXPECT_EQ(breaker.consecutiveFailures(), 0);

    breaker.recordFailure(clock.now());
    breaker.reset();
    EXPECT_EQ(breaker.state(clock.now()), CircuitBreaker::State::Closed);
    EXPECT_EQ(breaker.consecutiveFailures(), 0);
}

// ------------------------------------------------------------------ Jobs

/** Deterministic sampling closure: `shots` draws over `bits` qubits. */
ShotJob
makeJob(uint64_t shots, int bits, uint64_t seed)
{
    ShotJob job;
    job.tag = "test-job";
    job.shots = shots;
    job.numBits = bits;
    job.rngSeed = seed;
    job.sample = [shots, bits](Rng &rng) {
        qsim::Counts counts;
        for (uint64_t i = 0; i < shots; ++i) {
            BitVec x;
            for (int b = 0; b < bits; ++b)
                if (rng.bernoulli(0.5))
                    x.set(b);
            counts.add(x);
        }
        return counts;
    };
    return job;
}

TEST(SimulatorBackendTest, ValidatesShotCountAndFiniteness)
{
    SimulatorBackend backend;
    auto ok = backend.run(makeJob(64, 3, 5));
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().total(), 64u);

    // A closure that under-delivers is flagged as shot loss.
    ShotJob lossy = makeJob(64, 3, 5);
    lossy.sample = [](Rng &) {
        qsim::Counts counts;
        counts.add(BitVec(), 10);
        return counts;
    };
    auto bad = backend.run(lossy);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::ShotLoss);

    ValueJob nan_job;
    nan_job.tag = "nan";
    nan_job.evaluate = [] { return std::nan(""); };
    auto nan_res = backend.expectation(nan_job);
    ASSERT_FALSE(nan_res.ok());
    EXPECT_EQ(nan_res.error().code, ErrorCode::NonFiniteValue);
}

TEST(SimulatorBackendTest, SameSeedSameHistogram)
{
    SimulatorBackend backend;
    auto a = backend.run(makeJob(256, 4, 77));
    auto b = backend.run(makeJob(256, 4, 77));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().map(), b.value().map());
}

// ----------------------------------------------------------------- Faults

TEST(FaultInjectorTest, SeededStreamIsDeterministic)
{
    auto run_once = [](uint64_t seed) {
        SimulatorBackend inner;
        FaultProfile profile;
        profile.rate = 0.5;
        profile.seed = seed;
        VirtualClock clock;
        FaultInjector injector(inner, profile, &clock);
        std::string outcome;
        for (int i = 0; i < 40; ++i) {
            auto r = injector.run(makeJob(32, 3, 1000 + i));
            outcome += r.ok() ? 'k'
                              : static_cast<char>(
                                    'a' + static_cast<int>(r.error().code));
        }
        return std::make_pair(outcome, injector.stats().total());
    };
    auto [seq_a, faults_a] = run_once(0xFA17);
    auto [seq_b, faults_b] = run_once(0xFA17);
    EXPECT_EQ(seq_a, seq_b);
    EXPECT_EQ(faults_a, faults_b);
    EXPECT_GT(faults_a, 0u); // rate 0.5 over 40 calls must fire
    auto [seq_c, faults_c] = run_once(0xBEEF);
    EXPECT_NE(seq_a, seq_c); // different stream
    (void)faults_c;
}

TEST(FaultInjectorTest, RateZeroIsTransparent)
{
    SimulatorBackend inner;
    FaultInjector injector(inner, FaultProfile{}); // rate 0
    for (int i = 0; i < 20; ++i) {
        auto r = injector.run(makeJob(32, 3, i));
        ASSERT_TRUE(r.ok());
    }
    EXPECT_EQ(injector.stats().total(), 0u);
    EXPECT_EQ(injector.stats().calls, 20u);
}

TEST(FaultInjectorTest, TimeoutChargesTheClock)
{
    SimulatorBackend inner;
    FaultProfile profile;
    profile.rate = 1.0;
    // Only timeouts in the mix.
    profile.outageWeight = 0.0;
    profile.shotLossWeight = 0.0;
    profile.corruptionWeight = 0.0;
    profile.nanWeight = 0.0;
    profile.timeoutSeconds = 0.5;
    VirtualClock clock;
    FaultInjector injector(inner, profile, &clock);
    auto r = injector.run(makeJob(16, 2, 9));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::Timeout);
    EXPECT_DOUBLE_EQ(clock.now(), 0.5);
}

// --------------------------------------------------------------- Executor

TEST(ResilientExecutorTest, CleanRunHasNoRetries)
{
    ResilientExecutor ex;
    auto r = ex.run(makeJob(128, 3, 11));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(ex.stats().executions, 1u);
    EXPECT_EQ(ex.stats().attempts, 1u);
    EXPECT_EQ(ex.stats().retries, 0u);
    EXPECT_EQ(ex.stats().failures, 0u);
    EXPECT_EQ(ex.faultStats(), nullptr); // no injector at rate 0
}

TEST(ResilientExecutorTest, RetriedResultIsBitIdenticalToCleanRun)
{
    ResilientExecutor clean;
    auto want = clean.run(makeJob(256, 4, 12345));
    ASSERT_TRUE(want.ok());

    ResilienceOptions opts;
    opts.faults.rate = 0.6;
    opts.retry.maxAttempts = 64; // enough to outlast the fault stream
    opts.breaker.failureThreshold = 64;
    ResilientExecutor flaky(opts);
    uint64_t retries = 0;
    for (int i = 0; i < 10; ++i) {
        auto got = flaky.run(makeJob(256, 4, 12345));
        ASSERT_TRUE(got.ok());
        // Every retry attempt reseeds Rng(job.rngSeed), so the
        // eventually-successful attempt reproduces the clean histogram.
        EXPECT_EQ(got.value().map(), want.value().map());
    }
    retries = flaky.stats().retries;
    EXPECT_GT(retries, 0u); // rate 0.6 over 10 jobs must retry
    EXPECT_GT(flaky.stats().backoffSeconds, 0.0);
    EXPECT_GT(flaky.elapsedSeconds(), 0.0);
}

TEST(ResilientExecutorTest, ExhaustedRetriesReturnStructuredError)
{
    ResilienceOptions opts;
    opts.faults.rate = 1.0; // every attempt fails
    opts.retry.maxAttempts = 3;
    opts.breaker.failureThreshold = 100;
    ResilientExecutor ex(opts);
    auto r = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::RetriesExhausted);
    EXPECT_EQ(r.error().attempts, 3);
    EXPECT_EQ(ex.stats().failures, 1u);
    EXPECT_EQ(ex.stats().attempts, 3u);
}

TEST(ResilientExecutorTest, BreakerFailsFastInsideTheRetryLoop)
{
    ResilienceOptions opts;
    opts.faults.rate = 1.0;
    opts.retry.maxAttempts = 10;
    opts.breaker.failureThreshold = 4;
    opts.breaker.cooldownSeconds = 1e9; // never recovers in-test
    ResilientExecutor ex(opts);
    auto r = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(r.ok());
    // The loop stops at the breaker, not the full retry budget.
    EXPECT_EQ(ex.stats().attempts, 4u);
    EXPECT_EQ(ex.stats().breakerTrips, 1u);
    auto second = ex.run(makeJob(32, 3, 2));
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::BreakerOpen);
    EXPECT_EQ(ex.stats().attempts, 4u); // rejected without an attempt
}

TEST(ResilientExecutorTest, DegradationLadderStepsInOrder)
{
    ResilienceOptions opts;
    opts.shotsDemotionFactor = 0.5;
    ResilientExecutor ex(opts);
    EXPECT_EQ(ex.level(), DegradationLevel::Full);
    EXPECT_EQ(ex.degradedShots(1000), 1000u);
    EXPECT_FALSE(ex.purificationDisabled());
    ASSERT_TRUE(ex.canDemote());

    EXPECT_EQ(ex.demote("test"), DegradationLevel::ReducedShots);
    EXPECT_EQ(ex.degradedShots(1000), 500u);
    EXPECT_FALSE(ex.purificationDisabled());

    EXPECT_EQ(ex.demote("test"), DegradationLevel::NoPurification);
    EXPECT_TRUE(ex.purificationDisabled());

    EXPECT_EQ(ex.demote("test"), DegradationLevel::CleanFallback);
    EXPECT_FALSE(ex.canDemote()); // end of the ladder
    EXPECT_EQ(ex.degradedShots(1000), 1000u); // clean path: full shots
    EXPECT_EQ(ex.stats().demotions, 3);
}

TEST(ResilientExecutorTest, CleanFallbackBypassesFaultyBackend)
{
    ResilienceOptions opts;
    opts.faults.rate = 1.0; // the decorated chain always fails...
    opts.retry.maxAttempts = 2;
    ResilientExecutor ex(opts);
    while (ex.canDemote())
        ex.demote("test");
    auto r = ex.run(makeJob(64, 3, 21)); // ...but the fallback succeeds
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().total(), 64u);
    EXPECT_EQ(ex.stats().fallbacks, 1u);
}

TEST(ResilientExecutorTest, DisabledLadderCannotDemote)
{
    ResilienceOptions opts;
    opts.degradation = false;
    ResilientExecutor ex(opts);
    EXPECT_FALSE(ex.canDemote());
}

// ------------------------------------------------------------- Checkpoint

SegmentCheckpoint
sampleCheckpoint(bool shot_based)
{
    SegmentCheckpoint cp;
    cp.problemId = "F1";
    cp.shotBased = shot_based;
    cp.nextSegment = 2;
    cp.numBits = 6;
    cp.times = {0.25, 1.0 / 3.0, 0.875};
    cp.prePurifyFeasibleFraction = 0.9375;
    if (shot_based) {
        Rng rng(42);
        std::ostringstream os;
        os << rng.engine();
        cp.rngState = os.str();
        cp.shotEntries = {{BitVec::fromString("010100"), 700},
                          {BitVec::fromString("110001"), 324}};
    } else {
        cp.probEntries = {{BitVec::fromString("010100"), 0.7},
                          {BitVec::fromString("110001"), 0.3}};
    }
    return cp;
}

TEST(CheckpointTest, ShotRoundTripIsExact)
{
    SegmentCheckpoint cp = sampleCheckpoint(true);
    auto parsed = parseCheckpoint(writeCheckpoint(cp));
    ASSERT_TRUE(parsed.ok());
    const SegmentCheckpoint &got = parsed.value();
    EXPECT_EQ(got.problemId, cp.problemId);
    EXPECT_TRUE(got.shotBased);
    EXPECT_EQ(got.nextSegment, cp.nextSegment);
    EXPECT_EQ(got.numBits, cp.numBits);
    ASSERT_EQ(got.times.size(), cp.times.size());
    for (size_t i = 0; i < cp.times.size(); ++i)
        EXPECT_DOUBLE_EQ(got.times[i], cp.times[i]); // max_digits10
    EXPECT_DOUBLE_EQ(got.prePurifyFeasibleFraction,
                     cp.prePurifyFeasibleFraction);
    EXPECT_EQ(got.shotEntries, cp.shotEntries);
    EXPECT_EQ(got.rngState, cp.rngState);

    // The restored engine must continue the stream bit-exactly.
    Rng original(42), restored;
    std::istringstream is(got.rngState);
    is >> restored.engine();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(original.engine()(), restored.engine()());
}

TEST(CheckpointTest, ProbRoundTripIsExact)
{
    SegmentCheckpoint cp = sampleCheckpoint(false);
    auto parsed = parseCheckpoint(writeCheckpoint(cp));
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().shotBased);
    ASSERT_EQ(parsed.value().probEntries.size(), cp.probEntries.size());
    for (size_t i = 0; i < cp.probEntries.size(); ++i) {
        EXPECT_EQ(parsed.value().probEntries[i].first,
                  cp.probEntries[i].first);
        EXPECT_DOUBLE_EQ(parsed.value().probEntries[i].second,
                         cp.probEntries[i].second);
    }
}

TEST(CheckpointTest, CorruptInputsAreRecoverableErrors)
{
    const std::string good = writeCheckpoint(sampleCheckpoint(true));

    auto expect_corrupt = [](const std::string &text) {
        auto r = parseCheckpoint(text);
        ASSERT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.error().code, ErrorCode::CheckpointCorrupt);
    };
    expect_corrupt("");
    expect_corrupt("not-a-checkpoint\n");
    // Truncation: drop the trailing "end\n".
    expect_corrupt(good.substr(0, good.size() - 4));
    expect_corrupt("rasengan-checkpoint v1\nbits 6\nkind shots\n"
                   "entry 01 5\nend\n"); // width mismatch
    expect_corrupt("rasengan-checkpoint v1\nbits 2\nkind shots\n"
                   "entry 01 0\nend\n"); // zero shots
    expect_corrupt("rasengan-checkpoint v1\nbits 2\nkind probs\n"
                   "entry 01 nope\nend\n");
    expect_corrupt("rasengan-checkpoint v1\nwat 3\nend\n");
    expect_corrupt("rasengan-checkpoint v1\nkind shots\nbits 99999\n"
                   "entry 01 5\nend\n"); // bits out of range
    expect_corrupt("rasengan-checkpoint v1\nkind shots\nbits 2\n"
                   "end\n"); // no distribution entries
}

TEST(CheckpointTest, SaveAndLoadThroughFile)
{
    SegmentCheckpoint cp = sampleCheckpoint(true);
    const std::string path =
        ::testing::TempDir() + "rasengan_cp_test.txt";
    auto saved = saveCheckpoint(cp, path);
    ASSERT_TRUE(saved.ok());
    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().shotEntries, cp.shotEntries);
    EXPECT_EQ(loaded.value().rngState, cp.rngState);
    std::remove(path.c_str());

    auto missing = loadCheckpoint(path + ".does-not-exist");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, ErrorCode::CheckpointCorrupt);
}

// ---------------------------------------------- Cancellation / deadlines

TEST(CancelTokenTest, ArmDisarmCancelAndExpiry)
{
    CancelToken token;
    EXPECT_FALSE(token.stopRequested());
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.deadlineExpired());

    // A generous deadline is armed but not yet expired.
    token.setDeadlineSeconds(3600.0);
    EXPECT_FALSE(token.stopRequested());

    // Non-positive budgets disarm.
    token.setDeadlineSeconds(0.0);
    EXPECT_FALSE(token.deadlineExpired());

    // A token already in the past trips immediately.
    token.setDeadlineSeconds(1e-9);
    while (!token.deadlineExpired()) {
    }
    EXPECT_TRUE(token.stopRequested());
    EXPECT_FALSE(token.cancelled());

    token.cancel();
    EXPECT_TRUE(token.cancelled());
}

TEST(ResilientExecutorTest, CancelledTokenFailsBeforeAnyAttempt)
{
    CancelToken token;
    token.cancel();
    ResilienceOptions opts;
    opts.cancel = &token;
    ResilientExecutor ex(opts);
    auto r = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::Cancelled);
    EXPECT_FALSE(r.error().retryable());
    EXPECT_EQ(r.error().attempts, 0);
    EXPECT_EQ(ex.stats().attempts, 0u); // stopped before the backend
    EXPECT_EQ(ex.stats().deadlineHits, 1u);
    EXPECT_EQ(ex.stats().failures, 1u);
    EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
}

TEST(ResilientExecutorTest, ExpiredDeadlineIsTypedAndNotRetryable)
{
    CancelToken token;
    token.setDeadlineSeconds(1e-9);
    while (!token.deadlineExpired()) {
    }
    ResilienceOptions opts;
    opts.cancel = &token;
    // Plenty of retry budget: the deadline must cut through it.
    opts.retry.maxAttempts = 50;
    ResilientExecutor ex(opts);
    auto r = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::DeadlineExceeded);
    EXPECT_FALSE(r.error().retryable());
    EXPECT_EQ(ex.stats().attempts, 0u);
    EXPECT_EQ(ex.stats().deadlineHits, 1u);
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded), "deadline");
}

TEST(ResilientExecutorTest, DeadlineStopsARetryLoopMidway)
{
    // Every attempt fails; the token trips after the first attempt, so
    // the retry loop must exit with the deadline error instead of
    // burning the remaining budget.
    CancelToken token;
    ResilienceOptions opts;
    opts.cancel = &token;
    opts.faults.rate = 1.0;
    opts.retry.maxAttempts = 1; // first call: plain failure
    opts.breaker.failureThreshold = 100;
    ResilientExecutor ex(opts);
    auto first = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.error().code, ErrorCode::RetriesExhausted);

    token.cancel();
    auto second = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::Cancelled);
    EXPECT_EQ(ex.stats().deadlineHits, 1u);
}

TEST(ResilientExecutorTest, CleanFallbackHonoursTheToken)
{
    CancelToken token;
    token.cancel();
    ResilienceOptions opts;
    opts.cancel = &token;
    ResilientExecutor ex(opts);
    while (ex.canDemote())
        ex.demote("test");
    ASSERT_EQ(ex.level(), DegradationLevel::CleanFallback);
    auto r = ex.run(makeJob(32, 3, 1));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::Cancelled);
}

} // namespace
} // namespace rasengan::exec

