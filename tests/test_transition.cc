/**
 * @file
 * Tests for the transition Hamiltonian (Definition 1, Equations 5-6):
 * partner/dark semantics, the exact two-level evolution, and equivalence
 * of the synthesized circuit (Figure 4) with the sparse evolution --
 * verified gate-by-gate on the dense simulator, both with native
 * multi-controlled gates and after transpilation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "circuit/transpile.h"
#include "core/basis.h"
#include "core/transition.h"
#include "problems/suite.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace rasengan::core {
namespace {

constexpr double kPi = std::numbers::pi;

/** The paper's homogeneous basis (Equation 4). */
std::vector<linalg::IntVec>
paperBasis()
{
    return {{-1, 1, 0, 0, 0}, {-1, 0, -1, 1, 0}, {1, 0, 1, 0, 1}};
}

TEST(Transition, SupportAndPatterns)
{
    TransitionHamiltonian tau({-1, 0, 1});
    EXPECT_EQ(tau.support(), 2);
    EXPECT_TRUE(tau.mask().get(0));
    EXPECT_FALSE(tau.mask().get(1));
    EXPECT_TRUE(tau.mask().get(2));
    // x+u needs x_0 = 1 (u_0 = -1) and x_2 = 0 (u_2 = +1).
    EXPECT_TRUE(tau.patternPlus().get(0));
    EXPECT_FALSE(tau.patternPlus().get(2));
}

TEST(Transition, PartnerAddsOrSubtractsU)
{
    TransitionHamiltonian tau({-1, 0, 1});
    // x = (1,0,0): x+u = (0,0,1) valid.
    auto p1 = tau.partner(BitVec::fromString("100"));
    ASSERT_TRUE(p1.has_value());
    EXPECT_EQ(*p1, BitVec::fromString("001"));
    // x = (0,0,1): x-u = (1,0,0) valid.
    auto p2 = tau.partner(BitVec::fromString("001"));
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(*p2, BitVec::fromString("100"));
    // x = (0,0,0): both x+u and x-u leave the binary cube -> dark.
    EXPECT_FALSE(tau.partner(BitVec::fromString("000")).has_value());
    EXPECT_FALSE(tau.partner(BitVec::fromString("101")).has_value());
}

TEST(Transition, PartnerIsInvolutive)
{
    // Equation 5: H |x_p> = |x_g> and H |x_g> = |x_p>.
    for (const auto &u : paperBasis()) {
        TransitionHamiltonian tau(u);
        for (uint64_t idx = 0; idx < 32; ++idx) {
            BitVec x = BitVec::fromIndex(idx);
            if (auto y = tau.partner(x)) {
                auto back = tau.partner(*y);
                ASSERT_TRUE(back.has_value());
                EXPECT_EQ(*back, x);
            }
        }
    }
}

TEST(Transition, PartnerMatchesVectorArithmetic)
{
    // partner(x) must equal x + u or x - u as integer vectors.
    for (const auto &u : paperBasis()) {
        TransitionHamiltonian tau(u);
        for (uint64_t idx = 0; idx < 32; ++idx) {
            BitVec x = BitVec::fromIndex(idx);
            std::vector<int> xv = x.toVector(5);
            auto binary_ok = [](const std::vector<int64_t> &v) {
                for (int64_t e : v)
                    if (e != 0 && e != 1)
                        return false;
                return true;
            };
            std::vector<int64_t> plus(5), minus(5);
            for (int i = 0; i < 5; ++i) {
                plus[i] = xv[i] + u[i];
                minus[i] = xv[i] - u[i];
            }
            auto partner = tau.partner(x);
            if (binary_ok(plus)) {
                ASSERT_TRUE(partner.has_value());
                for (int i = 0; i < 5; ++i)
                    EXPECT_EQ(partner->get(i) ? 1 : 0, plus[i]);
            } else if (binary_ok(minus)) {
                ASSERT_TRUE(partner.has_value());
                for (int i = 0; i < 5; ++i)
                    EXPECT_EQ(partner->get(i) ? 1 : 0, minus[i]);
            } else {
                EXPECT_FALSE(partner.has_value());
            }
        }
    }
}

TEST(Transition, EvolutionKeepsBothStates)
{
    // Equation 6: e^{-i H t} |x_p> = cos t |x_p> - i sin t |x_g>.
    TransitionHamiltonian tau({-1, 1, 0, 0, 0});
    qsim::SparseState s(5, BitVec::fromString("10000"));
    double t = 0.8;
    tau.applyTo(s, t);
    EXPECT_NEAR(s.probability(BitVec::fromString("10000")),
                std::cos(t) * std::cos(t), 1e-12);
    EXPECT_NEAR(s.probability(BitVec::fromString("01000")),
                std::sin(t) * std::sin(t), 1e-12);
}

TEST(Transition, FullTransferAtHalfPi)
{
    TransitionHamiltonian tau({1, 0, 1, 0, 1});
    qsim::SparseState s(5, BitVec::fromString("00010"));
    tau.applyTo(s, kPi / 2);
    EXPECT_NEAR(s.probability(BitVec::fromString("10111")), 1.0, 1e-12);
}

TEST(Transition, RejectsInvalidVectors)
{
    EXPECT_DEATH(TransitionHamiltonian({0, 2, 0}), "");
    EXPECT_DEATH(TransitionHamiltonian({0, 0, 0}), "");
    EXPECT_DEATH(TransitionHamiltonian({}), "");
}

/**
 * Cross-validation: for a transition vector and time, the synthesized
 * circuit on the dense simulator must reproduce the sparse evolution on
 * every basis state.
 */
void
expectCircuitMatchesSparse(const linalg::IntVec &u, double t)
{
    const int n = static_cast<int>(u.size());
    TransitionHamiltonian tau(u);
    circuit::Circuit native = tau.toCircuit(n, t);
    circuit::Circuit lowered = circuit::transpile(
        native,
        {.mode = circuit::TranspileMode::AncillaLadder, .lowerToCx = true});
    const int n_low = lowered.numQubits();

    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        qsim::SparseState sparse(n, x);
        tau.applyTo(sparse, t);

        qsim::Statevector dense(n, x);
        dense.applyCircuit(native);

        qsim::Statevector dense_low(n_low, x);
        dense_low.applyCircuit(lowered);

        for (uint64_t row = 0; row < (uint64_t{1} << n); ++row) {
            BitVec y = BitVec::fromIndex(row);
            std::complex<double> expected = sparse.amplitude(y);
            EXPECT_NEAR(std::abs(dense.amplitude(y) - expected), 0.0, 1e-9)
                << "native circuit, u mismatch at x=" << idx
                << " y=" << row;
            EXPECT_NEAR(std::abs(dense_low.amplitude(y) - expected), 0.0,
                        1e-9)
                << "transpiled circuit mismatch at x=" << idx
                << " y=" << row;
        }
    }
}

TEST(TransitionCircuit, SingleQubitSupport)
{
    expectCircuitMatchesSparse({0, 1, 0}, 0.7);
    expectCircuitMatchesSparse({0, -1, 0}, 1.2);
}

TEST(TransitionCircuit, TwoQubitSupport)
{
    expectCircuitMatchesSparse({-1, 1, 0}, 0.8);
    expectCircuitMatchesSparse({1, 1, 0}, -0.4);
}

TEST(TransitionCircuit, PaperBasisVectors)
{
    for (const auto &u : paperBasis())
        expectCircuitMatchesSparse(u, 0.9);
}

TEST(TransitionCircuit, FourQubitSupport)
{
    expectCircuitMatchesSparse({1, -1, 1, -1}, 0.55);
}

TEST(TransitionCircuit, TimeZeroIsIdentityUpToNothing)
{
    TransitionHamiltonian tau({-1, 1, 0});
    qsim::SparseState s(3, BitVec::fromString("100"));
    tau.applyTo(s, 0.0);
    EXPECT_NEAR(s.probability(BitVec::fromString("100")), 1.0, 1e-12);
    EXPECT_EQ(s.supportSize(), 1u);
}

TEST(TransitionCircuit, ComposesAcrossSequence)
{
    // A short chain of transitions applied as one circuit matches the
    // sequential sparse evolution (what segments execute).
    auto basis = paperBasis();
    std::vector<double> times{0.4, 0.9, 0.3};
    BitVec start = BitVec::fromString("00010"); // the paper's x_p

    qsim::SparseState sparse(5, start);
    circuit::Circuit circ(5);
    for (size_t k = 0; k < basis.size(); ++k) {
        TransitionHamiltonian tau(basis[k]);
        tau.applyTo(sparse, times[k]);
        tau.appendToCircuit(circ, times[k]);
    }
    qsim::Statevector dense(5, start);
    dense.applyCircuit(circ);
    for (uint64_t row = 0; row < 32; ++row) {
        BitVec y = BitVec::fromIndex(row);
        EXPECT_NEAR(std::abs(dense.amplitude(y) - sparse.amplitude(y)), 0.0,
                    1e-9);
    }
}

TEST(TransitionCircuit, FeasibleStatesStayFeasible)
{
    // Evolving a feasible state of a suite benchmark never leaves the
    // feasible space (the core guarantee of Section 3.1).
    problems::Problem p = problems::makeBenchmark("J1");
    auto transitions = makeTransitions(homogeneousBasis(p));
    qsim::SparseState s(p.numVars(), p.trivialFeasible());
    Rng rng(5);
    for (int round = 0; round < 3; ++round)
        for (const auto &tau : transitions)
            tau.applyTo(s, rng.uniformReal(0.1, 1.4));
    for (size_t i = 0; i < s.keys().size(); ++i) {
        if (std::norm(s.amps()[i]) > 1e-18) {
            EXPECT_TRUE(p.isFeasible(s.keys()[i]))
                << s.keys()[i].toString(p.numVars());
        }
    }
}

/** Apply the Pauli-sum expansion of H^tau to |x> on the dense simulator
 *  and compare with the partner/dark semantics of Definition 1. */
void
expectDecompositionMatchesPartner(const linalg::IntVec &u)
{
    const int n = static_cast<int>(u.size());
    TransitionHamiltonian tau(u);
    auto terms = tau.pauliDecomposition();
    EXPECT_EQ(terms.size(),
              size_t{1} << (tau.support() - 1));

    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        // H |x> as a dense vector: sum of coeff * P |x>.
        qsim::Statevector acc(n);
        for (auto &a : acc.mutableAmplitudes())
            a = 0.0;
        for (const auto &[coeff, p] : terms) {
            qsim::Statevector branch(n, x);
            p.applyTo(branch);
            auto &out = acc.mutableAmplitudes();
            const auto &b = branch.amplitudes();
            for (size_t i = 0; i < out.size(); ++i)
                out[i] += coeff * b[i];
        }
        auto partner = tau.partner(x);
        for (uint64_t row = 0; row < (uint64_t{1} << n); ++row) {
            std::complex<double> expected = 0.0;
            if (partner && BitVec::fromIndex(row) == *partner)
                expected = 1.0;
            EXPECT_NEAR(std::abs(acc.amplitudes()[row] - expected), 0.0,
                        1e-9)
                << "u-state " << idx << " row " << row;
        }
    }
}

TEST(PauliDecomposition, MatchesDefinitionOne)
{
    expectDecompositionMatchesPartner({1, 0});
    expectDecompositionMatchesPartner({1, 1});
    expectDecompositionMatchesPartner({-1, 1});
    expectDecompositionMatchesPartner({1, -1, 1});
    for (const auto &u : paperBasis())
        expectDecompositionMatchesPartner(u);
}

TEST(PauliDecomposition, StringsCommutePairwise)
{
    TransitionHamiltonian tau({1, -1, 1, -1});
    auto terms = tau.pauliDecomposition();
    // Two Pauli strings commute iff they anticommute on an even number
    // of qubits; check every pair.
    for (size_t a = 0; a < terms.size(); ++a) {
        for (size_t b = a + 1; b < terms.size(); ++b) {
            int anti = 0;
            for (int q = 0; q < 4; ++q) {
                auto pa = terms[a].second.op(q);
                auto pb = terms[b].second.op(q);
                if (pa != qsim::PauliOp::I && pb != qsim::PauliOp::I &&
                    pa != pb) {
                    ++anti;
                }
            }
            EXPECT_EQ(anti % 2, 0);
        }
    }
}

TEST(PauliDecomposition, EvolutionProductMatchesFigure4Circuit)
{
    // Because the strings commute, the product of their exact evolutions
    // equals e^{-i H^tau t}; compare against the native transition
    // circuit on every basis state (up to global phase).
    for (const linalg::IntVec &u :
         {linalg::IntVec{1, 1, 0}, linalg::IntVec{-1, 1, 1}}) {
        const int n = static_cast<int>(u.size());
        TransitionHamiltonian tau(u);
        double t = 0.85;

        circuit::Circuit pauli_circ(n);
        for (const auto &[coeff, p] : tau.pauliDecomposition())
            qsim::appendPauliEvolution(pauli_circ, p, coeff * t);

        for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
            BitVec x = BitVec::fromIndex(idx);
            qsim::SparseState expected(n, x);
            tau.applyTo(expected, t);
            qsim::Statevector got(n, x);
            got.applyCircuit(pauli_circ);
            for (uint64_t row = 0; row < (uint64_t{1} << n); ++row) {
                BitVec y = BitVec::fromIndex(row);
                EXPECT_NEAR(std::abs(got.amplitude(y) -
                                     expected.amplitude(y)),
                            0.0, 1e-9)
                    << "x " << idx << " row " << row;
            }
        }
    }
}

TEST(PauliEvolution, SingleStringMatchesCosSin)
{
    // e^{-i t P} = cos t I - i sin t P for any Pauli string.
    for (const char *label : {"X", "Y", "Z", "XY", "ZZ", "XYZ"}) {
        qsim::PauliString p = qsim::PauliString::fromLabel(label);
        int n = p.numQubits();
        double t = 0.6;
        circuit::Circuit circ(n);
        qsim::appendPauliEvolution(circ, p, t);
        for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
            BitVec x = BitVec::fromIndex(idx);
            qsim::Statevector got(n, x);
            got.applyCircuit(circ);
            qsim::Statevector identity(n, x);
            qsim::Statevector flipped(n, x);
            p.applyTo(flipped);
            for (uint64_t row = 0; row < (uint64_t{1} << n); ++row) {
                std::complex<double> expected =
                    std::cos(t) * identity.amplitudes()[row] -
                    std::complex<double>(0, 1) * std::sin(t) *
                        flipped.amplitudes()[row];
                EXPECT_NEAR(std::abs(got.amplitudes()[row] - expected),
                            0.0, 1e-9)
                    << label << " x " << idx << " row " << row;
            }
        }
    }
}

TEST(TransitionCircuit, DepthGrowsWithSupport)
{
    TransitionHamiltonian small({1, -1, 0, 0, 0});
    TransitionHamiltonian large({1, -1, 1, -1, 1});
    auto depth_of = [](const TransitionHamiltonian &tau) {
        circuit::Circuit c = tau.toCircuit(5, 0.5);
        return circuit::transpile(c, {.mode =
                                          circuit::TranspileMode::AncillaLadder,
                                      .lowerToCx = true})
            .depth();
    };
    EXPECT_LT(depth_of(small), depth_of(large));
}

} // namespace
} // namespace rasengan::core
