/**
 * @file
 * Tests for Problem text serialization: round trips across all suite
 * benchmarks and parser error reporting.
 */

#include <gtest/gtest.h>

#include "problems/io.h"
#include "problems/suite.h"

namespace rasengan::problems {
namespace {

class IoRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IoRoundTrip, PreservesInstance)
{
    Problem original = makeBenchmark(GetParam());
    std::string text = writeProblem(original);
    ProblemParseResult res = parseProblem(text);
    ASSERT_TRUE(res.problem.has_value()) << res.error;
    const Problem &parsed = *res.problem;

    EXPECT_EQ(parsed.id(), original.id());
    EXPECT_EQ(parsed.family(), original.family());
    EXPECT_EQ(parsed.numVars(), original.numVars());
    EXPECT_EQ(parsed.constraints(), original.constraints());
    EXPECT_EQ(parsed.bounds(), original.bounds());
    EXPECT_EQ(parsed.trivialFeasible(), original.trivialFeasible());
    // Objective equality via evaluation on the feasible set.
    for (const BitVec &x : original.feasibleSolutions())
        EXPECT_NEAR(parsed.objective(x), original.objective(x), 1e-9);
    EXPECT_EQ(parsed.feasibleCount(), original.feasibleCount());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, IoRoundTrip,
                         ::testing::ValuesIn(benchmarkIds()));

TEST(Io, CommentsAndBlankLinesIgnored)
{
    std::string text = "# a header comment\n"
                       "problem demo TEST\n"
                       "\n"
                       "vars 2\n"
                       "objective linear 0 1.5\n"
                       "constraint 1 0:1 1:1\n"
                       "feasible 10\n";
    ProblemParseResult res = parseProblem(text);
    ASSERT_TRUE(res.problem.has_value()) << res.error;
    EXPECT_EQ(res.problem->numVars(), 2);
    EXPECT_EQ(res.problem->feasibleCount(), 2u);
}

TEST(Io, ReportsMissingHeader)
{
    ProblemParseResult res =
        parseProblem("vars 2\nconstraint 1 0:1\nfeasible 00\n");
    EXPECT_FALSE(res.problem.has_value());
    EXPECT_NE(res.error.find("problem"), std::string::npos);
}

TEST(Io, ReportsInfeasiblePoint)
{
    std::string text = "problem demo TEST\nvars 2\n"
                       "constraint 1 0:1 1:1\nfeasible 11\n";
    ProblemParseResult res = parseProblem(text);
    EXPECT_FALSE(res.problem.has_value());
    EXPECT_NE(res.error.find("violates"), std::string::npos);
}

TEST(Io, ReportsBadVariableIndex)
{
    std::string text = "problem demo TEST\nvars 2\n"
                       "objective linear 5 1.0\n"
                       "constraint 1 0:1\nfeasible 10\n";
    ProblemParseResult res = parseProblem(text);
    EXPECT_FALSE(res.problem.has_value());
    EXPECT_EQ(res.errorLine, 3);
}

TEST(Io, ReportsUnknownKeyword)
{
    ProblemParseResult res = parseProblem("problem d T\nvars 1\nwat 3\n");
    EXPECT_FALSE(res.problem.has_value());
    EXPECT_NE(res.error.find("wat"), std::string::npos);
}

TEST(Io, RejectsNonFiniteObjectiveTerms)
{
    // nan/inf coefficients would silently poison every training run.
    for (const char *line : {"objective constant nan",
                             "objective linear 0 inf",
                             "objective quadratic 0 1 -nan"}) {
        std::string text = std::string("problem d T\nvars 2\n") + line +
                           "\nconstraint 1 0:1\nfeasible 10\n";
        ProblemParseResult res = parseProblem(text);
        EXPECT_FALSE(res.problem.has_value()) << line;
        EXPECT_EQ(res.errorLine, 3) << line;
    }
}

TEST(Io, RejectsMalformedConstraintEntries)
{
    for (const char *entry :
         {"0:abc", "x:1", "1e1:1", "0:", ":1", "0:1junk"}) {
        std::string text = std::string("problem d T\nvars 2\n"
                                       "constraint 1 ") +
                           entry + "\nfeasible 10\n";
        ProblemParseResult res = parseProblem(text);
        EXPECT_FALSE(res.problem.has_value()) << entry;
        EXPECT_EQ(res.errorLine, 3) << entry;
    }
}

TEST(Io, RejectsWrappingVariableIndices)
{
    // 2^32 must not wrap into a small valid int past validation.
    std::string text = "problem d T\nvars 2\n"
                       "constraint 1 4294967296:1\nfeasible 10\n";
    ProblemParseResult res = parseProblem(text);
    EXPECT_FALSE(res.problem.has_value());
    EXPECT_NE(res.error.find("out of range"), std::string::npos);

    // And an overflowing token is malformed, not saturated-and-accepted.
    std::string huge = "problem d T\nvars 2\n"
                       "constraint 1 99999999999999999999999999:1\n"
                       "feasible 10\n";
    ProblemParseResult res2 = parseProblem(huge);
    EXPECT_FALSE(res2.problem.has_value());
}

TEST(Io, CanonicalTextIsConstructionOrderInvariant)
{
    // Two construction paths for the same instance: quadratic terms
    // added in opposite orders (and one split into two pieces) must
    // serialize to identical bytes, since cache keys hash this text.
    linalg::IntMat c(1, 3);
    c.at(0, 0) = 1;
    c.at(0, 1) = 1;
    c.at(0, 2) = 1;
    linalg::IntVec b{1};
    BitVec triv = BitVec::fromString("100");

    QuadraticObjective fa(3);
    fa.addLinear(2, 0.5);
    fa.addQuadratic(0, 1, 1.25);
    fa.addQuadratic(1, 2, -2.0);

    QuadraticObjective fb(3);
    fb.addQuadratic(2, 1, -2.0); // reversed indices normalize to (1, 2)
    fb.addQuadratic(0, 1, 1.0);
    fb.addQuadratic(0, 1, 0.25); // split term, merged at serialization
    fb.addLinear(2, 0.5);

    Problem pa("t", "T", c, b, fa, triv);
    Problem pb("t", "T", c, b, fb, triv);
    EXPECT_EQ(canonicalProblemText(pa), canonicalProblemText(pb));
    EXPECT_EQ(writeProblem(pa), writeProblem(pb));
}

TEST(Io, CanonicalTextRoundTripsThroughParser)
{
    // parse(write(p)) must re-serialize to the identical canonical
    // bytes: the parser is one of the "construction paths" the serve
    // cache must treat as equal.
    for (const std::string &id : benchmarkIds()) {
        Problem original = makeBenchmark(id);
        std::string text = canonicalProblemText(original);
        ProblemParseResult res = parseProblem(text);
        ASSERT_TRUE(res.problem.has_value()) << id << ": " << res.error;
        EXPECT_EQ(canonicalProblemText(*res.problem), text) << id;
    }
}

} // namespace
} // namespace rasengan::problems
