/**
 * @file
 * Unit tests for src/qsim: dense statevector, sparse statevector, noise
 * channels (trajectory vs exact density-matrix agreement), counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/circuit.h"
#include "qsim/counts.h"
#include "qsim/density.h"
#include "qsim/noise.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace rasengan::qsim {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Statevector, InitialState)
{
    Statevector sv(2);
    EXPECT_EQ(sv.dimension(), 4u);
    EXPECT_NEAR(std::abs(sv.amplitude(BitVec::fromIndex(0))), 1.0, 1e-12);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);

    Statevector basis(2, BitVec::fromIndex(3));
    EXPECT_NEAR(basis.probability(BitVec::fromIndex(3)), 1.0, 1e-12);
}

TEST(Statevector, HadamardCreatesUniform)
{
    Statevector sv(1);
    sv.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0)), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(1)), 0.5, 1e-12);
}

TEST(Statevector, BellState)
{
    circuit::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    Statevector sv(2);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0b00)), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0b11)), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0b01)), 0.0, 1e-12);
}

TEST(Statevector, RxRotationProbability)
{
    double theta = 0.8;
    Statevector sv(1);
    sv.apply1q(0, gateMatrix(circuit::GateKind::RX, theta));
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(1)),
                std::sin(theta / 2) * std::sin(theta / 2), 1e-12);
}

TEST(Statevector, XViaHzH)
{
    // H Z H = X: verify gate matrices compose correctly.
    Statevector a(1), b(1);
    a.apply1q(0, gateMatrix(circuit::GateKind::X, 0.0));
    b.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    b.apply1q(0, gateMatrix(circuit::GateKind::P, kPi));
    b.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-12);
}

TEST(Statevector, ControlledGateFiresOnlyWhenControlSet)
{
    Statevector sv(2, BitVec::fromIndex(0b01)); // q0 = 1
    sv.applyControlled1q({0}, 1, gateMatrix(circuit::GateKind::X, 0.0));
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0b11)), 1.0, 1e-12);

    Statevector sv2(2); // q0 = 0: control fails
    sv2.applyControlled1q({0}, 1, gateMatrix(circuit::GateKind::X, 0.0));
    EXPECT_NEAR(sv2.probability(BitVec::fromIndex(0b00)), 1.0, 1e-12);
}

TEST(Statevector, SwapExchangesQubits)
{
    Statevector sv(2, BitVec::fromIndex(0b01));
    sv.applySwap(0, 1);
    EXPECT_NEAR(sv.probability(BitVec::fromIndex(0b10)), 1.0, 1e-12);
}

TEST(Statevector, McpAppliesPhaseOnAllOnes)
{
    circuit::Circuit c(3);
    c.mcp({0, 1}, 2, 0.9);
    Statevector all_ones(3, BitVec::fromIndex(0b111));
    Statevector partial(3, BitVec::fromIndex(0b011));
    all_ones.applyCircuit(c);
    partial.applyCircuit(c);
    Complex amp = all_ones.amplitude(BitVec::fromIndex(0b111));
    EXPECT_NEAR(std::arg(amp), 0.9, 1e-12);
    EXPECT_NEAR(
        std::arg(partial.amplitude(BitVec::fromIndex(0b011))), 0.0, 1e-12);
}

TEST(Statevector, DiagonalEvolutionMatchesPhaseCallback)
{
    std::vector<double> values{0.0, 0.5, 1.0, 1.5};
    Statevector a(2), b(2);
    a.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    a.apply1q(1, gateMatrix(circuit::GateKind::H, 0.0));
    b = a;
    a.applyDiagonalEvolution(values, 0.7);
    b.applyDiagonalPhase([&](const BitVec &x) {
        return -0.7 * values[x.toIndex()];
    });
    EXPECT_NEAR(std::abs(a.inner(b)), 1.0, 1e-12);
}

TEST(Statevector, SamplingMatchesBornRule)
{
    Statevector sv(1);
    sv.apply1q(0, gateMatrix(circuit::GateKind::RY, 2.0 * kPi / 6));
    Rng rng(11);
    Counts counts = sv.sample(rng, 40000);
    // P(1) = sin^2(pi/6) = 0.25.
    EXPECT_NEAR(counts.probability(BitVec::fromIndex(1)), 0.25, 0.01);
}

TEST(Statevector, SampleMasksAncillaBits)
{
    Statevector sv(3, BitVec::fromIndex(0b101));
    Rng rng(1);
    Counts counts = sv.sample(rng, 10, 2);
    EXPECT_EQ(counts.map().size(), 1u);
    EXPECT_EQ(counts.probability(BitVec::fromIndex(0b01)), 1.0);
}

TEST(Statevector, ProbabilityOfOne)
{
    Statevector sv(2);
    sv.apply1q(1, gateMatrix(circuit::GateKind::H, 0.0));
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(1), 0.5, 1e-12);
}

TEST(Statevector, MeasureCollapsesState)
{
    Rng rng(5);
    int ones = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        Statevector sv(1);
        sv.apply1q(0, gateMatrix(circuit::GateKind::RY, 2.0 * kPi / 6));
        bool outcome = sv.measureQubit(0, rng);
        ones += outcome ? 1 : 0;
        // Collapsed: the state is now exactly the measured basis state.
        EXPECT_NEAR(sv.probability(BitVec::fromIndex(outcome ? 1 : 0)),
                    1.0, 1e-12);
    }
    EXPECT_NEAR(static_cast<double>(ones) / trials, 0.25, 0.03);
}

TEST(Statevector, MeasureOnBellStateIsCorrelated)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        circuit::Circuit bell(2);
        bell.h(0);
        bell.cx(0, 1);
        Statevector sv(2);
        sv.applyCircuit(bell);
        bool first = sv.measureQubit(0, rng);
        bool second = sv.measureQubit(1, rng);
        EXPECT_EQ(first, second);
    }
}

TEST(Statevector, ResetReturnsQubitToZero)
{
    Rng rng(3);
    Statevector sv(2, BitVec::fromString("11"));
    sv.resetQubit(0, rng);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(1), 1.0, 1e-12);
}

TEST(Statevector, MidCircuitMeasureViaTrajectory)
{
    // measure + conditional-free re-use: |+> measured then H again gives
    // a 50/50 distribution either way; the trajectory path must accept
    // the Measure gate.
    circuit::Circuit c(1);
    c.h(0);
    c.measure(0);
    c.h(0);
    Rng rng(7);
    NoiseModel none;
    Counts counts;
    for (int i = 0; i < 2000; ++i) {
        Statevector sv = runTrajectory(c, 1, BitVec{}, none, rng);
        Counts one = sv.sample(rng, 1);
        for (const auto &[outcome, n] : one.map())
            counts.add(outcome, n);
    }
    EXPECT_NEAR(counts.probability(BitVec::fromIndex(0)), 0.5, 0.05);
}

TEST(Statevector, PlainApplyCircuitRejectsMeasurement)
{
    circuit::Circuit c(1);
    c.measure(0);
    Statevector sv(1);
    EXPECT_DEATH(sv.applyCircuit(c), "");
}

TEST(Counts, BasicAccounting)
{
    Counts counts;
    counts.add(BitVec::fromIndex(0), 3);
    counts.add(BitVec::fromIndex(1), 1);
    EXPECT_EQ(counts.total(), 4u);
    EXPECT_EQ(counts.distinct(), 2u);
    EXPECT_NEAR(counts.probability(BitVec::fromIndex(0)), 0.75, 1e-12);
    EXPECT_EQ(counts.mostFrequent(), BitVec::fromIndex(0));
}

TEST(Counts, ExpectationAndFilter)
{
    Counts counts;
    counts.add(BitVec::fromIndex(0), 1);
    counts.add(BitVec::fromIndex(1), 3);
    double e = counts.expectation(
        [](const BitVec &x) { return x.get(0) ? 10.0 : 2.0; });
    EXPECT_NEAR(e, 8.0, 1e-12);
    Counts odd = counts.filtered(
        [](const BitVec &x) { return x.get(0); });
    EXPECT_EQ(odd.total(), 3u);
    EXPECT_NEAR(counts.fraction(
                    [](const BitVec &x) { return x.get(0); }),
                0.75, 1e-12);
}

TEST(SparseState, PairRotationMatchesCosSin)
{
    // One-qubit transition: |0> -> cos t |0> - i sin t |1> (Equation 6).
    BitVec mask = BitVec::fromString("1");
    BitVec pattern; // x+u valid when bit is 0 (u = +1)
    SparseState s(1, BitVec{});
    double t = 0.6;
    s.applyPairRotation(mask, pattern, t);
    EXPECT_NEAR(std::abs(s.amplitude(BitVec::fromString("0"))),
                std::cos(t), 1e-12);
    EXPECT_NEAR(std::abs(s.amplitude(BitVec::fromString("1"))),
                std::sin(t), 1e-12);
    // The created amplitude carries the -i phase.
    EXPECT_NEAR(std::arg(s.amplitude(BitVec::fromString("1"))), -kPi / 2,
                1e-12);
}

TEST(SparseState, FullRotationSwapsStates)
{
    BitVec mask = BitVec::fromString("1");
    SparseState s(1, BitVec{});
    s.applyPairRotation(mask, BitVec{}, kPi / 2);
    // cos(pi/2) = 0: the population fully transfers.
    EXPECT_NEAR(s.probability(BitVec::fromString("1")), 1.0, 1e-12);
    EXPECT_EQ(s.supportSize(), 1u); // the zero amplitude is pruned
}

TEST(SparseState, DarkStateUntouched)
{
    // Two-qubit transition u = (+1, +1): pattern "00"; the state |01> is
    // dark (neither x+u nor x-u stays binary).
    BitVec mask = BitVec::fromString("11");
    SparseState s(2, BitVec::fromString("10")); // x0=1, x1=0
    s.applyPairRotation(mask, BitVec{}, 0.9);
    EXPECT_NEAR(s.probability(BitVec::fromString("10")), 1.0, 1e-12);
    EXPECT_EQ(s.supportSize(), 1u);
}

TEST(SparseState, RotationFromMinusPatternSide)
{
    // Start from the pattern_minus member: the pair must still rotate.
    BitVec mask = BitVec::fromString("11");
    SparseState s(2, BitVec::fromString("11"));
    s.applyPairRotation(mask, BitVec{}, 0.5);
    EXPECT_NEAR(s.probability(BitVec::fromString("11")),
                std::cos(0.5) * std::cos(0.5), 1e-12);
    EXPECT_NEAR(s.probability(BitVec::fromString("00")),
                std::sin(0.5) * std::sin(0.5), 1e-12);
}

TEST(SparseState, UnitarityAcrossManyRotations)
{
    SparseState s(4, BitVec::fromString("1010"));
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        BitVec mask;
        while (mask == BitVec{}) {
            mask = BitVec{};
            for (int q = 0; q < 4; ++q)
                if (rng.bernoulli(0.5))
                    mask.set(q);
        }
        BitVec pattern;
        for (int q = 0; q < 4; ++q)
            if (mask.get(q) && rng.bernoulli(0.5))
                pattern.set(q);
        s.applyPairRotation(mask, pattern, rng.uniformReal(0.0, 1.5));
    }
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-9);
}

TEST(SparseState, ApplyXMovesSupport)
{
    SparseState s(3, BitVec::fromString("001"));
    s.applyX(1);
    EXPECT_NEAR(s.probability(BitVec::fromString("011")), 1.0, 1e-12);
}

TEST(SparseState, PhaseIsDiagonal)
{
    SparseState s(1, BitVec{});
    s.applyPairRotation(BitVec::fromString("1"), BitVec{}, kPi / 4);
    double p0 = s.probability(BitVec::fromString("0"));
    s.applyPhase([](const BitVec &) { return 1.234; });
    EXPECT_NEAR(s.probability(BitVec::fromString("0")), p0, 1e-12);
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-12);
}

TEST(SparseState, SampleMatchesProbabilities)
{
    SparseState s(1, BitVec{});
    s.applyPairRotation(BitVec::fromString("1"), BitVec{}, kPi / 6);
    Rng rng(17);
    Counts counts = s.sample(rng, 40000);
    EXPECT_NEAR(counts.probability(BitVec::fromString("1")), 0.25, 0.01);
}

TEST(SparseState, MostLikely)
{
    SparseState s(1, BitVec{});
    s.applyPairRotation(BitVec::fromString("1"), BitVec{}, 0.3);
    EXPECT_EQ(s.mostLikely(), BitVec::fromString("0"));
}

TEST(Density, PureStateHasUnitPurity)
{
    DensityMatrix rho(2, BitVec::fromIndex(0));
    circuit::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    rho.applyCircuit(c);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(0b00)), 0.5, 1e-12);
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(0b11)), 0.5, 1e-12);
}

TEST(Density, DepolarizingMixes)
{
    DensityMatrix rho(1, BitVec{});
    rho.applyDepolarizing(0, 0.75); // fully depolarizing for 1 qubit
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(0)), 0.5, 1e-9);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-9);
}

TEST(Density, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1, BitVec::fromIndex(1));
    rho.applyAmplitudeDamping(0, 0.3);
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(1)), 0.7, 1e-12);
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(0)), 0.3, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(Density, PhaseDampingKillsCoherence)
{
    DensityMatrix rho(1, BitVec{});
    circuit::Circuit h(1);
    h.h(0);
    rho.applyCircuit(h);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    rho.applyPhaseDamping(0, 1.0); // complete dephasing
    EXPECT_NEAR(rho.probability(BitVec::fromIndex(0)), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-9);
}

TEST(Density, TrajectoryAgreesWithExactChannel)
{
    // One noisy circuit, both engines, compare outcome distributions.
    circuit::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rx(1, 0.7);
    NoiseModel noise;
    noise.depol1q = 0.02;
    noise.depol2q = 0.05;
    noise.amplitudeDamping = 0.03;
    noise.phaseDamping = 0.02;

    DensityMatrix rho(2, BitVec{});
    rho.applyNoisyCircuit(c, noise);
    std::vector<double> exact = rho.diagonal();

    Rng rng(23);
    const int trials = 6000;
    std::vector<double> empirical(4, 0.0);
    for (int i = 0; i < trials; ++i) {
        Statevector sv = runTrajectory(c, 2, BitVec{}, noise, rng);
        for (uint64_t idx = 0; idx < 4; ++idx)
            empirical[idx] += sv.probability(BitVec::fromIndex(idx));
    }
    for (uint64_t idx = 0; idx < 4; ++idx) {
        empirical[idx] /= trials;
        EXPECT_NEAR(empirical[idx], exact[idx], 0.02) << "state " << idx;
    }
}

TEST(Noise, ReadoutErrorFlipsBits)
{
    Counts counts;
    counts.add(BitVec::fromIndex(0), 10000);
    Rng rng(5);
    Counts noisy = applyReadoutError(counts, 1, 0.1, rng);
    EXPECT_NEAR(noisy.probability(BitVec::fromIndex(1)), 0.1, 0.02);
}

TEST(Noise, DisabledNoiseIsExact)
{
    circuit::Circuit c(1);
    c.h(0);
    NoiseModel none;
    EXPECT_FALSE(none.enabled());
    Rng rng(2);
    Counts counts = sampleNoisy(c, 1, BitVec{}, none, rng, 20000, 4);
    EXPECT_NEAR(counts.probability(BitVec::fromIndex(0)), 0.5, 0.02);
}

TEST(Noise, SampleNoisySplitsShots)
{
    circuit::Circuit c(1);
    c.h(0);
    NoiseModel noise;
    noise.depol1q = 0.01;
    Rng rng(4);
    Counts counts = sampleNoisy(c, 1, BitVec{}, noise, rng, 1000, 7);
    EXPECT_EQ(counts.total(), 1000u);
}

} // namespace
} // namespace rasengan::qsim
