/**
 * @file
 * Tests for the baseline VQAs: penalty-QUBO construction, P-QAOA (with
 * FrozenQubits and Red-QAOA knobs), HEA, and Choco-Q.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "baselines/qubo.h"
#include "circuit/transpile.h"
#include "core/basis.h"
#include "problems/metrics.h"
#include "problems/suite.h"
#include "qsim/statevector.h"

namespace rasengan::baselines {
namespace {

TEST(Qubo, PenaltyMatchesSquaredViolation)
{
    problems::Problem p = problems::makeBenchmark("J1");
    double lambda = 3.5;
    problems::QuadraticObjective qubo = penaltyQubo(p, lambda);
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        BitVec x;
        for (int q = 0; q < p.numVars(); ++q)
            if (rng.bernoulli(0.5))
                x.set(q);
        // Recompute lambda * ||Cx - b||^2 directly.
        double violation_sq = 0.0;
        for (int r = 0; r < p.constraints().rows(); ++r) {
            double acc = -static_cast<double>(p.bounds()[r]);
            for (int col = 0; col < p.numVars(); ++col)
                if (x.get(col))
                    acc += static_cast<double>(p.constraints().at(r, col));
            violation_sq += acc * acc;
        }
        EXPECT_NEAR(qubo.eval(x),
                    p.objective(x) + lambda * violation_sq, 1e-9);
    }
}

TEST(Qubo, FeasiblePointsKeepOriginalObjective)
{
    problems::Problem p = problems::makeBenchmark("S1");
    problems::QuadraticObjective qubo = penaltyQubo(p, 100.0);
    for (const BitVec &x : p.feasibleSolutions())
        EXPECT_NEAR(qubo.eval(x), p.objective(x), 1e-9);
}

TEST(Qubo, ObjectivePhaseMatchesDiagonal)
{
    // The phase circuit must imprint e^{-i gamma f(x)} (up to the global
    // phase from the constant term) on every basis state.
    problems::Problem p = problems::makeBenchmark("J1");
    problems::QuadraticObjective f = penaltyQubo(p, 2.0);
    double gamma = 0.37;
    circuit::Circuit circ(p.numVars());
    appendObjectivePhase(circ, f, gamma);

    const int n = p.numVars();
    for (uint64_t idx : {0ull, 3ull, 17ull, 42ull}) {
        if (idx >= (uint64_t{1} << n))
            continue;
        BitVec x = BitVec::fromIndex(idx);
        qsim::Statevector sv(n, x);
        sv.applyCircuit(circ);
        double expected = -gamma * (f.eval(x) - f.constant());
        double got = std::arg(sv.amplitude(x));
        double diff = std::remainder(got - expected, 2 * M_PI);
        EXPECT_NEAR(diff, 0.0, 1e-9) << "basis " << idx;
    }
}

TEST(Qubo, DiagonalValuesAgreeWithEval)
{
    problems::Problem p = problems::makeBenchmark("F1");
    problems::QuadraticObjective f = penaltyQubo(p, 5.0);
    std::vector<double> diag = diagonalValues(f, p.numVars());
    for (uint64_t idx = 0; idx < diag.size(); idx += 7)
        EXPECT_NEAR(diag[idx], f.eval(BitVec::fromIndex(idx)), 1e-9);
}

TEST(Pqaoa, CircuitShapeAndParams)
{
    PqaoaOptions opts;
    opts.layers = 3;
    Pqaoa solver(problems::makeBenchmark("J1"), opts);
    EXPECT_EQ(solver.numParams(), 6);
    std::vector<double> params(6, 0.1);
    circuit::Circuit circ = solver.buildCircuit(params);
    EXPECT_EQ(circ.numQubits(), solver.numActiveQubits());
    EXPECT_EQ(circ.countKind(circuit::GateKind::H),
              solver.numActiveQubits());
    EXPECT_EQ(circ.countKind(circuit::GateKind::RX),
              3 * solver.numActiveQubits());
}

TEST(Pqaoa, FrozenQubitsShrinkTheRegister)
{
    problems::Problem p = problems::makeBenchmark("J1");
    PqaoaOptions frozen;
    frozen.frozenQubits = 2;
    Pqaoa a(p, {}), b(p, frozen);
    EXPECT_EQ(a.numActiveQubits(), p.numVars());
    EXPECT_EQ(b.numActiveQubits(), p.numVars() - 2);
}

TEST(Pqaoa, LiftRestoresFrozenBits)
{
    problems::Problem p = problems::makeBenchmark("J1");
    PqaoaOptions opts;
    opts.frozenQubits = 2;
    Pqaoa solver(p, opts);
    BitVec all_zero_active;
    BitVec lifted = solver.lift(all_zero_active);
    // Frozen bits carry the trivial solution's values; with all active
    // bits zero the lifted string has exactly the frozen ones set.
    int frozen_ones = 0;
    for (int q = 0; q < p.numVars(); ++q)
        frozen_ones += lifted.get(q) ? 1 : 0;
    EXPECT_LE(frozen_ones, 2);
}

TEST(Pqaoa, TrainingImprovesOverInitialPoint)
{
    problems::Problem p = problems::makeBenchmark("J1");
    PqaoaOptions opts;
    opts.maxIterations = 150;
    opts.shots = 2048;
    Pqaoa solver(p, opts);
    VqaResult res = solver.run();
    EXPECT_EQ(res.numParams, 10);
    EXPECT_GT(res.circuitDepth, 0);
    EXPECT_GT(res.counts.total(), 0u);
    // Penalty methods still struggle with constraints (the paper's
    // point); at minimum the run must produce a valid expectation.
    EXPECT_GT(res.expectedObjective, 0.0);
}

TEST(Pqaoa, SmartInitDiffersFromDefault)
{
    problems::Problem p = problems::makeBenchmark("J1");
    PqaoaOptions plain, smart;
    plain.maxIterations = 40;
    smart.maxIterations = 40;
    smart.smartInit = true;
    VqaResult a = Pqaoa(p, plain).run();
    VqaResult b = Pqaoa(p, smart).run();
    // Different seeds of the search: almost surely different trajectories.
    EXPECT_NE(a.training.x, b.training.x);
}

TEST(Hea, ParameterCountMatchesKandalaAnsatz)
{
    problems::Problem p = problems::makeBenchmark("J1");
    HeaOptions opts;
    opts.layers = 5;
    Hea solver(p, opts);
    EXPECT_EQ(solver.numParams(), 2 * p.numVars() * 6);
    std::vector<double> params(solver.numParams(), 0.1);
    circuit::Circuit circ = solver.buildCircuit(params);
    EXPECT_EQ(circ.countKind(circuit::GateKind::RY), p.numVars() * 6);
    EXPECT_EQ(circ.countCx(), (p.numVars() - 1) * 5);
}

TEST(Hea, RunProducesSamples)
{
    problems::Problem p = problems::makeBenchmark("J1");
    HeaOptions opts;
    opts.layers = 2;
    opts.maxIterations = 60;
    Hea solver(p, opts);
    VqaResult res = solver.run();
    EXPECT_EQ(res.counts.total(), opts.shots);
    EXPECT_GE(res.inConstraintsRate, 0.0);
    EXPECT_LE(res.inConstraintsRate, 1.0);
    EXPECT_GT(res.circuitDepth, 0);
}

TEST(Chocoq, OutputsStayFeasible)
{
    problems::Problem p = problems::makeBenchmark("K1");
    ChocoqOptions opts;
    opts.maxIterations = 80;
    Chocoq solver(p, opts);
    VqaResult res = solver.run();
    EXPECT_NEAR(res.inConstraintsRate, 1.0, 1e-12);
    for (const auto &[x, cnt] : res.counts.map())
        EXPECT_TRUE(p.isFeasible(x));
}

TEST(Chocoq, MixerUsesFullBasis)
{
    problems::Problem p = problems::makeBenchmark("F1");
    Chocoq solver(p, {});
    EXPECT_EQ(solver.mixerTerms(),
              static_cast<int>(core::homogeneousBasis(p).size()));
    EXPECT_EQ(solver.numParams(), 10);
}

TEST(Chocoq, DeeperThanRasenganSegments)
{
    problems::Problem p = problems::makeBenchmark("F1");
    Chocoq solver(p, {});
    std::vector<double> params(solver.numParams(), 0.2);
    circuit::Circuit lowered = circuit::transpile(
        solver.buildCircuit(params),
        {.mode = circuit::TranspileMode::AncillaLadder, .lowerToCx = true});
    // Five layers of the full mixer: depth far above a Rasengan segment.
    EXPECT_GT(lowered.depth(), 50);
}

TEST(Chocoq, TrainingReducesExpectation)
{
    problems::Problem p = problems::makeBenchmark("J1");
    ChocoqOptions opts;
    opts.maxIterations = 120;
    Chocoq solver(p, opts);
    VqaResult res = solver.run();
    // Feasible-space method: expectation within the feasible range.
    EXPECT_GE(res.expectedObjective, p.optimalValue() - 1e-9);
    EXPECT_LE(res.expectedObjective, p.worstFeasibleValue() + 1e-9);
    // Training should land below the feasible mean.
    EXPECT_LT(res.expectedObjective, p.meanFeasibleValue() + 1e-9);
}

TEST(AllBaselines, ReportLatencySplit)
{
    problems::Problem p = problems::makeBenchmark("J1");
    PqaoaOptions po;
    po.maxIterations = 30;
    VqaResult r = Pqaoa(p, po).run();
    EXPECT_GT(r.quantumSeconds, 0.0);
    EXPECT_GE(r.classicalSeconds, 0.0);
}

} // namespace
} // namespace rasengan::baselines
