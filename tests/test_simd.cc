/**
 * @file
 * Tests for the SIMD kernel tier (qsim/simd.h).
 *
 * The contract is bit-exactness: every vector ISA must reproduce the
 * scalar reference kernels to the last bit, at every input size
 * (including n = 0, 1, and every non-multiple of the vector width),
 * and whole simulations must be byte-identical under
 * RASENGAN_SIMD=scalar vs auto at 1, 2, and 7 threads.  On machines
 * where only the scalar table is available, the cross-ISA comparisons
 * skip instead of failing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/rasengan.h"
#include "problems/suite.h"
#include "qsim/simd.h"
#include "qsim/sparseplan.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace rasengan {
namespace {

using Complex = std::complex<double>;
using qsim::SimdIsa;
using qsim::SimdKernels;

const std::vector<int> kSweep = {1, 2, 7};

/** Sizes that straddle every vector width boundary. */
const std::vector<uint64_t> kFuzzSizes = {0, 1, 2, 3, 4,  5,  7,
                                          8, 9, 16, 17, 33, 100};

/** RAII: restore the env-derived thread configuration on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { parallel::setThreadCount(0); }
};

/** RAII: restore the previously active ISA on scope exit. */
struct IsaGuard
{
    SimdIsa saved = qsim::simdActiveIsa();
    ~IsaGuard() { qsim::setSimdIsa(saved); }
};

/** Every available non-scalar ISA (empty on scalar-only machines). */
std::vector<SimdIsa>
vectorIsas()
{
    std::vector<SimdIsa> out;
    for (SimdIsa isa : qsim::simdAvailableIsas())
        if (isa != SimdIsa::Scalar)
            out.push_back(isa);
    return out;
}

#define SKIP_IF_SCALAR_ONLY()                                           \
    do {                                                                \
        if (vectorIsas().empty())                                       \
            GTEST_SKIP() << "only the scalar ISA is available";         \
    } while (0)

std::vector<Complex>
randomAmps(Rng &rng, uint64_t n)
{
    std::vector<Complex> v(n);
    for (auto &z : v)
        z = Complex{rng.normal(), rng.normal()};
    return v;
}

bool
sameBytes(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(Complex)) == 0);
}

// ---------------------------------------------------------------------
// Selection API
// ---------------------------------------------------------------------

TEST(SimdSelect, ScalarAlwaysAvailable)
{
    IsaGuard guard;
    auto isas = qsim::simdAvailableIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), SimdIsa::Scalar);
    EXPECT_TRUE(qsim::setSimdIsa(SimdIsa::Scalar));
    EXPECT_EQ(qsim::simdActiveIsa(), SimdIsa::Scalar);
    EXPECT_EQ(qsim::simdKernels().isa, SimdIsa::Scalar);
}

TEST(SimdSelect, SpecParsing)
{
    IsaGuard guard;
    std::string error;
    EXPECT_TRUE(qsim::selectSimdIsa("scalar", &error)) << error;
    EXPECT_TRUE(qsim::selectSimdIsa("auto", &error)) << error;
    EXPECT_EQ(qsim::simdActiveIsa(), qsim::simdBestIsa());
    EXPECT_FALSE(qsim::selectSimdIsa("sse9", &error));
    EXPECT_NE(error.find("sse9"), std::string::npos);
    // A failed selection leaves the active table untouched.
    EXPECT_EQ(qsim::simdActiveIsa(), qsim::simdBestIsa());
}

TEST(SimdSelect, UnavailableIsaRejected)
{
    IsaGuard guard;
#if defined(__x86_64__)
    std::string error;
    EXPECT_FALSE(qsim::selectSimdIsa("neon", &error));
    EXPECT_NE(error.find("neon"), std::string::npos);
#else
    GTEST_SKIP() << "no guaranteed-unavailable ISA on this target";
#endif
}

// ---------------------------------------------------------------------
// Kernel-level scalar-vs-vector bit-exactness, fuzzed across sizes
// that are not multiples of any vector width (satellite: n = 0, 1
// included via kFuzzSizes).
// ---------------------------------------------------------------------

TEST(SimdKernelsExact, CmulArrayAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(11);
        for (uint64_t n : kFuzzSizes) {
            std::vector<Complex> amps = randomAmps(rng, n);
            std::vector<Complex> factors = randomAmps(rng, n);
            std::vector<Complex> want = amps;
            scalar.cmulArray(want.data(), factors.data(), n);
            std::vector<Complex> got = amps;
            vec.cmulArray(got.data(), factors.data(), n);
            EXPECT_TRUE(sameBytes(got, want))
                << qsim::simdIsaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernelsExact, PairRotateStridedAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    circuit::Mat2 u =
        circuit::gateMatrix(circuit::GateKind::RY, 0.3721);
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(12);
        for (uint64_t bit : {uint64_t{2}, uint64_t{4}, uint64_t{128}}) {
            for (uint64_t len : kFuzzSizes) {
                if (len > bit)
                    continue; // contract: len <= bit (runs never span)
                std::vector<Complex> amps = randomAmps(rng, 2 * bit + 7);
                std::vector<Complex> want = amps;
                scalar.pairRotateStrided(want.data(), 3, len, bit, u);
                std::vector<Complex> got = amps;
                vec.pairRotateStrided(got.data(), 3, len, bit, u);
                EXPECT_TRUE(sameBytes(got, want))
                    << qsim::simdIsaName(isa) << " bit=" << bit
                    << " len=" << len;
            }
        }
    }
}

TEST(SimdKernelsExact, PairRotateAdjacentAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    circuit::Mat2 u =
        circuit::gateMatrix(circuit::GateKind::RX, 1.234);
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(13);
        for (uint64_t n : kFuzzSizes) {
            std::vector<Complex> amps = randomAmps(rng, 2 * n);
            std::vector<Complex> want = amps;
            scalar.pairRotateAdjacent(want.data(), 0, n, u);
            std::vector<Complex> got = amps;
            vec.pairRotateAdjacent(got.data(), 0, n, u);
            EXPECT_TRUE(sameBytes(got, want))
                << qsim::simdIsaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernelsExact, DiagonalEvolutionAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(14);
        for (uint64_t n : kFuzzSizes) {
            std::vector<Complex> amps = randomAmps(rng, n);
            std::vector<double> values(n);
            for (auto &v : values)
                v = rng.normal();
            std::vector<Complex> want = amps;
            scalar.diagonalEvolution(want.data(), values.data(), 0.7, 0,
                                     n);
            std::vector<Complex> got = amps;
            vec.diagonalEvolution(got.data(), values.data(), 0.7, 0, n);
            EXPECT_TRUE(sameBytes(got, want))
                << qsim::simdIsaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernelsExact, DiagonalTermsAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    // Mix of always-on, controlled, and identically-zero terms so some
    // accumulated angles are exactly 0.0 (the skip path must keep
    // those amplitudes bitwise untouched in every arm).
    std::vector<circuit::DiagTerm> terms = {
        {0, 1, 0.25, -0.25},
        {2, 4, 0.0, 0.5},
        {5, 8, -0.125, 0.125},
        {0, 2, 0.0, 0.0},
    };
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(15);
        for (uint64_t n : kFuzzSizes) {
            std::vector<Complex> amps = randomAmps(rng, n);
            std::vector<Complex> want = amps;
            scalar.diagonalTerms(want.data(), terms.data(), terms.size(),
                                 0, n);
            std::vector<Complex> got = amps;
            vec.diagonalTerms(got.data(), terms.data(), terms.size(), 0,
                              n);
            EXPECT_TRUE(sameBytes(got, want))
                << qsim::simdIsaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernelsExact, SparseClassifyAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    BitVec mask;
    mask.set(1);
    mask.set(3);
    mask.set(70); // exercise the high word
    BitVec pattern_plus;
    pattern_plus.set(1);
    pattern_plus.set(70);
    const BitVec pattern_minus = pattern_plus ^ mask;
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(16);
        for (uint64_t n : kFuzzSizes) {
            if (n == 0)
                continue; // classify over an empty support is a no-op
            // Sorted unique random keys over low bits 0..5 and bit 70.
            std::vector<BitVec> keys;
            uint64_t raw = 0;
            for (uint64_t i = 0; i < n; ++i) {
                raw += 1 + static_cast<uint64_t>(rng.uniformInt(0, 2));
                BitVec k = BitVec::fromIndex(raw & 0x3F);
                if (raw & 0x40)
                    k.set(70);
                if (raw & 0x80)
                    k.set(90);
                keys.push_back(k);
            }
            std::sort(keys.begin(), keys.end());
            keys.erase(std::unique(keys.begin(), keys.end()),
                       keys.end());
            const uint64_t m = keys.size();
            std::vector<uint8_t> role_want(m, 99), role_got(m, 99);
            std::vector<uint32_t> part_want(m, 7), part_got(m, 7);
            scalar.sparseClassify(keys.data(), m, 0, m, mask,
                                  pattern_plus, pattern_minus,
                                  role_want.data(), part_want.data());
            vec.sparseClassify(keys.data(), m, 0, m, mask, pattern_plus,
                               pattern_minus, role_got.data(),
                               part_got.data());
            EXPECT_EQ(role_got, role_want)
                << qsim::simdIsaName(isa) << " n=" << m;
            for (uint64_t i = 0; i < m; ++i) {
                if (role_want[i] != qsim::kSimdRoleDark) {
                    EXPECT_EQ(part_got[i], part_want[i])
                        << qsim::simdIsaName(isa) << " i=" << i;
                }
            }
        }
    }
}

TEST(SimdKernelsExact, SparsePairRotateAllSizes)
{
    SKIP_IF_SCALAR_ONLY();
    const SimdKernels &scalar = *qsim::detail::simdScalarTable();
    const double c = std::cos(0.613);
    const Complex ms = Complex{0.0, -1.0} * std::sin(0.613);
    for (SimdIsa isa : vectorIsas()) {
        IsaGuard guard;
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        const SimdKernels &vec = qsim::simdKernels();
        Rng rng(17);
        for (uint64_t n : kFuzzSizes) {
            // n disjoint pairs over 2n slots, randomly interleaved.
            std::vector<uint32_t> slots(2 * n);
            for (uint32_t i = 0; i < 2 * n; ++i)
                slots[i] = i;
            rng.shuffle(slots);
            std::vector<std::pair<uint32_t, uint32_t>> pairs(n);
            for (uint64_t p = 0; p < n; ++p)
                pairs[p] = {slots[2 * p], slots[2 * p + 1]};
            std::vector<Complex> amps = randomAmps(rng, 2 * n);
            std::vector<Complex> want = amps;
            scalar.sparsePairRotate(want.data(), pairs.data(), 0, n, c,
                                    ms);
            std::vector<Complex> got = amps;
            vec.sparsePairRotate(got.data(), pairs.data(), 0, n, c, ms);
            EXPECT_TRUE(sameBytes(got, want))
                << qsim::simdIsaName(isa) << " n=" << n;
        }
    }
}

// ---------------------------------------------------------------------
// Engine-level cross-ISA determinism at 1/2/7 threads
// ---------------------------------------------------------------------

circuit::Circuit
mixedCircuit(int n, Rng &rng)
{
    circuit::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int layer = 0; layer < 4; ++layer) {
        for (int q = 0; q < n; ++q)
            c.rz(q, rng.uniformReal(-1.0, 1.0));
        for (int q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
        for (int q = 0; q < n; ++q)
            c.ry(q, rng.uniformReal(-1.0, 1.0));
    }
    return c;
}

TEST(SimdCrossIsa, DenseAmplitudesBitIdentical)
{
    SKIP_IF_SCALAR_ONLY();
    ThreadGuard tguard;
    IsaGuard iguard;
    const int n = 12;
    Rng rng(21);
    circuit::Circuit circ = mixedCircuit(n, rng);

    ASSERT_TRUE(qsim::setSimdIsa(SimdIsa::Scalar));
    parallel::setThreadCount(1);
    qsim::Statevector reference(n);
    reference.applyCircuit(circ);

    for (SimdIsa isa : vectorIsas()) {
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        for (int tc : kSweep) {
            parallel::setThreadCount(tc);
            qsim::Statevector sv(n);
            sv.applyCircuit(circ);
            EXPECT_TRUE(
                sameBytes(sv.amplitudes(), reference.amplitudes()))
                << qsim::simdIsaName(isa) << " threads=" << tc;
        }
    }
}

TEST(SimdCrossIsa, SparseRotationBitIdentical)
{
    SKIP_IF_SCALAR_ONLY();
    ThreadGuard tguard;
    IsaGuard iguard;
    const int n = 16;
    // A chain of overlapping two-bit transitions grows the support
    // into the thousands, deep enough to engage the batched search.
    auto run = [&]() {
        qsim::SparseState st(n, BitVec{});
        for (int step = 0; step < 24; ++step) {
            BitVec mask;
            mask.set(step % n);
            mask.set((step * 5 + 1) % n);
            // plus pattern = all-zero on the support: pairs x with
            // x^mask for every x whose mask bits are 00 or 11, so the
            // support grows roughly 2x per step until saturation.
            st.applyPairRotation(mask, BitVec{}, 0.21 + 0.01 * step,
                                 qsim::SparseState::
                                     kDefaultPruneThreshold);
        }
        return st;
    };

    ASSERT_TRUE(qsim::setSimdIsa(SimdIsa::Scalar));
    parallel::setThreadCount(1);
    qsim::SparseState reference = run();
    ASSERT_GT(reference.supportSize(), 1000u);

    for (SimdIsa isa : vectorIsas()) {
        ASSERT_TRUE(qsim::setSimdIsa(isa));
        for (int tc : kSweep) {
            parallel::setThreadCount(tc);
            qsim::SparseState st = run();
            ASSERT_EQ(st.supportSize(), reference.supportSize())
                << qsim::simdIsaName(isa) << " threads=" << tc;
            EXPECT_TRUE(st.keys() == reference.keys());
            EXPECT_TRUE(sameBytes(st.amps(), reference.amps()))
                << qsim::simdIsaName(isa) << " threads=" << tc;
        }
    }
}

// ---------------------------------------------------------------------
// All four solvers, scalar vs auto: byte-identical results/telemetry
// ---------------------------------------------------------------------

TEST(SimdCrossIsa, RasenganSolverBitIdentical)
{
    SKIP_IF_SCALAR_ONLY();
    ThreadGuard tguard;
    IsaGuard iguard;
    problems::Problem p = problems::makeBenchmark("F1");
    core::RasenganOptions opts;
    opts.maxIterations = 10;
    opts.shotsPerSegment = 256;

    ASSERT_TRUE(qsim::setSimdIsa(SimdIsa::Scalar));
    opts.resilience.threads = 1;
    core::RasenganResult reference =
        core::RasenganSolver(p, opts).run();
    ASSERT_FALSE(reference.failed);

    ASSERT_TRUE(qsim::setSimdIsa(qsim::simdBestIsa()));
    for (int tc : kSweep) {
        opts.resilience.threads = tc;
        core::RasenganResult res = core::RasenganSolver(p, opts).run();
        ASSERT_FALSE(res.failed);
        EXPECT_EQ(res.solution, reference.solution) << "threads=" << tc;
        EXPECT_EQ(res.objectiveValue, reference.objectiveValue);
        EXPECT_EQ(res.expectedObjective, reference.expectedObjective);
        EXPECT_EQ(res.inConstraintsRate, reference.inConstraintsRate);
        ASSERT_EQ(res.finalDistribution.entries.size(),
                  reference.finalDistribution.entries.size());
        for (size_t i = 0; i < res.finalDistribution.entries.size();
             ++i) {
            EXPECT_EQ(res.finalDistribution.entries[i],
                      reference.finalDistribution.entries[i]);
        }
    }
}

/** Scalar-vs-auto sweep shared by the three baseline VQAs. */
template <typename Solver, typename Options>
void
sweepBaselineCrossIsa(Options opts)
{
    SKIP_IF_SCALAR_ONLY();
    ThreadGuard tguard;
    IsaGuard iguard;
    problems::Problem p = problems::makeBenchmark("F1");

    ASSERT_TRUE(qsim::setSimdIsa(SimdIsa::Scalar));
    opts.resilience.threads = 1;
    baselines::VqaResult reference = Solver(p, opts).run();

    ASSERT_TRUE(qsim::setSimdIsa(qsim::simdBestIsa()));
    for (int tc : kSweep) {
        opts.resilience.threads = tc;
        baselines::VqaResult res = Solver(p, opts).run();
        EXPECT_EQ(res.expectedObjective, reference.expectedObjective)
            << "threads=" << tc;
        EXPECT_EQ(res.inConstraintsRate, reference.inConstraintsRate);
        EXPECT_TRUE(res.counts.map() == reference.counts.map());
        EXPECT_EQ(res.training.value, reference.training.value);
    }
}

TEST(SimdCrossIsa, HeaBitIdentical)
{
    baselines::HeaOptions opts;
    opts.layers = 2;
    opts.maxIterations = 12;
    opts.shots = 256;
    sweepBaselineCrossIsa<baselines::Hea>(opts);
}

TEST(SimdCrossIsa, PqaoaBitIdentical)
{
    baselines::PqaoaOptions opts;
    opts.layers = 2;
    opts.maxIterations = 12;
    opts.shots = 256;
    sweepBaselineCrossIsa<baselines::Pqaoa>(opts);
}

TEST(SimdCrossIsa, ChocoqBitIdentical)
{
    baselines::ChocoqOptions opts;
    opts.layers = 2;
    opts.maxIterations = 12;
    opts.shots = 256;
    sweepBaselineCrossIsa<baselines::Chocoq>(opts);
}

} // namespace
} // namespace rasengan
