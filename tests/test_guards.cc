/**
 * @file
 * Guard-rail tests: the fatal()/panic() paths that protect API misuse
 * must actually fire (gtest death tests).
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "device/latency.h"
#include "device/routing.h"
#include "linalg/matrix.h"
#include "linalg/rational.h"
#include "problems/suite.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace rasengan {
namespace {

TEST(Guards, BitVecRejectsOutOfRangeBit)
{
    BitVec v;
    EXPECT_DEATH(v.set(kMaxBits), "");
    EXPECT_DEATH(v.get(-1), "");
}

TEST(Guards, BitVecRejectsOversizedInputs)
{
    std::vector<int> too_big(kMaxBits + 1, 0);
    EXPECT_DEATH(BitVec::fromVector(too_big), "");
    EXPECT_DEATH(BitVec::fromVector({0, 2, 0}), "");
    EXPECT_DEATH(BitVec::fromString("01x"), "");
}

TEST(Guards, RationalRejectsZeroDenominator)
{
    EXPECT_DEATH(linalg::Rational(1, 0), "");
}

TEST(Guards, RationalRejectsDivisionByZero)
{
    linalg::Rational a(1, 2);
    EXPECT_DEATH(a / linalg::Rational(0), "");
}

TEST(Guards, RationalToIntRequiresInteger)
{
    EXPECT_DEATH(linalg::Rational(1, 2).toInt(), "");
}

TEST(Guards, MatrixRejectsBadIndexing)
{
    linalg::IntMat m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "");
    EXPECT_DEATH(m.at(0, -1), "");
}

TEST(Guards, MatrixRejectsRaggedInitializer)
{
    EXPECT_DEATH((linalg::IntMat{{1, 2}, {3}}), "");
}

TEST(Guards, CircuitRejectsBadWiring)
{
    circuit::Circuit c(2);
    EXPECT_DEATH(c.h(2), "");
    EXPECT_DEATH(c.cx(0, 0), "");
    EXPECT_DEATH(c.mcp({0, 0}, 1, 0.5), "");
}

TEST(Guards, StatevectorRejectsOversizedRegisters)
{
    EXPECT_DEATH(qsim::Statevector(31), "");
}

TEST(Guards, StatevectorRejectsCircuitLargerThanRegister)
{
    circuit::Circuit c(3);
    c.h(2);
    qsim::Statevector sv(2);
    EXPECT_DEATH(sv.applyCircuit(c), "");
}

TEST(Guards, SparseStateRejectsEmptyRotationMask)
{
    qsim::SparseState s(2, BitVec{});
    EXPECT_DEATH(s.applyPairRotation(BitVec{}, BitVec{}, 0.5), "");
}

TEST(Guards, RoutingRejectsOversizedCircuits)
{
    circuit::Circuit c(5);
    c.cx(0, 4);
    device::CouplingMap map = device::CouplingMap::linear(3);
    EXPECT_DEATH(device::route(c, map), "");
    EXPECT_DEATH(device::routeLookahead(c, map), "");
}

TEST(Guards, RoutingRejectsUntranspiledGates)
{
    circuit::Circuit c(4);
    c.mcp({0, 1}, 2, 0.3);
    device::CouplingMap map = device::CouplingMap::full(4);
    EXPECT_DEATH(device::route(c, map), "");
}

TEST(Guards, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(problems::makeBenchmark("Z9"), "");
}

TEST(Guards, DisabledEnumerationIsFatal)
{
    problems::Problem p = problems::makeScalabilityFlp(105);
    EXPECT_DEATH(p.feasibleSolutions(), "");
}

TEST(Guards, ArgRejectsZeroOptimum)
{
    problems::QuadraticObjective f(2);
    // f == 0 on the feasible point (0,1): optimum is zero.
    linalg::IntMat c{{1, 1}};
    problems::Problem p("zero-opt", "demo", c, {1}, f,
                        BitVec::fromString("01"));
    EXPECT_DEATH(p.arg(0.5), "");
}

} // namespace
} // namespace rasengan
