/**
 * @file
 * Tests for ProblemBuilder's inequality-to-equality compilation and the
 * portfolio family built on it, including the end-to-end Rasengan solve
 * of an inequality-constrained instance.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/rasengan.h"
#include "problems/builder.h"
#include "problems/metrics.h"
#include "problems/portfolio.h"

namespace rasengan::problems {
namespace {

TEST(Builder, EqualityOnlyMatchesDirectConstruction)
{
    ProblemBuilder builder("b-eq", "demo", 3);
    builder.objectiveLinear(0, 2.0);
    builder.objectiveLinear(1, 1.0);
    builder.objectiveLinear(2, 3.0);
    builder.addEquality({{0, 1}, {1, 1}, {2, 1}}, 1);
    Problem p = builder.build(BitVec::fromString("010"));
    EXPECT_EQ(p.numVars(), 3);
    EXPECT_EQ(p.feasibleCount(), 3u);
    EXPECT_NEAR(p.optimalValue(), 1.0, 1e-12);
}

TEST(Builder, LessEqualAddsSlackBits)
{
    ProblemBuilder builder("b-le", "demo", 2);
    builder.objectiveLinear(0, 1.0);
    builder.addLessEqual({{0, 1}, {1, 1}}, 1);
    EXPECT_EQ(builder.numOriginalVars(), 2);
    EXPECT_GT(builder.numTotalVars(), 2);
    Problem p = builder.build(BitVec{});
    // Feasible original assignments: 00, 01, 10 (11 violates).
    std::set<std::string> originals;
    for (const BitVec &x : p.feasibleSolutions())
        originals.insert(x.toString(2));
    EXPECT_EQ(originals,
              (std::set<std::string>{"00", "01", "10"}));
}

TEST(Builder, SlackExpansionCoversWholeRange)
{
    // sum of three unit terms <= 3: every original assignment feasible,
    // each with exactly one slack completion.
    ProblemBuilder builder("b-cover", "demo", 3);
    builder.objectiveLinear(0, 1.0);
    builder.addLessEqual({{0, 1}, {1, 1}, {2, 1}}, 3);
    Problem p = builder.build(BitVec{});
    std::set<std::string> originals;
    for (const BitVec &x : p.feasibleSolutions())
        originals.insert(x.toString(3));
    EXPECT_EQ(originals.size(), 8u);
}

TEST(Builder, GreaterEqualIsNegatedLessEqual)
{
    ProblemBuilder builder("b-ge", "demo", 2);
    builder.objectiveLinear(0, 1.0);
    builder.addGreaterEqual({{0, 1}, {1, 1}}, 1);
    Problem p = builder.build(BitVec::fromString("10"));
    std::set<std::string> originals;
    for (const BitVec &x : p.feasibleSolutions())
        originals.insert(x.toString(2));
    EXPECT_EQ(originals,
              (std::set<std::string>{"01", "10", "11"}));
}

TEST(Builder, NegativeCoefficientsHandled)
{
    // x0 - x1 <= 0  (i.e. x0 implies x1).
    ProblemBuilder builder("b-neg", "demo", 2);
    builder.objectiveLinear(1, 1.0);
    builder.addLessEqual({{0, 1}, {1, -1}}, 0);
    Problem p = builder.build(BitVec{});
    std::set<std::string> originals;
    for (const BitVec &x : p.feasibleSolutions())
        originals.insert(x.toString(2));
    EXPECT_EQ(originals,
              (std::set<std::string>{"00", "01", "11"}));
}

TEST(Builder, RejectsInfeasibleProvidedPoint)
{
    ProblemBuilder builder("b-bad", "demo", 2);
    builder.objectiveLinear(0, 1.0);
    builder.addEquality({{0, 1}, {1, 1}}, 1);
    EXPECT_DEATH(builder.build(BitVec::fromString("11")), "");
}

TEST(Builder, RejectsImpossibleInequality)
{
    ProblemBuilder builder("b-imp", "demo", 2);
    EXPECT_DEATH(builder.addLessEqual({{0, 1}, {1, 1}}, -1), "");
}

class PortfolioCases : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PortfolioCases, InstanceInvariants)
{
    Rng rng(GetParam());
    PortfolioConfig config;
    Problem p = makePortfolio("port-test", config, rng);
    EXPECT_TRUE(p.isFeasible(p.trivialFeasible()));
    EXPECT_GT(p.feasibleCount(), 0u);
    EXPECT_GT(p.optimalValue(), 0.0); // shift keeps ARG defined
    // Every feasible solution picks exactly `pick` assets.
    for (const BitVec &x : p.feasibleSolutions()) {
        int picked = 0;
        for (int i = 0; i < config.assets; ++i)
            picked += x.get(i) ? 1 : 0;
        EXPECT_EQ(picked, config.pick);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioCases,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Portfolio, RasenganSolvesInequalityConstrainedInstance)
{
    Rng rng(42);
    PortfolioConfig config;
    config.assets = 5;
    config.pick = 2;
    Problem p = makePortfolio("port-solve", config, rng);

    core::RasenganOptions options;
    options.maxIterations = 150;
    core::RasenganSolver solver(p, options);
    core::RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed);
    EXPECT_TRUE(p.isFeasible(res.solution));
    // The trained distribution must beat the mean feasible baseline.
    EXPECT_LT(p.arg(res.expectedObjective),
              std::max(meanFeasibleArg(p), 1e-6));
}

TEST(Portfolio, BudgetBindsSomeCases)
{
    // Across seeds, at least one instance must have fewer feasible
    // portfolios than the unconstrained k-subset count (the budget is a
    // real constraint, not decoration).
    bool budget_bound = false;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed);
        PortfolioConfig config;
        config.assets = 6;
        config.pick = 3;
        config.budgetSlack = 0;
        Problem p = makePortfolio("port-bind", config, rng);
        std::set<std::string> originals;
        for (const BitVec &x : p.feasibleSolutions())
            originals.insert(x.toString(config.assets));
        if (originals.size() < 20u) // C(6,3) = 20
            budget_bound = true;
    }
    EXPECT_TRUE(budget_bound);
}

} // namespace
} // namespace rasengan::problems
