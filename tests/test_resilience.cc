/**
 * @file
 * Integration tests for resilient execution at the solver level: the
 * fault matrix (benchmarks x fault rates must produce bit-identical
 * results to the fault-free run), the graceful-degradation ladder under
 * a hard backend outage, and checkpoint -> kill -> resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/rasengan.h"
#include "problems/suite.h"

namespace rasengan::core {
namespace {

RasenganOptions
resilientOptions(double fault_rate)
{
    RasenganOptions opts;
    opts.maxIterations = 60;
    opts.shotsPerSegment = 512;
    opts.execution = RasenganOptions::Execution::SampledSparse;
    opts.resilience.faults.rate = fault_rate;
    // Generous retry budget: determinism requires that every faulty
    // execution eventually lands a clean attempt (no demotions), and
    // P(16 consecutive faults) at rate 0.3 is ~4e-9.
    opts.resilience.retry.maxAttempts = 16;
    opts.resilience.breaker.failureThreshold = 16;
    return opts;
}

std::vector<std::pair<BitVec, double>>
sorted(std::vector<std::pair<BitVec, double>> entries)
{
    std::sort(entries.begin(), entries.end());
    return entries;
}

// ------------------------------------------------------------ Fault matrix

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{
};

TEST_P(FaultMatrix, RecoveredRunIsBitIdenticalToFaultFree)
{
    const auto &[benchmark, rate] = GetParam();
    problems::Problem p = problems::makeBenchmark(benchmark);

    RasenganSolver clean_solver(p, resilientOptions(0.0));
    RasenganResult want = clean_solver.run();
    ASSERT_FALSE(want.failed);

    RasenganSolver faulty_solver(p, resilientOptions(rate));
    RasenganResult got = faulty_solver.run();
    ASSERT_FALSE(got.failed);

    // Retries reseed from the per-segment job seed, so the recovered
    // solve must match the fault-free solve exactly -- not approximately.
    EXPECT_EQ(got.solution, want.solution);
    EXPECT_EQ(got.objectiveValue, want.objectiveValue);
    EXPECT_EQ(got.expectedObjective, want.expectedObjective);
    EXPECT_EQ(got.inConstraintsRate, want.inConstraintsRate);
    EXPECT_EQ(sorted(got.finalDistribution.entries),
              sorted(want.finalDistribution.entries));

    EXPECT_EQ(want.execStats.retries, 0u);
    EXPECT_EQ(got.degradation, exec::DegradationLevel::Full);
    EXPECT_EQ(got.execStats.failures, 0u);
    if (rate > 0.0) {
        // Over a full training run the fault stream must have fired.
        EXPECT_GT(got.execStats.retries, 0u) << benchmark << " " << rate;
        // Retried attempts cost modeled wall-clock time.
        EXPECT_GT(got.quantumSeconds, want.quantumSeconds);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarksTimesRates, FaultMatrix,
    ::testing::Combine(::testing::Values("F1", "K1", "S1"),
                       ::testing::Values(0.0, 0.1, 0.3)));

// ------------------------------------------------------------- Degradation

TEST(Degradation, HardOutageFallsBackToCleanSimulator)
{
    problems::Problem p = problems::makeBenchmark("F1");
    RasenganOptions opts;
    opts.maxIterations = 40;
    opts.shotsPerSegment = 256;
    opts.execution = RasenganOptions::Execution::SampledSparse;
    opts.resilience.faults.rate = 1.0; // every decorated attempt fails
    opts.resilience.retry.maxAttempts = 2;
    opts.resilience.breaker.failureThreshold = 64;
    RasenganSolver solver(p, opts);
    RasenganResult res = solver.run();

    // The ladder must ride out the outage, not abort the solve.
    ASSERT_FALSE(res.failed);
    EXPECT_TRUE(p.isFeasible(res.solution));
    EXPECT_EQ(res.degradation, exec::DegradationLevel::CleanFallback);
    EXPECT_EQ(res.execStats.demotions, 3);
    EXPECT_GT(res.execStats.failures, 0u);
    EXPECT_GT(res.execStats.fallbacks, 0u);
}

// ------------------------------------------------------- Checkpoint/resume

RasenganOptions
segmentedOptions()
{
    RasenganOptions opts;
    opts.maxIterations = 50;
    opts.shotsPerSegment = 512;
    opts.transitionsPerSegment = 1; // force a multi-segment pipeline
    opts.execution = RasenganOptions::Execution::SampledSparse;
    return opts;
}

TEST(CheckpointResume, KilledExecutionResumesBitExactly)
{
    problems::Problem p = problems::makeBenchmark("F1");
    RasenganSolver solver(p, segmentedOptions());
    ASSERT_GE(static_cast<int>(solver.segments().size()), 2);
    std::vector<double> times(solver.numParams(), 0.6);

    // Uninterrupted reference run.
    Rng ref_rng(123);
    RasenganDistribution want = solver.execute(times, ref_rng);
    ASSERT_FALSE(want.failed);

    // Killed run: checkpoint after every segment, stop after segment 0.
    std::vector<exec::SegmentCheckpoint> saved;
    ExecHooks kill;
    kill.onSegmentDone = [&](const exec::SegmentCheckpoint &cp) {
        saved.push_back(cp);
    };
    kill.stopAfterSegment = 0;
    Rng killed_rng(123);
    RasenganDistribution partial = solver.execute(times, killed_rng, kill);
    EXPECT_TRUE(partial.aborted);
    ASSERT_EQ(saved.size(), 1u);
    EXPECT_EQ(saved[0].nextSegment, 1);
    EXPECT_FALSE(saved[0].rngState.empty());

    // Round-trip the snapshot through its text format, as a real
    // kill/restart would, then resume with a fresh (wrong-seed) rng:
    // the restored engine state must make the seed irrelevant.
    auto reparsed =
        exec::parseCheckpoint(exec::writeCheckpoint(saved[0]));
    ASSERT_TRUE(reparsed.ok());
    ExecHooks resume;
    resume.resumeFrom = &reparsed.value();
    Rng resume_rng(999);
    RasenganDistribution got = solver.execute(times, resume_rng, resume);
    ASSERT_FALSE(got.failed);
    EXPECT_FALSE(got.aborted);
    EXPECT_EQ(sorted(got.entries), sorted(want.entries));
}

TEST(CheckpointResume, RunResumesFromCheckpointFile)
{
    problems::Problem p = problems::makeBenchmark("F1");
    const std::string path =
        ::testing::TempDir() + "rasengan_resume_test.txt";
    std::remove(path.c_str());

    RasenganOptions opts = segmentedOptions();
    opts.checkpointPath = path;

    RasenganSolver first(p, opts);
    RasenganResult want = first.run();
    ASSERT_FALSE(want.failed);
    EXPECT_FALSE(want.resumed);

    // A second run over the same path must skip training and execution
    // and reproduce the result from the completed-run snapshot.
    RasenganSolver second(p, opts);
    RasenganResult got = second.run();
    ASSERT_FALSE(got.failed);
    EXPECT_TRUE(got.resumed);
    EXPECT_EQ(got.solution, want.solution);
    EXPECT_EQ(got.expectedObjective, want.expectedObjective);
    EXPECT_EQ(got.inConstraintsRate, want.inConstraintsRate);
    EXPECT_EQ(sorted(got.finalDistribution.entries),
              sorted(want.finalDistribution.entries));
    EXPECT_EQ(got.training.x, want.training.x);
    EXPECT_EQ(got.execStats.executions, 0u); // nothing re-executed

    std::remove(path.c_str());
}

TEST(CheckpointResume, CancelledTrainingNeverPoisonsTheCheckpoint)
{
    // A cancel token that trips during training makes every later
    // objective evaluation fail, so training.x is garbage; persisting
    // it would make the NEXT run resume from the wrong times and
    // silently diverge from an uninterrupted solve.  A cancelled run
    // must leave no checkpoint behind.
    const std::string path =
        ::testing::TempDir() + "rasengan_cancelled_cp_test.txt";
    std::remove(path.c_str());

    problems::Problem p = problems::makeBenchmark("F1");
    RasenganResult want = RasenganSolver(p, segmentedOptions()).run();
    ASSERT_FALSE(want.failed);

    exec::CancelToken token;
    token.cancel(); // tripped before (hence throughout) training
    RasenganOptions opts = segmentedOptions();
    opts.checkpointPath = path;
    opts.resilience.cancel = &token;
    RasenganResult killed = RasenganSolver(p, opts).run();
    EXPECT_TRUE(killed.failed);

    // The re-run finds no snapshot, retrains cold, and reproduces the
    // uninterrupted result exactly.
    RasenganOptions retry = segmentedOptions();
    retry.checkpointPath = path;
    RasenganResult got = RasenganSolver(p, retry).run();
    ASSERT_FALSE(got.failed);
    EXPECT_FALSE(got.resumed);
    EXPECT_EQ(got.solution, want.solution);
    EXPECT_EQ(got.expectedObjective, want.expectedObjective);
    EXPECT_EQ(sorted(got.finalDistribution.entries),
              sorted(want.finalDistribution.entries));
    std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedCheckpointIsIgnored)
{
    const std::string path =
        ::testing::TempDir() + "rasengan_mismatch_test.txt";

    // Checkpoint from K1 must not poison an F1 solve.
    RasenganOptions opts = segmentedOptions();
    opts.checkpointPath = path;
    RasenganSolver other(problems::makeBenchmark("K1"), opts);
    ASSERT_FALSE(other.run().failed);

    RasenganSolver fresh(problems::makeBenchmark("F1"),
                         segmentedOptions());
    RasenganResult want = fresh.run();

    RasenganSolver solver(problems::makeBenchmark("F1"), opts);
    RasenganResult got = solver.run();
    ASSERT_FALSE(got.failed);
    EXPECT_FALSE(got.resumed); // stale snapshot rejected, trained anew
    EXPECT_EQ(got.solution, want.solution);
    EXPECT_EQ(got.expectedObjective, want.expectedObjective);

    // Corrupted checkpoint files are ignored, never fatal.
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage\n", f);
        std::fclose(f);
    }
    RasenganSolver after_corrupt(problems::makeBenchmark("F1"), opts);
    RasenganResult res = after_corrupt.run();
    ASSERT_FALSE(res.failed);
    EXPECT_FALSE(res.resumed);
    EXPECT_EQ(res.solution, want.solution);

    std::remove(path.c_str());
}

} // namespace
} // namespace rasengan::core
