/**
 * @file
 * Deadline/SLO scheduling tests: priority wire names, the
 * priority + EDF + FIFO ready queue, and the shed predictor that
 * rejects deadline-unmeetable jobs at accept time.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/slo.h"

using namespace rasengan;
using namespace rasengan::serve;

namespace {

SloJob
job(uint64_t seq, Priority p, double deadline_ms, double cost = 1.0)
{
    SloJob j;
    j.seq = seq;
    j.priority = p;
    j.deadlineMs = deadline_ms;
    j.costUnits = cost;
    j.arrival = seq; // tests use seq as the arrival counter too
    return j;
}

std::vector<uint64_t>
popOrder(DeadlineQueue &q)
{
    std::vector<uint64_t> order;
    while (!q.empty())
        order.push_back(q.pop().seq);
    return order;
}

} // namespace

// ---------------------------------------------------------------------
// Priority wire names
// ---------------------------------------------------------------------

TEST(Priority, ParseAndNameRoundTrip)
{
    for (Priority p : {Priority::Interactive, Priority::Batch,
                       Priority::BestEffort}) {
        Priority parsed;
        ASSERT_TRUE(parsePriority(priorityName(p), &parsed));
        EXPECT_EQ(parsed, p);
    }
    Priority out;
    EXPECT_FALSE(parsePriority("urgent", &out));
    EXPECT_FALSE(parsePriority("", &out));
    EXPECT_FALSE(parsePriority("Interactive", &out)); // case-sensitive
}

// ---------------------------------------------------------------------
// DeadlineQueue ordering
// ---------------------------------------------------------------------

TEST(DeadlineQueue, StrictPriorityClassesBeatDeadlines)
{
    DeadlineQueue q;
    // A best-effort job with a razor-thin deadline still yields to an
    // interactive job with no deadline at all: classes are strict.
    q.push(job(1, Priority::BestEffort, 1.0));
    q.push(job(2, Priority::Batch, 5.0));
    q.push(job(3, Priority::Interactive, 0.0));
    EXPECT_EQ(popOrder(q), (std::vector<uint64_t>{3, 2, 1}));
}

TEST(DeadlineQueue, EdfWithinClassThenDeadlinelessThenFifo)
{
    DeadlineQueue q;
    q.push(job(1, Priority::Batch, 0.0));   // no deadline, earliest arrival
    q.push(job(2, Priority::Batch, 900.0)); // latest deadline
    q.push(job(3, Priority::Batch, 100.0)); // earliest deadline
    q.push(job(4, Priority::Batch, 0.0));   // no deadline, later arrival
    q.push(job(5, Priority::Batch, 500.0));
    // Deadlined jobs first (EDF), then deadline-less in arrival order.
    EXPECT_EQ(popOrder(q), (std::vector<uint64_t>{3, 5, 2, 1, 4}));
}

TEST(DeadlineQueue, FifoBreaksExactTies)
{
    DeadlineQueue q;
    q.push(job(7, Priority::Batch, 250.0));
    q.push(job(3, Priority::Batch, 250.0));
    q.push(job(5, Priority::Batch, 250.0));
    // Equal class and deadline: arrival counter decides, so dispatch
    // order is a pure function of the request stream.
    EXPECT_EQ(popOrder(q), (std::vector<uint64_t>{3, 5, 7}));
}

TEST(DeadlineQueue, BacklogAndEarliestDeadlineTrackContents)
{
    DeadlineQueue q;
    EXPECT_EQ(q.earliestDeadlineMs(), 0.0);
    EXPECT_EQ(q.backlogCostUnits(), 0.0);
    q.push(job(1, Priority::Batch, 0.0, 2.5));
    EXPECT_EQ(q.earliestDeadlineMs(), 0.0); // no deadlined job yet
    q.push(job(2, Priority::BestEffort, 800.0, 1.5));
    q.push(job(3, Priority::Interactive, 300.0, 4.0));
    EXPECT_DOUBLE_EQ(q.earliestDeadlineMs(), 300.0);
    EXPECT_DOUBLE_EQ(q.backlogCostUnits(), 8.0);
    q.pop();
    EXPECT_DOUBLE_EQ(q.earliestDeadlineMs(), 800.0);
}

TEST(DeadlineQueue, DrainEmptiesAndReturnsEverything)
{
    DeadlineQueue q;
    for (uint64_t s = 1; s <= 4; ++s)
        q.push(job(s, Priority::Batch, 100.0 * static_cast<double>(s)));
    std::deque<SloJob> drained = q.drain();
    EXPECT_EQ(drained.size(), 4u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.backlogCostUnits(), 0.0);
}

// ---------------------------------------------------------------------
// Shed predictor
// ---------------------------------------------------------------------

TEST(ShedDecision, JobsWithoutDeadlinesAreNeverShed)
{
    SloPolicy policy;
    policy.costUnitsPerSecond = 1.0; // pathologically slow worker
    ShedDecision d = shedDecision(job(1, Priority::Batch, 0.0, 1e9),
                                  1e9, 1e9, policy);
    EXPECT_FALSE(d.shed);
}

TEST(ShedDecision, HopelessDeadlineIsShedWithStructuredReason)
{
    SloPolicy policy;
    policy.costUnitsPerSecond = 1000.0; // 1 cost unit == 1 ms
    // 5000 units of backlog ahead of a 100 ms deadline: hopeless.
    ShedDecision d = shedDecision(job(1, Priority::Batch, 100.0, 10.0),
                                  4000.0, 1000.0, policy);
    EXPECT_TRUE(d.shed);
    EXPECT_GT(d.predictedMs, 100.0);
    EXPECT_NE(d.reason.find("unmeetable"), std::string::npos);
    EXPECT_NE(d.reason.find("100"), std::string::npos); // the deadline
}

TEST(ShedDecision, MeetableDeadlineIsAdmitted)
{
    SloPolicy policy;
    policy.costUnitsPerSecond = 1000.0;
    // 50 units total at 1 unit/ms against a 100 ms deadline with the
    // default 10% margin: predicted 50 ms < budget 90 ms.
    ShedDecision d = shedDecision(job(1, Priority::Batch, 100.0, 10.0),
                                  30.0, 10.0, policy);
    EXPECT_FALSE(d.shed);
    EXPECT_DOUBLE_EQ(d.predictedMs, 50.0);
}

TEST(ShedDecision, MarginTightensTheBudget)
{
    // Predicted 80 ms against a 100 ms deadline: admitted at 10%
    // margin (budget 90 ms), shed at 30% (budget 70 ms).
    SloPolicy policy;
    policy.costUnitsPerSecond = 1000.0;
    SloJob j = job(1, Priority::Batch, 100.0, 80.0);
    policy.shedMargin = 0.1;
    EXPECT_FALSE(shedDecision(j, 0.0, 0.0, policy).shed);
    policy.shedMargin = 0.3;
    EXPECT_TRUE(shedDecision(j, 0.0, 0.0, policy).shed);
}

TEST(ShedDecision, RunningCostCountsTowardThePrediction)
{
    SloPolicy policy;
    policy.costUnitsPerSecond = 1000.0;
    SloJob j = job(1, Priority::Batch, 100.0, 10.0);
    EXPECT_FALSE(shedDecision(j, 0.0, 0.0, policy).shed);
    // Same queue, but a large job is mid-flight on the worker.
    EXPECT_TRUE(shedDecision(j, 0.0, 500.0, policy).shed);
}
