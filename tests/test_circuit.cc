/**
 * @file
 * Unit tests for src/circuit: IR validation, metrics, QASM export,
 * transpilation correctness (checked against native multi-controlled
 * gates on the dense simulator, up to global phase), and the peephole
 * optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "circuit/circuit.h"
#include "circuit/optimize.h"
#include "circuit/transpile.h"
#include "qsim/statevector.h"

namespace rasengan::circuit {
namespace {

using qsim::Complex;
using qsim::Statevector;

constexpr double kPi = std::numbers::pi;

/** Check two circuits equal as unitaries (up to global phase) by applying
 *  them to every basis state of an n-qubit register and comparing columns
 *  with a consistent phase.  @p input_bits restricts the quantified inputs
 *  to the low wires (ancilla wires above them must start in |0>, which is
 *  the transpiler's contract). */
void
expectEquivalent(const Circuit &a, const Circuit &b, int n,
                 int input_bits = -1)
{
    ASSERT_LE(a.numQubits(), n);
    ASSERT_LE(b.numQubits(), n);
    if (input_bits < 0)
        input_bits = n;
    Complex phase{0.0, 0.0};
    bool phase_set = false;
    for (uint64_t idx = 0; idx < (uint64_t{1} << input_bits); ++idx) {
        Statevector sa(n, BitVec::fromIndex(idx));
        Statevector sb(n, BitVec::fromIndex(idx));
        sa.applyCircuit(a);
        sb.applyCircuit(b);
        // Columns must match up to ONE global phase shared by all.
        for (uint64_t row = 0; row < sa.dimension(); ++row) {
            Complex va = sa.amplitudes()[row];
            Complex vb = sb.amplitudes()[row];
            if (!phase_set && std::abs(vb) > 1e-9) {
                phase = va / vb;
                phase_set = true;
            }
            if (phase_set) {
                EXPECT_NEAR(std::abs(va - phase * vb), 0.0, 1e-9)
                    << "column " << idx << " row " << row;
            }
        }
    }
    EXPECT_TRUE(phase_set);
    EXPECT_NEAR(std::abs(phase), 1.0, 1e-9);
}

TEST(Circuit, BuilderCountsAndKinds)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(2, 0.5);
    c.mcp({0, 1}, 2, 0.3);
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.countKind(GateKind::H), 1);
    EXPECT_EQ(c.countCx(), 1);
    EXPECT_EQ(c.countKind(GateKind::MCP), 1);
    EXPECT_EQ(c.countOps(), 4);
}

TEST(Circuit, McpWithFewControlsLowersToSimplerGates)
{
    Circuit c(3);
    c.mcp({}, 0, 0.4);
    c.mcp({1}, 0, 0.4);
    c.mcx({}, 2);
    c.mcx({1}, 2);
    EXPECT_EQ(c.countKind(GateKind::P), 1);
    EXPECT_EQ(c.countKind(GateKind::CP), 1);
    EXPECT_EQ(c.countKind(GateKind::X), 1);
    EXPECT_EQ(c.countCx(), 1);
    EXPECT_EQ(c.countKind(GateKind::MCP), 0);
    EXPECT_EQ(c.countKind(GateKind::MCX), 0);
}

TEST(Circuit, DepthLevelScheduling)
{
    Circuit c(3);
    c.h(0);     // level 1 on q0
    c.h(1);     // level 1 on q1 (parallel)
    c.cx(0, 1); // level 2
    c.h(2);     // level 1 on q2
    EXPECT_EQ(c.depth(), 2);
    EXPECT_EQ(c.twoQubitDepth(), 1);
}

TEST(Circuit, BarrierAlignsWires)
{
    Circuit c(2);
    c.h(0);
    c.barrier();
    c.h(1); // would be level 1 without the barrier
    EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, EnsureQubitsGrows)
{
    Circuit c(1);
    c.ensureQubits(4);
    EXPECT_EQ(c.numQubits(), 4);
    c.ensureQubits(2); // never shrinks
    EXPECT_EQ(c.numQubits(), 4);
}

TEST(Circuit, AppendCircuitMergesGates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
}

TEST(Circuit, QasmContainsHeaderAndGates)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.5);
    std::string qasm = c.toQasm();
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
}

TEST(Transpile, ToffoliMatchesNativeCcx)
{
    Circuit toffoli(3);
    appendToffoli(toffoli, 0, 1, 2);
    Circuit native(3);
    native.mcx({0, 1}, 2);
    expectEquivalent(toffoli, native, 3);
}

TEST(Transpile, CpLoweringMatchesNative)
{
    Circuit native(2);
    native.cp(0, 1, 0.77);
    Circuit lowered = transpile(native, {.mode = TranspileMode::GrayCode,
                                         .lowerToCx = true});
    EXPECT_EQ(lowered.countKind(GateKind::CP), 0);
    expectEquivalent(lowered, native, 2);
}

TEST(Transpile, SwapLoweringMatchesNative)
{
    Circuit native(2);
    native.swap(0, 1);
    Circuit lowered = transpile(native, {.mode = TranspileMode::GrayCode,
                                         .lowerToCx = true});
    EXPECT_EQ(lowered.countCx(), 3);
    expectEquivalent(lowered, native, 2);
}

class McpLowering : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(McpLowering, GrayCodeMatchesNative)
{
    auto [controls, theta] = GetParam();
    std::vector<int> cs;
    for (int i = 0; i < controls; ++i)
        cs.push_back(i);
    Circuit native(controls + 1);
    native.mcp(cs, controls, theta);
    Circuit lowered = transpile(native, {.mode = TranspileMode::GrayCode,
                                         .lowerToCx = true});
    EXPECT_EQ(lowered.countKind(GateKind::MCP), 0);
    expectEquivalent(lowered, native, controls + 1);
}

TEST_P(McpLowering, AncillaLadderMatchesNative)
{
    auto [controls, theta] = GetParam();
    std::vector<int> cs;
    for (int i = 0; i < controls; ++i)
        cs.push_back(i);
    Circuit native(controls + 1);
    native.mcp(cs, controls, theta);
    Circuit lowered = transpile(native, {.mode = TranspileMode::AncillaLadder,
                                         .lowerToCx = true});
    EXPECT_EQ(lowered.countKind(GateKind::MCP), 0);
    // Compare on the padded register: ancillas start in and return to
    // |0>, so only data-qubit inputs are quantified.
    int n = lowered.numQubits();
    Circuit padded(n);
    padded.mcp(cs, controls, theta);
    expectEquivalent(lowered, padded, n, controls + 1);
}

INSTANTIATE_TEST_SUITE_P(
    ControlsAndAngles, McpLowering,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(0.3, 1.1, kPi, -0.7)));

TEST(Transpile, McxLoweringMatchesNative)
{
    for (int controls : {2, 3}) {
        std::vector<int> cs;
        for (int i = 0; i < controls; ++i)
            cs.push_back(i);
        Circuit native(controls + 1);
        native.mcx(cs, controls);
        for (TranspileMode mode :
             {TranspileMode::GrayCode, TranspileMode::AncillaLadder}) {
            Circuit lowered =
                transpile(native, {.mode = mode, .lowerToCx = true});
            int n = lowered.numQubits();
            Circuit padded(n);
            padded.mcx(cs, controls);
            expectEquivalent(lowered, padded, n, controls + 1);
        }
    }
}

TEST(Transpile, AncillaLadderCxCountIsLinear)
{
    auto cx_for = [](int controls) {
        std::vector<int> cs;
        for (int i = 0; i < controls; ++i)
            cs.push_back(i);
        Circuit native(controls + 1);
        native.mcp(cs, controls, 0.5);
        return transpile(native, {.mode = TranspileMode::AncillaLadder,
                                  .lowerToCx = true})
            .countCx();
    };
    int c4 = cx_for(4);
    int c5 = cx_for(5);
    int c6 = cx_for(6);
    // Linear growth: constant increments per extra control.
    EXPECT_EQ(c5 - c4, c6 - c5);
}

TEST(Transpile, PaperCostModel)
{
    EXPECT_EQ(paperTransitionCxCost(1), 34);
    EXPECT_EQ(paperTransitionCxCost(5), 170);
}

TEST(Optimize, CancelsSelfInversePairs)
{
    Circuit c(2);
    c.x(0);
    c.x(0);
    c.h(1);
    c.h(1);
    c.cx(0, 1);
    c.cx(0, 1);
    Circuit out = optimizeCircuit(c);
    EXPECT_EQ(out.size(), 0u);
}

TEST(Optimize, DoesNotCancelAcrossBlocker)
{
    Circuit c(2);
    c.x(0);
    c.cx(0, 1); // touches q0: blocks the X-X cancellation
    c.x(0);
    Circuit out = optimizeCircuit(c);
    EXPECT_EQ(out.size(), 3u);
}

TEST(Optimize, MergesRotations)
{
    Circuit c(1);
    c.rz(0, 0.3);
    c.rz(0, 0.4);
    Circuit out = optimizeCircuit(c);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].param, 0.7, 1e-12);
}

TEST(Optimize, MergedZeroRotationVanishes)
{
    Circuit c(1);
    c.rx(0, 0.5);
    c.rx(0, -0.5);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

TEST(Optimize, MergesSymmetricCp)
{
    Circuit c(2);
    c.cp(0, 1, 0.2);
    c.cp(1, 0, 0.3); // CP is diagonal: same unordered pair merges
    Circuit out = optimizeCircuit(c);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gates()[0].param, 0.5, 1e-12);
}

TEST(Optimize, PreservesSemantics)
{
    Circuit c(3);
    c.h(0);
    c.x(1);
    c.x(1);
    c.cx(0, 1);
    c.rz(1, 0.4);
    c.rz(1, 0.6);
    c.cx(0, 1);
    c.cx(0, 2);
    Circuit out = optimizeCircuit(c);
    EXPECT_LT(out.size(), c.size());
    expectEquivalent(out, c, 3);
}

TEST(Optimize, DropsExplicitIdentityRotations)
{
    Circuit c(1);
    c.p(0, 0.0);
    c.rz(0, 0.0);
    EXPECT_EQ(optimizeCircuit(c).size(), 0u);
}

} // namespace
} // namespace rasengan::circuit
