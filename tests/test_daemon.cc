/**
 * @file
 * Serve daemon tests: journal durability and replay (including torn and
 * malformed crash debris), compaction, live socket serving with HTTP
 * probes, deadline-unmeetable shedding, kill-and-replay determinism,
 * and drain-under-load with journaled resume.
 *
 * The daemon tests drive a real Daemon over a real unix socket; the
 * "crash" cases synthesize the post-SIGKILL journal state directly (an
 * accepted record with no terminal record, a torn trailing line) rather
 * than killing a process, which keeps them deterministic and fast.
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/daemon.h"
#include "serve/job.h"
#include "serve/journal.h"
#include "serve/jsonl.h"

using namespace rasengan;
using namespace rasengan::serve;

namespace {

std::string
uniqueDir(const std::string &tag)
{
    static int counter = 0;
    std::string dir = ::testing::TempDir() + "rasengan_daemon_" + tag +
                      "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter++);
    ::mkdir(dir.c_str(), 0700);
    return dir;
}

/** Spin until @p pred holds, failing the test after @p timeout. */
bool
waitFor(const std::function<bool()> &pred,
        std::chrono::seconds timeout = std::chrono::seconds(120))
{
    auto end = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < end) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
}

/** Minimal blocking unix-socket client for the daemon's JSONL wire. */
class UnixClient
{
  public:
    explicit UnixClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~UnixClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    bool connected() const { return fd_ >= 0; }

    bool sendLine(const std::string &line)
    {
        std::string framed = line + "\n";
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n =
                ::send(fd_, framed.data() + off, framed.size() - off, 0);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read one newline-terminated line (60 s budget). */
    bool recvLine(std::string &out)
    {
        auto end =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        while (std::chrono::steady_clock::now() < end) {
            size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                out = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return true;
            }
            pollfd pfd{fd_, POLLIN, 0};
            if (::poll(&pfd, 1, 250) <= 0)
                continue;
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false; // peer closed mid-line
            buffer_.append(chunk, static_cast<size_t>(n));
        }
        return false;
    }

    /** Send an HTTP probe and read the whole response to EOF. */
    std::string httpGet(const std::string &path)
    {
        sendLine("GET " + path + " HTTP/1.0\r");
        std::string response = buffer_;
        char chunk[4096];
        ssize_t n;
        while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0)
            response.append(chunk, static_cast<size_t>(n));
        return response;
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

JobRequest
makeRequest(const std::string &id, int iterations = 3)
{
    JobRequest req;
    req.id = id;
    req.benchmark = "F1";
    req.iterations = iterations;
    return req;
}

/** Result lines of a JSONL file keyed by their "id" field. */
std::map<std::string, std::string>
resultsById(const std::string &path)
{
    std::map<std::string, std::string> byId;
    std::ifstream in(path);
    LineReader reader(in);
    LineReader::Line line;
    while (reader.next(line)) {
        if (!line.ok)
            continue;
        JsonParseResult parsed = parseFlatJson(line.text);
        if (parsed.ok)
            byId[parsed.object["id"].str] = line.text;
    }
    return byId;
}

} // namespace

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

TEST(Journal, RoundTripsStatesAndFindsPendingJobs)
{
    const std::string path = uniqueDir("journal") + "/wal.jsonl";
    Journal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, 1, &error)) << error;

    uint64_t a = journal.appendAccepted(makeRequest("a"), "fp-a");
    uint64_t b = journal.appendAccepted(makeRequest("b"), "fp-b");
    uint64_t c = journal.appendAccepted(makeRequest("c"), "fp-c");
    uint64_t d = journal.appendAccepted(makeRequest("d"), "fp-d");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(d, 4u);
    journal.appendRunning(a, "a");
    journal.appendDone(a, "a", "{\"id\":\"a\",\"ok\":true}");
    journal.appendRunning(b, "b"); // crashed mid-run: no terminal
    journal.appendShed(c, "c", "deadline-unmeetable", "too late");
    journal.close();

    JournalReplay replay = Journal::replay(path);
    ASSERT_TRUE(replay.ok) << replay.error;
    ASSERT_EQ(replay.jobs.size(), 4u);
    EXPECT_EQ(replay.nextSeq, 5u);
    EXPECT_EQ(replay.malformedLines, 0u);

    EXPECT_TRUE(replay.jobs[0].done);
    EXPECT_EQ(replay.jobs[0].resultLine, "{\"id\":\"a\",\"ok\":true}");
    EXPECT_TRUE(replay.jobs[1].started);
    EXPECT_FALSE(replay.jobs[1].done);
    EXPECT_TRUE(replay.jobs[2].shed);
    EXPECT_EQ(replay.jobs[3].fingerprint, "fp-d");

    // Pending = no terminal record: the mid-run crash victim and the
    // never-started job, in accepted order.
    std::vector<const JournalJob *> pending = replay.pending();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0]->id, "b");
    EXPECT_EQ(pending[1]->id, "d");
}

TEST(Journal, ReplayToleratesCrashDebris)
{
    const std::string path = uniqueDir("debris") + "/wal.jsonl";
    Journal journal;
    ASSERT_TRUE(journal.open(path, 1, nullptr));
    journal.appendAccepted(makeRequest("ok"), "fp");
    journal.close();

    // Crash debris: a malformed line, a transition referencing a seq
    // that was never accepted, and a torn final record (no newline).
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("not json at all\n", f);
    std::fputs("{\"type\":\"running\",\"seq\":99,\"id\":\"ghost\"}\n", f);
    std::fputs("{\"type\":\"done\",\"se", f); // torn mid-append
    std::fclose(f);

    JournalReplay replay = Journal::replay(path);
    ASSERT_TRUE(replay.ok) << replay.error; // debris is never fatal
    ASSERT_EQ(replay.jobs.size(), 1u);
    EXPECT_EQ(replay.jobs[0].id, "ok");
    EXPECT_EQ(replay.malformedLines, 2u); // bad JSON + dangling seq
    EXPECT_EQ(replay.truncatedLines, 1u);
    // Even a dangling record advances the counter: a seq gap is
    // harmless, reusing a seq that appears anywhere in the file is not.
    EXPECT_EQ(replay.nextSeq, 100u);
    EXPECT_EQ(replay.pending().size(), 1u);
}

TEST(Journal, MissingFileIsACleanColdStart)
{
    JournalReplay replay =
        Journal::replay(uniqueDir("cold") + "/never_written.jsonl");
    EXPECT_TRUE(replay.ok);
    EXPECT_TRUE(replay.jobs.empty());
    EXPECT_EQ(replay.nextSeq, 1u);
}

TEST(Journal, CompactKeepsOnlyPendingRecords)
{
    const std::string path = uniqueDir("compact") + "/wal.jsonl";
    Journal journal;
    ASSERT_TRUE(journal.open(path, 1, nullptr));
    uint64_t done = journal.appendAccepted(makeRequest("done"), "fp1");
    journal.appendDone(done, "done", "{\"id\":\"done\",\"ok\":true}");
    uint64_t shed = journal.appendAccepted(makeRequest("shed"), "fp2");
    journal.appendShed(shed, "shed", "admission", "queue full");
    journal.appendAccepted(makeRequest("pending"), "fp3");
    journal.close();

    std::string error;
    ASSERT_TRUE(Journal::compact(path, &error)) << error;

    JournalReplay replay = Journal::replay(path);
    ASSERT_TRUE(replay.ok);
    ASSERT_EQ(replay.jobs.size(), 1u);
    EXPECT_EQ(replay.jobs[0].id, "pending");
    EXPECT_EQ(replay.jobs[0].fingerprint, "fp3");
    // Sequence numbering survives compaction: the next incarnation must
    // not reuse seq 1-3.
    EXPECT_EQ(replay.nextSeq, 4u);
}

// ---------------------------------------------------------------------
// Daemon over a live unix socket
// ---------------------------------------------------------------------

TEST(Daemon, ServesJobsAndProbesOverAUnixSocket)
{
    const std::string dir = uniqueDir("serve");
    DaemonOptions options;
    options.listen = "unix:" + dir + "/d.sock";
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    UnixClient client(dir + "/d.sock");
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendLine(writeRequest(makeRequest("sock-1"))));
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    JsonParseResult parsed = parseFlatJson(line);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.object["id"].str, "sock-1");
    EXPECT_TRUE(parsed.object["ok"].flag);

    // A garbage line gets a structured rejection, not a dropped
    // connection.
    ASSERT_TRUE(client.sendLine("{\"benchmark\":42}"));
    ASSERT_TRUE(client.recvLine(line));
    EXPECT_NE(line.find("\"accepted\":false"), std::string::npos);

    // HTTP probes ride the same socket on fresh connections.
    UnixClient health(dir + "/d.sock");
    EXPECT_NE(health.httpGet("/healthz").find("200"), std::string::npos);
    UnixClient ready(dir + "/d.sock");
    EXPECT_NE(ready.httpGet("/readyz").find("200"), std::string::npos);
    UnixClient metrics(dir + "/d.sock");
    std::string prom = metrics.httpGet("/metrics");
    EXPECT_NE(prom.find("serve_daemon_queue_depth"), std::string::npos);

    daemon.stop();
    DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(Daemon, ShedsDeadlineUnmeetableJobsAtAcceptTime)
{
    const std::string dir = uniqueDir("shed");
    DaemonOptions options;
    options.listen = "unix:" + dir + "/d.sock";
    // 1e-3 cost units/second: every deadlined job is hopeless.
    options.slo.costUnitsPerSecond = 1e-3;
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    UnixClient client(dir + "/d.sock");
    ASSERT_TRUE(client.connected());
    JobRequest doomed = makeRequest("doomed");
    doomed.deadlineMs = 50.0;
    ASSERT_TRUE(client.sendLine(writeRequest(doomed)));
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    EXPECT_NE(line.find("\"accepted\":false"), std::string::npos);
    EXPECT_NE(line.find("deadline-unmeetable"), std::string::npos);

    // No deadline, no shed: the predictor only guards deadlines.
    ASSERT_TRUE(client.sendLine(writeRequest(makeRequest("patient"))));
    ASSERT_TRUE(client.recvLine(line));
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

    daemon.stop();
    EXPECT_EQ(daemon.stats().shed, 1u);
    EXPECT_EQ(daemon.stats().completed, 1u);
}

TEST(Daemon, ReplayAfterCrashReproducesResultsByteForByte)
{
    // Clean reference run: three jobs straight through one daemon.
    const std::string cleanDir = uniqueDir("clean");
    DaemonOptions clean;
    clean.listen = "unix:" + cleanDir + "/d.sock";
    clean.journalPath = cleanDir + "/wal.jsonl";
    clean.resultsPath = cleanDir + "/results.jsonl";
    std::vector<JobRequest> requests = {
        makeRequest("r-1"), makeRequest("r-2"), makeRequest("r-3")};
    {
        Daemon daemon(clean);
        std::string error;
        ASSERT_TRUE(daemon.start(&error)) << error;
        UnixClient client(cleanDir + "/d.sock");
        ASSERT_TRUE(client.connected());
        std::string line;
        for (const JobRequest &req : requests) {
            ASSERT_TRUE(client.sendLine(writeRequest(req)));
            ASSERT_TRUE(client.recvLine(line));
        }
        daemon.stop();
        ASSERT_EQ(daemon.stats().completed, 3u);
    }
    std::map<std::string, std::string> reference =
        resultsById(clean.resultsPath);
    ASSERT_EQ(reference.size(), 3u);

    // Synthesize what a SIGKILL leaves behind: r-1 finished, r-2 died
    // mid-run, r-3 never started, and the final append tore.
    const std::string crashDir = uniqueDir("crash");
    const std::string wal = crashDir + "/wal.jsonl";
    {
        Journal journal;
        ASSERT_TRUE(journal.open(wal, 1, nullptr));
        uint64_t s1 = journal.appendAccepted(requests[0], "fp-1");
        journal.appendRunning(s1, "r-1");
        journal.appendDone(s1, "r-1", reference["r-1"]);
        uint64_t s2 = journal.appendAccepted(requests[1], "fp-2");
        journal.appendRunning(s2, "r-2");
        journal.appendAccepted(requests[2], "fp-3");
        journal.close();
        std::FILE *f = std::fopen(wal.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"type\":\"done\",\"seq\":2,\"id\":\"r-", f);
        std::fclose(f);
    }

    // Restart on the crashed journal: only r-2 and r-3 re-run, with no
    // client attached, and their result bytes match the clean run.
    DaemonOptions recover;
    recover.listen = "unix:" + crashDir + "/d.sock";
    recover.journalPath = wal;
    recover.resultsPath = crashDir + "/results.jsonl";
    Daemon daemon(recover);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    ASSERT_TRUE(waitFor([&] { return daemon.stats().completed >= 2; }));
    daemon.stop();
    EXPECT_EQ(daemon.stats().replayed, 2u);
    EXPECT_EQ(daemon.stats().completed, 2u);

    std::map<std::string, std::string> replayed =
        resultsById(recover.resultsPath);
    ASSERT_EQ(replayed.size(), 2u);
    EXPECT_EQ(replayed["r-2"], reference["r-2"]);
    EXPECT_EQ(replayed["r-3"], reference["r-3"]);

    // The journal now carries terminal records for every job.
    JournalReplay after = Journal::replay(wal);
    ASSERT_TRUE(after.ok);
    EXPECT_TRUE(after.pending().empty());
}

TEST(Daemon, DrainUnderLoadResumesFromTheJournal)
{
    // Clean reference run for the byte comparison.
    const std::string refDir = uniqueDir("drainref");
    std::vector<JobRequest> requests;
    for (int i = 1; i <= 3; ++i)
        requests.push_back(
            makeRequest("d-" + std::to_string(i), /*iterations=*/6));
    DaemonOptions ref;
    ref.listen = "unix:" + refDir + "/d.sock";
    ref.resultsPath = refDir + "/results.jsonl";
    {
        Daemon daemon(ref);
        std::string error;
        ASSERT_TRUE(daemon.start(&error)) << error;
        UnixClient client(refDir + "/d.sock");
        ASSERT_TRUE(client.connected());
        std::string line;
        for (const JobRequest &req : requests) {
            ASSERT_TRUE(client.sendLine(writeRequest(req)));
            ASSERT_TRUE(client.recvLine(line));
        }
        daemon.stop();
    }
    std::map<std::string, std::string> reference =
        resultsById(ref.resultsPath);
    ASSERT_EQ(reference.size(), 3u);

    // Load up a journaled daemon and drain as soon as everything is
    // accepted: whatever is mid-flight gets checkpointed, whatever is
    // queued stays journaled as pending.
    const std::string dir = uniqueDir("drain");
    DaemonOptions options;
    options.listen = "unix:" + dir + "/d.sock";
    options.journalPath = dir + "/wal.jsonl";
    options.resultsPath = dir + "/results.jsonl";
    options.checkpointDir = dir;
    uint64_t firstCompleted = 0;
    {
        Daemon daemon(options);
        std::string error;
        ASSERT_TRUE(daemon.start(&error)) << error;
        UnixClient client(dir + "/d.sock");
        ASSERT_TRUE(client.connected());
        for (const JobRequest &req : requests)
            ASSERT_TRUE(client.sendLine(writeRequest(req)));
        ASSERT_TRUE(
            waitFor([&] { return daemon.stats().accepted >= 3; }));
        daemon.requestDrain();
        daemon.wait();
        DaemonStats stats = daemon.stats();
        firstCompleted = stats.completed;
        // Every accepted job is accounted for: finished, checkpointed
        // mid-run, or still queued in the journal.
        EXPECT_LE(stats.completed + stats.drainCancelled, 3u);
    }

    // The next incarnation picks up exactly the unfinished jobs.
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    const uint64_t remaining = 3 - firstCompleted;
    ASSERT_TRUE(waitFor(
        [&] { return daemon.stats().completed >= remaining; }));
    daemon.stop();
    EXPECT_EQ(daemon.stats().replayed, remaining);

    // Both incarnations appended to the same results file: exactly one
    // line per job, byte-identical to the uninterrupted run.
    std::map<std::string, std::string> combined =
        resultsById(options.resultsPath);
    ASSERT_EQ(combined.size(), 3u);
    for (const JobRequest &req : requests)
        EXPECT_EQ(combined[req.id], reference[req.id]) << req.id;

    JournalReplay after = Journal::replay(options.journalPath);
    ASSERT_TRUE(after.ok);
    EXPECT_TRUE(after.pending().empty());
}

// ---------------------------------------------------------------------
// Admission/SLO policy files
// ---------------------------------------------------------------------

TEST(Policy, PartialFileOverridesOnlyNamedKeys)
{
    DaemonPolicy base;
    base.limits.maxQubits = 20;
    base.limits.maxShotsPerJob = 4096;
    base.slo.costUnitsPerSecond = 2e6;

    PolicyParseResult parsed = parsePolicyText(
        "{\"max_qubits\":12,\"cost_rate\":5e5,\"shed_margin\":0.25}",
        base);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.policy.limits.maxQubits, 12);
    EXPECT_DOUBLE_EQ(parsed.policy.slo.costUnitsPerSecond, 5e5);
    EXPECT_DOUBLE_EQ(parsed.policy.slo.shedMargin, 0.25);
    // Unnamed keys keep the baseline.
    EXPECT_EQ(parsed.policy.limits.maxShotsPerJob, 4096u);
}

TEST(Policy, RejectsUnknownKeysBadTypesAndBadFiles)
{
    DaemonPolicy base;
    EXPECT_FALSE(parsePolicyText("{\"max_qubitz\":12}", base).ok);
    EXPECT_FALSE(parsePolicyText("{\"max_qubits\":\"ten\"}", base).ok);
    EXPECT_FALSE(parsePolicyText("{\"max_shots\":-1}", base).ok);
    EXPECT_FALSE(parsePolicyText("not json", base).ok);

    // A missing file is an error, never a silent no-op.
    PolicyParseResult missing =
        loadPolicyFile("/nonexistent/rasengan-policy.json", base);
    EXPECT_FALSE(missing.ok);

    const std::string dir = uniqueDir("policy");
    {
        std::ofstream out(dir + "/p.json");
        out << "{\"max_qubits\":15}\n";
    }
    PolicyParseResult loaded = loadPolicyFile(dir + "/p.json", base);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.policy.limits.maxQubits, 15);
}

TEST(Daemon, ReloadAppliesPolicyFileAndSurvivesDefectiveOne)
{
    const std::string dir = uniqueDir("reload");
    const std::string policyPath = dir + "/policy.json";
    {
        std::ofstream out(policyPath);
        out << "{\"max_qubits\":12,\"max_shots\":2048}\n";
    }

    DaemonOptions options;
    options.listen = "unix:" + dir + "/d.sock";
    options.policyPath = policyPath;
    Daemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // The start-time load applied the file without counting a reload.
    EXPECT_EQ(daemon.policySnapshot().limits.maxQubits, 12);
    EXPECT_EQ(daemon.policySnapshot().limits.maxShotsPerJob, 2048u);
    EXPECT_EQ(daemon.policyReloads(), 0u);

    // Retune: only the named key moves, reload-derived keys persist.
    {
        std::ofstream out(policyPath);
        out << "{\"max_qubits\":14,\"cost_rate\":7e5}\n";
    }
    daemon.requestReload();
    ASSERT_TRUE(waitFor([&] { return daemon.policyReloads() == 1; }));
    DaemonPolicy live = daemon.policySnapshot();
    EXPECT_EQ(live.limits.maxQubits, 14);
    EXPECT_EQ(live.limits.maxShotsPerJob, 2048u); // kept from start
    EXPECT_DOUBLE_EQ(live.slo.costUnitsPerSecond, 7e5);

    // A defective file at reload time must keep the running policy.
    {
        std::ofstream out(policyPath);
        out << "{\"max_qubits\":\"garbage\"\n";
    }
    daemon.requestReload();
    // The reload is processed on the IO thread before it serves the
    // next request, so a job round trip bounds the wait.
    UnixClient client(dir + "/d.sock");
    ASSERT_TRUE(client.connected());
    std::string line;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(
            client.sendLine(writeRequest(makeRequest("p-" +
                                                     std::to_string(i)))));
        ASSERT_TRUE(client.recvLine(line));
    }
    EXPECT_EQ(daemon.policyReloads(), 1u); // failed reload not counted
    live = daemon.policySnapshot();
    EXPECT_EQ(live.limits.maxQubits, 14); // unchanged
    EXPECT_DOUBLE_EQ(live.slo.costUnitsPerSecond, 7e5);

    // The live policy actually gates admission: a job over the shots
    // cap carried through both reloads is rejected.
    JobRequest big = makeRequest("too-big");
    big.shots = 4096;
    big.execution = "sampled";
    ASSERT_TRUE(client.sendLine(writeRequest(big)));
    ASSERT_TRUE(client.recvLine(line));
    EXPECT_NE(line.find("\"accepted\":false"), std::string::npos);

    daemon.stop();

    // A daemon started on the defective file refuses to come up.
    Daemon broken(options);
    EXPECT_FALSE(broken.start(&error));
    EXPECT_FALSE(error.empty());
}
