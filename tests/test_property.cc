/**
 * @file
 * Randomized property tests sweeping seeds across module boundaries:
 * random transition vectors, random circuits through the optimizer and
 * transpiler, randomly planted constraint systems through the whole
 * Rasengan pipeline, and random objectives through the QUBO <-> Ising
 * mapping.  Each property is checked for a sweep of seeds via TEST_P.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "baselines/qubo.h"
#include "circuit/qasm.h"
#include "circuit/optimize.h"
#include "circuit/transpile.h"
#include "core/basis.h"
#include "core/chain.h"
#include "core/rasengan.h"
#include "device/routing.h"
#include "linalg/solve.h"
#include "problems/metrics.h"
#include "problems/io.h"
#include "problems/suite.h"
#include "qsim/statevector.h"

namespace rasengan {
namespace {

class PropertySweep : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Rng rng{GetParam() * 7919 + 13};
};

/** Random transition vector over n variables with support size k. */
linalg::IntVec
randomTransition(Rng &rng, int n, int k)
{
    linalg::IntVec u(n, 0);
    std::vector<int> qubits(n);
    for (int i = 0; i < n; ++i)
        qubits[i] = i;
    rng.shuffle(qubits);
    for (int i = 0; i < k; ++i)
        u[qubits[i]] = rng.bernoulli(0.5) ? 1 : -1;
    return u;
}

TEST_P(PropertySweep, RandomTransitionCircuitMatchesSparse)
{
    const int n = 5;
    const int k = 1 + static_cast<int>(rng.uniformInt(0, 3));
    linalg::IntVec u = randomTransition(rng, n, k);
    double t = rng.uniformReal(-1.5, 1.5);

    core::TransitionHamiltonian tau(u);
    circuit::Circuit circ = tau.toCircuit(n, t);
    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        qsim::SparseState sparse(n, x);
        tau.applyTo(sparse, t);
        qsim::Statevector dense(n, x);
        dense.applyCircuit(circ);
        for (uint64_t row = 0; row < (uint64_t{1} << n); ++row) {
            BitVec y = BitVec::fromIndex(row);
            ASSERT_NEAR(std::abs(dense.amplitude(y) - sparse.amplitude(y)),
                        0.0, 1e-9)
                << "seed " << GetParam() << " x " << idx;
        }
    }
}

/** A random circuit from the gate set the optimizer understands. */
circuit::Circuit
randomCircuit(Rng &rng, int n, int gates)
{
    circuit::Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        switch (rng.uniformInt(0, 6)) {
          case 0: c.h(static_cast<int>(rng.uniformInt(0, n - 1))); break;
          case 1: c.x(static_cast<int>(rng.uniformInt(0, n - 1))); break;
          case 2:
            c.rz(static_cast<int>(rng.uniformInt(0, n - 1)),
                 rng.uniformReal(-1, 1));
            break;
          case 3:
            c.rx(static_cast<int>(rng.uniformInt(0, n - 1)),
                 rng.uniformReal(-1, 1));
            break;
          case 4: {
            int a = static_cast<int>(rng.uniformInt(0, n - 1));
            int b = static_cast<int>(rng.uniformInt(0, n - 2));
            if (b >= a)
                ++b;
            c.cx(a, b);
            break;
          }
          case 5: {
            int a = static_cast<int>(rng.uniformInt(0, n - 1));
            int b = static_cast<int>(rng.uniformInt(0, n - 2));
            if (b >= a)
                ++b;
            c.cp(a, b, rng.uniformReal(-1, 1));
            break;
          }
          default:
            c.p(static_cast<int>(rng.uniformInt(0, n - 1)),
                rng.uniformReal(-1, 1));
            break;
        }
    }
    return c;
}

double
overlapAfter(const circuit::Circuit &a, const circuit::Circuit &b, int n,
             uint64_t idx)
{
    qsim::Statevector sa(n, BitVec::fromIndex(idx));
    qsim::Statevector sb(n, BitVec::fromIndex(idx));
    sa.applyCircuit(a);
    sb.applyCircuit(b);
    return std::abs(sa.inner(sb));
}

TEST_P(PropertySweep, OptimizerPreservesRandomCircuits)
{
    const int n = 4;
    circuit::Circuit c = randomCircuit(rng, n, 40);
    circuit::Circuit optimized = circuit::optimizeCircuit(c);
    EXPECT_LE(optimized.size(), c.size());
    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx)
        ASSERT_NEAR(overlapAfter(c, optimized, n, idx), 1.0, 1e-9)
            << "seed " << GetParam() << " basis " << idx;
}

TEST_P(PropertySweep, RoutedRandomCircuitsPreserveProbabilities)
{
    const int n = 4;
    circuit::Circuit c = randomCircuit(rng, n, 25);
    device::CouplingMap map = device::CouplingMap::linear(n);
    for (bool lookahead : {false, true}) {
        device::RoutingResult r =
            lookahead ? device::routeLookahead(c, map, false)
                      : device::route(c, map, false);
        qsim::Statevector logical(n);
        logical.applyCircuit(c);
        qsim::Statevector physical(n);
        physical.applyCircuit(r.routed);
        for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
            BitVec l = BitVec::fromIndex(idx);
            BitVec p;
            for (int q = 0; q < n; ++q)
                if (l.get(q))
                    p.set(r.finalLayout[q]);
            ASSERT_NEAR(logical.probability(l), physical.probability(p),
                        1e-9)
                << "seed " << GetParam() << " lookahead " << lookahead;
        }
    }
}

/** Random planted-feasible constraint system. */
struct PlantedSystem
{
    linalg::IntMat c;
    linalg::IntVec b;
    BitVec x0;
};

PlantedSystem
plantSystem(Rng &rng, int n, int rows)
{
    PlantedSystem sys{linalg::IntMat(rows, n), linalg::IntVec(rows), {}};
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.5))
            sys.x0.set(i);
    for (int r = 0; r < rows; ++r) {
        int64_t acc = 0;
        for (int i = 0; i < n; ++i) {
            int64_t coeff = rng.uniformInt(-1, 1);
            sys.c.at(r, i) = coeff;
            if (sys.x0.get(i))
                acc += coeff;
        }
        sys.b[r] = acc; // b = C x0: x0 is feasible by construction
    }
    return sys;
}

TEST_P(PropertySweep, PipelineOnPlantedRandomSystems)
{
    const int n = 7;
    PlantedSystem sys = plantSystem(rng, n, 3);

    problems::QuadraticObjective f(n);
    for (int i = 0; i < n; ++i)
        f.addLinear(i, static_cast<double>(rng.uniformInt(1, 9)));
    f.addConstant(1.0);
    problems::Problem p("planted", "RAND", sys.c, sys.b, f, sys.x0);

    // The walk stays inside the feasible set and the executable vector
    // set covers it entirely.
    auto vectors = core::transitionVectors(p);
    auto transitions = core::makeTransitions(vectors);
    core::Chain chain = core::buildChain(transitions, p.trivialFeasible());
    EXPECT_EQ(chain.reachableCount, p.feasibleCount())
        << "seed " << GetParam();

    // End-to-end solve keeps feasibility and beats the worst solution.
    core::RasenganOptions options;
    options.maxIterations = 60;
    options.seed = GetParam();
    core::RasenganSolver solver(p, options);
    core::RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed) << "seed " << GetParam();
    EXPECT_TRUE(p.isFeasible(res.solution));
    EXPECT_LE(res.objectiveValue, p.worstFeasibleValue() + 1e-9);
}

TEST_P(PropertySweep, IsingMatchesRandomObjectives)
{
    const int n = 5;
    problems::QuadraticObjective f(n);
    f.addConstant(rng.uniformReal(-2, 2));
    for (int i = 0; i < n; ++i)
        f.addLinear(i, rng.uniformReal(-3, 3));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.bernoulli(0.4))
                f.addQuadratic(i, j, rng.uniformReal(-2, 2));
    f.normalize();

    qsim::PauliHamiltonian h = baselines::isingHamiltonian(f, n);
    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        ASSERT_NEAR(h.diagonalValue(x), f.eval(x), 1e-9)
            << "seed " << GetParam() << " basis " << idx;
    }
}

TEST_P(PropertySweep, PenaltyQuboNeverRewardsViolations)
{
    // On a random planted system, every infeasible assignment must score
    // strictly worse than the worst feasible one under the default
    // penalty (the property the ARG metric relies on).
    const int n = 6;
    PlantedSystem sys = plantSystem(rng, n, 2);
    problems::QuadraticObjective f(n);
    for (int i = 0; i < n; ++i)
        f.addLinear(i, static_cast<double>(rng.uniformInt(1, 5)));
    f.addConstant(1.0);
    problems::Problem p("planted-qubo", "RAND", sys.c, sys.b, f, sys.x0);

    double lambda = problems::defaultPenaltyLambda(p);
    double worst_feasible = p.worstFeasibleValue();
    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        if (p.isFeasible(x))
            continue;
        ASSERT_GT(p.penalizedObjective(x, lambda), worst_feasible)
            << "seed " << GetParam() << " basis " << idx;
    }
}

TEST_P(PropertySweep, SegmentedExecutionIsTracePreserving)
{
    // Whatever the times, the exact segmented pipeline returns a
    // normalized distribution over feasible states.
    problems::Problem p = problems::makeBenchmark(
        GetParam() % 2 == 0 ? "K2" : "S2");
    core::RasenganSolver solver(p, {});
    std::vector<double> times(solver.numParams());
    for (double &t : times)
        t = rng.uniformReal(-2.0, 2.0);
    Rng exec_rng(GetParam());
    auto dist = solver.execute(times, exec_rng);
    ASSERT_FALSE(dist.failed);
    double total = 0.0;
    for (const auto &[x, prob] : dist.entries) {
        EXPECT_TRUE(p.isFeasible(x));
        EXPECT_GE(prob, -1e-12);
        total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(PropertySweep, ParsersRejectGarbageGracefully)
{
    // Random byte soup must produce an error report, never a crash.
    std::string soup;
    int length = static_cast<int>(rng.uniformInt(1, 400));
    for (int i = 0; i < length; ++i)
        soup.push_back(static_cast<char>(rng.uniformInt(32, 126)));
    soup.push_back('\n');

    circuit::QasmParseResult qasm = circuit::parseQasm(soup);
    EXPECT_FALSE(qasm.circuit.has_value());
    EXPECT_FALSE(qasm.error.empty());

    problems::ProblemParseResult prob = problems::parseProblem(soup);
    EXPECT_FALSE(prob.problem.has_value());
    EXPECT_FALSE(prob.error.empty());
}

TEST_P(PropertySweep, ParsersSurviveMangledValidInput)
{
    // Take a valid serialization and corrupt one random character.
    problems::Problem p = problems::makeBenchmark("J1");
    std::string text = problems::writeProblem(p);
    size_t pos = rng.index(text.size());
    text[pos] = static_cast<char>(rng.uniformInt(33, 126));
    problems::ProblemParseResult res = problems::parseProblem(text);
    // Either it still parses (benign corruption) or it reports an error;
    // both are fine, crashing is not.
    if (res.problem) {
        EXPECT_EQ(res.problem->numVars(), p.numVars());
    } else {
        EXPECT_FALSE(res.error.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<uint64_t>(0, 12));

} // namespace
} // namespace rasengan
