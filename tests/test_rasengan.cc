/**
 * @file
 * Integration tests for the end-to-end Rasengan solver: segmented
 * execution, purification, training quality on suite benchmarks, the
 * noisy backends, and the ablation switches.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/analysis.h"
#include "core/rasengan.h"
#include "problems/metrics.h"
#include "problems/suite.h"

namespace rasengan::core {
namespace {

RasenganOptions
fastOptions()
{
    RasenganOptions opts;
    opts.maxIterations = 120;
    opts.shotsPerSegment = 512;
    return opts;
}

TEST(Rasengan, PipelineArtifactsAreConsistent)
{
    RasenganSolver solver(problems::makeBenchmark("F1"), fastOptions());
    EXPECT_FALSE(solver.transitions().empty());
    EXPECT_EQ(solver.numParams(),
              static_cast<int>(solver.chain().steps.size()));
    int covered = 0;
    for (const Segment &seg : solver.segments())
        covered += seg.stepCount;
    EXPECT_EQ(covered, solver.numParams());
}

TEST(Rasengan, ExecuteStaysInFeasibleSpace)
{
    problems::Problem p = problems::makeBenchmark("J1");
    RasenganSolver solver(p, fastOptions());
    std::vector<double> times(solver.numParams(), 0.7);
    Rng rng(3);
    RasenganDistribution dist = solver.execute(times, rng);
    ASSERT_FALSE(dist.failed);
    double total = 0.0;
    for (const auto &[x, prob] : dist.entries) {
        EXPECT_TRUE(p.isFeasible(x));
        total += prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Rasengan, ExactExecutionIsDeterministic)
{
    problems::Problem p = problems::makeBenchmark("K1");
    RasenganSolver solver(p, fastOptions());
    std::vector<double> times(solver.numParams(), 0.5);
    Rng rng_a(1), rng_b(2); // exact mode must ignore the rng
    auto a = solver.execute(times, rng_a);
    auto b = solver.execute(times, rng_b);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    double ea = 0.0, eb = 0.0;
    for (const auto &[x, prob] : a.entries)
        ea += prob * p.objective(x);
    for (const auto &[x, prob] : b.entries)
        eb += prob * p.objective(x);
    EXPECT_NEAR(ea, eb, 1e-12);
}

class RasenganQuality : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RasenganQuality, BeatsMeanFeasibleBaseline)
{
    problems::Problem p = problems::makeBenchmark(GetParam());
    double mean_arg = problems::meanFeasibleArg(p);
    RasenganSolver solver(p, fastOptions());
    RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed);
    double arg = p.arg(res.expectedObjective);
    // The trained distribution must beat the average feasible solution
    // (the hardware baseline Rasengan is first to beat, Section 5.4).
    EXPECT_LT(arg, std::max(mean_arg, 1e-6)) << GetParam();
    EXPECT_NEAR(res.inConstraintsRate, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, RasenganQuality,
                         ::testing::Values("F1", "J1", "K1", "S1", "G1"));

class RasenganSuiteWide : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RasenganSuiteWide, SolvesEveryBenchmarkFeasibly)
{
    // The full 20-benchmark sweep: a trained run must stay feasible,
    // cover the whole feasible space, and do no worse than the mean
    // feasible solution.
    problems::Problem p = problems::makeBenchmark(GetParam());
    RasenganOptions opts;
    opts.maxIterations = 150;
    RasenganSolver solver(p, opts);
    RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed) << GetParam();
    EXPECT_TRUE(p.isFeasible(res.solution)) << GetParam();
    EXPECT_EQ(res.feasibleCovered, p.feasibleCount()) << GetParam();
    EXPECT_NEAR(res.inConstraintsRate, 1.0, 1e-9) << GetParam();
    EXPECT_LE(res.expectedObjective, p.meanFeasibleValue() + 1e-6)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RasenganSuiteWide,
                         ::testing::ValuesIn(problems::benchmarkIds()));

TEST(Rasengan, SolutionArgIsSmallOnF1)
{
    problems::Problem p = problems::makeBenchmark("F1");
    RasenganSolver solver(p, fastOptions());
    RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed);
    // The best output basis state should essentially be the optimum.
    EXPECT_NEAR(res.objectiveValue, p.optimalValue(),
                0.2 * std::abs(p.optimalValue()));
}

TEST(Rasengan, UnsegmentedMatchesSegmentedSupport)
{
    problems::Problem p = problems::makeBenchmark("K3");
    RasenganOptions seg = fastOptions();
    seg.transitionsPerSegment = 2;
    RasenganOptions unseg = fastOptions();
    unseg.transitionsPerSegment = 0; // single segment
    RasenganSolver a(p, seg), b(p, unseg);
    EXPECT_GT(a.segments().size(), b.segments().size());
    EXPECT_EQ(b.segments().size(), 1u);
    std::vector<double> times(a.numParams(), 0.6);
    Rng rng(9);
    auto da = a.execute(times, rng);
    auto db = b.execute(times, rng);
    // Same chain, same times: any state with substantial probability in
    // the coherent (unsegmented) run must appear in the segmented run --
    // segmentation decoheres, which prevents destructive cancellation but
    // never removes reachable support.
    auto support = [](const RasenganDistribution &d, double threshold) {
        std::set<BitVec> s;
        for (const auto &[x, prob] : d.entries)
            if (prob > threshold)
                s.insert(x);
        return s;
    };
    std::set<BitVec> segmented_support = support(da, 1e-12);
    for (const BitVec &x : support(db, 1e-3))
        EXPECT_TRUE(segmented_support.count(x)) << x.toString(p.numVars());
}

TEST(Rasengan, SegmentCircuitPreparesInitState)
{
    problems::Problem p = problems::makeBenchmark("F1");
    RasenganSolver solver(p, fastOptions());
    std::vector<double> times(solver.numParams(), 0.4);
    circuit::Circuit circ =
        solver.segmentCircuit(0, p.trivialFeasible(), times);
    int x_count = circ.countKind(circuit::GateKind::X);
    EXPECT_GE(x_count, p.trivialFeasible().popcount());
}

TEST(Rasengan, SegmentDepthIsBelowFullChainDepth)
{
    problems::Problem p = problems::makeBenchmark("K3");
    RasenganOptions seg = fastOptions();
    RasenganOptions unseg = fastOptions();
    unseg.transitionsPerSegment = 0;
    RasenganSolver segmented(p, seg), whole(p, unseg);
    auto [seg_depth, seg_cx] = segmented.maxSegmentCost();
    auto [full_depth, full_cx] = whole.maxSegmentCost();
    if (segmented.numParams() > seg.transitionsPerSegment) {
        EXPECT_LT(seg_depth, full_depth);
        EXPECT_LT(seg_cx, full_cx);
    } else {
        EXPECT_LE(seg_depth, full_depth);
        EXPECT_LE(seg_cx, full_cx);
    }
}

TEST(Rasengan, SampledBackendApproximatesExact)
{
    problems::Problem p = problems::makeBenchmark("J1");
    RasenganOptions exact = fastOptions();
    RasenganOptions sampled = fastOptions();
    sampled.execution = RasenganOptions::Execution::SampledSparse;
    sampled.shotsPerSegment = 8192;
    RasenganSolver a(p, exact), b(p, sampled);
    std::vector<double> times(a.numParams(), 0.5);
    Rng rng(21);
    auto da = a.execute(times, rng);
    auto db = b.execute(times, rng);
    double ea = 0.0, eb = 0.0;
    for (const auto &[x, prob] : da.entries)
        ea += prob * p.objective(x);
    for (const auto &[x, prob] : db.entries)
        eb += prob * p.objective(x);
    EXPECT_NEAR(ea, eb, 0.15 * std::abs(ea));
}

TEST(Rasengan, GateLevelBackendMatchesSparseWhenNoiseless)
{
    // Regression: the gate-level path must prepare each segment's input
    // exactly once (the X column inside the circuit).  With noise off it
    // has to reproduce the sparse backend's support.
    problems::Problem p = problems::makeBenchmark("J1");
    RasenganOptions gate = fastOptions();
    gate.execution = RasenganOptions::Execution::NoisyGateLevel;
    gate.shotsPerSegment = 4096;
    RasenganOptions exact = fastOptions();
    RasenganSolver a(p, gate), b(p, exact);
    std::vector<double> times(a.numParams(), 0.6);
    Rng rng(13);
    auto da = a.execute(times, rng);
    auto db = b.execute(times, rng);
    ASSERT_FALSE(da.failed);
    std::set<BitVec> gate_support;
    for (const auto &[x, prob] : da.entries)
        if (prob > 1e-12)
            gate_support.insert(x);
    for (const auto &[x, prob] : db.entries) {
        if (prob > 5e-2) {
            EXPECT_TRUE(gate_support.count(x)) << x.toString(p.numVars());
        }
    }
}

TEST(Rasengan, NoisyGateLevelKeepsConstraintsViaPurification)
{
    problems::Problem p = problems::makeBenchmark("J1");
    RasenganOptions opts = fastOptions();
    opts.execution = RasenganOptions::Execution::NoisyGateLevel;
    opts.noise.depol2q = 0.002;
    opts.noise.depol1q = 0.0002;
    opts.maxIterations = 12;
    opts.shotsPerSegment = 256;
    opts.trajectories = 4;
    RasenganSolver solver(p, opts);
    RasenganResult res = solver.run();
    // At this mild noise level the run must survive purification...
    ASSERT_FALSE(res.failed);
    // ...and every reported output must satisfy the constraints, even
    // though some raw shots were corrupted.
    for (const auto &[x, prob] : res.finalDistribution.entries)
        EXPECT_TRUE(p.isFeasible(x));
    EXPECT_LE(res.finalDistribution.prePurifyFeasibleFraction, 1.0 + 1e-9);
    EXPECT_NEAR(res.inConstraintsRate, 1.0, 1e-9);
}

TEST(Rasengan, InjectedNoiseDegradesFeasibleFraction)
{
    problems::Problem p = problems::makeBenchmark("K1");
    RasenganOptions opts = fastOptions();
    opts.execution = RasenganOptions::Execution::NoisyInjected;
    opts.noise.depol2q = 0.05; // heavy
    opts.purify = false;
    RasenganSolver solver(p, opts);
    std::vector<double> times(solver.numParams(), 0.5);
    Rng rng(5);
    auto dist = solver.execute(times, rng);
    ASSERT_FALSE(dist.failed);
    double feasible = 0.0;
    for (const auto &[x, prob] : dist.entries)
        if (p.isFeasible(x))
            feasible += prob;
    EXPECT_LT(feasible, 0.999);
}

TEST(Rasengan, AblationTogglesAffectCost)
{
    problems::Problem p = problems::makeBenchmark("S2");
    RasenganOptions all_on = fastOptions();
    RasenganOptions no_prune = fastOptions();
    no_prune.prune = false;
    RasenganSolver a(p, all_on), b(p, no_prune);
    EXPECT_LE(a.chain().steps.size(), b.chain().steps.size());
}

TEST(Rasengan, ShotGrowthIncreasesLaterSegments)
{
    problems::Problem p = problems::makeBenchmark("K3");
    RasenganOptions uniform = fastOptions();
    uniform.execution = RasenganOptions::Execution::SampledSparse;
    RasenganOptions growing = uniform;
    growing.shotGrowth = 4.0;
    RasenganSolver a(p, uniform), b(p, growing);
    ASSERT_GT(a.segments().size(), 1u);
    std::vector<double> times(a.numParams(), 0.5);
    Rng ra(3), rb(3);
    auto da = a.execute(times, ra);
    auto db = b.execute(times, rb);
    ASSERT_FALSE(da.failed);
    ASSERT_FALSE(db.failed);
    // Growth buys a finer final distribution (more distinct states can
    // hold a nonzero share) and a larger modeled quantum cost.
    RasenganResult res_a = a.run();
    RasenganResult res_b = b.run();
    double per_eval_a = res_a.quantumSeconds / res_a.training.evaluations;
    double per_eval_b = res_b.quantumSeconds / res_b.training.evaluations;
    EXPECT_GT(per_eval_b, per_eval_a);
}

TEST(Rasengan, AlternativeOptimizersTrain)
{
    problems::Problem p = problems::makeBenchmark("J1");
    for (opt::Method method :
         {opt::Method::Cobyla, opt::Method::NelderMead, opt::Method::Spsa,
          opt::Method::AdamSpsa}) {
        RasenganOptions opts = fastOptions();
        opts.maxIterations = 60;
        opts.optimizer = method;
        RasenganSolver solver(p, opts);
        RasenganResult res = solver.run();
        ASSERT_FALSE(res.failed) << opt::methodName(method);
        EXPECT_NEAR(res.inConstraintsRate, 1.0, 1e-9)
            << opt::methodName(method);
        EXPECT_LT(p.arg(res.expectedObjective),
                  p.arg(p.worstFeasibleValue()) + 1e-9)
            << opt::methodName(method);
    }
}

TEST(Rasengan, PipelineReportIsConsistent)
{
    problems::Problem p = problems::makeBenchmark("K2");
    RasenganSolver solver(p, fastOptions());
    PipelineReport report = analyzePipeline(solver);

    EXPECT_EQ(report.problemId, "K2");
    EXPECT_EQ(report.numVars, p.numVars());
    EXPECT_EQ(report.prunedChain, solver.numParams());
    EXPECT_EQ(report.segments.size(), solver.segments().size());
    int covered = 0;
    for (const SegmentReport &seg : report.segments) {
        covered += seg.transitions;
        EXPECT_GT(seg.depth, 0);
        EXPECT_GT(seg.shotTimeUs, 0.0);
    }
    EXPECT_EQ(covered, report.prunedChain);
    EXPECT_EQ(report.maxSegmentDepth, solver.maxSegmentCost().first);
    EXPECT_EQ(report.reachableStates, p.feasibleCount());
    std::string text = report.toString();
    EXPECT_NE(text.find("K2"), std::string::npos);
    EXPECT_NE(text.find("segments"), std::string::npos);
}

TEST(Rasengan, ResultMetadataIsFilled)
{
    problems::Problem p = problems::makeBenchmark("F1");
    RasenganSolver solver(p, fastOptions());
    RasenganResult res = solver.run();
    EXPECT_GT(res.numParams, 0);
    EXPECT_GT(res.numSegments, 0);
    EXPECT_GT(res.maxSegmentDepth, 0);
    EXPECT_GT(res.quantumSeconds, 0.0);
    EXPECT_GE(res.classicalSeconds, 0.0);
    EXPECT_EQ(res.feasibleCovered, p.feasibleCount());
    EXPECT_GT(res.training.evaluations, 0);
}

} // namespace
} // namespace rasengan::core
