/**
 * @file
 * Unit tests for src/linalg: exact rationals, RREF, integer nullspace,
 * binary feasibility search, determinants and total unimodularity.
 *
 * Several tests use the worked example of the paper (Figure 1a /
 * Equation 4): C = [[1,1,-1,0,0],[0,0,1,1,-1]], b = [0,1].
 */

#include <gtest/gtest.h>

#include <set>

#include "linalg/matrix.h"
#include "linalg/nullspace.h"
#include "linalg/rational.h"
#include "linalg/rref.h"
#include "linalg/solve.h"
#include "linalg/unimodular.h"

namespace rasengan::linalg {
namespace {

IntMat
paperMatrix()
{
    return IntMat{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
}

IntVec
paperBounds()
{
    return {0, 1};
}

TEST(Rational, NormalizesToLowestTerms)
{
    Rational r(6, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
    EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic)
{
    Rational half(1, 2), third(1, 3);
    EXPECT_EQ(half + third, Rational(5, 6));
    EXPECT_EQ(half - third, Rational(1, 6));
    EXPECT_EQ(half * third, Rational(1, 6));
    EXPECT_EQ(half / third, Rational(3, 2));
    EXPECT_EQ(-half, Rational(-1, 2));
    EXPECT_EQ(half.abs(), half);
    EXPECT_EQ((-half).abs(), half);
}

TEST(Rational, Comparisons)
{
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
    EXPECT_LE(Rational(2, 4), Rational(1, 2));
    EXPECT_GE(Rational(1, 2), Rational(2, 4));
    EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, IntegerQueries)
{
    EXPECT_TRUE(Rational(4, 2).isInteger());
    EXPECT_EQ(Rational(4, 2).toInt(), 2);
    EXPECT_FALSE(Rational(1, 2).isInteger());
    EXPECT_TRUE(Rational(0).isZero());
    EXPECT_NEAR(Rational(1, 4).toDouble(), 0.25, 1e-15);
}

TEST(Rational, ToStringForms)
{
    EXPECT_EQ(Rational(5).toString(), "5");
    EXPECT_EQ(Rational(-1, 2).toString(), "-1/2");
}

TEST(Matrix, InitializerAndAccess)
{
    IntMat m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 2);
    EXPECT_EQ(m.at(2, 1), 6);
    m.at(0, 0) = 9;
    EXPECT_EQ(m.row(0), (std::vector<int64_t>{9, 2}));
}

TEST(Matrix, ApplyInt)
{
    IntMat m{{1, -1}, {2, 0}};
    EXPECT_EQ(applyInt(m, {3, 1}), (IntVec{2, 6}));
}

TEST(Matrix, SwapRows)
{
    IntMat m{{1, 2}, {3, 4}};
    m.swapRows(0, 1);
    EXPECT_EQ(m.at(0, 0), 3);
    EXPECT_EQ(m.at(1, 1), 2);
}

TEST(Rref, IdentityIsFixedPoint)
{
    RatMat eye{{1, 0}, {0, 1}};
    RrefResult r = rref(eye);
    EXPECT_EQ(r.rank, 2);
    EXPECT_EQ(r.mat, eye);
    EXPECT_EQ(r.pivotCols, (std::vector<int>{0, 1}));
}

TEST(Rref, RankOfSingularMatrix)
{
    IntMat m{{1, 2, 3}, {2, 4, 6}, {1, 0, 1}};
    EXPECT_EQ(rank(m), 2);
}

TEST(Rref, PaperMatrixHasRankTwo)
{
    EXPECT_EQ(rank(paperMatrix()), 2);
}

TEST(Nullspace, DimensionMatchesRankNullity)
{
    auto basis = nullspaceBasis(paperMatrix());
    EXPECT_EQ(basis.size(), 3u); // n - rank = 5 - 2
}

TEST(Nullspace, VectorsAreInKernel)
{
    IntMat c = paperMatrix();
    for (const auto &u : nullspaceBasis(c)) {
        IntVec cu = applyInt(c, u);
        for (int64_t v : cu)
            EXPECT_EQ(v, 0);
    }
}

TEST(Nullspace, PaperBasisIsSigned01)
{
    for (const auto &u : nullspaceBasis(paperMatrix())) {
        EXPECT_TRUE(isSigned01(u));
        EXPECT_GT(nonZeroCount(u), 0);
    }
}

TEST(Nullspace, FullColumnRankHasEmptyBasis)
{
    IntMat m{{1, 0}, {0, 1}, {1, 1}};
    EXPECT_TRUE(nullspaceBasis(m).empty());
}

TEST(Nullspace, ScalesFractionsToPrimitiveIntegers)
{
    // RREF of [2, 1] gives pivot value 1/2 on the free column; the
    // integer basis vector must be scaled to [-1, 2] (primitive).
    IntMat m{{2, 1}};
    auto basis = nullspaceBasis(m);
    ASSERT_EQ(basis.size(), 1u);
    IntVec u = basis[0];
    EXPECT_EQ(applyInt(m, u), (IntVec{0}));
    EXPECT_EQ(std::abs(u[0]) + std::abs(u[1]), 3); // {-1,2} up to sign
}

TEST(Solve, ParticularSolutionSatisfiesSystem)
{
    IntMat c = paperMatrix();
    IntVec b = paperBounds();
    auto x = solveParticular(c, b);
    ASSERT_TRUE(x.has_value());
    for (int r = 0; r < c.rows(); ++r) {
        Rational acc(0);
        for (int col = 0; col < c.cols(); ++col)
            acc += Rational(c.at(r, col)) * (*x)[col];
        EXPECT_EQ(acc, Rational(b[r]));
    }
}

TEST(Solve, DetectsInconsistency)
{
    IntMat c{{1, 1}, {1, 1}};
    EXPECT_FALSE(solveParticular(c, {0, 1}).has_value());
    EXPECT_FALSE(solveBinary(c, {0, 1}).has_value());
}

TEST(Solve, BinarySolutionOfPaperSystem)
{
    auto x = solveBinary(paperMatrix(), paperBounds());
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(satisfies(paperMatrix(), paperBounds(), *x));
}

TEST(Solve, EnumerateFindsAllFiveFeasibleSolutions)
{
    // The paper's example has exactly five feasible solutions
    // (Figure 6a narrates "all five feasible solutions").
    auto sols = enumerateBinary(paperMatrix(), paperBounds());
    EXPECT_EQ(sols.size(), 5u);
    std::set<IntVec> unique(sols.begin(), sols.end());
    EXPECT_EQ(unique.size(), sols.size());
    for (const auto &x : sols)
        EXPECT_TRUE(satisfies(paperMatrix(), paperBounds(), x));
    // Spot-check the solutions listed in Section 3.
    EXPECT_TRUE(unique.count({0, 0, 0, 1, 0}));
    EXPECT_TRUE(unique.count({1, 0, 1, 0, 0}));
    EXPECT_TRUE(unique.count({0, 1, 1, 0, 0}));
    EXPECT_TRUE(unique.count({1, 0, 1, 1, 1}));
    EXPECT_TRUE(unique.count({0, 1, 1, 1, 1}));
}

TEST(Solve, EnumerateRespectsLimit)
{
    auto sols = enumerateBinary(paperMatrix(), paperBounds(), 2);
    EXPECT_EQ(sols.size(), 2u);
}

TEST(Solve, SatisfiesRejectsWrongSizes)
{
    EXPECT_FALSE(satisfies(paperMatrix(), paperBounds(), {1, 0}));
}

TEST(Determinant, KnownValues)
{
    EXPECT_EQ(determinant(IntMat{{3}}), 3);
    EXPECT_EQ(determinant(IntMat{{1, 2}, {3, 4}}), -2);
    EXPECT_EQ(determinant(IntMat{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24);
    EXPECT_EQ(determinant(IntMat{{1, 2}, {2, 4}}), 0);
}

TEST(Determinant, RowSwapFlipsSign)
{
    EXPECT_EQ(determinant(IntMat{{0, 1}, {1, 0}}), -1);
}

TEST(Unimodular, PaperMatrixIsTotallyUnimodular)
{
    EXPECT_TRUE(isTotallyUnimodular(paperMatrix()));
}

TEST(Unimodular, DetectsViolation)
{
    // Contains a 2x2 submatrix with determinant 2.
    IntMat m{{1, 1}, {-1, 1}};
    EXPECT_FALSE(isTotallyUnimodular(m));
}

TEST(Unimodular, EntriesOutsideUnitRangeFail)
{
    EXPECT_FALSE(isTotallyUnimodular(IntMat{{2}}));
}

} // namespace
} // namespace rasengan::linalg
