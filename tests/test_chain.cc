/**
 * @file
 * Tests for chain construction, pruning and early stop (Theorem 1 and
 * Section 4.1).  The central property: the reachable set of the built
 * chain covers EVERY feasible solution, with and without pruning, across
 * the entire benchmark suite.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/basis.h"
#include "core/chain.h"
#include "problems/suite.h"

namespace rasengan::core {
namespace {

/** Replay a chain classically and return the final reachable set. */
std::set<BitVec>
replay(const std::vector<TransitionHamiltonian> &transitions,
       const Chain &chain, const BitVec &start)
{
    std::unordered_set<BitVec, BitVecHash> reachable{start};
    for (int k : chain.steps) {
        for (const BitVec &y : expandStates(reachable, transitions[k]))
            reachable.insert(y);
    }
    return {reachable.begin(), reachable.end()};
}

class ChainCoverage : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ChainCoverage, PrunedChainCoversAllFeasibleSolutions)
{
    problems::Problem p = problems::makeBenchmark(GetParam());
    auto transitions = makeTransitions(transitionVectors(p));
    Chain chain = buildChain(transitions, p.trivialFeasible());
    EXPECT_EQ(chain.reachableCount, p.feasibleCount()) << GetParam();

    std::set<BitVec> reached =
        replay(transitions, chain, p.trivialFeasible());
    std::set<BitVec> feasible(p.feasibleSolutions().begin(),
                              p.feasibleSolutions().end());
    EXPECT_EQ(reached, feasible) << GetParam();
}

TEST_P(ChainCoverage, UnsimplifiedVectorsAlsoCover)
{
    problems::Problem p = problems::makeBenchmark(GetParam());
    auto transitions = makeTransitions(transitionVectors(p, false));
    Chain chain = buildChain(transitions, p.trivialFeasible());
    EXPECT_EQ(chain.reachableCount, p.feasibleCount()) << GetParam();
}

TEST_P(ChainCoverage, ReachableSetIsAlwaysFeasible)
{
    // Even without augmentation, the walk never leaves the feasible set.
    problems::Problem p = problems::makeBenchmark(GetParam());
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    Chain chain = buildChain(transitions, p.trivialFeasible());
    std::set<BitVec> reached =
        replay(transitions, chain, p.trivialFeasible());
    EXPECT_LE(reached.size(), p.feasibleCount()) << GetParam();
    for (const BitVec &x : reached)
        EXPECT_TRUE(p.isFeasible(x)) << GetParam();
}

TEST_P(ChainCoverage, PruningShortensWithoutLosingCoverage)
{
    problems::Problem p = problems::makeBenchmark(GetParam());
    auto transitions = makeTransitions(transitionVectors(p));

    ChainOptions no_prune;
    no_prune.prune = false;
    no_prune.earlyStop = true; // same round budget as the pruned walk
    Chain full = buildChain(transitions, p.trivialFeasible(), no_prune);

    Chain pruned = buildChain(transitions, p.trivialFeasible());
    EXPECT_LE(pruned.steps.size(), full.steps.size()) << GetParam();
    EXPECT_EQ(pruned.reachableCount, full.reachableCount) << GetParam();

    std::set<BitVec> a = replay(transitions, pruned, p.trivialFeasible());
    std::set<BitVec> b = replay(transitions, full, p.trivialFeasible());
    EXPECT_EQ(a, b) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ChainCoverage,
                         ::testing::ValuesIn(problems::benchmarkIds()));

TEST(Chain, UnprunedLengthIsMSquared)
{
    problems::Problem p = problems::makeBenchmark("F1");
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    const int m = static_cast<int>(transitions.size());
    ChainOptions opts;
    opts.prune = false;
    opts.earlyStop = false;
    Chain chain = buildChain(transitions, p.trivialFeasible(), opts);
    EXPECT_EQ(static_cast<int>(chain.steps.size()), m * m);
}

TEST(Chain, CoverageIsMonotone)
{
    problems::Problem p = problems::makeBenchmark("S2");
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    Chain chain = buildChain(transitions, p.trivialFeasible());
    for (size_t i = 1; i < chain.coverage.size(); ++i)
        EXPECT_GE(chain.coverage[i], chain.coverage[i - 1]);
    ASSERT_FALSE(chain.coverage.empty());
    EXPECT_EQ(chain.coverage.back(), chain.reachableCount);
}

TEST(Chain, PrunedStepsAllExpand)
{
    // With pruning on, every kept step must add at least one new state
    // (this is the definition of a non-redundant Hamiltonian).
    problems::Problem p = problems::makeBenchmark("G1");
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    Chain chain = buildChain(transitions, p.trivialFeasible());
    size_t prev = 1;
    for (size_t i = 0; i < chain.coverage.size(); ++i) {
        EXPECT_GT(chain.coverage[i], prev);
        prev = chain.coverage[i];
    }
}

TEST(Chain, EarlyStopBoundsUnprunedTail)
{
    problems::Problem p = problems::makeBenchmark("K1");
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    const int m = static_cast<int>(transitions.size());

    ChainOptions stop_only;
    stop_only.prune = false;
    stop_only.earlyStop = true;
    // earlyStop is only honored when pruning is requested in the solver;
    // here we exercise the chain-level flag directly.
    Chain chain = buildChain(transitions, p.trivialFeasible(), stop_only);
    // After coverage saturates, at most m further steps may follow.
    size_t full = chain.reachableCount;
    int steps_after_saturation = 0;
    bool saturated = false;
    for (size_t i = 0; i < chain.coverage.size(); ++i) {
        if (saturated)
            ++steps_after_saturation;
        if (chain.coverage[i] == full)
            saturated = true;
    }
    EXPECT_LE(steps_after_saturation, m);
}

TEST(Chain, EmptyTransitionsYieldEmptyChain)
{
    Chain chain = buildChain({}, BitVec{});
    EXPECT_TRUE(chain.steps.empty());
    // The start state itself is always reachable.
    EXPECT_EQ(chain.reachableCount, 1u);
}

TEST(Chain, RoundsOverrideShortensChain)
{
    problems::Problem p = problems::makeBenchmark("S2");
    auto transitions =
        makeTransitions(simplifyBasis(homogeneousBasis(p)));
    ChainOptions one_round;
    one_round.rounds = 1;
    one_round.prune = false;
    one_round.earlyStop = false;
    Chain chain = buildChain(transitions, p.trivialFeasible(), one_round);
    EXPECT_EQ(chain.steps.size(), transitions.size());
}

TEST(Chain, TrackingCapStopsTheWalk)
{
    problems::Problem p = problems::makeBenchmark("S4");
    auto transitions = makeTransitions(transitionVectors(p));
    ChainOptions opts;
    opts.maxTrackedStates = 1; // force the cap immediately
    Chain chain = buildChain(transitions, p.trivialFeasible(), opts);
    EXPECT_TRUE(chain.capped);
    // The walk stops at the cap with the steps found so far.
    EXPECT_GT(chain.steps.size(), 0u);
    EXPECT_LT(chain.steps.size(), transitions.size() * transitions.size());
}

TEST(Chain, MaxChainLengthBoundsSteps)
{
    problems::Problem p = problems::makeBenchmark("S4");
    auto transitions = makeTransitions(transitionVectors(p));
    ChainOptions opts;
    opts.prune = false;
    opts.earlyStop = false;
    opts.maxChainLength = 5;
    Chain chain = buildChain(transitions, p.trivialFeasible(), opts);
    EXPECT_EQ(chain.steps.size(), 5u);
}

TEST(Chain, ExpandStatesFindsPartners)
{
    TransitionHamiltonian tau({1, -1});
    std::unordered_set<BitVec, BitVecHash> states{
        BitVec::fromString("01"), // partner: "10"
        BitVec::fromString("00"), // dark
    };
    auto partners = expandStates(states, tau);
    ASSERT_EQ(partners.size(), 1u);
    EXPECT_EQ(partners[0], BitVec::fromString("10"));
}

} // namespace
} // namespace rasengan::core
