/**
 * @file
 * Batch solve service tests: cache keys (equality across construction
 * paths, distinctness across config fields), the LRU artifact cache,
 * JSONL parsing, admission control, and the scheduler's determinism
 * guarantees (thread count, submission order, cache temperature).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"
#include "problems/io.h"
#include "problems/suite.h"
#include "serve/admission.h"
#include "serve/artifact_cache.h"
#include "serve/cachekey.h"
#include "serve/job.h"
#include "serve/jsonl.h"
#include "serve/runner.h"
#include "serve/scheduler.h"
#include "serve/workload.h"

using namespace rasengan;
using namespace rasengan::serve;

// ---------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------

TEST(CacheKey, DomainSeparatesEqualPayloads)
{
    CacheKey a = makeKey("pipeline", "payload");
    CacheKey b = makeKey("circuit", "payload");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, makeKey("pipeline", "payload"));
    EXPECT_EQ(a.hex().size(), 32u);
    EXPECT_NE(a.hex(), b.hex());
}

TEST(CacheKey, NoBoundarySlipBetweenDomainAndPayload)
{
    // "ab" + "c" must not alias "a" + "bc".
    EXPECT_NE(makeKey("ab", "c"), makeKey("a", "bc"));
}

TEST(CacheKey, SameProblemDifferentConstructionPathsHashEqual)
{
    // The benchmark generator and a parse of its serialization are two
    // construction paths to the same logical problem; the canonical
    // text (and therefore the key) must agree.
    problems::Problem direct = problems::makeBenchmark("F1", 0);
    problems::ProblemParseResult reparsed =
        problems::parseProblem(problems::writeProblem(direct));
    ASSERT_TRUE(reparsed.problem.has_value());
    std::string a = problems::canonicalProblemText(direct);
    std::string b = problems::canonicalProblemText(*reparsed.problem);
    EXPECT_EQ(a, b);
    EXPECT_EQ(makeKey("pipeline", a), makeKey("pipeline", b));
}

TEST(CacheKey, RequestFieldsChangeTheJobKey)
{
    problems::Problem problem = problems::makeBenchmark("F1", 0);
    std::string ptext = problems::canonicalProblemText(problem);
    JobRequest base;
    base.benchmark = "F1";
    std::string baseText = canonicalRequestText(base, ptext);
    CacheKey baseKey = makeKey("job", baseText);

    auto keyOf = [&](const JobRequest &req) {
        return makeKey("job", canonicalRequestText(req, ptext));
    };

    JobRequest shots = base;
    shots.shots = 2048;
    EXPECT_NE(keyOf(shots), baseKey);

    JobRequest noise = base;
    noise.noise = "kyiv";
    EXPECT_NE(keyOf(noise), baseKey);

    JobRequest penalty = base;
    penalty.penaltyLambda = 12.5;
    EXPECT_NE(keyOf(penalty), baseKey);

    JobRequest seed = base;
    seed.seed = 8;
    EXPECT_NE(keyOf(seed), baseKey);

    // The id is correlation metadata, not part of the work.
    JobRequest renamed = base;
    renamed.id = "some-other-name";
    EXPECT_EQ(keyOf(renamed), baseKey);
}

TEST(CacheKey, AllDistinctBenchmarksProduceDistinctKeys)
{
    std::vector<std::string> hexes;
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id, 0);
        hexes.push_back(
            makeKey("pipeline", problems::canonicalProblemText(p)).hex());
    }
    std::sort(hexes.begin(), hexes.end());
    EXPECT_EQ(std::unique(hexes.begin(), hexes.end()), hexes.end());
}

// ---------------------------------------------------------------------
// Artifact cache
// ---------------------------------------------------------------------

namespace {

std::pair<std::shared_ptr<const int>, uint64_t>
makeInt(int v, uint64_t bytes)
{
    return {std::make_shared<int>(v), bytes};
}

} // namespace

TEST(ArtifactCache, HitMissAndPerJobCounters)
{
    ArtifactCache cache(1 << 20);
    ArtifactCache::LookupCounters job;
    CacheKey k = makeKey("t", "x");
    int computes = 0;
    auto make = [&]() {
        ++computes;
        return makeInt(42, 100);
    };
    auto a = cache.getOrCompute<int>(k, make, &job);
    auto b = cache.getOrCompute<int>(k, make, &job);
    EXPECT_EQ(*a, 42);
    EXPECT_EQ(a.get(), b.get()); // shared, not recomputed
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(job.hits, 1u);
    EXPECT_EQ(job.misses, 1u);
    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.bytesInUse, 100u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedWithinByteBudget)
{
    ArtifactCache cache(250);
    CacheKey a = makeKey("t", "a"), b = makeKey("t", "b"),
             c = makeKey("t", "c");
    cache.getOrCompute<int>(a, [] { return makeInt(1, 100); });
    cache.getOrCompute<int>(b, [] { return makeInt(2, 100); });
    // Touch `a` so `b` is the LRU victim.
    cache.getOrCompute<int>(a, [] { return makeInt(-1, 100); });
    cache.getOrCompute<int>(c, [] { return makeInt(3, 100); });

    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytesInUse, 250u);

    int recomputes = 0;
    auto va = cache.getOrCompute<int>(a, [&] {
        ++recomputes;
        return makeInt(-1, 100);
    });
    EXPECT_EQ(*va, 1); // survived
    auto vb = cache.getOrCompute<int>(b, [&] {
        ++recomputes;
        return makeInt(2, 100);
    });
    EXPECT_EQ(*vb, 2);
    EXPECT_EQ(recomputes, 1); // only b was evicted
}

TEST(ArtifactCache, ZeroBudgetDisablesCaching)
{
    ArtifactCache cache(0);
    CacheKey k = makeKey("t", "x");
    int computes = 0;
    auto make = [&] {
        ++computes;
        return makeInt(7, 0);
    };
    cache.getOrCompute<int>(k, make);
    cache.getOrCompute<int>(k, make);
    EXPECT_EQ(computes, 2);
    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.uncacheable, 2u);
}

TEST(ArtifactCache, OversizedArtifactIsReturnedButNotInserted)
{
    ArtifactCache cache(100);
    auto v = cache.getOrCompute<int>(makeKey("t", "big"),
                                     [] { return makeInt(9, 1000); });
    EXPECT_EQ(*v, 9);
    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.uncacheable, 1u);
    EXPECT_EQ(stats.bytesInUse, 0u);
}

TEST(ArtifactCache, CrossDomainEvictionsAttributedToVictimDomain)
{
    // The byte budget is shared across domains: pressure from domain
    // "B" can evict "A"'s entries, and the eviction must be charged to
    // the victim's domain, not the inserter's.
    ArtifactCache cache(250);
    cache.getOrCompute<int>(makeKey("A", "a1"),
                            [] { return makeInt(1, 100); }, nullptr, "A");
    cache.getOrCompute<int>(makeKey("A", "a2"),
                            [] { return makeInt(2, 100); }, nullptr, "A");
    cache.getOrCompute<int>(makeKey("B", "b1"),
                            [] { return makeInt(3, 100); }, nullptr, "B");

    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    ASSERT_EQ(stats.domains.count("A"), 1u);
    ASSERT_EQ(stats.domains.count("B"), 1u);
    EXPECT_EQ(stats.domains.at("A").evictions, 1u);
    EXPECT_EQ(stats.domains.at("B").evictions, 0u);
    EXPECT_EQ(stats.domains.at("A").misses, 2u);
    EXPECT_EQ(stats.domains.at("B").misses, 1u);

    // More pressure from B evicts the remaining A entry and then B's
    // own LRU; each eviction lands on its owner.
    cache.getOrCompute<int>(makeKey("B", "b2"),
                            [] { return makeInt(4, 100); }, nullptr, "B");
    cache.getOrCompute<int>(makeKey("B", "b3"),
                            [] { return makeInt(5, 100); }, nullptr, "B");
    stats = cache.stats();
    EXPECT_EQ(stats.domains.at("A").evictions, 2u);
    EXPECT_EQ(stats.domains.at("B").evictions, 1u);
    EXPECT_EQ(stats.evictions, 3u);
}

// ---------------------------------------------------------------------
// Child seeds
// ---------------------------------------------------------------------

TEST(Runner, ChildSeedDerivesFromContentAndBatchSeedOnly)
{
    auto cache = std::make_shared<ArtifactCache>(0);
    JobRunner runner(RunnerOptions{42, ""}, cache);

    std::vector<JobRequest> requests = generateWorkload(1, 9);
    JobRequest renamed = requests[0];
    renamed.id = "a-completely-different-id";

    PrepareOutcome base = runner.prepare(requests[0]);
    PrepareOutcome other = runner.prepare(renamed);
    ASSERT_TRUE(base.ok) << base.error;
    ASSERT_TRUE(other.ok) << other.error;
    // The id is presentation metadata: it must not perturb the seed, or
    // "same job, new label" would stop reproducing.
    EXPECT_EQ(base.job.childSeed, other.job.childSeed);

    // Content changes must perturb it.
    JobRequest changed = requests[0];
    changed.iterations = requests[0].iterations + 1;
    PrepareOutcome prepared = runner.prepare(changed);
    ASSERT_TRUE(prepared.ok) << prepared.error;
    EXPECT_NE(prepared.job.childSeed, base.job.childSeed);

    // And so must the batch seed.
    JobRunner reseeded(RunnerOptions{43, ""}, cache);
    PrepareOutcome shifted = reseeded.prepare(requests[0]);
    ASSERT_TRUE(shifted.ok) << shifted.error;
    EXPECT_NE(shifted.job.childSeed, base.job.childSeed);
}

TEST(Runner, ChildSeedIsStableAcrossRunnerInstances)
{
    // Two runners over different caches with the same batch seed agree:
    // the derivation is pure content, no per-process state -- this is
    // what lets cluster workers re-derive seeds the single-process run
    // would have used.
    std::vector<JobRequest> requests = generateWorkload(5, 3);
    JobRunner first(RunnerOptions{7, ""},
                    std::make_shared<ArtifactCache>(0));
    JobRunner second(RunnerOptions{7, ""},
                     std::make_shared<ArtifactCache>(1 << 20));
    for (const auto &req : requests) {
        PrepareOutcome a = first.prepare(req);
        PrepareOutcome b = second.prepare(req);
        ASSERT_TRUE(a.ok && b.ok);
        EXPECT_EQ(a.job.childSeed, b.job.childSeed);
    }
}

// ---------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------

TEST(Jsonl, ParsesStringsNumbersBoolsAndEscapes)
{
    JsonParseResult r = parseFlatJson(
        "{\"s\":\"a\\n\\\"b\\\"\",\"n\":-2.5e3,\"t\":true,\"f\":false,"
        "\"z\":null}");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.object.at("s").str, "a\n\"b\"");
    EXPECT_DOUBLE_EQ(r.object.at("n").num, -2500.0);
    EXPECT_TRUE(r.object.at("t").flag);
    EXPECT_FALSE(r.object.at("f").flag);
    EXPECT_EQ(r.object.at("z").kind, JsonValue::Kind::Null);
}

TEST(Jsonl, RejectsNestingAndTrailingGarbage)
{
    EXPECT_FALSE(parseFlatJson("{\"a\":{}}").ok);
    EXPECT_FALSE(parseFlatJson("{\"a\":[1]}").ok);
    EXPECT_FALSE(parseFlatJson("{\"a\":1} x").ok);
    EXPECT_FALSE(parseFlatJson("{\"a\":}").ok);
    EXPECT_FALSE(parseFlatJson("not json").ok);
}

TEST(Jsonl, WriterRoundTripsThroughParser)
{
    std::string line = JsonWriter()
                           .field("name", "tab\there")
                           .field("pi", 3.5)
                           .field("count", int64_t{-7})
                           .boolean("flag", true)
                           .str();
    JsonParseResult r = parseFlatJson(line);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.object.at("name").str, "tab\there");
    EXPECT_DOUBLE_EQ(r.object.at("pi").num, 3.5);
    EXPECT_DOUBLE_EQ(r.object.at("count").num, -7.0);
    EXPECT_TRUE(r.object.at("flag").flag);
}

TEST(Jsonl, RequestRoundTrip)
{
    JobRequest req;
    req.id = "r1";
    req.benchmark = "K2";
    req.caseIndex = 3;
    req.algorithm = "pqaoa";
    req.iterations = 17;
    req.shots = 333;
    req.noise = "brisbane";
    req.penaltyLambda = 4.25;
    RequestParseResult parsed = parseRequest(writeRequest(req));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(writeRequest(parsed.request), writeRequest(req));
}

TEST(Jsonl, RequestParserRejectsUnknownKeysAndBadTypes)
{
    EXPECT_FALSE(parseRequest("{\"benchmark\":\"F1\",\"shotz\":12}").ok);
    EXPECT_FALSE(parseRequest("{\"benchmark\":\"F1\",\"shots\":\"many\"}")
                     .ok);
    EXPECT_FALSE(
        parseRequest("{\"benchmark\":\"F1\",\"iterations\":2.5}").ok);
}

TEST(Jsonl, ValidateRequestCatchesBadEnumsAndRanges)
{
    JobRequest req;
    req.benchmark = "F1";
    std::string err;
    EXPECT_TRUE(validateRequest(req, &err)) << err;

    JobRequest both = req;
    both.problemText = "problem x";
    EXPECT_FALSE(validateRequest(both, &err));

    JobRequest neither;
    EXPECT_FALSE(validateRequest(neither, &err));

    JobRequest badAlgo = req;
    badAlgo.algorithm = "grover";
    EXPECT_FALSE(validateRequest(badAlgo, &err));
    EXPECT_NE(err.find("grover"), std::string::npos);

    JobRequest badExec = req;
    badExec.execution = "warp";
    EXPECT_FALSE(validateRequest(badExec, &err));

    JobRequest badFault = req;
    badFault.faultRate = 1.5;
    EXPECT_FALSE(validateRequest(badFault, &err));
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(Admission, RejectsWithSpecificReasons)
{
    AdmissionLimits limits;
    limits.maxQueuedJobs = 2;
    limits.maxQubits = 10;
    limits.maxShotsPerJob = 4096;
    limits.maxIterationsPerJob = 100;
    AdmissionController gate(limits);

    JobRequest req;
    req.benchmark = "F1";
    req.iterations = 10;
    req.execution = "sampled";
    req.shots = 512;

    EXPECT_TRUE(gate.admit(req, 8).admitted);

    AdmissionDecision qubits = gate.admit(req, 12);
    EXPECT_FALSE(qubits.admitted);
    EXPECT_NE(qubits.reason.find("12 variables"), std::string::npos);

    JobRequest bigShots = req;
    bigShots.shots = 8192;
    AdmissionDecision shots = gate.admit(bigShots, 8);
    EXPECT_FALSE(shots.admitted);
    EXPECT_NE(shots.reason.find("shots"), std::string::npos);

    JobRequest manyIters = req;
    manyIters.iterations = 1000;
    AdmissionDecision iters = gate.admit(manyIters, 8);
    EXPECT_FALSE(iters.admitted);
    EXPECT_NE(iters.reason.find("iterations"), std::string::npos);

    // Fill the queue; the next admit bounces with backpressure.
    EXPECT_TRUE(gate.admit(req, 8).admitted);
    AdmissionDecision full = gate.admit(req, 8);
    EXPECT_FALSE(full.admitted);
    EXPECT_NE(full.reason.find("queue full"), std::string::npos);

    // Draining a job frees the slot.
    gate.release();
    EXPECT_TRUE(gate.admit(req, 8).admitted);
}

TEST(Admission, CostBudgetsBoundJobAndBatch)
{
    JobRequest req;
    req.benchmark = "F1";
    req.iterations = 100;
    req.execution = "sampled";
    req.shots = 1024;
    double one = estimateJobCost(req, 8);
    ASSERT_GT(one, 0.0);

    AdmissionLimits limits;
    limits.maxJobCostUnits = one * 0.5;
    AdmissionController perJob(limits);
    AdmissionDecision d = perJob.admit(req, 8);
    EXPECT_FALSE(d.admitted);
    EXPECT_NE(d.reason.find("per-job budget"), std::string::npos);

    limits.maxJobCostUnits = one * 10;
    limits.maxBatchCostUnits = one * 2.5;
    AdmissionController batch(limits);
    EXPECT_TRUE(batch.admit(req, 8).admitted);
    EXPECT_TRUE(batch.admit(req, 8).admitted);
    AdmissionDecision third = batch.admit(req, 8);
    EXPECT_FALSE(third.admitted);
    EXPECT_NE(third.reason.find("batch cost budget"), std::string::npos);
}

TEST(Admission, ExactExecutionCostGrowsWithVariables)
{
    JobRequest req;
    req.benchmark = "F1";
    req.execution = "exact";
    EXPECT_GT(estimateJobCost(req, 20), estimateJobCost(req, 10));
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

namespace {

/** Tiny mixed workload that still produces repeat work (cache hits). */
std::vector<JobRequest>
tinyWorkload()
{
    std::vector<JobRequest> reqs;
    const char *benchmarks[] = {"F1", "K1", "F1", "J1", "F1", "K1"};
    for (int i = 0; i < 6; ++i) {
        JobRequest req;
        req.id = "t" + std::to_string(i);
        req.benchmark = benchmarks[i];
        req.iterations = 8;
        req.execution = (i % 2 == 0) ? "exact" : "sampled";
        req.shots = 256;
        reqs.push_back(req);
    }
    return reqs;
}

std::vector<std::string>
runBatch(const std::vector<JobRequest> &reqs, int threads,
         std::shared_ptr<ArtifactCache> cache = nullptr)
{
    ServeOptions options;
    options.threads = threads;
    BatchScheduler scheduler(options, std::move(cache));
    for (const JobRequest &req : reqs)
        scheduler.submit(req);
    scheduler.runAll();
    std::vector<std::string> lines;
    for (const JobResult &result : scheduler.results())
        lines.push_back(writeResult(result));
    return lines;
}

} // namespace

TEST(Scheduler, ResultsAreByteIdenticalAcrossThreadCounts)
{
    std::vector<JobRequest> reqs = tinyWorkload();
    std::vector<std::string> t1 = runBatch(reqs, 1);
    std::vector<std::string> t2 = runBatch(reqs, 2);
    std::vector<std::string> t7 = runBatch(reqs, 7);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t7);
    parallel::setThreadCount(0); // restore env-derived config
}

TEST(Scheduler, ResultsAreIndependentOfSubmissionOrder)
{
    std::vector<JobRequest> reqs = tinyWorkload();
    std::vector<std::string> forward = runBatch(reqs, 2);

    std::vector<JobRequest> reversed(reqs.rbegin(), reqs.rend());
    std::vector<std::string> backward = runBatch(reversed, 2);

    // Same per-id payload either way; only the line order follows the
    // submission order.
    std::sort(forward.begin(), forward.end());
    std::sort(backward.begin(), backward.end());
    EXPECT_EQ(forward, backward);
    parallel::setThreadCount(0);
}

TEST(Scheduler, WarmCacheHitsDoNotChangeResults)
{
    std::vector<JobRequest> reqs = tinyWorkload();
    auto cache = std::make_shared<ArtifactCache>(64ull << 20);
    std::vector<std::string> cold = runBatch(reqs, 2, cache);
    uint64_t missesAfterCold = cache->stats().misses;
    EXPECT_GT(cache->stats().hits, 0u); // repeats inside the batch

    std::vector<std::string> warm = runBatch(reqs, 2, cache);
    EXPECT_EQ(cold, warm);
    // The warm batch recomputed nothing the cold batch already built.
    EXPECT_EQ(cache->stats().misses, missesAfterCold);
    parallel::setThreadCount(0);
}

TEST(Scheduler, RepeatJobWithDifferentIdSharesSeedAndHash)
{
    JobRequest a;
    a.id = "first";
    a.benchmark = "F1";
    a.iterations = 6;
    JobRequest b = a;
    b.id = "second";

    ServeOptions options;
    options.threads = 1;
    BatchScheduler scheduler(options);
    scheduler.submit(a);
    scheduler.submit(b);
    scheduler.runAll();
    const std::vector<JobResult> &results = scheduler.results();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].childSeed, results[1].childSeed);
    EXPECT_EQ(results[0].resultHash, results[1].resultHash);
    EXPECT_EQ(results[0].solution, results[1].solution);
    // The second job's pipeline came from the cache.
    EXPECT_GT(results[1].telemetry.cacheHits +
                  results[0].telemetry.cacheHits,
              0u);
    parallel::setThreadCount(0);
}

TEST(Scheduler, BatchSeedChangesChildSeeds)
{
    JobRequest req;
    req.id = "x";
    req.benchmark = "F1";
    req.iterations = 5;

    uint64_t seeds[2];
    for (int i = 0; i < 2; ++i) {
        ServeOptions options;
        options.threads = 1;
        options.batchSeed = static_cast<uint64_t>(i);
        BatchScheduler scheduler(options);
        scheduler.submit(req);
        scheduler.runAll();
        seeds[i] = scheduler.results()[0].childSeed;
    }
    EXPECT_NE(seeds[0], seeds[1]);
    parallel::setThreadCount(0);
}

TEST(Scheduler, RejectedJobsGetReasonsAndDoNotRun)
{
    ServeOptions options;
    options.threads = 1;
    options.limits.maxQubits = 4; // everything in the suite is larger
    BatchScheduler scheduler(options);

    JobRequest req;
    req.id = "too-big";
    req.benchmark = "F1";
    scheduler.submit(req);

    JobRequest bogus;
    bogus.id = "no-such";
    bogus.benchmark = "Z9";
    scheduler.submit(bogus);

    JobRequest badProblem;
    badProblem.id = "bad-text";
    badProblem.problemText = "this is not a problem file";
    scheduler.submit(badProblem);

    EXPECT_EQ(scheduler.admittedJobs(), 0u);
    scheduler.runAll();
    const std::vector<JobResult> &results = scheduler.results();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].accepted);
    EXPECT_NE(results[0].rejectReason.find("variables"),
              std::string::npos);
    EXPECT_FALSE(results[1].accepted);
    EXPECT_NE(results[1].rejectReason.find("Z9"), std::string::npos);
    EXPECT_FALSE(results[2].accepted);
    EXPECT_NE(results[2].rejectReason.find("parse error"),
              std::string::npos);
}

TEST(Scheduler, BaselineJobsRunAndReportFeasibleSolutions)
{
    JobRequest req;
    req.id = "base";
    req.benchmark = "F1";
    req.algorithm = "chocoq";
    req.iterations = 5;
    req.layers = 2;
    req.shots = 128;

    ServeOptions options;
    options.threads = 1;
    BatchScheduler scheduler(options);
    scheduler.submit(req);
    scheduler.runAll();
    const JobResult &result = scheduler.results()[0];
    ASSERT_TRUE(result.accepted);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_FALSE(result.solution.empty());

    problems::Problem problem = problems::makeBenchmark("F1", 0);
    EXPECT_TRUE(problem.isFeasible(
        BitVec::fromString(result.solution)));
}

// ---------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------

TEST(Workload, DeterministicAndValid)
{
    std::vector<JobRequest> a = generateWorkload(25, 3);
    std::vector<JobRequest> b = generateWorkload(25, 3);
    ASSERT_EQ(a.size(), 25u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(writeRequest(a[i]), writeRequest(b[i]));
        std::string err;
        EXPECT_TRUE(validateRequest(a[i], &err)) << err;
    }
    EXPECT_NE(writeRequest(generateWorkload(25, 4)[0]),
              writeRequest(a[0]));
}

// ---------------------------------------------------------------------
// LineReader hardening
// ---------------------------------------------------------------------

TEST(LineReader, ReadsLinesSkipsEmptiesAndStripsCr)
{
    std::istringstream in("first\r\n\n\nsecond\nthird\n");
    LineReader reader(in);
    LineReader::Line line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_TRUE(line.ok);
    EXPECT_EQ(line.text, "first");
    EXPECT_EQ(line.number, 1u);
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "second");
    EXPECT_EQ(line.number, 4u); // empty lines count toward numbering
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.text, "third");
    EXPECT_FALSE(reader.next(line));
    EXPECT_EQ(reader.emptyLines(), 2u);
    EXPECT_EQ(reader.linesRead(), 5u); // physical lines, empties included
}

TEST(LineReader, OversizedLineIsReportedNotBuffered)
{
    std::string big(4096, 'x');
    std::istringstream in(big + "\nok\n");
    LineReader reader(in, 64);
    LineReader::Line line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_FALSE(line.ok);
    EXPECT_TRUE(line.oversized);
    EXPECT_TRUE(line.text.empty()); // contents dropped, not ballooned
    ASSERT_TRUE(reader.next(line)); // stream recovers at the newline
    EXPECT_TRUE(line.ok);
    EXPECT_EQ(line.text, "ok");
    EXPECT_EQ(reader.oversizedLines(), 1u);
}

TEST(LineReader, TornFinalLineIsFlaggedTruncated)
{
    std::istringstream in("complete\n{\"type\":\"done\",\"se");
    LineReader reader(in);
    LineReader::Line line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_TRUE(line.ok);
    ASSERT_TRUE(reader.next(line));
    EXPECT_FALSE(line.ok);
    EXPECT_TRUE(line.truncated);
    EXPECT_FALSE(reader.next(line));
    EXPECT_EQ(reader.truncatedLines(), 1u);
}

// ---------------------------------------------------------------------
// Scheduling metadata and graceful stop
// ---------------------------------------------------------------------

TEST(Jsonl, SchedulingFieldsRoundTripAndStayOffTheWire)
{
    JobRequest req;
    req.id = "sched";
    req.benchmark = "F1";
    // Defaults are omitted from the wire format (byte compatibility
    // with pre-daemon request files).
    EXPECT_EQ(writeRequest(req).find("priority"), std::string::npos);
    EXPECT_EQ(writeRequest(req).find("deadline_ms"), std::string::npos);

    req.priority = "interactive";
    req.deadlineMs = 1500.0;
    req.timeoutMs = 900.0;
    RequestParseResult parsed = parseRequest(writeRequest(req));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.request.priority, "interactive");
    EXPECT_DOUBLE_EQ(parsed.request.deadlineMs, 1500.0);
    EXPECT_DOUBLE_EQ(parsed.request.timeoutMs, 900.0);

    std::string err;
    req.priority = "urgent";
    EXPECT_FALSE(validateRequest(req, &err));
    req.priority = "batch";
    req.deadlineMs = -5.0;
    EXPECT_FALSE(validateRequest(req, &err));
}

TEST(Jsonl, SchedulingFieldsDoNotChangeTheCanonicalText)
{
    JobRequest a;
    a.benchmark = "F1";
    JobRequest b = a;
    b.priority = "interactive";
    b.deadlineMs = 10.0;
    b.timeoutMs = 20.0;
    // Urgency shapes WHEN a job runs, never WHAT it computes: the
    // canonical text (and therefore child seed and results) must agree.
    EXPECT_EQ(canonicalRequestText(a, "p"), canonicalRequestText(b, "p"));
}

TEST(Scheduler, StopFlagInterruptsUnstartedJobsGracefully)
{
    ServeOptions options;
    std::atomic<bool> stop{true}; // tripped before the batch starts
    options.stopFlag = &stop;
    BatchScheduler scheduler(options);
    JobRequest req;
    req.benchmark = "F1";
    req.iterations = 5;
    for (int i = 0; i < 3; ++i) {
        req.id = "job-" + std::to_string(i);
        scheduler.submit(req);
    }
    scheduler.runAll();
    EXPECT_EQ(scheduler.interruptedJobs(), 3u);
    for (const JobResult &r : scheduler.results()) {
        EXPECT_TRUE(r.accepted);
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("interrupted"), std::string::npos);
        EXPECT_NE(r.childSeed, 0u); // identity fields still filled
    }
}

// ---------------------------------------------------------------------
// Distributed trace ids
// ---------------------------------------------------------------------

TEST(Jsonl, TraceHintRoundTripsAndStaysOffTheCanonicalText)
{
    JobRequest req;
    req.id = "traced";
    req.benchmark = "F1";
    // No hint -> no "trace" key on the wire (byte compatibility with
    // pre-tracing request files).
    EXPECT_EQ(writeRequest(req).find("\"trace\":"), std::string::npos);

    req.traceHint = "00112233445566778899aabbccddeeff";
    const std::string line = writeRequest(req);
    EXPECT_NE(line.find("\"trace\":\"00112233445566778899aabbccddeeff\""),
              std::string::npos);
    RequestParseResult parsed = parseRequest(line);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.request.traceHint, req.traceHint);

    // Like priority/tune, the trace id says WHO IS WATCHING a job, not
    // WHAT it computes: the canonical text (and therefore the child
    // seed and every result byte) must not see it.
    JobRequest bare = req;
    bare.traceHint.clear();
    EXPECT_EQ(canonicalRequestText(bare, "p"),
              canonicalRequestText(req, "p"));
}

TEST(Scheduler, TraceIdsMintedDeterministicallyAndMirroredInTelemetry)
{
    auto runOnce = [](const std::string &hint) {
        ServeOptions options;
        options.threads = 1;
        BatchScheduler scheduler(options);
        JobRequest req;
        req.id = "t0";
        req.benchmark = "F1";
        req.iterations = 5;
        req.traceHint = hint;
        scheduler.submit(req);
        scheduler.runAll();
        return scheduler.results()[0];
    };

    // Minted unconditionally (tracing enabled or not) so telemetry
    // bytes never depend on whether anyone was watching.
    JobResult a = runOnce("");
    ASSERT_EQ(a.telemetry.traceId.size(), 32u);
    EXPECT_EQ(a.telemetry.traceId.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_NE(writeTelemetry(a).find("\"trace_id\":\"" +
                                     a.telemetry.traceId + "\""),
              std::string::npos);
    // Result lines carry no trace id at all: WHO IS WATCHING must not
    // reach the bytes consumers diff.
    EXPECT_EQ(writeResult(a).find("trace_id"), std::string::npos);

    // Content-derived: the same request mints the same id across runs.
    JobResult b = runOnce("");
    EXPECT_EQ(a.telemetry.traceId, b.telemetry.traceId);

    // A propagated hint (the cluster coordinator's mint) wins verbatim.
    JobResult c = runOnce("ffeeddccbbaa99887766554433221100");
    EXPECT_EQ(c.telemetry.traceId, "ffeeddccbbaa99887766554433221100");
    // And never perturbs the computation.
    EXPECT_EQ(writeResult(c), writeResult(a));
}

TEST(Scheduler, ResultBytesIdenticalWithTracingOn)
{
    std::vector<JobRequest> reqs = tinyWorkload();
    std::vector<std::string> off = runBatch(reqs, 2);

    obs::clearTrace();
    obs::startTracing();
    std::vector<std::string> on = runBatch(reqs, 2);
    obs::stopTracing();
    EXPECT_GT(obs::traceEventCount(), 0u);
    obs::clearTrace();

    EXPECT_EQ(off, on);
    parallel::setThreadCount(0);
}

TEST(Scheduler, PerJobTimeoutSurfacesDeadlineTelemetry)
{
    ServeOptions options;
    BatchScheduler scheduler(options);
    JobRequest req;
    req.id = "tight";
    req.benchmark = "K1";
    req.iterations = 50;
    req.timeoutMs = 1e-6; // expires before the first checkpoint
    scheduler.submit(req);
    scheduler.runAll();
    const JobResult &r = scheduler.results()[0];
    ASSERT_TRUE(r.accepted);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("deadline"), std::string::npos);
    EXPECT_TRUE(r.telemetry.deadlineHit);
}
