/**
 * @file
 * Distributed solve cluster tests: wire-protocol framing (round trips,
 * incremental feeds, poisoning, random-bytes fuzz), message schema
 * validation, deterministic placement, process-fault-plan parsing,
 * coordinator/scheduler screening parity, and loopback end-to-end runs
 * -- including a worker lost mid-batch -- whose merged output must be
 * byte-identical to a single-process BatchScheduler.
 *
 * End-to-end cases run real workers as in-process threads over
 * socketpairs: the shared simulation pool serializes concurrent batch
 * runs behind its run mutex, so loopback workers are safe (and
 * TSan-clean) without forking.  Process-level SIGKILL coverage lives in
 * the CI cluster-smoke job, which drives the rasengan_clusterd binary.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/placement.h"
#include "cluster/protocol.h"
#include "cluster/worker.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "exec/faults.h"
#include "serve/admission.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "serve/workload.h"

using namespace rasengan;
using namespace rasengan::cluster;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(Framing, RoundTripsPayloadsIncludingBinary)
{
    std::vector<std::string> payloads = {
        "", "x", "{\"type\":\"bye\"}", std::string("nul\0inside", 10),
        std::string(100000, 'q') + "\n\n\n"};
    std::string stream;
    for (const auto &p : payloads)
        stream += frame(p);

    // Feed one byte at a time: the decoder must never need lookahead.
    FrameDecoder decoder;
    std::vector<std::string> decoded;
    std::string payload;
    for (char c : stream) {
        decoder.feed(&c, 1);
        while (decoder.next(payload))
            decoded.push_back(payload);
    }
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_EQ(decoded, payloads);
    EXPECT_EQ(decoder.framesDecoded(), payloads.size());
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

TEST(Framing, OversizedLengthPoisonsBeforeBuffering)
{
    FrameDecoder decoder(1024);
    std::string header = "99999999\n";
    decoder.feed(header.data(), header.size());
    std::string payload;
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_TRUE(decoder.corrupt());
    EXPECT_NE(decoder.corruptReason().find("exceeds"), std::string::npos);

    // Poison is permanent: even a valid frame afterwards is refused.
    std::string good = frame("{}");
    decoder.feed(good.data(), good.size());
    EXPECT_FALSE(decoder.next(payload));
}

TEST(Framing, MalformedHeadersPoison)
{
    {
        FrameDecoder decoder;
        std::string bad = "12a\n";
        decoder.feed(bad.data(), bad.size());
        std::string payload;
        EXPECT_FALSE(decoder.next(payload));
        EXPECT_TRUE(decoder.corrupt());
    }
    {
        FrameDecoder decoder;
        std::string bad = "\npayload";
        decoder.feed(bad.data(), bad.size());
        std::string payload;
        EXPECT_FALSE(decoder.next(payload));
        EXPECT_TRUE(decoder.corrupt());
    }
    {
        // Payload not terminated by newline: a torn or corrupt write.
        FrameDecoder decoder;
        std::string bad = "2\nabX";
        decoder.feed(bad.data(), bad.size());
        std::string payload;
        EXPECT_FALSE(decoder.next(payload));
        EXPECT_TRUE(decoder.corrupt());
    }
}

TEST(Framing, RandomBytesFuzzNeverOverBuffers)
{
    // Random garbage must either decode or poison -- never crash, and
    // never buffer more than the frame cap plus a small header.
    Rng rng(20260809);
    for (int round = 0; round < 200; ++round) {
        FrameDecoder decoder(4096);
        std::string chunk;
        for (int i = 0; i < 512; ++i)
            chunk.push_back(
                static_cast<char>(rng.uniformInt(0, 255)));
        decoder.feed(chunk.data(), chunk.size());
        std::string payload;
        while (decoder.next(payload)) {
        }
        EXPECT_LE(decoder.bufferedBytes(), 4096u + 16u);
    }
}

TEST(Framing, FuzzedFrameStreamsRoundTrip)
{
    // Frames of random binary payloads, fed in random-size chunks, must
    // reproduce the payload sequence exactly.
    Rng rng(7);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::string> payloads;
        std::string stream;
        int count = static_cast<int>(rng.uniformInt(1, 8));
        for (int i = 0; i < count; ++i) {
            std::string p;
            int len = static_cast<int>(rng.uniformInt(0, 300));
            for (int b = 0; b < len; ++b)
                p.push_back(static_cast<char>(rng.uniformInt(0, 255)));
            payloads.push_back(p);
            stream += frame(p);
        }
        FrameDecoder decoder;
        std::vector<std::string> decoded;
        size_t pos = 0;
        std::string payload;
        while (pos < stream.size()) {
            size_t n = static_cast<size_t>(rng.uniformInt(
                1, static_cast<int64_t>(stream.size() - pos)));
            decoder.feed(stream.data() + pos, n);
            pos += n;
            while (decoder.next(payload))
                decoded.push_back(payload);
        }
        ASSERT_FALSE(decoder.corrupt());
        EXPECT_EQ(decoded, payloads);
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

TEST(Messages, HelloRoundTripsFullSixtyFourBitSeed)
{
    Message hello;
    hello.type = "hello";
    hello.version = kProtocolVersion;
    hello.worker = 3;
    // Above 2^53: a double would silently round this.
    hello.batchSeed = (1ull << 63) + 12345u;
    hello.threads = 4;
    hello.cacheBudgetBytes = 64ull << 20;
    hello.fault = "kill-after:7";

    MessageParseResult parsed = parseMessage(encodeMessage(hello));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.msg.worker, 3);
    EXPECT_EQ(parsed.msg.batchSeed, (1ull << 63) + 12345u);
    EXPECT_EQ(parsed.msg.threads, 4);
    EXPECT_EQ(parsed.msg.cacheBudgetBytes, 64ull << 20);
    EXPECT_EQ(parsed.msg.fault, "kill-after:7");
}

TEST(Messages, AllTypesRoundTrip)
{
    Message job;
    job.type = "job";
    job.index = 17;
    job.request = "{\"id\":\"a\",\"benchmark\":\"F1\"}";
    MessageParseResult parsed = parseMessage(encodeMessage(job));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.msg.index, 17u);
    EXPECT_EQ(parsed.msg.request, job.request);

    Message result;
    result.type = "result";
    result.index = 4;
    result.result = "{\"id\":\"a\",\"ok\":true}";
    result.telemetry = "{\"id\":\"a\",\"wall_ms\":1.5}";
    parsed = parseMessage(encodeMessage(result));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.msg.result, result.result);
    EXPECT_EQ(parsed.msg.telemetry, result.telemetry);

    Message done;
    done.type = "batch_done";
    done.jobs = 9;
    done.cacheHits = 5;
    done.cacheMisses = 4;
    done.metrics = "{\"serve_jobs_total\":9}";
    parsed = parseMessage(encodeMessage(done));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.msg.jobs, 9u);
    EXPECT_EQ(parsed.msg.cacheHits, 5u);
    EXPECT_EQ(parsed.msg.metrics, done.metrics);

    for (const char *type : {"run", "drain", "bye"}) {
        Message m;
        m.type = type;
        m.jobs = 2;
        parsed = parseMessage(encodeMessage(m));
        ASSERT_TRUE(parsed.ok) << parsed.error;
        EXPECT_EQ(parsed.msg.type, type);
    }
}

TEST(Messages, RejectsUnknownTypesAndMissingFields)
{
    EXPECT_FALSE(parseMessage("{\"type\":\"warp\"}").ok);
    EXPECT_FALSE(parseMessage("{\"no_type\":1}").ok);
    EXPECT_FALSE(parseMessage("not json at all").ok);
    // job without its request payload
    EXPECT_FALSE(parseMessage("{\"type\":\"job\",\"index\":1}").ok);
    // hello with a non-numeric seed string
    EXPECT_FALSE(
        parseMessage("{\"type\":\"hello\",\"version\":1,\"worker\":0,"
                     "\"batch_seed\":\"12x\",\"threads\":0,"
                     "\"cache_bytes\":0}")
            .ok);
}

// ---------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------

TEST(Placement, LeastLoadedWinsAndTiesGoToLowestIndex)
{
    Placer placer(3);
    // All empty: tie -> worker 0.
    EXPECT_EQ(placer.place(10.0), 0);
    // 0 has 10; 1 and 2 tie at zero -> worker 1.
    EXPECT_EQ(placer.place(1.0), 1);
    EXPECT_EQ(placer.place(1.0), 2);
    // Loads now 10/1/1: tie between 1 and 2 -> worker 1.
    EXPECT_EQ(placer.place(5.0), 1);
    // Loads 10/6/1 -> worker 2.
    EXPECT_EQ(placer.place(1.0), 2);
    EXPECT_DOUBLE_EQ(placer.loadOf(0), 10.0);
    EXPECT_DOUBLE_EQ(placer.loadOf(1), 6.0);
    EXPECT_DOUBLE_EQ(placer.loadOf(2), 2.0);
}

TEST(Placement, IsDeterministic)
{
    Rng rng(99);
    std::vector<double> costs;
    for (int i = 0; i < 64; ++i)
        costs.push_back(
            static_cast<double>(rng.uniformInt(1, 1000)));
    auto placeAll = [&]() {
        Placer placer(4);
        std::vector<int> where;
        for (double c : costs)
            where.push_back(placer.place(c));
        return where;
    };
    EXPECT_EQ(placeAll(), placeAll());
}

TEST(Placement, DeadWorkersAreNeverChosen)
{
    Placer placer(2);
    placer.markDead(0);
    EXPECT_FALSE(placer.alive(0));
    EXPECT_EQ(placer.aliveCount(), 1u);
    EXPECT_EQ(placer.place(1.0), 1);
    placer.markDead(1);
    EXPECT_EQ(placer.place(1.0), -1);
    // Idempotent death, bogus indices tolerated.
    placer.markDead(1);
    placer.markDead(-1);
    placer.markDead(7);
    EXPECT_EQ(placer.aliveCount(), 0u);
}

// ---------------------------------------------------------------------
// Process fault plans
// ---------------------------------------------------------------------

TEST(ProcessFaults, ParsesSpecsAndRejectsGarbage)
{
    EXPECT_TRUE(exec::parseProcessFaultPlan("").ok);
    EXPECT_FALSE(exec::parseProcessFaultPlan("").plan.enabled());
    EXPECT_TRUE(exec::parseProcessFaultPlan("none").ok);

    exec::ProcessFaultParseResult kill =
        exec::parseProcessFaultPlan("kill-after:3");
    ASSERT_TRUE(kill.ok);
    EXPECT_EQ(kill.plan.action, exec::ProcessFaultPlan::Action::Kill);
    EXPECT_TRUE(kill.plan.triggers(3));
    EXPECT_FALSE(kill.plan.triggers(2));
    EXPECT_FALSE(kill.plan.triggers(4)); // fires exactly once

    exec::ProcessFaultParseResult disc =
        exec::parseProcessFaultPlan("disconnect-after:10");
    ASSERT_TRUE(disc.ok);
    EXPECT_EQ(disc.plan.action,
              exec::ProcessFaultPlan::Action::Disconnect);

    EXPECT_FALSE(exec::parseProcessFaultPlan("kill-after:").ok);
    EXPECT_FALSE(exec::parseProcessFaultPlan("kill-after:x3").ok);
    EXPECT_FALSE(exec::parseProcessFaultPlan("explode-after:3").ok);
}

// ---------------------------------------------------------------------
// Screening parity
// ---------------------------------------------------------------------

TEST(Screening, MatchesSchedulerRejectionBytes)
{
    // Tight limits so the stream mixes rejections into accepted jobs.
    serve::AdmissionLimits limits;
    limits.maxShotsPerJob = 1024;
    limits.maxBatchCostUnits = 3e6;

    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(10, 3);
    requests[2].shots = 4096;           // per-field rejection
    requests[2].execution = "sampled";

    serve::ServeOptions options;
    options.batchSeed = 5;
    options.limits = limits;
    serve::BatchScheduler scheduler(options);
    for (const auto &req : requests)
        scheduler.submit(req);
    scheduler.runAll();

    // Screen the same stream the coordinator's way.
    serve::JobRunner runner(
        serve::RunnerOptions{5, ""},
        std::make_shared<serve::ArtifactCache>(0));
    serve::AdmissionController admission(limits);
    size_t rejected = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
        serve::ScreenedJob screened =
            serve::screenRequest(runner, admission, requests[i]);
        const serve::JobResult &expected = scheduler.results()[i];
        if (!screened.admitted) {
            ++rejected;
            EXPECT_EQ(serve::writeResult(screened.rejection),
                      serve::writeResult(expected));
        } else {
            EXPECT_DOUBLE_EQ(screened.costUnits, expected.costUnits);
        }
    }
    EXPECT_GE(rejected, 1u);
}

// ---------------------------------------------------------------------
// Loopback end-to-end
// ---------------------------------------------------------------------

namespace {

/** Expected single-process result lines for @p requests. */
std::vector<std::string>
singleProcessLines(const std::vector<serve::JobRequest> &requests,
                   uint64_t batchSeed)
{
    serve::ServeOptions options;
    options.batchSeed = batchSeed;
    serve::BatchScheduler scheduler(options);
    for (const auto &req : requests)
        scheduler.submit(req);
    scheduler.runAll();
    std::vector<std::string> lines;
    for (const auto &result : scheduler.results())
        lines.push_back(serve::writeResult(result));
    return lines;
}

struct LoopbackRun
{
    std::vector<std::string> lines;
    CoordinatorStats stats;
    bool ok = false;
    std::string error;
    std::string mergedSignature; ///< "" unless tracing was enabled
    uint64_t spansDropped = 0;
};

/** Run @p requests through a coordinator with @p workers loopback
 *  worker threads over socketpairs. */
LoopbackRun
runLoopback(const std::vector<serve::JobRequest> &requests,
            uint64_t batchSeed, int workers,
            const std::string &faultSpec = "", int faultWorker = -1,
            int threadCount = 0)
{
    LoopbackRun run;
    std::vector<int> coordinatorFds;
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
        int pair[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
            run.error = "socketpair failed";
            return run;
        }
        coordinatorFds.push_back(pair[0]);
        threads.emplace_back([fd = pair[1]]() { runWorker(fd); });
    }

    CoordinatorOptions options;
    options.batchSeed = batchSeed;
    options.threads = threadCount;
    options.faultSpec = faultSpec;
    options.faultWorker = faultWorker;
    options.retry.initialDelaySeconds = 0.0; // no test-time backoff
    options.retry.jitter = 0.0;
    Coordinator coordinator(options, std::move(coordinatorFds));
    for (const auto &req : requests)
        coordinator.submit(req);
    run.ok = coordinator.runAll(&run.error);
    for (auto &t : threads)
        t.join();
    run.lines = coordinator.resultLines();
    run.stats = coordinator.stats();
    run.mergedSignature = coordinator.mergedSignature();
    run.spansDropped = coordinator.shippedSpansDropped();
    return run;
}

} // namespace

TEST(Cluster, MergedOutputByteIdenticalAcrossWorkerCounts)
{
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(8, 11);
    std::vector<std::string> expected = singleProcessLines(requests, 21);
    for (int workers : {1, 2, 3}) {
        LoopbackRun run = runLoopback(requests, 21, workers);
        ASSERT_TRUE(run.ok) << run.error;
        EXPECT_EQ(run.lines, expected)
            << "divergence at " << workers << " workers";
        EXPECT_EQ(run.stats.workersDead, 0u);
    }
}

TEST(Cluster, WorkerLostMidBatchStillMergesIdentically)
{
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(10, 13);
    std::vector<std::string> expected = singleProcessLines(requests, 31);

    // Worker 0 silently drops its connection after two completions; its
    // remaining jobs must be re-placed and the merge stay exact.
    LoopbackRun run =
        runLoopback(requests, 31, 3, "disconnect-after:2", 0);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.lines, expected);
    EXPECT_EQ(run.stats.workersDead, 1u);
    EXPECT_GE(run.stats.jobsReplaced, 1u);
    EXPECT_EQ(run.stats.jobsSynthesized, 0u);
}

TEST(Cluster, AllWorkersLostSynthesizesFailuresNotHangs)
{
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(6, 17);
    // The only worker dies after one job and nothing survives to adopt
    // the orphans: every unfinished slot must complete as a failure.
    LoopbackRun run =
        runLoopback(requests, 1, 1, "disconnect-after:1", 0);
    EXPECT_FALSE(run.ok);
    ASSERT_EQ(run.lines.size(), requests.size());
    for (const auto &line : run.lines)
        EXPECT_FALSE(line.empty());
    EXPECT_EQ(run.stats.workersDead, 1u);
    EXPECT_GE(run.stats.jobsSynthesized, 1u);
    size_t failed = 0;
    for (const auto &line : run.lines) {
        if (line.find("\"ok\":false") != std::string::npos)
            ++failed;
    }
    EXPECT_EQ(failed, run.stats.jobsSynthesized);
}

TEST(Cluster, RejectionsMergeIntoTheirSubmissionSlots)
{
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(6, 23);
    requests[1].shots = 1u << 19;
    requests[1].execution = "sampled"; // too many shots under the cap

    serve::AdmissionLimits limits;
    limits.maxShotsPerJob = 4096;

    serve::ServeOptions serveOptions;
    serveOptions.batchSeed = 2;
    serveOptions.limits = limits;
    serve::BatchScheduler scheduler(serveOptions);
    for (const auto &req : requests)
        scheduler.submit(req);
    scheduler.runAll();
    std::vector<std::string> expected;
    for (const auto &result : scheduler.results())
        expected.push_back(serve::writeResult(result));

    std::vector<int> coordinatorFds;
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        int pair[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
        coordinatorFds.push_back(pair[0]);
        threads.emplace_back([fd = pair[1]]() { runWorker(fd); });
    }
    CoordinatorOptions options;
    options.batchSeed = 2;
    options.limits = limits;
    Coordinator coordinator(options, std::move(coordinatorFds));
    for (const auto &req : requests)
        coordinator.submit(req);
    std::string error;
    ASSERT_TRUE(coordinator.runAll(&error)) << error;
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(coordinator.resultLines(), expected);
    EXPECT_EQ(coordinator.stats().rejected, 1u);
    EXPECT_EQ(coordinator.telemetryLines().size(), requests.size());
}

// ---------------------------------------------------------------------
// Distributed tracing
// ---------------------------------------------------------------------

namespace {

/** RAII: stop tracing, drop events, restore the thread config. */
struct ClusterTraceGuard
{
    ~ClusterTraceGuard()
    {
        obs::stopTracing();
        obs::clearTrace();
        parallel::setThreadCount(0);
    }
};

} // namespace

TEST(ClusterTrace, MergedSignatureInvariantAcrossWorkersAndThreads)
{
    ClusterTraceGuard guard;
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(6, 29);
    std::vector<std::string> expected = singleProcessLines(requests, 37);

    // The stitched span forest must not betray HOW the batch was
    // partitioned: same signature at every worker count and every
    // worker thread count.
    std::string reference;
    for (int workers : {1, 2, 3}) {
        for (int threadCount : {1, 2, 7}) {
            obs::clearTrace();
            obs::startTracing();
            LoopbackRun run = runLoopback(requests, 37, workers, "", -1,
                                          threadCount);
            obs::stopTracing();
            ASSERT_TRUE(run.ok) << run.error;
            EXPECT_EQ(run.lines, expected)
                << workers << " workers, " << threadCount << " threads";
            EXPECT_EQ(run.spansDropped, 0u);
            ASSERT_FALSE(run.mergedSignature.empty());
            // Every job's span made it into the merged forest.
            for (const auto &req : requests)
                EXPECT_NE(run.mergedSignature.find("[" + req.id + "]"),
                          std::string::npos)
                    << req.id;
            if (reference.empty())
                reference = run.mergedSignature;
            EXPECT_EQ(run.mergedSignature, reference)
                << workers << " workers, " << threadCount << " threads";
            obs::clearTrace();
        }
    }
}

TEST(ClusterTrace, TracingDoesNotPerturbResultBytes)
{
    ClusterTraceGuard guard;
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(5, 41);

    obs::stopTracing();
    obs::clearTrace();
    LoopbackRun untraced = runLoopback(requests, 43, 2);
    ASSERT_TRUE(untraced.ok) << untraced.error;
    EXPECT_TRUE(untraced.mergedSignature.empty());

    obs::clearTrace();
    obs::startTracing();
    LoopbackRun traced = runLoopback(requests, 43, 2);
    obs::stopTracing();
    ASSERT_TRUE(traced.ok) << traced.error;
    EXPECT_FALSE(traced.mergedSignature.empty());

    // Observation changes WHAT WE SEE, never WHAT WE COMPUTE.
    EXPECT_EQ(traced.lines, untraced.lines);
}

TEST(ClusterTrace, MergedChromeTraceCarriesEveryWorkerProcess)
{
    ClusterTraceGuard guard;
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(6, 47);

    obs::clearTrace();
    obs::startTracing();

    std::vector<int> coordinatorFds;
    std::vector<std::thread> threads;
    for (int w = 0; w < 3; ++w) {
        int pair[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
        coordinatorFds.push_back(pair[0]);
        threads.emplace_back([fd = pair[1]]() { runWorker(fd); });
    }
    CoordinatorOptions options;
    options.batchSeed = 53;
    Coordinator coordinator(options, std::move(coordinatorFds));
    for (const auto &req : requests)
        coordinator.submit(req);
    std::string error;
    ASSERT_TRUE(coordinator.runAll(&error)) << error;
    for (auto &t : threads)
        t.join();
    obs::stopTracing();

    // Spans arrived from every worker (the placer spreads 6 jobs over
    // 3 idle workers).
    std::vector<obs::ForeignSpans> foreign = coordinator.foreignSpans();
    EXPECT_EQ(foreign.size(), 3u);

    const std::string path =
        ::testing::TempDir() + "cluster_merged_trace.json";
    ASSERT_TRUE(coordinator.writeMergedTrace(path, &error)) << error;
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"coordinator\""), std::string::npos);
    for (int w = 0; w < 3; ++w)
        EXPECT_NE(text.find("\"worker " + std::to_string(w) + "\""),
                  std::string::npos)
            << w;
    // Every job span is attributed to its 128-bit trace id.
    size_t traceIds = 0;
    for (size_t pos = 0;
         (pos = text.find("\"trace_id\":\"", pos)) != std::string::npos;
         ++pos)
        ++traceIds;
    EXPECT_GE(traceIds, requests.size());
}
