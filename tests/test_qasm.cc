/**
 * @file
 * Tests for the QASM dump/parse round trip and the parser's error
 * reporting.
 */

#include <gtest/gtest.h>

#include "circuit/qasm.h"
#include "core/rasengan.h"
#include "problems/suite.h"

namespace rasengan::circuit {
namespace {

void
expectSameGates(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.numQubits(), b.numQubits());
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        EXPECT_EQ(ga.kind, gb.kind) << "gate " << i;
        EXPECT_EQ(ga.controls, gb.controls) << "gate " << i;
        EXPECT_EQ(ga.targets, gb.targets) << "gate " << i;
        EXPECT_NEAR(ga.param, gb.param, 1e-9) << "gate " << i;
    }
}

TEST(Qasm, RoundTripBasicGates)
{
    Circuit c(3);
    c.h(0);
    c.x(1);
    c.rx(2, 0.25);
    c.ry(0, -1.5);
    c.rz(1, 3.125);
    c.p(2, 0.5);
    c.cx(0, 1);
    c.cp(1, 2, 0.75);
    c.swap(0, 2);
    c.barrier();
    c.h(2);

    QasmParseResult res = parseQasm(c.toQasm());
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    expectSameGates(c, *res.circuit);
}

TEST(Qasm, RoundTripMultiControlledPseudoOps)
{
    Circuit c(4);
    c.mcp({0, 1}, 3, 0.875);
    c.mcx({0, 1, 2}, 3);
    QasmParseResult res = parseQasm(c.toQasm());
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    expectSameGates(c, *res.circuit);
}

TEST(Qasm, RoundTripRasenganSegment)
{
    problems::Problem p = problems::makeBenchmark("K1");
    core::RasenganSolver solver(p, {});
    std::vector<double> times(solver.numParams(), 0.4);
    Circuit segment = solver.segmentCircuit(0, p.trivialFeasible(), times);
    QasmParseResult res = parseQasm(segment.toQasm());
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    expectSameGates(segment, *res.circuit);
}

TEST(Qasm, RoundTripMeasureAndReset)
{
    Circuit c(2);
    c.h(0);
    c.measure(0);
    c.reset(1);
    c.h(1);
    std::string text = c.toQasm();
    EXPECT_NE(text.find("creg c[2];"), std::string::npos);
    EXPECT_NE(text.find("measure q[0] -> c[0];"), std::string::npos);
    EXPECT_NE(text.find("reset q[1];"), std::string::npos);
    QasmParseResult res = parseQasm(text);
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    expectSameGates(c, *res.circuit);
}

TEST(Qasm, IgnoresOrdinaryComments)
{
    std::string text = "OPENQASM 2.0;\n"
                       "// a friendly comment\n"
                       "include \"qelib1.inc\";\n"
                       "qreg q[1];\n"
                       "h q[0];\n";
    QasmParseResult res = parseQasm(text);
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    EXPECT_EQ(res.circuit->size(), 1u);
}

TEST(Qasm, ToleratesBlankLinesAndWhitespace)
{
    std::string text = "OPENQASM 2.0;\n\n  qreg q[2];\n   cx  q[0] ,"
                       " q[1] ;\n";
    QasmParseResult res = parseQasm(text);
    ASSERT_TRUE(res.circuit.has_value()) << res.error;
    EXPECT_EQ(res.circuit->countCx(), 1);
}

TEST(Qasm, ReportsMissingHeader)
{
    QasmParseResult res = parseQasm("qreg q[1];\nh q[0];\n");
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_NE(res.error.find("OPENQASM"), std::string::npos);
}

TEST(Qasm, ReportsUnknownGateWithLine)
{
    std::string text = "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n";
    QasmParseResult res = parseQasm(text);
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_EQ(res.errorLine, 3);
}

TEST(Qasm, ReportsGateBeforeQreg)
{
    QasmParseResult res = parseQasm("OPENQASM 2.0;\nh q[0];\n");
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_NE(res.error.find("qreg"), std::string::npos);
}

TEST(Qasm, ReportsOutOfRangeOperand)
{
    QasmParseResult res =
        parseQasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n");
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_EQ(res.errorLine, 3);
}

TEST(Qasm, ReportsMalformedAngle)
{
    QasmParseResult res =
        parseQasm("OPENQASM 2.0;\nqreg q[1];\nrx(oops) q[0];\n");
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_EQ(res.errorLine, 3);
}

TEST(Qasm, ReportsDuplicateQreg)
{
    QasmParseResult res =
        parseQasm("OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\n");
    EXPECT_FALSE(res.circuit.has_value());
    EXPECT_NE(res.error.find("duplicate"), std::string::npos);
}

TEST(Qasm, RejectsHostileQregSizes)
{
    // An absurd register width must be a parse error, never an
    // allocation attempt (OOM guard on untrusted input).
    for (const char *decl : {"qreg q[2000000000];", "qreg q[0];",
                             "qreg q[-3];", "qreg q[5000];"}) {
        QasmParseResult res =
            parseQasm(std::string("OPENQASM 2.0;\n") + decl + "\n");
        EXPECT_FALSE(res.circuit.has_value()) << decl;
        EXPECT_EQ(res.errorLine, 2) << decl;
    }
}

TEST(Qasm, RejectsHostilePseudoOpIndices)
{
    auto parse_pseudo = [](const std::string &pseudo) {
        return parseQasm("OPENQASM 2.0;\nqreg q[3];\n// " + pseudo +
                         "\n");
    };
    QasmParseResult huge =
        parse_pseudo("mcx() controls=[0,1] target=2000000000");
    EXPECT_FALSE(huge.circuit.has_value());
    EXPECT_NE(huge.error.find("target index"), std::string::npos);

    QasmParseResult neg = parse_pseudo("mcx() controls=[-1] target=2");
    EXPECT_FALSE(neg.circuit.has_value());
    EXPECT_NE(neg.error.find("control index"), std::string::npos);

    QasmParseResult self = parse_pseudo("mcp(0.5) controls=[2] target=2");
    EXPECT_FALSE(self.circuit.has_value());
    EXPECT_NE(self.error.find("control equals target"),
              std::string::npos);
}

} // namespace
} // namespace rasengan::circuit
