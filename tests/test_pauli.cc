/**
 * @file
 * Tests for Pauli strings / Hamiltonians and the QUBO -> Ising mapping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/qubo.h"
#include "problems/suite.h"
#include "qsim/pauli.h"
#include "qsim/statevector.h"

namespace rasengan::qsim {
namespace {

TEST(PauliString, LabelRoundTrip)
{
    PauliString p = PauliString::fromLabel("XZIY");
    EXPECT_EQ(p.numQubits(), 4);
    EXPECT_EQ(p.op(0), PauliOp::X);
    EXPECT_EQ(p.op(1), PauliOp::Z);
    EXPECT_EQ(p.op(2), PauliOp::I);
    EXPECT_EQ(p.op(3), PauliOp::Y);
    EXPECT_EQ(p.label(), "XZIY");
    EXPECT_EQ(p.weight(), 3);
    EXPECT_FALSE(p.isDiagonal());
    EXPECT_TRUE(PauliString::fromLabel("IZZI").isDiagonal());
}

TEST(PauliString, XFlipsBasisState)
{
    Statevector sv(2, BitVec::fromString("00"));
    PauliString::fromLabel("XI").applyTo(sv);
    EXPECT_NEAR(sv.probability(BitVec::fromString("10")), 1.0, 1e-12);
}

TEST(PauliString, ZEigenvalues)
{
    PauliString zz = PauliString::fromLabel("ZZ");
    EXPECT_EQ(zz.diagonalEigenvalue(BitVec::fromString("00")), 1);
    EXPECT_EQ(zz.diagonalEigenvalue(BitVec::fromString("10")), -1);
    EXPECT_EQ(zz.diagonalEigenvalue(BitVec::fromString("11")), 1);
}

TEST(PauliString, ExpectationOnPlusState)
{
    // <+|X|+> = 1, <+|Z|+> = 0.
    Statevector plus(1);
    plus.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    EXPECT_NEAR(PauliString::fromLabel("X").expectation(plus), 1.0, 1e-12);
    EXPECT_NEAR(PauliString::fromLabel("Z").expectation(plus), 0.0, 1e-12);
}

TEST(PauliString, YExpectationAfterRx)
{
    // RX(theta)|0>: <Y> = -sin(theta).
    double theta = 0.7;
    Statevector sv(1);
    sv.apply1q(0, gateMatrix(circuit::GateKind::RX, theta));
    EXPECT_NEAR(PauliString::fromLabel("Y").expectation(sv),
                -std::sin(theta), 1e-12);
}

TEST(PauliHamiltonian, MergesIdenticalTerms)
{
    PauliHamiltonian h(2);
    h.addTerm(0.5, PauliString::fromLabel("ZI"));
    h.addTerm(0.25, PauliString::fromLabel("ZI"));
    EXPECT_EQ(h.termCount(), 1u);
    EXPECT_NEAR(h.terms()[0].first, 0.75, 1e-12);
}

TEST(PauliHamiltonian, DiagonalValueAndEvolution)
{
    PauliHamiltonian h(2);
    h.addTerm(1.0, PauliString::fromLabel("ZI"));
    h.addTerm(2.0, PauliString::fromLabel("ZZ"));
    EXPECT_TRUE(h.isDiagonal());
    EXPECT_NEAR(h.diagonalValue(BitVec::fromString("00")), 3.0, 1e-12);
    EXPECT_NEAR(h.diagonalValue(BitVec::fromString("10")), -3.0, 1e-12);

    // e^{-iHt} on a superposition leaves probabilities alone.
    Statevector sv(2);
    sv.apply1q(0, gateMatrix(circuit::GateKind::H, 0.0));
    double p0 = sv.probability(BitVec::fromString("00"));
    h.applyDiagonalEvolution(sv, 0.37);
    EXPECT_NEAR(sv.probability(BitVec::fromString("00")), p0, 1e-12);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(PauliHamiltonian, RejectsNonDiagonalEvolution)
{
    PauliHamiltonian h(1);
    h.addTerm(1.0, PauliString::fromLabel("X"));
    Statevector sv(1);
    EXPECT_DEATH(h.applyDiagonalEvolution(sv, 0.1), "");
}

TEST(IsingMapping, MatchesQuboOnEveryBasisState)
{
    problems::Problem p = problems::makeBenchmark("J1");
    problems::QuadraticObjective f =
        baselines::penaltyQubo(p, 3.0);
    PauliHamiltonian h = baselines::isingHamiltonian(f, p.numVars());
    EXPECT_TRUE(h.isDiagonal());
    for (uint64_t idx = 0; idx < (uint64_t{1} << p.numVars()); idx += 3) {
        BitVec x = BitVec::fromIndex(idx);
        EXPECT_NEAR(h.diagonalValue(x), f.eval(x), 1e-9)
            << "basis " << idx;
    }
}

TEST(IsingMapping, ExpectationMatchesDiagonalAverage)
{
    problems::Problem p = problems::makeBenchmark("S1");
    problems::QuadraticObjective f = baselines::penaltyQubo(p, 2.0);
    PauliHamiltonian h = baselines::isingHamiltonian(f, p.numVars());

    Statevector sv(p.numVars());
    for (int q = 0; q < p.numVars(); ++q)
        sv.apply1q(q, gateMatrix(circuit::GateKind::H, 0.0));
    // <+...+| H |+...+> = average of f over all bitstrings.
    double avg = 0.0;
    for (uint64_t idx = 0; idx < sv.dimension(); ++idx)
        avg += f.eval(BitVec::fromIndex(idx));
    avg /= static_cast<double>(sv.dimension());
    EXPECT_NEAR(h.expectation(sv), avg, 1e-9);
}

TEST(IsingMapping, LinearOnlyObjective)
{
    problems::QuadraticObjective f(2);
    f.addConstant(1.0);
    f.addLinear(0, 2.0);
    PauliHamiltonian h = baselines::isingHamiltonian(f, 2);
    EXPECT_NEAR(h.diagonalValue(BitVec::fromString("00")), 1.0, 1e-12);
    EXPECT_NEAR(h.diagonalValue(BitVec::fromString("10")), 3.0, 1e-12);
}

} // namespace
} // namespace rasengan::qsim
