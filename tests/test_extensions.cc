/**
 * @file
 * Tests for the beyond-paper extensions: the TSP (route optimization)
 * family, and readout mitigation integrated into the Rasengan segment
 * loop.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/rasengan.h"
#include "linalg/unimodular.h"
#include "problems/metrics.h"
#include "problems/suite.h"
#include "problems/tsp.h"

namespace rasengan {
namespace {

using problems::makeTsp;
using problems::TspConfig;

TEST(Tsp, FeasibleSetIsPermutations)
{
    Rng rng(3);
    TspConfig config{.cities = 3};
    problems::Problem p = makeTsp("tsp3", config, rng);
    EXPECT_EQ(p.numVars(), 9);
    EXPECT_EQ(p.feasibleCount(), 6u); // 3! tours
    for (const BitVec &x : p.feasibleSolutions()) {
        // One city per position and one position per city.
        for (int c = 0; c < 3; ++c) {
            int count = 0;
            for (int pos = 0; pos < 3; ++pos)
                count += x.get(problems::tspVar(config, c, pos)) ? 1 : 0;
            EXPECT_EQ(count, 1);
        }
    }
}

TEST(Tsp, AssignmentMatrixIsTotallyUnimodular)
{
    Rng rng(5);
    problems::Problem p = makeTsp("tsp3-tu", {.cities = 3}, rng);
    EXPECT_TRUE(linalg::isTotallyUnimodular(p.constraints()));
}

TEST(Tsp, SymmetricDistancesGiveReversalInvariantCost)
{
    Rng rng(9);
    TspConfig config{.cities = 4, .symmetric = true};
    problems::Problem p = makeTsp("tsp4", config, rng);
    // Reversing a closed tour keeps its cost when distances are
    // symmetric: check on the identity tour and its reversal.
    BitVec forward, backward;
    for (int c = 0; c < 4; ++c) {
        forward.set(problems::tspVar(config, c, c));
        backward.set(problems::tspVar(config, c, (4 - c) % 4));
    }
    ASSERT_TRUE(p.isFeasible(forward));
    ASSERT_TRUE(p.isFeasible(backward));
    EXPECT_NEAR(p.objective(forward), p.objective(backward), 1e-9);
}

TEST(Tsp, ObjectiveIsPositive)
{
    Rng rng(2);
    problems::Problem p = makeTsp("tsp-pos", {.cities = 3}, rng);
    EXPECT_GT(p.optimalValue(), 0.0);
}

TEST(Tsp, RasenganFindsGoodTour)
{
    Rng rng(7);
    problems::Problem p = makeTsp("tsp-solve", {.cities = 3}, rng);
    core::RasenganOptions options;
    options.maxIterations = 150;
    core::RasenganSolver solver(p, options);
    core::RasenganResult res = solver.run();
    ASSERT_FALSE(res.failed);
    EXPECT_TRUE(p.isFeasible(res.solution));
    // The chain covers all 6 tours (assignment matrix is TU).
    EXPECT_EQ(res.feasibleCovered, p.feasibleCount());
    EXPECT_LT(p.arg(res.expectedObjective),
              std::max(problems::meanFeasibleArg(p), 1e-6));
}

TEST(Tsp, FourCitiesCoverAllTours)
{
    Rng rng(11);
    problems::Problem p = makeTsp("tsp4-cover", {.cities = 4}, rng);
    EXPECT_EQ(p.feasibleCount(), 24u);
    core::RasenganSolver solver(p, {});
    EXPECT_EQ(solver.chain().reachableCount, 24u);
}

TEST(ReadoutMitigation, ImprovesRawFeasibleFraction)
{
    problems::Problem p = problems::makeBenchmark("J1");
    auto run_with = [&](bool mitigate) {
        core::RasenganOptions options;
        options.execution =
            core::RasenganOptions::Execution::NoisyGateLevel;
        options.noise.readoutError = 0.05; // readout-only noise
        options.mitigateReadout = mitigate;
        options.shotsPerSegment = 2048;
        options.trajectories = 1;
        options.seed = 4;
        core::RasenganSolver solver(p, options);
        std::vector<double> times(solver.numParams(), 0.5);
        Rng rng(5);
        return solver.execute(times, rng);
    };
    auto raw = run_with(false);
    auto mitigated = run_with(true);
    ASSERT_FALSE(raw.failed);
    ASSERT_FALSE(mitigated.failed);
    EXPECT_GT(mitigated.prePurifyFeasibleFraction,
              raw.prePurifyFeasibleFraction);
}

TEST(ReadoutMitigation, NoOpWithoutReadoutError)
{
    problems::Problem p = problems::makeBenchmark("J1");
    core::RasenganOptions options;
    options.execution = core::RasenganOptions::Execution::SampledSparse;
    options.mitigateReadout = true; // no readout error -> ignored
    core::RasenganSolver solver(p, options);
    std::vector<double> times(solver.numParams(), 0.5);
    Rng rng(6);
    auto dist = solver.execute(times, rng);
    ASSERT_FALSE(dist.failed);
    EXPECT_NEAR(dist.prePurifyFeasibleFraction, 1.0, 1e-9);
}

} // namespace
} // namespace rasengan
