/**
 * @file
 * Tests for the observability layer (src/obs): the metrics registry
 * and its exports, the tracing spans and their determinism guarantees,
 * the clock seam, and the serve-layer telemetry mirroring.
 *
 * The determinism contract under test mirrors the rest of the
 * repository: the *span tree* (categories, names, parentage -- never
 * timestamps or thread ids) of an instrumented solve must be
 * byte-identical at 1, 2 and 7 threads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/rasengan.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "problems/suite.h"
#include "serve/jsonl.h"
#include "serve/scheduler.h"

namespace rasengan {
namespace {

const std::vector<int> kSweep = {1, 2, 7};

/** RAII: restore the env-derived thread configuration on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { parallel::setThreadCount(0); }
};

/** RAII: stop tracing and drop buffered events on scope exit. */
struct TraceGuard
{
    ~TraceGuard()
    {
        obs::stopTracing();
        obs::clearTrace();
    }
};

// ---------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------

TEST(Metrics, CounterBasics)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd)
{
    obs::Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(2.5);
    EXPECT_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_EQ(g.value(), 1.5);
    g.set(-0.0);
    EXPECT_EQ(g.value(), 0.0);
}

TEST(Metrics, RegistryHandsOutStableReferences)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("x_total", "help");
    obs::Counter &b = reg.counter("x_total");
    EXPECT_EQ(&a, &b);

    // Different labels are a different series.
    obs::Counter &c = reg.counter("x_total", "", {{"kind", "y"}});
    EXPECT_NE(&a, &c);

    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
}

// ---------------------------------------------------------------------
// Histogram bucket edges
// ---------------------------------------------------------------------

TEST(Histogram, BucketEdgesArePowersOfTwo)
{
    using H = obs::Histogram;
    // Bucket k has upper bound 2^(k + kMinExp); a value equal to an
    // edge belongs to the bucket whose bound it equals (le semantics).
    const int k1 = -H::kMinExp; // bucket whose upper bound is 2^0 = 1
    EXPECT_EQ(H::bucketUpperBound(k1), 1.0);
    EXPECT_EQ(H::bucketFor(1.0), k1);
    EXPECT_EQ(H::bucketFor(0.75), k1);    // (0.5, 1] -> bound 1
    EXPECT_EQ(H::bucketFor(0.5), k1 - 1); // exactly on the lower edge
    EXPECT_EQ(H::bucketFor(1.5), k1 + 1); // (1, 2] -> bound 2
    EXPECT_EQ(H::bucketFor(2.0), k1 + 1);
    EXPECT_EQ(H::bucketFor(2.0000001), k1 + 2);

    // Values at or below the smallest bound collapse into bucket 0.
    EXPECT_EQ(H::bucketFor(0.0), 0);
    EXPECT_EQ(H::bucketFor(1e-300), 0);
    EXPECT_EQ(H::bucketFor(H::bucketUpperBound(0)), 0);

    // Values beyond the largest finite bound land in the +inf bucket.
    EXPECT_EQ(H::bucketFor(1e300), H::kBuckets - 1);
}

TEST(Histogram, ObserveCountsAndQuantiles)
{
    obs::Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0.0); // empty
    h.observe(0.75); // bucket bound 1
    h.observe(0.75);
    h.observe(3.0);  // bucket bound 4
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 4.5);
    EXPECT_EQ(h.bucketCount(obs::Histogram::bucketFor(0.75)), 2u);
    // Two of three observations fall at or below bound 1.
    EXPECT_EQ(h.quantileUpperBound(0.5), 1.0);
    EXPECT_EQ(h.quantileUpperBound(1.0), 4.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------
// Prometheus / JSON exports
// ---------------------------------------------------------------------

TEST(PromText, EscapesLabelsAndHelp)
{
    EXPECT_EQ(obs::promEscapeLabelValue("a\\b\"c\nd"),
              "a\\\\b\\\"c\\nd");
    EXPECT_EQ(obs::promEscapeHelp("a\\b\nc"), "a\\\\b\\nc");

    obs::Registry reg;
    reg.counter("evil_total", "help with \\ and\nnewline",
                {{"path", "a\"b\\c"}})
        .inc(2);
    const std::string text = reg.promText();
    EXPECT_NE(text.find("# HELP evil_total help with \\\\ and\\nnewline"),
              std::string::npos);
    EXPECT_NE(text.find("evil_total{path=\"a\\\"b\\\\c\"} 2"),
              std::string::npos);
}

TEST(PromText, HistogramExposition)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("lat_ms", "latency");
    h.observe(0.75); // le="1"
    h.observe(0.75);
    h.observe(3.0);  // le="4"
    const std::string text = reg.promText();

    EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
    // Buckets are cumulative and always end in a +Inf bucket.
    EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 2"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"4\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_sum 4.5"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos);
}

TEST(PromText, AnnotatesEachFamilyOnce)
{
    obs::Registry reg;
    reg.counter("family_total", "the help", {{"kind", "a"}}).inc();
    reg.counter("family_total", "the help", {{"kind", "b"}}).inc();
    const std::string text = reg.promText();
    size_t first = text.find("# HELP family_total");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# HELP family_total", first + 1),
              std::string::npos);
}

TEST(JsonText, FlatAndSorted)
{
    obs::Registry reg;
    reg.counter("b_total").inc(2);
    reg.gauge("a_bytes").set(1.5);
    const std::string text = reg.jsonText();
    size_t a = text.find("\"a_bytes\":1.5");
    size_t b = text.find("\"b_total\":2");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b); // sorted keys
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.back(), '\n');
}

// ---------------------------------------------------------------------
// Clock seam
// ---------------------------------------------------------------------

std::atomic<obs::TimeNanos> fakeNow{0};

obs::TimeNanos
fakeTime()
{
    return fakeNow.load(std::memory_order_relaxed);
}

TEST(ClockSeam, StopwatchFollowsPinnedTimeSource)
{
    obs::setTimeSourceForTest(&fakeTime);
    fakeNow = 1'000'000'000; // t = 1 s

    Stopwatch sw;
    sw.start();
    fakeNow = 3'500'000'000; // t = 3.5 s
    sw.stop();
    EXPECT_DOUBLE_EQ(sw.seconds(), 2.5);

    // Accumulation across start/stop cycles.
    sw.start();
    fakeNow = 4'000'000'000;
    EXPECT_DOUBLE_EQ(sw.seconds(), 3.0); // open interval included
    sw.stop();
    EXPECT_DOUBLE_EQ(sw.seconds(), 3.0);

    obs::setTimeSourceForTest(nullptr); // restore steady_clock
    Stopwatch real;
    real.start();
    EXPECT_GE(real.seconds(), 0.0);
}

// ---------------------------------------------------------------------
// Tracing: spans, parentage, export
// ---------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing)
{
    TraceGuard guard;
    obs::clearTrace();
    ASSERT_FALSE(obs::tracingEnabled());
    {
        obs::Span span("cat", "name");
        EXPECT_EQ(span.id(), 0u);
        EXPECT_EQ(obs::currentSpanId(), 0u);
        RASENGAN_PROF("cat", "macro");
    }
    obs::instantEvent("cat", "instant");
    EXPECT_EQ(obs::traceEventCount(), 0u);
    EXPECT_EQ(obs::spanTreeSignature(), "");
}

TEST(Trace, NestedSpansFormATree)
{
    TraceGuard guard;
    obs::clearTrace();
    obs::startTracing();
    {
        obs::Span outer("solver", "outer");
        EXPECT_NE(outer.id(), 0u);
        EXPECT_EQ(obs::currentSpanId(), outer.id());
        {
            obs::Span inner("kernel", "inner", "d=1");
            EXPECT_EQ(obs::currentSpanId(), inner.id());
        }
        EXPECT_EQ(obs::currentSpanId(), outer.id());
        obs::Span sibling("kernel", "also-inner");
    }
    EXPECT_EQ(obs::currentSpanId(), 0u);
    obs::stopTracing();
    EXPECT_EQ(obs::spanTreeSignature(),
              "solver:outer(kernel:also-inner,kernel:inner[d=1])\n");
}

TEST(Trace, ExplicitParentLinksAcrossPoolThreads)
{
    ThreadGuard threads;
    TraceGuard guard;

    std::string reference;
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        obs::clearTrace();
        obs::startTracing();
        {
            obs::Span batch("serve", "batch");
            const obs::SpanId batch_id = batch.id();
            parallel::parallelForDynamic(0, 5, [&](uint64_t i) {
                // Pool threads do not inherit the dispatcher's span
                // stack; the explicit parent re-links the tree.
                obs::Span job("serve", "job", std::to_string(i),
                              batch_id);
            });
        }
        obs::stopTracing();
        const std::string sig = obs::spanTreeSignature();
        EXPECT_EQ(sig,
                  "serve:batch(serve:job[0],serve:job[1],serve:job[2],"
                  "serve:job[3],serve:job[4])\n")
            << "threads=" << tc;
        if (reference.empty())
            reference = sig;
        EXPECT_EQ(sig, reference) << "threads=" << tc;
    }
}

TEST(Trace, SpansWithoutExplicitParentRootOnPoolThreads)
{
    ThreadGuard threads;
    TraceGuard guard;
    parallel::setThreadCount(2);
    obs::clearTrace();
    obs::startTracing();
    {
        obs::Span batch("serve", "batch");
        parallel::parallelForDynamic(0, 2, [&](uint64_t i) {
            obs::Span job("serve", "orphan", std::to_string(i));
        });
    }
    obs::stopTracing();
    const std::string sig = obs::spanTreeSignature();
    // With 2 threads one orphan may run inline on the dispatcher thread
    // (nesting under batch); on a pool thread it becomes a root.  Either
    // way every span is present -- this documents why cross-thread
    // callers must pass the parent explicitly.
    EXPECT_NE(sig.find("serve:batch"), std::string::npos);
    EXPECT_NE(sig.find("serve:orphan[0]"), std::string::npos);
    EXPECT_NE(sig.find("serve:orphan[1]"), std::string::npos);
}

TEST(Trace, ChromeExportIsBalancedAndSorted)
{
    TraceGuard guard;
    obs::clearTrace();
    obs::startTracing();
    {
        obs::Span a("cat", "a");
        { obs::Span b("cat", "b", "x\"y\\z"); } // exercises escaping
        obs::instantEvent("cat", "tick");
    }
    obs::stopTracing();

    const std::string path = ::testing::TempDir() + "trace_obs_test.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    size_t begins = 0, ends = 0, instants = 0;
    std::vector<double> ts;
    for (size_t pos = 0; (pos = text.find("\"ph\":\"", pos)) !=
                         std::string::npos;
         ++pos) {
        switch (text[pos + 6]) {
          case 'B': ++begins; break;
          case 'E': ++ends; break;
          case 'i': ++instants; break;
        }
    }
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
    EXPECT_EQ(instants, 1u);
    // Timestamps are exported sorted (jq checks this in CI too).
    for (size_t pos = 0; (pos = text.find("\"ts\":", pos)) !=
                         std::string::npos;
         ++pos)
        ts.push_back(std::strtod(text.c_str() + pos + 5, nullptr));
    ASSERT_EQ(ts.size(), 5u);
    for (size_t i = 1; i < ts.size(); ++i)
        EXPECT_LE(ts[i - 1], ts[i]);
    // The escaped detail survived the JSON encoder.
    EXPECT_NE(text.find("x\\\"y\\\\z"), std::string::npos);
}

TEST(Trace, SpanEndsRecordedEvenIfTracingStopsMidSpan)
{
    TraceGuard guard;
    obs::clearTrace();
    obs::startTracing();
    {
        obs::Span span("cat", "crosses-stop");
        obs::stopTracing();
    } // destructor must still close the span: B/E stay balanced
    const std::string path = ::testing::TempDir() + "trace_stop_test.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::remove(path.c_str());
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Solver trace determinism across thread counts
// ---------------------------------------------------------------------

TEST(Trace, SolverSpanTreeIdenticalAcrossThreadCounts)
{
    ThreadGuard threads;
    TraceGuard guard;

    problems::Problem p = problems::makeBenchmark("F1");
    core::RasenganOptions opts;
    opts.maxIterations = 8;

    std::string reference;
    for (int tc : kSweep) {
        opts.resilience.threads = tc;
        obs::clearTrace();
        obs::startTracing();
        {
            core::RasenganSolver solver(p, opts);
            core::RasenganResult res = solver.run();
            ASSERT_FALSE(res.failed);
        }
        obs::stopTracing();
        EXPECT_EQ(parallel::threadCount(), tc);
        const std::string sig = obs::spanTreeSignature();
        ASSERT_FALSE(sig.empty());
        if (reference.empty()) {
            reference = sig;
            // The pipeline instruments every stage the acceptance
            // criteria name.
            for (const char *cat :
                 {"linalg:", "transition:", "segment-evolve:", "kernel:",
                  "transpile:", "sample:", "solver:"}) {
                EXPECT_NE(sig.find(cat), std::string::npos)
                    << "missing category " << cat;
            }
            continue;
        }
        EXPECT_EQ(sig, reference) << "threads=" << tc;
    }
}

// ---------------------------------------------------------------------
// Serve telemetry mirrors the registry
// ---------------------------------------------------------------------

TEST(ServeTelemetry, CacheStatsMatchRegistryDeltas)
{
    ThreadGuard threads;
    obs::Registry &reg = obs::Registry::global();
    obs::Counter &hits = reg.counter("serve_cache_hits_total");
    obs::Counter &misses = reg.counter("serve_cache_misses_total");
    obs::Counter &completed = reg.counter("serve_jobs_completed_total");

    const uint64_t hits0 = hits.value();
    const uint64_t misses0 = misses.value();
    const uint64_t completed0 = completed.value();

    serve::ServeOptions options;
    options.threads = 2;
    auto cache = std::make_shared<serve::ArtifactCache>(64ull << 20);
    serve::BatchScheduler scheduler(options, cache);
    std::vector<serve::JobRequest> reqs;
    const char *benchmarks[] = {"F1", "F1", "F1", "K1"};
    for (int i = 0; i < 4; ++i) {
        serve::JobRequest req;
        req.id = "obs" + std::to_string(i);
        req.benchmark = benchmarks[i];
        req.iterations = 6;
        req.execution = "exact";
        reqs.push_back(req);
        scheduler.submit(req);
    }
    scheduler.runAll();

    // Every per-instance Stats increment was mirrored into the global
    // registry, so the deltas agree exactly.
    const serve::ArtifactCache::Stats stats = cache->stats();
    EXPECT_EQ(hits.value() - hits0, stats.hits);
    EXPECT_EQ(misses.value() - misses0, stats.misses);
    EXPECT_GT(stats.hits + stats.misses, 0u);
    EXPECT_EQ(completed.value() - completed0, scheduler.admittedJobs());

    // Job latency histograms observed one value per completed job.
    const std::string prom = reg.promText();
    EXPECT_NE(prom.find("serve_job_wall_ms_count"), std::string::npos);
    EXPECT_NE(prom.find("serve_job_queue_wait_ms_count"),
              std::string::npos);
}

TEST(ServeTelemetry, AdmissionCountersMirrorDecisions)
{
    obs::Registry &reg = obs::Registry::global();
    obs::Counter &admitted = reg.counter("serve_admission_admitted_total");
    obs::Counter &rejected = reg.counter("serve_admission_rejected_total");
    const uint64_t admitted0 = admitted.value();
    const uint64_t rejected0 = rejected.value();

    serve::AdmissionLimits limits;
    limits.maxQueuedJobs = 1;
    serve::AdmissionController ctrl(limits);
    serve::JobRequest req;
    req.benchmark = "F1";
    req.iterations = 4;
    EXPECT_TRUE(ctrl.admit(req, 4).admitted);
    EXPECT_FALSE(ctrl.admit(req, 4).admitted); // queue full
    EXPECT_EQ(admitted.value() - admitted0, 1u);
    EXPECT_EQ(rejected.value() - rejected0, 1u);
    EXPECT_EQ(reg.gauge("serve_admission_queued_jobs").value(), 1.0);
    ctrl.release();
    EXPECT_EQ(reg.gauge("serve_admission_queued_jobs").value(), 0.0);
}

// ---------------------------------------------------------------------
// Snapshot import (cluster merge path)
// ---------------------------------------------------------------------

TEST(Metrics, ParseInstrumentKeyInvertsTheRenderedKey)
{
    std::string name;
    obs::Labels labels;

    ASSERT_TRUE(obs::parseInstrumentKey("jobs_total", &name, &labels));
    EXPECT_EQ(name, "jobs_total");
    EXPECT_TRUE(labels.empty());

    ASSERT_TRUE(obs::parseInstrumentKey(
        "depth{queue=\"slow\",worker=\"3\"}", &name, &labels));
    EXPECT_EQ(name, "depth");
    EXPECT_EQ(labels.at("queue"), "slow");
    EXPECT_EQ(labels.at("worker"), "3");

    // Escapes round-trip through the registry's own rendering.
    obs::Registry reg;
    const std::string awkward = "a\"b\\c\nd";
    reg.gauge("g", "", {{"path", awkward}}).set(1.0);
    std::string json = reg.jsonText();
    const std::string::size_type start = json.find("\"g{");
    ASSERT_NE(start, std::string::npos);
    // The rendered series key is itself a JSON string: unescape the
    // JSON layer first, then parse the prom-style key inside it.
    serve::JsonParseResult parsed = serve::parseFlatJson(json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    bool found = false;
    for (const auto &[key, value] : parsed.object) {
        if (key.rfind("g{", 0) != 0)
            continue;
        found = true;
        ASSERT_TRUE(obs::parseInstrumentKey(key, &name, &labels));
        EXPECT_EQ(name, "g");
        EXPECT_EQ(labels.at("path"), awkward);
    }
    EXPECT_TRUE(found);
}

TEST(Metrics, ParseInstrumentKeyRejectsMalformedKeysUntouched)
{
    std::string name = "sentinel";
    obs::Labels labels = {{"keep", "me"}};
    for (const char *bad :
         {"", "x{", "x{k=v}", "x{k=\"v\"", "x{k=\"v\"}trail",
          "{k=\"v\"}", "x{=\"v\"}", "x{k=\"v\\\"}"}) {
        EXPECT_FALSE(obs::parseInstrumentKey(bad, &name, &labels))
            << bad;
        EXPECT_EQ(name, "sentinel") << bad;
        EXPECT_EQ(labels.at("keep"), "me") << bad;
    }
}

TEST(Metrics, ImportFlatPrefixesSeriesAndPinsExtraLabels)
{
    obs::Registry reg;
    std::map<std::string, double> snapshot = {
        {"serve_jobs_total", 9.0},
        // worker="spoof" must lose to the coordinator's own tag.
        {"depth{queue=\"slow\",worker=\"spoof\"}", 2.5},
        {"mangled{oops", 1.0},
    };
    size_t imported = reg.importFlat(snapshot, "cluster_worker_",
                                     {{"worker", "3"}}, "imported");
    EXPECT_EQ(imported, 2u); // the malformed key is skipped

    EXPECT_EQ(reg.gauge("cluster_worker_serve_jobs_total", "",
                        {{"worker", "3"}})
                  .value(),
              9.0);
    EXPECT_EQ(reg.gauge("cluster_worker_depth", "",
                        {{"queue", "slow"}, {"worker", "3"}})
                  .value(),
              2.5);

    // Counters import as gauges: a snapshot is a point, not a stream.
    std::string prom = reg.promText();
    EXPECT_NE(
        prom.find("# TYPE cluster_worker_serve_jobs_total gauge"),
        std::string::npos);
    EXPECT_EQ(prom.find("spoof"), std::string::npos);

    // Importing a newer snapshot overwrites in place, no new series.
    snapshot["serve_jobs_total"] = 12.0;
    reg.importFlat(snapshot, "cluster_worker_", {{"worker", "3"}});
    EXPECT_EQ(reg.gauge("cluster_worker_serve_jobs_total", "",
                        {{"worker", "3"}})
                  .value(),
              12.0);
}

// ---------------------------------------------------------------------
// Derived quantile exports
// ---------------------------------------------------------------------

/** Exact quantile upper bound over raw observations, quantized to the
 *  same log-2 edges the histogram uses -- the oracle the exports must
 *  agree with. */
double
exactRankUpperBound(std::vector<double> values, double q)
{
    std::vector<double> bounds;
    bounds.reserve(values.size());
    for (double v : values) {
        int k = obs::Histogram::bucketFor(v);
        bounds.push_back(k == obs::Histogram::kBuckets - 1
                             ? std::numeric_limits<double>::infinity()
                             : obs::Histogram::bucketUpperBound(k));
    }
    std::sort(bounds.begin(), bounds.end());
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(bounds.size())));
    if (rank == 0)
        rank = 1;
    return bounds[rank - 1];
}

TEST(Metrics, QuantileExportsMatchExactRanks)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("lat_ms", "latency");
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(0.1 * i); // 0.1 .. 10.0 across several buckets
    for (double v : values)
        h.observe(v);

    for (auto [q, suffix] : {std::pair<double, const char *>{0.50, "_p50"},
                             {0.95, "_p95"},
                             {0.99, "_p99"}}) {
        EXPECT_EQ(h.quantileUpperBound(q), exactRankUpperBound(values, q))
            << suffix;
    }

    // Both exports carry the derived gauges.
    const std::string prom = reg.promText();
    EXPECT_NE(prom.find("# TYPE lat_ms_p50 gauge"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE lat_ms_p95 gauge"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE lat_ms_p99 gauge"), std::string::npos);
    EXPECT_NE(prom.find("lat_ms_p95 "), std::string::npos);

    const std::string json = reg.jsonText();
    serve::JsonParseResult parsed = serve::parseFlatJson(json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    for (auto [q, suffix] : {std::pair<double, const char *>{0.50, "_p50"},
                             {0.95, "_p95"},
                             {0.99, "_p99"}}) {
        auto it = parsed.object.find(std::string("lat_ms") + suffix);
        ASSERT_NE(it, parsed.object.end()) << suffix;
        ASSERT_EQ(it->second.kind, serve::JsonValue::Kind::Number);
        EXPECT_EQ(it->second.num, h.quantileUpperBound(q)) << suffix;
    }
    // Bucket keys are canonical suffix-before-labels renderings.
    EXPECT_NE(json.find("\"lat_ms_bucket{le=\\\""), std::string::npos);
    EXPECT_NE(json.find("\"lat_ms_count\":100"), std::string::npos);
}

TEST(Metrics, ImportFlatReconstructsHistograms)
{
    obs::Registry source;
    obs::Histogram &h = source.histogram("lat_ms", "", {{"queue", "slow"}});
    h.observe(0.75); // le="1"
    h.observe(0.75);
    h.observe(3.0);  // le="4"

    // Round-trip through the wire format the cluster actually ships:
    // jsonText -> flat JSON parse -> importFlat.
    serve::JsonParseResult parsed = serve::parseFlatJson(source.jsonText());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::map<std::string, double> snapshot;
    for (const auto &[key, value] : parsed.object)
        if (value.kind == serve::JsonValue::Kind::Number)
            snapshot[key] = value.num;

    obs::Registry reg;
    size_t imported =
        reg.importFlat(snapshot, "cluster_worker_", {{"worker", "3"}});
    EXPECT_GT(imported, 0u);

    // The family came back as a real histogram (not per-edge gauges):
    // typed as histogram, per-bucket counts de-accumulated, quantiles
    // re-derived from the imported counts.
    obs::Histogram &imp = reg.histogram(
        "cluster_worker_lat_ms", "", {{"queue", "slow"}, {"worker", "3"}});
    EXPECT_EQ(imp.count(), 3u);
    EXPECT_DOUBLE_EQ(imp.sum(), 4.5);
    EXPECT_EQ(imp.bucketCount(obs::Histogram::bucketFor(0.75)), 2u);
    EXPECT_EQ(imp.bucketCount(obs::Histogram::bucketFor(3.0)), 1u);
    EXPECT_EQ(imp.quantileUpperBound(0.5), h.quantileUpperBound(0.5));
    EXPECT_EQ(imp.quantileUpperBound(0.99), h.quantileUpperBound(0.99));

    const std::string prom = reg.promText();
    EXPECT_NE(prom.find("# TYPE cluster_worker_lat_ms histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("cluster_worker_lat_ms_bucket{le=\"1\","
                        "queue=\"slow\",worker=\"3\"} 2"),
              std::string::npos);
}

TEST(Metrics, ImportFlatDropsNonMonotoneHistogramFamilies)
{
    obs::Registry reg;
    std::map<std::string, double> snapshot = {
        {"bad_bucket{le=\"1\"}", 5.0},
        {"bad_bucket{le=\"4\"}", 3.0}, // cumulative count went DOWN
        {"bad_bucket{le=\"+Inf\"}", 7.0},
        {"bad_sum", 9.0},
        {"bad_count", 7.0},
        {"good_total", 1.0},
    };
    size_t imported = reg.importFlat(snapshot, "w_", {});
    EXPECT_EQ(imported, 1u); // only good_total survives
    EXPECT_EQ(reg.gauge("w_good_total").value(), 1.0);
    EXPECT_EQ(reg.promText().find("w_bad"), std::string::npos);
}

// ---------------------------------------------------------------------
// Distributed span shipping: wire format and merged stitching
// ---------------------------------------------------------------------

obs::FlatEvent
flatEvent(char phase, const char *cat, const char *name,
          std::string detail, obs::TimeNanos ts, obs::SpanId id,
          obs::SpanId parent, bool remote, std::string traceId,
          uint32_t tid, uint64_t seq)
{
    obs::FlatEvent fe;
    fe.event.phase = phase;
    fe.event.category = cat;
    fe.event.name = name;
    fe.event.detail = std::move(detail);
    fe.event.ts = ts;
    fe.event.id = id;
    fe.event.parent = parent;
    fe.event.remoteParent = remote;
    fe.event.traceId = std::move(traceId);
    fe.tid = tid;
    fe.seq = seq;
    return fe;
}

TEST(Trace, SpanWireFormatRoundTrips)
{
    std::vector<obs::FlatEvent> events;
    // Awkward bytes in every escaped field: tabs and newlines must
    // survive the tab-separated wire format.
    events.push_back(flatEvent('B', "serve", "job", "d\te\ntail", 100, 7,
                               3, true,
                               "00112233445566778899aabbccddeeff", 1, 0));
    events.push_back(flatEvent('i', "serve", "tick", "", 150, 0, 7, false,
                               "", 1, 1));
    events.push_back(flatEvent('E', "serve", "job", "", 200, 7, 3, true,
                               "00112233445566778899aabbccddeeff", 1, 2));

    std::string encoded = obs::encodeSpanEvents(events);
    std::vector<obs::FlatEvent> decoded = obs::decodeSpanEvents(encoded);
    ASSERT_EQ(decoded.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(decoded[i].event.phase, events[i].event.phase) << i;
        EXPECT_STREQ(decoded[i].event.category, events[i].event.category)
            << i;
        EXPECT_STREQ(decoded[i].event.name, events[i].event.name) << i;
        EXPECT_EQ(decoded[i].event.detail, events[i].event.detail) << i;
        EXPECT_EQ(decoded[i].event.ts, events[i].event.ts) << i;
        EXPECT_EQ(decoded[i].event.id, events[i].event.id) << i;
        EXPECT_EQ(decoded[i].event.parent, events[i].event.parent) << i;
        EXPECT_EQ(decoded[i].event.remoteParent,
                  events[i].event.remoteParent)
            << i;
        EXPECT_EQ(decoded[i].event.traceId, events[i].event.traceId) << i;
        EXPECT_EQ(decoded[i].tid, events[i].tid) << i;
        EXPECT_EQ(decoded[i].seq, events[i].seq) << i;
    }

    // The cap drops from the tail and counts what it dropped.
    uint64_t dropped = 0;
    std::string capped = obs::encodeSpanEvents(events, 1, &dropped);
    EXPECT_EQ(dropped, 2u);
    EXPECT_EQ(obs::decodeSpanEvents(capped).size(), 1u);

    // Tolerates empty and garbage input without crashing.
    EXPECT_TRUE(obs::decodeSpanEvents("").empty());
    EXPECT_TRUE(obs::decodeSpanEvents("not\ta\tspan\n").empty());
}

/**
 * Synthetic cluster forest: a coordinator batch span with two
 * remote-rooted job subtrees, as recorded when workers run in-process
 * (the loopback tests).  Returns {local, t1 subtree, t2 subtree}.
 */
std::vector<std::vector<obs::FlatEvent>>
syntheticClusterForest()
{
    const char *t1 = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    const char *t2 = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb";
    std::vector<obs::FlatEvent> local = {
        flatEvent('B', "cluster", "batch", "jobs=2", 10, 1, 0, false, "",
                  0, 0),
        flatEvent('E', "cluster", "batch", "", 500, 1, 0, false, "", 0, 1),
    };
    std::vector<obs::FlatEvent> sub1 = {
        flatEvent('B', "serve", "job", "j1", 20, 100, 1, true, t1, 5, 0),
        flatEvent('B', "segment-evolve", "evolve", "", 30, 101, 100, false,
                  t1, 5, 1),
        flatEvent('E', "segment-evolve", "evolve", "", 40, 101, 100, false,
                  t1, 5, 2),
        flatEvent('E', "serve", "job", "", 50, 100, 1, true, t1, 5, 3),
    };
    // The kernel-category child must NOT reach the merged signature:
    // which hot-path kernels run depends on the worker's private plan
    // cache, so they cannot be partition-invariant.
    std::vector<obs::FlatEvent> sub2 = {
        flatEvent('B', "serve", "job", "j2", 60, 200, 1, true, t2, 6, 0),
        flatEvent('B', "kernel", "sparse-pair-rotation", "", 62, 201, 200,
                  false, t2, 6, 1),
        flatEvent('E', "kernel", "sparse-pair-rotation", "", 64, 201, 200,
                  false, t2, 6, 2),
        flatEvent('E', "serve", "job", "", 70, 200, 1, true, t2, 6, 3),
    };
    return {local, sub1, sub2};
}

TEST(Trace, MergedSignatureInvariantToWorkerPartition)
{
    auto forest = syntheticClusterForest();
    const auto &local = forest[0];
    const auto &sub1 = forest[1];
    const auto &sub2 = forest[2];

    auto concat = [](std::vector<obs::FlatEvent> a,
                     const std::vector<obs::FlatEvent> &b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
    };

    // One worker ran both jobs...
    std::vector<obs::ForeignSpans> one(1);
    one[0].process = "worker 0";
    one[0].events = concat(sub1, sub2);
    const std::string sigOne = obs::mergedSpanTreeSignature(local, one);

    // ...vs two workers with one job each (ids deliberately collide
    // across workers: the per-worker remap keeps them apart).
    std::vector<obs::ForeignSpans> two(2);
    two[0].process = "worker 0";
    two[0].events = sub1;
    two[1].process = "worker 1";
    two[1].events = sub2;
    const std::string sigTwo = obs::mergedSpanTreeSignature(local, two);

    ASSERT_FALSE(sigOne.empty());
    EXPECT_EQ(sigOne, sigTwo);
    EXPECT_EQ(sigOne,
              "cluster:batch[jobs=2](serve:job[j1](segment-evolve:evolve),"
              "serve:job[j2])\n");

    // In-process workers leave their spans in the coordinator's own
    // buffers too; the merge must not double-count them (the shipped
    // copies are the authoritative ones).
    std::vector<obs::FlatEvent> pollutedLocal =
        concat(concat(local, sub1), sub2);
    EXPECT_EQ(obs::mergedSpanTreeSignature(pollutedLocal, two), sigOne);
}

TEST(Trace, RemoteRootedSelectionFollowsTraceIds)
{
    auto forest = syntheticClusterForest();
    std::vector<obs::FlatEvent> all = forest[0];
    all.insert(all.end(), forest[1].begin(), forest[1].end());
    all.insert(all.end(), forest[2].begin(), forest[2].end());

    // Only the requested cycle's trace ids ship.
    std::vector<obs::FlatEvent> t1only = obs::remoteRootedEvents(
        all, {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"});
    EXPECT_EQ(t1only.size(), forest[1].size());
    for (const auto &fe : t1only)
        EXPECT_EQ(fe.event.traceId, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");

    // The local view strips every remote-rooted subtree.
    std::vector<obs::FlatEvent> localOnly = obs::withoutRemoteRooted(all);
    EXPECT_EQ(localOnly.size(), forest[0].size());
    EXPECT_EQ(obs::spanTreeSignature(localOnly),
              "cluster:batch[jobs=2]\n");
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(Flight, RingOverflowCountsDropsAndDumpStaysParseable)
{
    obs::flight::configure(16); // idempotent: first capacity wins
    obs::flight::resetForTest();
    ASSERT_TRUE(obs::flight::enabled());
    EXPECT_TRUE(obs::flight::explicitlyConfigured());

    for (int i = 0; i < 40; ++i)
        obs::flight::recordInstant("test", "tick", std::to_string(i));
    EXPECT_EQ(obs::flight::recordedCount(), 40u);
    // Overwriting the oldest entries is the point, and it is counted.
    EXPECT_EQ(obs::flight::droppedCount(), 40u - 16u);

    const std::string json = obs::flight::renderJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"flight\":{"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":24"), std::string::npos);
    EXPECT_NE(json.find("\"events\":["), std::string::npos);
    // Ring wrap kept the NEWEST entries: ticks 0..23 were overwritten,
    // 24..39 survive.
    EXPECT_EQ(json.find("\"detail\":\"23\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\":\"24\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\":\"39\""), std::string::npos);

    // The signal-path dump produces the same shape through raw write(2).
    const std::string path = ::testing::TempDir() + "flight_dump_test.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        size_t wrote = obs::flight::dump(fileno(f));
        std::fclose(f);
        EXPECT_EQ(wrote, 16u);
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());
    const std::string dumped = buf.str();
    EXPECT_NE(dumped.find("\"flight\":{"), std::string::npos);
    EXPECT_NE(dumped.find("\"events\":["), std::string::npos);
    // Braces and brackets balance: the dump is one well-formed object.
    int depth = 0;
    bool inString = false;
    for (size_t i = 0; i < dumped.size(); ++i) {
        char c = dumped[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);
}

TEST(Flight, CapturesClosedSpansEvenWithTracingOff)
{
    obs::flight::configure();
    obs::flight::resetForTest();
    ASSERT_FALSE(obs::tracingEnabled());
    const uint64_t before = obs::flight::recordedCount();
    {
        obs::Span span("solver", "flight-only", "d=3");
    }
    EXPECT_EQ(obs::flight::recordedCount(), before + 1);
    const std::string json = obs::flight::renderJson();
    EXPECT_NE(json.find("flight-only"), std::string::npos);
    EXPECT_NE(json.find("d=3"), std::string::npos);

    // Truncation is counted, never an error.
    obs::flight::note("test", std::string(4096, 'x'));
    EXPECT_GE(obs::flight::truncatedCount(), 1u);
}

} // namespace
} // namespace rasengan
