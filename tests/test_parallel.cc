/**
 * @file
 * Tests for the deterministic parallelism substrate (common/parallel.h)
 * and everything built on it: thread-count invariance of the
 * statevector kernels, noisy trajectories and all four solvers,
 * randomized gate-fusion equivalence, and the alias sampler.
 *
 * The contract under test is strong: results must be *bit-identical*
 * at every thread count, not merely statistically close.  Every sweep
 * here runs the same computation at 1, 2 and 7 threads and compares
 * raw amplitude bytes / exact Counts maps.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <limits>
#include <cstring>
#include <vector>

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/rasengan.h"
#include "problems/suite.h"
#include "qsim/counts.h"
#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace rasengan {
namespace {

const std::vector<int> kSweep = {1, 2, 7};

/** RAII: restore the env-derived thread configuration on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { parallel::setThreadCount(0); }
};

/** RAII: restore the fusion toggle on scope exit. */
struct FusionGuard
{
    bool saved = circuit::fusionEnabled();
    ~FusionGuard() { circuit::setFusionEnabled(saved); }
};

bool
sameAmplitudes(const qsim::Statevector &a, const qsim::Statevector &b)
{
    const auto &va = a.amplitudes();
    const auto &vb = b.amplitudes();
    return va.size() == vb.size() &&
           std::memcmp(va.data(), vb.data(),
                       va.size() * sizeof(va[0])) == 0;
}

/**
 * Random circuit over the full simulator-supported gate set (everything
 * except measurement/reset, which the dense path rejects mid-circuit).
 */
circuit::Circuit
randomCircuit(int n, int depth, Rng &rng)
{
    circuit::Circuit circ(n);
    auto pickOther = [&](int q) {
        int r = static_cast<int>(rng.uniformInt(0, n - 2));
        return r >= q ? r + 1 : r;
    };
    for (int g = 0; g < depth; ++g) {
        int kind = static_cast<int>(rng.uniformInt(0, 10));
        int q = static_cast<int>(rng.uniformInt(0, n - 1));
        double theta = rng.uniformReal(-M_PI, M_PI);
        switch (kind) {
          case 0: circ.x(q); break;
          case 1: circ.h(q); break;
          case 2: circ.rx(q, theta); break;
          case 3: circ.ry(q, theta); break;
          case 4: circ.rz(q, theta); break;
          case 5: circ.p(q, theta); break;
          case 6: circ.cx(pickOther(q), q); break;
          case 7: circ.cp(pickOther(q), q, theta); break;
          case 8: circ.swap(q, pickOther(q)); break;
          case 9: {
            int c0 = pickOther(q);
            int c1 = c0;
            while (c1 == c0 || c1 == q)
                c1 = static_cast<int>(rng.uniformInt(0, n - 1));
            circ.mcx({c0, c1}, q);
            break;
          }
          default: {
            int c0 = pickOther(q);
            int c1 = c0;
            while (c1 == c0 || c1 == q)
                c1 = static_cast<int>(rng.uniformInt(0, n - 1));
            circ.mcp({c0, c1}, q, theta);
            break;
          }
        }
    }
    return circ;
}

// ---------------------------------------------------------------------
// parallelFor / reductions
// ---------------------------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnceAtEveryThreadCount)
{
    ThreadGuard guard;
    constexpr uint64_t n = 100000;
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        EXPECT_EQ(parallel::threadCount(), tc);
        std::vector<int> hits(n, 0);
        parallel::parallelFor(0, n, 64, [&](uint64_t b, uint64_t e) {
            for (uint64_t i = b; i < e; ++i)
                ++hits[i];
        });
        for (uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i << " @ " << tc;
    }
}

TEST(ParallelFor, EmptyAndSubGrainRangesRunInline)
{
    ThreadGuard guard;
    parallel::setThreadCount(7);
    int calls = 0;
    parallel::parallelFor(5, 5, 1, [&](uint64_t, uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // A range below one grain must execute as a single inline chunk.
    parallel::parallelFor(0, 10, 4096, [&](uint64_t b, uint64_t e) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 10u);
        EXPECT_FALSE(parallel::inParallelRegion());
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelForDynamic, CoversRangeExactlyOnceAtEveryThreadCount)
{
    ThreadGuard guard;
    constexpr uint64_t n = 4099; // not a multiple of any sweep count
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        parallel::parallelForDynamic(0, n, [&](uint64_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @ " << tc;
    }
}

TEST(ParallelForDynamic, NestedCallsRunSeriallyWithoutDeadlock)
{
    ThreadGuard guard;
    parallel::setThreadCount(4);
    constexpr uint64_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    parallel::parallelForDynamic(0, 8, [&](uint64_t outer) {
        parallel::parallelForDynamic(outer * 8, outer * 8 + 8,
                                     [&](uint64_t i) {
                                         EXPECT_TRUE(
                                             parallel::inParallelRegion());
                                         hits[i].fetch_add(1);
                                     });
    });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1);
    int calls = 0;
    parallel::parallelForDynamic(3, 3, [&](uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock)
{
    ThreadGuard guard;
    parallel::setThreadCount(4);
    constexpr uint64_t n = 1 << 14;
    std::vector<int> hits(n, 0);
    parallel::parallelFor(0, n, 1024, [&](uint64_t b, uint64_t e) {
        // Nested region: must degrade to serial, not deadlock on the
        // pool, and still cover its sub-range exactly once.
        parallel::parallelFor(b, e, 1, [&](uint64_t nb, uint64_t ne) {
            for (uint64_t i = nb; i < ne; ++i)
                ++hits[i];
        });
    });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1);
}

TEST(Parallel, EnvVariableConfiguresPool)
{
    ThreadGuard guard;
    ::setenv("RASENGAN_THREADS", "5", 1);
    parallel::setThreadCount(0); // re-resolve from the environment
    EXPECT_EQ(parallel::threadCount(), 5);
    ::unsetenv("RASENGAN_THREADS");
    parallel::setThreadCount(0);
    EXPECT_GE(parallel::threadCount(), 1);
}

TEST(ReduceBlocks, BitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    constexpr uint64_t n = 200000;
    std::vector<double> data(n);
    Rng rng(42);
    for (auto &v : data)
        v = rng.uniformReal(-1.0, 1.0);

    auto sum = [&]() {
        return parallel::reduceBlocks(
            0, n, parallel::kReduceBlock, [&](uint64_t b, uint64_t e) {
                double acc = 0.0;
                for (uint64_t i = b; i < e; ++i)
                    acc += data[i];
                return acc;
            });
    };
    // Reference: same fixed-block association, computed serially.
    double expected = 0.0;
    for (uint64_t b = 0; b < n; b += parallel::kReduceBlock) {
        uint64_t e = std::min(n, b + parallel::kReduceBlock);
        double acc = 0.0;
        for (uint64_t i = b; i < e; ++i)
            acc += data[i];
        expected += acc;
    }
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        double got = sum();
        EXPECT_EQ(got, expected) << "threads=" << tc; // bitwise, not NEAR
    }
}

TEST(ReduceBlocks, ComplexBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    constexpr uint64_t n = 123457; // deliberately not block-aligned
    std::vector<std::complex<double>> data(n);
    Rng rng(43);
    for (auto &v : data)
        v = {rng.uniformReal(-1.0, 1.0), rng.uniformReal(-1.0, 1.0)};

    std::complex<double> reference{0.0, 0.0};
    bool have_reference = false;
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        std::complex<double> got = parallel::reduceBlocksComplex(
            0, n, parallel::kReduceBlock, [&](uint64_t b, uint64_t e) {
                std::complex<double> acc{0.0, 0.0};
                for (uint64_t i = b; i < e; ++i)
                    acc += data[i];
                return acc;
            });
        if (!have_reference) {
            reference = got;
            have_reference = true;
        }
        EXPECT_EQ(got.real(), reference.real()) << "threads=" << tc;
        EXPECT_EQ(got.imag(), reference.imag()) << "threads=" << tc;
    }
}

// ---------------------------------------------------------------------
// Statevector kernels and sampling
// ---------------------------------------------------------------------

TEST(ThreadInvariance, StatevectorAmplitudesBitIdentical)
{
    ThreadGuard guard;
    // 14 qubits = 16384 amplitudes: above the grain, so the pool is
    // genuinely engaged at tc > 1.
    const int n = 14;
    Rng circ_rng(7);
    circuit::Circuit circ = randomCircuit(n, 120, circ_rng);

    parallel::setThreadCount(1);
    qsim::Statevector reference(n);
    reference.applyCircuit(circ);

    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        qsim::Statevector sv(n);
        sv.applyCircuit(circ);
        EXPECT_TRUE(sameAmplitudes(sv, reference)) << "threads=" << tc;
        // Scalar reductions must match bitwise too.
        EXPECT_EQ(sv.normSquared(), reference.normSquared());
        EXPECT_EQ(sv.probabilityOfOne(3), reference.probabilityOfOne(3));
        std::complex<double> ip = sv.inner(reference);
        EXPECT_EQ(ip, reference.inner(reference));
        (void)ip;
    }
}

TEST(ThreadInvariance, SampleCountsBitIdentical)
{
    ThreadGuard guard;
    const int n = 14;
    Rng circ_rng(11);
    circuit::Circuit circ = randomCircuit(n, 80, circ_rng);

    qsim::Counts reference;
    bool have_reference = false;
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        qsim::Statevector sv(n);
        sv.applyCircuit(circ);
        Rng rng(99);
        qsim::Counts counts = sv.sample(rng, 2048);
        if (!have_reference) {
            reference = counts;
            have_reference = true;
        }
        EXPECT_TRUE(counts.map() == reference.map()) << "threads=" << tc;
    }
}

TEST(ThreadInvariance, NoisyTrajectoriesBitIdentical)
{
    ThreadGuard guard;
    const int n = 6;
    Rng circ_rng(13);
    circuit::Circuit circ = randomCircuit(n, 40, circ_rng);
    qsim::NoiseModel noise;
    noise.depol1q = 0.003;
    noise.depol2q = 0.01;
    noise.amplitudeDamping = 0.002;
    noise.readoutError = 0.01;

    qsim::Counts reference;
    bool have_reference = false;
    for (int tc : kSweep) {
        parallel::setThreadCount(tc);
        Rng rng(5);
        qsim::Counts counts = qsim::sampleNoisy(circ, n, BitVec{}, noise,
                                                rng, 512, /*trajectories=*/7);
        if (!have_reference) {
            reference = counts;
            have_reference = true;
        }
        EXPECT_TRUE(counts.map() == reference.map()) << "threads=" << tc;
        EXPECT_EQ(counts.total(), reference.total());
    }
}

// ---------------------------------------------------------------------
// Solver-level invariance: the whole pipeline, per solver
// ---------------------------------------------------------------------

TEST(ThreadInvariance, RasenganSolverBitIdentical)
{
    ThreadGuard guard;
    problems::Problem p = problems::makeBenchmark("F1");
    core::RasenganOptions opts;
    opts.execution = core::RasenganOptions::Execution::NoisyGateLevel;
    opts.noise.depol2q = 0.002;
    opts.noise.depol1q = 0.0002;
    opts.maxIterations = 12;
    opts.shotsPerSegment = 256;
    opts.trajectories = 4;

    core::RasenganResult reference;
    bool have_reference = false;
    for (int tc : kSweep) {
        opts.resilience.threads = tc; // the executor wires the pool
        core::RasenganSolver solver(p, opts);
        core::RasenganResult res = solver.run();
        EXPECT_EQ(parallel::threadCount(), tc);
        ASSERT_FALSE(res.failed);
        if (!have_reference) {
            reference = res;
            have_reference = true;
            continue;
        }
        EXPECT_EQ(res.solution, reference.solution) << "threads=" << tc;
        EXPECT_EQ(res.objectiveValue, reference.objectiveValue);
        EXPECT_EQ(res.expectedObjective, reference.expectedObjective);
        EXPECT_EQ(res.inConstraintsRate, reference.inConstraintsRate);
        ASSERT_EQ(res.finalDistribution.entries.size(),
                  reference.finalDistribution.entries.size());
        for (size_t i = 0; i < res.finalDistribution.entries.size(); ++i) {
            EXPECT_EQ(res.finalDistribution.entries[i].first,
                      reference.finalDistribution.entries[i].first);
            EXPECT_EQ(res.finalDistribution.entries[i].second,
                      reference.finalDistribution.entries[i].second);
        }
    }
}

/** Shared sweep for the baseline VQAs: exact objective + Counts match. */
template <typename Solver, typename Options>
void
sweepBaseline(Options opts)
{
    ThreadGuard guard;
    problems::Problem p = problems::makeBenchmark("F1");
    baselines::VqaResult reference;
    bool have_reference = false;
    for (int tc : kSweep) {
        opts.resilience.threads = tc;
        Solver solver(p, opts);
        baselines::VqaResult res = solver.run();
        EXPECT_EQ(parallel::threadCount(), tc);
        if (!have_reference) {
            reference = res;
            have_reference = true;
            continue;
        }
        EXPECT_EQ(res.expectedObjective, reference.expectedObjective)
            << "threads=" << tc;
        EXPECT_EQ(res.inConstraintsRate, reference.inConstraintsRate);
        EXPECT_TRUE(res.counts.map() == reference.counts.map());
        EXPECT_EQ(res.training.value, reference.training.value);
    }
}

TEST(ThreadInvariance, HeaBitIdentical)
{
    baselines::HeaOptions opts;
    opts.layers = 2;
    opts.maxIterations = 15;
    opts.shots = 256;
    sweepBaseline<baselines::Hea>(opts);
}

TEST(ThreadInvariance, PqaoaBitIdentical)
{
    baselines::PqaoaOptions opts;
    opts.layers = 2;
    opts.maxIterations = 15;
    opts.shots = 256;
    sweepBaseline<baselines::Pqaoa>(opts);
}

TEST(ThreadInvariance, ChocoqBitIdentical)
{
    baselines::ChocoqOptions opts;
    opts.layers = 2;
    opts.maxIterations = 15;
    opts.shots = 256;
    sweepBaseline<baselines::Chocoq>(opts);
}

// ---------------------------------------------------------------------
// Gate fusion
// ---------------------------------------------------------------------

TEST(Fusion, RandomCircuitEquivalence)
{
    FusionGuard fusion_guard;
    Rng rng(2026);
    size_t total_source = 0;
    size_t total_fused = 0;
    for (int trial = 0; trial < 500; ++trial) {
        int n = 5 + static_cast<int>(rng.uniformInt(0, 1));
        int depth = 10 + static_cast<int>(rng.uniformInt(0, 40));
        circuit::Circuit circ = randomCircuit(n, depth, rng);

        circuit::setFusionEnabled(false);
        qsim::Statevector plain(n);
        plain.applyCircuit(circ);

        circuit::FusedProgram prog = circuit::fuseCircuit(circ);
        EXPECT_LE(prog.fusedOps(), prog.sourceOps) << "trial " << trial;
        total_source += prog.sourceOps;
        total_fused += prog.fusedOps();
        qsim::Statevector fused(n);
        fused.applyFused(prog);

        const auto &pa = plain.amplitudes();
        const auto &fa = fused.amplitudes();
        ASSERT_EQ(pa.size(), fa.size());
        for (size_t i = 0; i < pa.size(); ++i) {
            ASSERT_NEAR(std::abs(pa[i] - fa[i]), 0.0, 1e-12)
                << "trial " << trial << " amplitude " << i;
        }
    }
    // Across 500 random circuits the pass must actually shorten the
    // program, not merely preserve semantics.
    EXPECT_LT(total_fused, total_source);
}

TEST(Fusion, CollapsesSingleQubitRunsAndDiagonalChains)
{
    circuit::Circuit circ(3);
    // Five 1q gates on wire 0 -> one fused unitary.
    circ.h(0);
    circ.rx(0, 0.3);
    circ.rz(0, -0.7);
    circ.ry(0, 0.1);
    circ.h(0);
    // A diagonal chain across wires -> one fused diagonal block.
    circ.p(1, 0.2);
    circ.rz(2, 0.4);
    circ.cp(1, 2, 0.6);
    circuit::FusedProgram prog = circuit::fuseCircuit(circ);
    EXPECT_EQ(prog.sourceOps, 8u);
    EXPECT_EQ(prog.fusedOps(), 2u);
}

TEST(Fusion, DropsIdentityRuns)
{
    circuit::Circuit circ(2);
    // H H = I on wire 0: the fused run cancels and must be elided.
    circ.h(0);
    circ.h(0);
    circ.x(1);
    circ.x(1);
    // Keep the circuit above the applyCircuit fusion threshold.
    circ.rx(0, 0.5);
    circuit::FusedProgram prog = circuit::fuseCircuit(circ);
    EXPECT_EQ(prog.fusedOps(), 1u);

    qsim::Statevector sv(2);
    sv.applyFused(prog);
    qsim::Statevector expected(2);
    expected.apply1q(0, circuit::gateMatrix(circuit::GateKind::RX, 0.5));
    for (size_t i = 0; i < sv.amplitudes().size(); ++i)
        EXPECT_NEAR(std::abs(sv.amplitudes()[i] - expected.amplitudes()[i]),
                    0.0, 1e-14);
}

TEST(Fusion, ToggleDisablesThePass)
{
    FusionGuard fusion_guard;
    circuit::setFusionEnabled(false);
    EXPECT_FALSE(circuit::fusionEnabled());
    circuit::setFusionEnabled(true);
    EXPECT_TRUE(circuit::fusionEnabled());
}

// ---------------------------------------------------------------------
// Alias sampler
// ---------------------------------------------------------------------

TEST(AliasTable, MatchesWeightDistribution)
{
    std::vector<double> weights = {1.0, 0.0, 3.0, 2.0, 0.5, 0.0, 4.5};
    double total = 11.0;
    qsim::AliasTable table(weights);
    Rng rng(17);
    std::vector<uint64_t> hits(weights.size(), 0);
    constexpr uint64_t draws = 200000;
    for (uint64_t s = 0; s < draws; ++s) {
        size_t idx = table.sample(rng);
        ASSERT_LT(idx, weights.size());
        ++hits[idx];
    }
    for (size_t i = 0; i < weights.size(); ++i) {
        double expected = weights[i] / total;
        double got = static_cast<double>(hits[i]) / draws;
        if (weights[i] == 0.0)
            EXPECT_EQ(hits[i], 0u) << "slot " << i;
        else
            EXPECT_NEAR(got, expected, 0.01) << "slot " << i;
    }
}

TEST(AliasTable, DeterministicForFixedSeed)
{
    std::vector<double> weights = {0.2, 1.7, 0.0, 2.6, 1.1};
    qsim::AliasTable a(weights);
    qsim::AliasTable b(weights);
    Rng ra(23);
    Rng rb(23);
    for (int s = 0; s < 1000; ++s)
        ASSERT_EQ(a.sample(ra), b.sample(rb));
}

TEST(AliasTable, SingleOutcome)
{
    std::vector<double> weights = {3.25};
    qsim::AliasTable table(weights);
    Rng rng(1);
    for (int s = 0; s < 100; ++s)
        EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsDegenerateInput)
{
    EXPECT_DEATH({ qsim::AliasTable t((std::vector<double>{})); },
                 "alias");
    EXPECT_DEATH({ qsim::AliasTable t(std::vector<double>{0.0, 0.0}); },
                 "alias");
}

TEST(AliasTable, RejectsNonFiniteWeights)
{
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DEATH({ qsim::AliasTable t(std::vector<double>{0.5, nan}); },
                 "non-finite");
    EXPECT_DEATH({ qsim::AliasTable t(std::vector<double>{inf, 1.0}); },
                 "non-finite");
    EXPECT_DEATH({ qsim::AliasTable t(std::vector<double>{-1.0, 2.0}); },
                 "negative");
    // Two weights that individually pass but overflow the sum.
    const double huge = std::numeric_limits<double>::max();
    EXPECT_DEATH({ qsim::AliasTable t(std::vector<double>{huge, huge}); },
                 "overflow");
}

TEST(AliasTable, WeightedIndexRejectsNonFinite)
{
    Rng rng(3);
    const double nan = std::nan("");
    EXPECT_DEATH(rng.weightedIndex({1.0, nan}), "non-finite");
    EXPECT_DEATH(rng.weightedIndex({0.0, 0.0}), "degenerate");
}

} // namespace
} // namespace rasengan
