/**
 * @file
 * Tests for readout-error mitigation: calibration, subspace inversion,
 * and end-to-end recovery of corrupted distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/mitigation.h"
#include "qsim/noise.h"

namespace rasengan::device {
namespace {

TEST(Calibration, UniformFactory)
{
    ReadoutCalibration cal = ReadoutCalibration::uniform(3, 0.05);
    EXPECT_EQ(cal.numQubits(), 3);
    for (int q = 0; q < 3; ++q) {
        EXPECT_DOUBLE_EQ(cal.p01[q], 0.05);
        EXPECT_DOUBLE_EQ(cal.p10[q], 0.05);
    }
}

TEST(Calibration, MeasureRecoversRate)
{
    qsim::NoiseModel noise;
    noise.readoutError = 0.08;
    Rng rng(3);
    ReadoutCalibration cal =
        ReadoutCalibration::measure(4, noise, rng, 20000);
    for (int q = 0; q < 4; ++q) {
        EXPECT_NEAR(cal.p01[q], 0.08, 0.01);
        EXPECT_NEAR(cal.p10[q], 0.08, 0.01);
    }
}

TEST(Mitigator, IdentityCalibrationIsNoOp)
{
    qsim::Counts counts;
    counts.add(BitVec::fromString("01"), 30);
    counts.add(BitVec::fromString("10"), 70);
    ReadoutMitigator mit(ReadoutCalibration::uniform(2, 0.0));
    auto dist = mit.mitigate(counts, 2);
    for (const auto &[state, p] : dist) {
        if (state == BitVec::fromString("01"))
            EXPECT_NEAR(p, 0.3, 1e-12);
        else
            EXPECT_NEAR(p, 0.7, 1e-12);
    }
}

TEST(Mitigator, RecoversPureState)
{
    // True state |00> read through 10% symmetric error; the mitigated
    // distribution should concentrate back on |00>.
    qsim::Counts ideal;
    ideal.add(BitVec{}, 100000);
    Rng rng(7);
    qsim::Counts noisy = qsim::applyReadoutError(ideal, 2, 0.1, rng);
    EXPECT_LT(noisy.probability(BitVec{}), 0.85);

    ReadoutMitigator mit(ReadoutCalibration::uniform(2, 0.1));
    auto dist = mit.mitigate(noisy, 2);
    double p00 = 0.0;
    for (const auto &[state, p] : dist)
        if (state == BitVec{})
            p00 = p;
    EXPECT_GT(p00, 0.98);
}

TEST(Mitigator, RecoversMixedDistribution)
{
    // True distribution 0.6 / 0.4 over two basis states.
    qsim::Counts ideal;
    ideal.add(BitVec::fromString("00"), 60000);
    ideal.add(BitVec::fromString("11"), 40000);
    Rng rng(11);
    qsim::Counts noisy = qsim::applyReadoutError(ideal, 2, 0.07, rng);

    ReadoutMitigator mit(ReadoutCalibration::uniform(2, 0.07));
    auto dist = mit.mitigate(noisy, 2);
    double p00 = 0.0, p11 = 0.0;
    for (const auto &[state, p] : dist) {
        if (state == BitVec::fromString("00"))
            p00 = p;
        if (state == BitVec::fromString("11"))
            p11 = p;
    }
    EXPECT_NEAR(p00, 0.6, 0.02);
    EXPECT_NEAR(p11, 0.4, 0.02);
}

TEST(Mitigator, ImprovesExpectationEstimate)
{
    // Observable: number of set bits.  Readout error biases it upward
    // from |00>; mitigation pulls it back.
    auto weight = [](const BitVec &x) {
        return static_cast<double>(x.popcount());
    };
    qsim::Counts ideal;
    ideal.add(BitVec{}, 50000);
    Rng rng(5);
    qsim::Counts noisy = qsim::applyReadoutError(ideal, 3, 0.1, rng);
    double raw = noisy.expectation(weight);
    ReadoutMitigator mit(ReadoutCalibration::uniform(3, 0.1));
    double mitigated = mit.mitigatedExpectation(noisy, 3, weight);
    EXPECT_GT(raw, 0.2);
    EXPECT_LT(std::abs(mitigated - 0.0), std::abs(raw - 0.0));
}

TEST(Mitigator, AsymmetricRates)
{
    // p10 = 0.2 (excited decays), p01 = 0: only 1->0 flips occur.
    ReadoutCalibration cal;
    cal.p01 = {0.0};
    cal.p10 = {0.2};
    qsim::Counts observed;
    observed.add(BitVec::fromString("1"), 80);
    observed.add(BitVec::fromString("0"), 20);
    ReadoutMitigator mit(cal);
    auto dist = mit.mitigate(observed, 1);
    // True distribution solving the confusion model: all mass on |1>.
    double p1 = 0.0;
    for (const auto &[state, p] : dist)
        if (state == BitVec::fromString("1"))
            p1 = p;
    EXPECT_NEAR(p1, 1.0, 1e-9);
}

} // namespace
} // namespace rasengan::device
