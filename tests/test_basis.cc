/**
 * @file
 * Tests for homogeneous-basis extraction and Algorithm 1 (Hamiltonian
 * simplification): kernel membership, span preservation, nonzero-count
 * reduction (the Figure 5 example), and the simplification invariants
 * across the whole benchmark suite.
 */

#include <gtest/gtest.h>

#include "core/basis.h"
#include "linalg/nullspace.h"
#include "linalg/rref.h"
#include "problems/suite.h"

namespace rasengan::core {
namespace {

/** Stack vectors as rows of a matrix. */
linalg::IntMat
asMatrix(const std::vector<linalg::IntVec> &vs)
{
    if (vs.empty())
        return linalg::IntMat(0, 0);
    linalg::IntMat m(static_cast<int>(vs.size()),
                     static_cast<int>(vs[0].size()));
    for (size_t r = 0; r < vs.size(); ++r)
        for (size_t c = 0; c < vs[0].size(); ++c)
            m.at(static_cast<int>(r), static_cast<int>(c)) = vs[r][c];
    return m;
}

TEST(Basis, Figure5Example)
{
    // u2 = [-1,0,-1,1,0] plus u3 = [1,0,1,0,1] gives [0,0,0,1,1]:
    // 3 nonzeros shrink to 2 (the paper's worked simplification).
    std::vector<linalg::IntVec> basis = {
        {-1, 1, 0, 0, 0}, {-1, 0, -1, 1, 0}, {1, 0, 1, 0, 1}};
    int before = totalNonZeros(basis);
    auto simplified = simplifyBasis(basis, 1);
    EXPECT_LT(totalNonZeros(simplified), before);
    // The second vector must now have only two nonzeros.
    bool has_two = false;
    for (const auto &u : simplified)
        has_two |= linalg::nonZeroCount(u) == 2;
    EXPECT_TRUE(has_two);
}

TEST(Basis, SimplifyKeepsKernelMembership)
{
    linalg::IntMat c{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
    auto basis = linalg::nullspaceBasis(c);
    auto simplified = simplifyBasis(basis);
    EXPECT_EQ(simplified.size(), basis.size());
    for (const auto &u : simplified) {
        for (int64_t v : applyInt(c, u))
            EXPECT_EQ(v, 0);
        EXPECT_TRUE(linalg::isSigned01(u));
        EXPECT_GT(linalg::nonZeroCount(u), 0);
    }
}

TEST(Basis, SimplifyPreservesSpan)
{
    linalg::IntMat c{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
    auto basis = linalg::nullspaceBasis(c);
    auto simplified = simplifyBasis(basis);
    // Same count + full rank + kernel membership => same span.
    EXPECT_EQ(linalg::rank(asMatrix(simplified)),
              static_cast<int>(simplified.size()));
}

TEST(Basis, SimplifyNeverIncreasesNonZeros)
{
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id);
        auto basis = homogeneousBasis(p);
        auto simplified = simplifyBasis(basis);
        EXPECT_LE(totalNonZeros(simplified), totalNonZeros(basis)) << id;
        EXPECT_EQ(simplified.size(), basis.size()) << id;
        EXPECT_EQ(linalg::rank(asMatrix(simplified)),
                  static_cast<int>(simplified.size()))
            << id;
    }
}

TEST(Basis, SimplifiedVectorsStayInKernel)
{
    for (const char *id : {"F2", "K2", "S3", "G2"}) {
        problems::Problem p = problems::makeBenchmark(id);
        auto simplified = simplifyBasis(homogeneousBasis(p));
        for (const auto &u : simplified) {
            for (int64_t v : applyInt(p.constraints(), u))
                EXPECT_EQ(v, 0) << id;
        }
    }
}

TEST(Basis, DimensionIsBoundedByRankNullity)
{
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id);
        auto basis = homogeneousBasis(p);
        // The RREF/repair path returns exactly the nullity; the
        // feasible-difference fallback may return fewer vectors (only
        // directions realized by feasible differences matter).
        EXPECT_LE(static_cast<int>(basis.size()),
                  p.numVars() - linalg::rank(p.constraints()))
            << id;
        EXPECT_GE(basis.size(), 1u) << id;
    }
}

TEST(Basis, TransitionVectorsConnectFeasibleSpace)
{
    // The executable vector set (with augmentation) must make the
    // feasible set connected for every suite benchmark; the vectors stay
    // kernel members in {-1,0,1}.
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id);
        auto vectors = transitionVectors(p);
        for (const auto &u : vectors) {
            EXPECT_TRUE(linalg::isSigned01(u)) << id;
            for (int64_t v : applyInt(p.constraints(), u))
                EXPECT_EQ(v, 0) << id;
        }
        EXPECT_GE(vectors.size(), homogeneousBasis(p).size()) << id;
    }
}

TEST(Basis, SingleVectorIsUntouched)
{
    std::vector<linalg::IntVec> one = {{1, -1, 0}};
    EXPECT_EQ(simplifyBasis(one), one);
}

TEST(Basis, FixedPointIsStable)
{
    std::vector<linalg::IntVec> basis = {
        {-1, 1, 0, 0, 0}, {-1, 0, -1, 1, 0}, {1, 0, 1, 0, 1}};
    auto once = simplifyBasis(basis);
    auto twice = simplifyBasis(once);
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace rasengan::core
