/**
 * @file
 * Unit and property tests for src/problems: the five generators, the
 * Problem invariants, the benchmark suite, and the evaluation metrics.
 */

#include <gtest/gtest.h>

#include <set>

#include "linalg/rref.h"
#include "problems/flp.h"
#include "problems/gcp.h"
#include "problems/jsp.h"
#include "problems/kpp.h"
#include "problems/metrics.h"
#include "problems/scp.h"
#include "problems/suite.h"

namespace rasengan::problems {
namespace {

TEST(Objective, EvalQuadraticForm)
{
    QuadraticObjective f(3);
    f.addConstant(1.0);
    f.addLinear(0, 2.0);
    f.addQuadratic(0, 2, 5.0);
    EXPECT_DOUBLE_EQ(f.eval(BitVec::fromString("000")), 1.0);
    EXPECT_DOUBLE_EQ(f.eval(BitVec::fromString("100")), 3.0);
    EXPECT_DOUBLE_EQ(f.eval(BitVec::fromString("101")), 8.0);
}

TEST(Objective, SquareFoldsToLinear)
{
    QuadraticObjective f(2);
    f.addQuadratic(1, 1, 4.0);
    EXPECT_TRUE(f.isLinear());
    EXPECT_DOUBLE_EQ(f.eval(BitVec::fromString("01")), 4.0);
}

TEST(Objective, NormalizeMergesDuplicates)
{
    QuadraticObjective f(2);
    f.addQuadratic(0, 1, 1.0);
    f.addQuadratic(1, 0, 2.0);
    f.normalize();
    ASSERT_EQ(f.quadratic().size(), 1u);
    EXPECT_DOUBLE_EQ(std::get<2>(f.quadratic()[0]), 3.0);
}

TEST(Objective, AccumulateScales)
{
    QuadraticObjective f(2), g(2);
    f.addLinear(0, 1.0);
    g.addLinear(0, 2.0);
    g.addConstant(4.0);
    f.accumulate(g, 0.5);
    EXPECT_DOUBLE_EQ(f.eval(BitVec::fromString("10")), 2.0 + 2.0);
}

class SuiteBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteBenchmarks, TrivialSolutionIsFeasible)
{
    Problem p = makeBenchmark(GetParam());
    EXPECT_TRUE(p.isFeasible(p.trivialFeasible()));
    EXPECT_EQ(p.violation(p.trivialFeasible()), 0);
}

TEST_P(SuiteBenchmarks, FeasibleSetIsNonEmptyAndValid)
{
    Problem p = makeBenchmark(GetParam());
    const auto &sols = p.feasibleSolutions();
    ASSERT_FALSE(sols.empty());
    for (const BitVec &x : sols)
        EXPECT_TRUE(p.isFeasible(x));
    std::set<BitVec> unique(sols.begin(), sols.end());
    EXPECT_EQ(unique.size(), sols.size());
}

TEST_P(SuiteBenchmarks, OptimumIsAttainedAndNonZero)
{
    Problem p = makeBenchmark(GetParam());
    BitVec best = p.optimalSolution();
    EXPECT_TRUE(p.isFeasible(best));
    // setExactOptimal (FLP) must agree with the enumerated optimum.
    EXPECT_NEAR(p.objective(best), p.optimalValue(), 1e-9);
    EXPECT_GT(std::abs(p.optimalValue()), 1e-9);
    EXPECT_LE(p.optimalValue(), p.meanFeasibleValue());
    EXPECT_LE(p.meanFeasibleValue(), p.worstFeasibleValue());
}

TEST_P(SuiteBenchmarks, ObjectiveIsDeterministicPerCase)
{
    Problem a = makeBenchmark(GetParam(), 3);
    Problem b = makeBenchmark(GetParam(), 3);
    EXPECT_EQ(a.numVars(), b.numVars());
    EXPECT_EQ(a.constraints(), b.constraints());
    EXPECT_NEAR(a.optimalValue(), b.optimalValue(), 1e-12);
}

TEST_P(SuiteBenchmarks, CasesDiffer)
{
    Problem a = makeBenchmark(GetParam(), 0);
    Problem b = makeBenchmark(GetParam(), 1);
    // Same structure, different costs/graphs: same size always...
    EXPECT_EQ(a.numVars(), b.numVars());
    // ...and (almost surely) different costs or constraint structure
    // (GCP keeps fixed color weights, so its cases differ by graph).
    bool differs = std::abs(a.optimalValue() - b.optimalValue()) > 1e-12 ||
                   !(a.constraints() == b.constraints());
    if (!differs) {
        for (const BitVec &x : a.feasibleSolutions())
            differs |= std::abs(a.objective(x) - b.objective(x)) > 1e-12;
    }
    EXPECT_TRUE(differs);
}

TEST_P(SuiteBenchmarks, ConstraintMatrixHasDeficientColumnRank)
{
    // A nontrivial homogeneous basis must exist (otherwise there is
    // nothing to transition between).
    Problem p = makeBenchmark(GetParam());
    EXPECT_LT(linalg::rank(p.constraints()), p.numVars());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteBenchmarks,
                         ::testing::ValuesIn(benchmarkIds()));

TEST(Suite, TwentyBenchmarks)
{
    EXPECT_EQ(benchmarkIds().size(), 20u);
    EXPECT_TRUE(isBenchmarkId("F1"));
    EXPECT_TRUE(isBenchmarkId("G4"));
    EXPECT_FALSE(isBenchmarkId("Z9"));
}

TEST(Suite, SizesMatchDesign)
{
    EXPECT_EQ(makeBenchmark("F1").numVars(), 6);
    EXPECT_EQ(makeBenchmark("F1").numConstraints(), 3);
    EXPECT_EQ(makeBenchmark("J1").numVars(), 6);
    EXPECT_EQ(makeBenchmark("S4").numVars(), 12);
    EXPECT_EQ(makeBenchmark("G4").numVars(), 18);
}

TEST(Suite, ScalabilitySizesSpanPaperRange)
{
    auto sizes = scalabilityFlpSizes();
    ASSERT_FALSE(sizes.empty());
    EXPECT_EQ(sizes.front(), 6);
    EXPECT_EQ(sizes.back(), 105);
    for (size_t i = 1; i < sizes.size(); ++i)
        EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Suite, ScalabilityInstanceHasClosedFormOptimum)
{
    Problem p = makeScalabilityFlp(105);
    EXPECT_EQ(p.numVars(), 105);
    EXPECT_TRUE(p.isFeasible(p.trivialFeasible()));
    EXPECT_GT(p.optimalValue(), 0.0); // closed form, no enumeration
}

TEST(Flp, ClosedFormOptimumMatchesBruteForce)
{
    for (uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng(seed);
        Problem p = makeFlp("flp-test", {.facilities = 2, .demands = 2},
                            rng);
        double brute = 1e18;
        for (const BitVec &x : p.feasibleSolutions())
            brute = std::min(brute, p.objective(x));
        EXPECT_NEAR(p.optimalValue(), brute, 1e-9) << "seed " << seed;
    }
}

TEST(Flp, VariableLayoutIsDisjoint)
{
    FlpConfig cfg{.facilities = 3, .demands = 2};
    std::set<int> seen;
    for (int j = 0; j < 3; ++j)
        EXPECT_TRUE(seen.insert(flpFacilityVar(cfg, j)).second);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 3; ++j) {
            EXPECT_TRUE(seen.insert(flpAssignVar(cfg, i, j)).second);
            EXPECT_TRUE(seen.insert(flpSlackVar(cfg, i, j)).second);
        }
    EXPECT_EQ(static_cast<int>(seen.size()), flpNumVars(cfg));
}

TEST(Kpp, BalancedPartitionSizes)
{
    Rng rng(4);
    Problem p = makeKpp("kpp-test", {.elements = 5, .parts = 2}, rng);
    // Every feasible solution respects the planted sizes (3, 2).
    for (const BitVec &x : p.feasibleSolutions()) {
        int part0 = 0;
        for (int v = 0; v < 5; ++v)
            if (x.get(kppVar({.elements = 5, .parts = 2}, v, 0)))
                ++part0;
        EXPECT_EQ(part0, 3);
    }
}

TEST(Kpp, CutObjectiveBounds)
{
    Rng rng(4);
    Problem p = makeKpp("kpp-test", {.elements = 4, .parts = 2}, rng);
    // Objective = 1 + cut weight >= 1 everywhere.
    for (const BitVec &x : p.feasibleSolutions())
        EXPECT_GE(p.objective(x), 1.0);
}

TEST(Jsp, PerfectBalanceIsOptimal)
{
    // Two jobs of equal length on two machines: optimum splits them.
    Rng rng(8);
    Problem p = makeJsp("jsp-test",
                        {.jobs = 2, .machines = 2, .minTime = 3,
                         .maxTime = 3},
                        rng);
    // Loads (3,3): objective 18; both on one machine: 36.
    EXPECT_NEAR(p.optimalValue(), 18.0, 1e-9);
    EXPECT_NEAR(p.worstFeasibleValue(), 36.0, 1e-9);
}

TEST(Scp, ExactCoverConstraint)
{
    Rng rng(2);
    ScpConfig cfg{.elements = 4, .pairSets = 4, .blockSets = 0};
    Problem p = makeScp("scp-test", cfg, rng);
    EXPECT_EQ(p.numVars(), cfg.totalSets());
    // Every feasible selection covers each element exactly once.
    for (const BitVec &x : p.feasibleSolutions()) {
        for (int e = 0; e < cfg.elements; ++e) {
            int covered = 0;
            for (int s = 0; s < cfg.totalSets(); ++s)
                if (x.get(s) && p.constraints().at(e, s) == 1)
                    ++covered;
            EXPECT_EQ(covered, 1);
        }
    }
}

TEST(Scp, SingletonsAndPairsEnrichFeasibleSet)
{
    // All-singletons is feasible, and each disjoint pair replacement adds
    // more covers, so the feasible space is rich.
    Rng rng(9);
    ScpConfig cfg{.elements = 5, .pairSets = 4, .blockSets = 1};
    Problem p = makeScp("scp-rich", cfg, rng);
    EXPECT_GE(p.feasibleCount(), 4u);
    EXPECT_TRUE(p.isFeasible(p.trivialFeasible()));
}

TEST(Gcp, FeasibleColoringsAreProper)
{
    Rng rng(6);
    GcpConfig cfg{.vertices = 4, .colors = 2, .edges = 3};
    Problem p = makeGcp("gcp-test", cfg, rng);
    for (const BitVec &x : p.feasibleSolutions()) {
        // One color per vertex.
        for (int v = 0; v < cfg.vertices; ++v) {
            int colors = 0;
            for (int c = 0; c < cfg.colors; ++c)
                if (x.get(gcpVar(cfg, v, c)))
                    ++colors;
            EXPECT_EQ(colors, 1);
        }
    }
}

TEST(Metrics, ArgOfOptimalSolutionIsZero)
{
    Problem p = makeBenchmark("J1");
    EXPECT_NEAR(p.arg(p.optimalValue()), 0.0, 1e-12);
    EXPECT_GT(p.arg(p.worstFeasibleValue()), 0.0);
}

TEST(Metrics, ExpectedObjectivePenalizesInfeasible)
{
    Problem p = makeBenchmark("J1");
    double lambda = defaultPenaltyLambda(p);
    qsim::Counts counts;
    counts.add(p.optimalSolution(), 1);
    BitVec infeasible; // all-zero violates the one-hot rows
    ASSERT_FALSE(p.isFeasible(infeasible));
    counts.add(infeasible, 1);
    double e = expectedObjective(p, counts, lambda);
    EXPECT_GT(e, p.optimalValue());
    EXPECT_NEAR(inConstraintsRate(p, counts), 0.5, 1e-12);
    EXPECT_NEAR(bestFeasibleObjective(p, counts), p.optimalValue(), 1e-12);
}

TEST(Metrics, ArgFromCountsOfPureOptimal)
{
    Problem p = makeBenchmark("S1");
    qsim::Counts counts;
    counts.add(p.optimalSolution(), 100);
    EXPECT_NEAR(argFromCounts(p, counts, defaultPenaltyLambda(p)), 0.0,
                1e-12);
}

TEST(Metrics, MeanFeasibleArgPositive)
{
    Problem p = makeBenchmark("K1");
    EXPECT_GE(meanFeasibleArg(p), 0.0);
}

TEST(Metrics, PenaltyLambdaDominatesObjectiveRange)
{
    Problem p = makeBenchmark("F2");
    double lambda = defaultPenaltyLambda(p);
    EXPECT_GT(lambda, p.worstFeasibleValue() - p.optimalValue());
}

} // namespace
} // namespace rasengan::problems
