/**
 * @file
 * Tests for the Hermite normal form: shape invariants, unimodularity of
 * the transform, kernel-basis correctness (cross-checked against the
 * RREF nullspace), and integral solving -- including parameterized sweeps
 * over the benchmark suite's constraint matrices.
 */

#include <gtest/gtest.h>

#include "linalg/hnf.h"
#include "linalg/nullspace.h"
#include "linalg/rref.h"
#include "linalg/solve.h"
#include "linalg/unimodular.h"
#include "problems/suite.h"

namespace rasengan::linalg {
namespace {

/** H = A U must hold entry-wise. */
void
expectProductMatches(const IntMat &a, const HnfResult &res)
{
    for (int r = 0; r < a.rows(); ++r) {
        for (int c = 0; c < a.cols(); ++c) {
            __int128 acc = 0;
            for (int k = 0; k < a.cols(); ++k)
                acc += static_cast<__int128>(a.at(r, k)) * res.u.at(k, c);
            EXPECT_EQ(static_cast<int64_t>(acc), res.h.at(r, c))
                << "entry (" << r << ", " << c << ")";
        }
    }
}

TEST(Hnf, IdentityIsFixedPoint)
{
    IntMat eye{{1, 0}, {0, 1}};
    HnfResult res = hermiteNormalForm(eye);
    EXPECT_EQ(res.h, eye);
    EXPECT_EQ(res.rank, 2);
    EXPECT_EQ(std::abs(determinant(res.u)), 1);
}

TEST(Hnf, TransformIsUnimodular)
{
    IntMat a{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}};
    HnfResult res = hermiteNormalForm(a);
    EXPECT_EQ(std::abs(determinant(res.u)), 1);
    expectProductMatches(a, res);
}

TEST(Hnf, PivotsArePositiveAndReduced)
{
    IntMat a{{2, 4, 4}, {-6, 6, 12}};
    HnfResult res = hermiteNormalForm(a);
    int pivot_col = 0;
    for (int r = 0; r < a.rows() && pivot_col < res.rank; ++r) {
        int64_t pivot = res.h.at(r, pivot_col);
        if (pivot == 0)
            continue;
        EXPECT_GT(pivot, 0);
        // Entries to the left in the pivot row lie in [0, pivot).
        for (int j = 0; j < pivot_col; ++j) {
            EXPECT_GE(res.h.at(r, j), 0);
            EXPECT_LT(res.h.at(r, j), pivot);
        }
        // Entries to the right of the pivot are zero.
        for (int j = pivot_col + 1; j < a.cols(); ++j)
            EXPECT_EQ(res.h.at(r, j), 0);
        ++pivot_col;
    }
}

TEST(Hnf, RankMatchesRref)
{
    IntMat a{{1, 2, 3}, {2, 4, 6}, {1, 0, 1}};
    EXPECT_EQ(hermiteNormalForm(a).rank, rank(a));
}

TEST(Hnf, KernelBasisIsInKernel)
{
    IntMat a{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
    auto basis = hnfKernelBasis(a);
    EXPECT_EQ(basis.size(), 3u);
    for (const auto &v : basis) {
        for (int64_t e : applyInt(a, v))
            EXPECT_EQ(e, 0);
    }
}

TEST(Hnf, KernelDimensionAgreesWithRref)
{
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id);
        auto hnf_basis = hnfKernelBasis(p.constraints());
        auto rref_basis = nullspaceBasis(p.constraints());
        EXPECT_EQ(hnf_basis.size(), rref_basis.size()) << id;
        for (const auto &v : hnf_basis)
            for (int64_t e : applyInt(p.constraints(), v))
                EXPECT_EQ(e, 0) << id;
    }
}

TEST(Hnf, ProductIdentityAcrossSuite)
{
    for (const char *id : {"F2", "K2", "J3", "S3", "G2"}) {
        problems::Problem p = problems::makeBenchmark(id);
        HnfResult res = hermiteNormalForm(p.constraints());
        expectProductMatches(p.constraints(), res);
        EXPECT_EQ(std::abs(determinant(res.u)), 1) << id;
    }
}

TEST(Hnf, SolveIntegralOnSolvableSystem)
{
    IntMat a{{1, 1, -1, 0, 0}, {0, 0, 1, 1, -1}};
    IntVec b{0, 1};
    auto x = solveIntegral(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(applyInt(a, *x), b);
}

TEST(Hnf, SolveIntegralDetectsNonIntegrality)
{
    // 2x = 1 has a rational but no integral solution.
    IntMat a{{2}};
    EXPECT_FALSE(solveIntegral(a, {1}).has_value());
    EXPECT_TRUE(solveIntegral(a, {4}).has_value());
}

TEST(Hnf, SolveIntegralDetectsInconsistency)
{
    IntMat a{{1, 1}, {1, 1}};
    EXPECT_FALSE(solveIntegral(a, {0, 1}).has_value());
}

TEST(Hnf, SolveIntegralAcrossSuite)
{
    for (const std::string &id : problems::benchmarkIds()) {
        problems::Problem p = problems::makeBenchmark(id);
        auto x = solveIntegral(p.constraints(), p.bounds());
        ASSERT_TRUE(x.has_value()) << id;
        EXPECT_EQ(applyInt(p.constraints(), *x), p.bounds()) << id;
    }
}

TEST(Hnf, ZeroMatrixHasFullKernel)
{
    IntMat a(2, 3);
    HnfResult res = hermiteNormalForm(a);
    EXPECT_EQ(res.rank, 0);
    EXPECT_EQ(hnfKernelBasis(a).size(), 3u);
}

} // namespace
} // namespace rasengan::linalg
