/**
 * @file
 * Tests for profile-guided adaptive execution: fingerprint bucketing,
 * cost-model persistence (including debris tolerance for corrupt or
 * torn model files), and the tuner's decision policy -- cold-start
 * fallback must be byte-for-byte the fixed defaults, the decision
 * sequence must be deterministic across pool thread counts and active
 * SIMD ISAs, and exploit must only leave a default arm for a win that
 * clears the noise margin.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "qsim/simd.h"
#include "serve/job.h"
#include "tune/costmodel.h"
#include "tune/fingerprint.h"
#include "tune/tuner.h"

namespace rasengan::tune {
namespace {

std::string
tempPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** Tuner options pinned so tests never depend on the host machine. */
TunerOptions
pinnedOptions(TuneMode mode, const std::string &modelPath)
{
    TunerOptions opts;
    opts.mode = mode;
    opts.modelPath = modelPath;
    opts.defaultThreads = 1;
    opts.maxThreads = 4;
    opts.defaultIsa = "scalar";
    opts.isas = {"scalar"};
    opts.processKnobs = false;
    opts.minSamplesPerArm = 2;
    opts.exploitMarginPct = 3.0;
    return opts;
}

WorkloadFingerprint
sampleFingerprint()
{
    WorkloadFingerprint fp;
    fp.numVars = 6;
    fp.numConstraints = 2;
    fp.execution = "exact";
    fp.iterations = 12;
    fp.shots = 1024;
    return fp;
}

Measurement
measurement(const ArmAssignment &arms, double wallMs,
            const std::string &bucket)
{
    Measurement m;
    m.bucket = bucket;
    m.arms = arms;
    m.wallMs = wallMs;
    m.source = "default";
    return m;
}

/** Full default assignment for pinnedOptions() tuners. */
ArmAssignment
defaultArms()
{
    return {{kKnobEngine, "search"},
            {kKnobPlans, "on"},
            {kKnobFusion, "on"},
            {kKnobThreads, "1"},
            {kKnobIsa, "scalar"}};
}

/** Render a decision sequence for equality comparison. */
std::vector<std::string>
decisionTrace(Tuner &tuner, const WorkloadFingerprint &fp, int n)
{
    std::vector<std::string> trace;
    for (int i = 0; i < n; ++i) {
        TuneDecision d = tuner.decide(fp);
        trace.push_back(d.bucket + "|" + renderArms(d.arms) + "|" +
                        d.source);
    }
    return trace;
}

TEST(TuneFingerprint, Log2BucketBoundaries)
{
    EXPECT_EQ(log2Bucket(0), 0u);
    EXPECT_EQ(log2Bucket(1), 1u);
    EXPECT_EQ(log2Bucket(2), 2u);
    EXPECT_EQ(log2Bucket(3), 2u);
    EXPECT_EQ(log2Bucket(4), 4u);
    EXPECT_EQ(log2Bucket(1023), 512u);
    EXPECT_EQ(log2Bucket(1024), 1024u);
}

TEST(TuneFingerprint, BucketDeterministicAndLabelSafe)
{
    const WorkloadFingerprint a = sampleFingerprint();
    const WorkloadFingerprint b = sampleFingerprint();
    const std::string bucket = fingerprintBucket(a);
    EXPECT_EQ(bucket, fingerprintBucket(b));
    EXPECT_FALSE(bucket.empty());
    for (char c : bucket) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        EXPECT_TRUE(ok) << "bucket char '" << c << "' in " << bucket;
    }
}

TEST(TuneFingerprint, PruneThresholdFencesBucket)
{
    // A result-AFFECTING knob is never tuned, but when a request sets
    // one its measurements must not pool with default-pruned traffic.
    WorkloadFingerprint def = sampleFingerprint();
    WorkloadFingerprint pruned = sampleFingerprint();
    pruned.pruneThreshold = 0.5;
    WorkloadFingerprint unpruned = sampleFingerprint();
    unpruned.pruneThreshold = 0.0;
    EXPECT_NE(fingerprintBucket(def), fingerprintBucket(pruned));
    EXPECT_NE(fingerprintBucket(def), fingerprintBucket(unpruned));
    EXPECT_NE(fingerprintBucket(pruned), fingerprintBucket(unpruned));
}

TEST(TuneCostModel, ArmsRoundTrip)
{
    const ArmAssignment arms = defaultArms();
    const std::string text = renderArms(arms);
    ArmAssignment back;
    ASSERT_TRUE(parseArms(text, &back));
    EXPECT_EQ(arms, back);

    // Extra bucket/source clauses ride the same syntax.
    std::string bucket;
    std::string source;
    ASSERT_TRUE(parseArms("bucket=q4.c2;engine=dense;source=model",
                          &back, &bucket, &source));
    EXPECT_EQ(bucket, "q4.c2");
    EXPECT_EQ(source, "model");
    EXPECT_EQ(back[kKnobEngine], "dense");

    EXPECT_TRUE(parseArms("", &back));
    EXPECT_TRUE(back.empty());
    EXPECT_FALSE(parseArms("engine=dense;broken", &back));
}

TEST(TuneCostModel, MeasurementRoundTrip)
{
    Measurement m = measurement(defaultArms(), 12.5, "q4.c2.x");
    m.source = "explore:engine=dense";
    m.supportMax = 64;
    m.planRecorded = 3;
    m.planReplayed = 9;

    Measurement back;
    ASSERT_TRUE(parseMeasurement(encodeMeasurement(m), &back));
    EXPECT_EQ(back.bucket, m.bucket);
    EXPECT_EQ(back.arms, m.arms);
    EXPECT_DOUBLE_EQ(back.wallMs, m.wallMs);
    EXPECT_EQ(back.source, m.source);
    EXPECT_EQ(back.supportMax, 64u);
    EXPECT_EQ(back.planRecorded, 3u);
    EXPECT_EQ(back.planReplayed, 9u);
}

TEST(TuneCostModel, ParseMeasurementRejectsGarbage)
{
    Measurement out;
    EXPECT_FALSE(parseMeasurement("not json at all", &out));
    EXPECT_FALSE(parseMeasurement("{\"wall_ms\":1.0}", &out)); // no bucket
    EXPECT_FALSE(parseMeasurement("{\"bucket\":\"b\"}", &out)); // no wall
    EXPECT_FALSE(
        parseMeasurement("{\"bucket\":\"b\",\"wall_ms\":-1.0}", &out));
}

TEST(TuneCostModel, MarginalCrediting)
{
    // One record credits its wall time to EVERY (knob, arm) pair of the
    // assignment it ran under.
    CostModel model;
    ArmAssignment arms = defaultArms();
    arms[kKnobEngine] = "dense";
    model.add(measurement(arms, 10.0, "b"));
    model.add(measurement(arms, 30.0, "b"));

    EXPECT_EQ(model.samples("b", kKnobEngine, "dense"), 2u);
    EXPECT_EQ(model.samples("b", kKnobEngine, "search"), 0u);
    EXPECT_EQ(model.samples("b", kKnobPlans, "on"), 2u);
    const CostModel::ArmStats *s = model.stats("b", kKnobEngine, "dense");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->meanMs(), 20.0);
    EXPECT_EQ(model.stats("b", kKnobEngine, "search"), nullptr);
    EXPECT_EQ(model.stats("other", kKnobEngine, "dense"), nullptr);
}

TEST(TuneCostModel, MissingFileIsCleanColdStart)
{
    CostModel model;
    CostModel::LoadStats stats =
        model.loadFile(tempPath("tune_missing_model.jsonl"));
    EXPECT_TRUE(stats.fileMissing);
    EXPECT_EQ(stats.records, 0u);
    EXPECT_EQ(stats.debris, 0u);
    EXPECT_EQ(model.bucketCount(), 0u);
}

TEST(TuneCostModel, CorruptAndTornFileTolerated)
{
    const std::string path = tempPath("tune_corrupt_model.jsonl");
    const std::string good1 =
        encodeMeasurement(measurement(defaultArms(), 5.0, "b"));
    const std::string good2 =
        encodeMeasurement(measurement(defaultArms(), 7.0, "b"));
    std::string content;
    content += good1 + "\n";
    content += "this is not json\n";
    content += "{\"bucket\":\"b\"}\n"; // parses, but no wall_ms
    content += std::string("nul\0byte", 8) + "\n";
    content += good2 + "\n";
    content += good1.substr(0, good1.size() / 2); // torn trailing write
    writeFile(path, content);

    CostModel model;
    CostModel::LoadStats stats = model.loadFile(path);
    EXPECT_FALSE(stats.fileMissing);
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.debris, 4u);
    EXPECT_EQ(model.samples("b", kKnobEngine, "search"), 2u);

    // A tuner on the same damaged file must come up and decide.
    Tuner tuner(pinnedOptions(TuneMode::Auto, path));
    tuner.load();
    TuneDecision d = tuner.decide(sampleFingerprint());
    EXPECT_FALSE(d.arms.empty());
    std::remove(path.c_str());
}

TEST(TuneTuner, ColdStartFallbackIsFixedDefaults)
{
    // Off and Observe never deviate: decide() must be byte-for-byte the
    // fixed-default assignment.
    for (TuneMode mode : {TuneMode::Off, TuneMode::Observe}) {
        Tuner tuner(pinnedOptions(mode, ""));
        const WorkloadFingerprint fp = sampleFingerprint();
        const TuneDecision defs =
            tuner.defaults(fingerprintBucket(fp));
        for (int i = 0; i < 5; ++i) {
            TuneDecision d = tuner.decide(fp);
            EXPECT_EQ(renderArms(d.arms), renderArms(defs.arms));
            EXPECT_EQ(renderArms(d.arms), renderArms(defaultArms()));
            EXPECT_EQ(d.source, "default");
            EXPECT_FALSE(d.tuned);
            EXPECT_FALSE(d.denseLookup());
            EXPECT_TRUE(d.cachePlans());
            EXPECT_TRUE(d.fusion());
            EXPECT_EQ(d.threads(), 1);
            EXPECT_EQ(d.isa(), "scalar");
        }
    }

    // Auto with no model explores, but its FIRST arm per knob is the
    // default, so the very first cold decision still runs the fixed
    // defaults.
    Tuner autoTuner(pinnedOptions(TuneMode::Auto, ""));
    TuneDecision first = autoTuner.decide(sampleFingerprint());
    EXPECT_EQ(renderArms(first.arms), renderArms(defaultArms()));
    EXPECT_EQ(first.source, "explore:engine=search");
}

TEST(TuneTuner, ProcessKnobsCollapseWhenDisallowed)
{
    // A concurrent scheduler cannot honor process-wide knobs, so those
    // knobs must collapse to a single default arm -- the tuner never
    // hands out an assignment the caller would have to ignore.
    Tuner tuner(pinnedOptions(TuneMode::Auto, ""));
    for (const KnobSpec &knob : tuner.knobs()) {
        const bool perJob =
            knob.name == kKnobEngine || knob.name == kKnobPlans;
        EXPECT_EQ(knob.arms.size(), perJob ? 2u : 1u) << knob.name;
    }

    TunerOptions serial = pinnedOptions(TuneMode::Auto, "");
    serial.processKnobs = true;
    serial.isas = {"scalar", "avx2"};
    Tuner serialTuner(serial);
    for (const KnobSpec &knob : serialTuner.knobs()) {
        if (knob.name == kKnobIsa) {
            EXPECT_EQ(knob.arms.size(), 2u);
        }
    }
}

TEST(TuneTuner, DecisionsDeterministicAcrossHostState)
{
    // decide() must be a pure function of the loaded model and the
    // decision sequence -- never of live pool threads or the active
    // SIMD ISA.  Same journal, same options => same decisions, no
    // matter how the host is configured between runs.
    const std::string path = tempPath("tune_det_model.jsonl");
    std::string journal;
    ArmAssignment dense = defaultArms();
    dense[kKnobEngine] = "dense";
    for (int i = 0; i < 2; ++i) {
        journal +=
            encodeMeasurement(measurement(defaultArms(), 40.0, "b")) +
            "\n";
        journal += encodeMeasurement(measurement(dense, 20.0, "b")) + "\n";
    }
    writeFile(path, journal);

    const WorkloadFingerprint fp = sampleFingerprint();
    const int savedThreads = parallel::threadCount();
    const std::string savedIsa =
        qsim::simdIsaName(qsim::simdActiveIsa());

    std::vector<std::vector<std::string>> traces;
    for (int threads : {1, 2, 7}) {
        parallel::setThreadCount(threads);
        for (qsim::SimdIsa isa : qsim::simdAvailableIsas()) {
            qsim::selectSimdIsa(qsim::simdIsaName(isa), nullptr);
            Tuner tuner(pinnedOptions(TuneMode::Auto, path));
            tuner.load();
            traces.push_back(decisionTrace(tuner, fp, 12));
        }
    }
    parallel::setThreadCount(savedThreads);
    qsim::selectSimdIsa(savedIsa, nullptr);

    ASSERT_GE(traces.size(), 3u);
    for (size_t i = 1; i < traces.size(); ++i)
        EXPECT_EQ(traces[i], traces[0]) << "trace " << i << " diverged";
    std::remove(path.c_str());
}

TEST(TuneTuner, ExploreSequenceIsDeterministic)
{
    // Two fresh tuners with the same options walk the same explore
    // schedule: default arm first, one knob deviating at a time.
    Tuner a(pinnedOptions(TuneMode::Auto, ""));
    Tuner b(pinnedOptions(TuneMode::Auto, ""));
    const WorkloadFingerprint fp = sampleFingerprint();
    EXPECT_EQ(decisionTrace(a, fp, 10), decisionTrace(b, fp, 10));

    Tuner c(pinnedOptions(TuneMode::Auto, ""));
    TuneDecision d1 = c.decide(fp);
    TuneDecision d2 = c.decide(fp);
    TuneDecision d3 = c.decide(fp);
    EXPECT_EQ(d1.source, "explore:engine=search");
    EXPECT_EQ(d2.source, "explore:engine=search");
    EXPECT_EQ(d3.source, "explore:engine=dense");
    EXPECT_TRUE(d3.denseLookup());
    EXPECT_TRUE(d3.tuned);
    // The deviating knob is the ONLY deviation.
    ArmAssignment expected = defaultArms();
    expected[kKnobEngine] = "dense";
    EXPECT_EQ(renderArms(d3.arms), renderArms(expected));
}

TEST(TuneTuner, ExploitPicksFasterArmPastMargin)
{
    const std::string path = tempPath("tune_exploit_model.jsonl");
    const WorkloadFingerprint fp = sampleFingerprint();
    const std::string bucket = fingerprintBucket(fp);
    ArmAssignment dense = defaultArms();
    dense[kKnobEngine] = "dense";
    ArmAssignment plansOff = defaultArms();
    plansOff[kKnobPlans] = "off";

    std::string journal;
    for (int i = 0; i < 3; ++i) {
        journal += encodeMeasurement(
                       measurement(defaultArms(), 100.0, bucket)) +
                   "\n";
        journal +=
            encodeMeasurement(measurement(dense, 50.0, bucket)) + "\n";
    }
    // plans=off is ~1% faster: inside the 3% noise margin, so its
    // default must hold even though every arm is fully sampled.
    journal +=
        encodeMeasurement(measurement(plansOff, 99.0, bucket)) + "\n";
    journal +=
        encodeMeasurement(measurement(plansOff, 99.0, bucket)) + "\n";
    writeFile(path, journal);

    Tuner tuner(pinnedOptions(TuneMode::Auto, path));
    CostModel::LoadStats stats = tuner.load();
    EXPECT_EQ(stats.records, 8u);
    EXPECT_EQ(stats.debris, 0u);

    TuneDecision d = tuner.decide(fp);
    EXPECT_EQ(d.source, "model");
    EXPECT_TRUE(d.tuned);
    EXPECT_TRUE(d.denseLookup()) << "2x-faster dense arm must win";
    EXPECT_TRUE(d.cachePlans()) << "1% win must not clear the 3% margin";

    // An UNMEASURED bucket on the same tuner still explores from the
    // default arm -- exploit knowledge never leaks across buckets.
    WorkloadFingerprint otherFp = fp;
    otherFp.numVars = 64;
    TuneDecision other = tuner.decide(otherFp);
    EXPECT_EQ(other.source, "explore:engine=search");
    std::remove(path.c_str());
}

TEST(TuneTuner, ExploitMarginProtectsDefault)
{
    const std::string path = tempPath("tune_margin_model.jsonl");
    const WorkloadFingerprint fp = sampleFingerprint();
    const std::string bucket = fingerprintBucket(fp);
    ArmAssignment dense = defaultArms();
    dense[kKnobEngine] = "dense";
    ArmAssignment plansOff = defaultArms();
    plansOff[kKnobPlans] = "off";

    std::string journal;
    for (int i = 0; i < 2; ++i) {
        journal += encodeMeasurement(
                       measurement(defaultArms(), 100.0, bucket)) +
                   "\n";
        journal +=
            encodeMeasurement(measurement(dense, 98.0, bucket)) + "\n";
        journal +=
            encodeMeasurement(measurement(plansOff, 100.0, bucket)) +
            "\n";
    }
    writeFile(path, journal);

    Tuner tuner(pinnedOptions(TuneMode::Auto, path));
    tuner.load();
    TuneDecision d = tuner.decide(fp);
    EXPECT_EQ(d.source, "default");
    EXPECT_FALSE(d.tuned);
    EXPECT_EQ(renderArms(d.arms), renderArms(defaultArms()));
    std::remove(path.c_str());
}

TEST(TuneTuner, RecordPersistsAndDrains)
{
    const std::string path = tempPath("tune_record_model.jsonl");
    Tuner tuner(pinnedOptions(TuneMode::Observe, path));
    tuner.load();

    Measurement m = measurement(defaultArms(), 3.25, "b");
    tuner.record(m);
    std::vector<std::string> lines = tuner.drainRecords();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], encodeMeasurement(m));
    EXPECT_TRUE(tuner.drainRecords().empty());

    // The journal append lands on disk, and a later run loads it.
    CostModel model;
    CostModel::LoadStats stats = model.loadFile(path);
    EXPECT_EQ(stats.records, 1u);
    EXPECT_EQ(model.samples("b", kKnobEngine, "search"), 1u);

    // Off mode never records.
    Tuner off(pinnedOptions(TuneMode::Off, path));
    off.record(m);
    EXPECT_TRUE(off.drainRecords().empty());
    EXPECT_EQ(off.stats().recorded, 0u);
    std::remove(path.c_str());
}

TEST(TuneTuner, AbsorbLinesJournalsValidDropsGarbage)
{
    const std::string path = tempPath("tune_absorb_model.jsonl");
    Tuner tuner(pinnedOptions(TuneMode::Auto, path));
    tuner.load();

    const std::string good1 =
        encodeMeasurement(measurement(defaultArms(), 4.0, "b"));
    const std::string good2 =
        encodeMeasurement(measurement(defaultArms(), 6.0, "b"));
    const size_t absorbed =
        tuner.absorbLines(good1 + "\nnot a measurement\n" + good2 + "\n");
    EXPECT_EQ(absorbed, 2u);
    EXPECT_EQ(tuner.stats().absorbed, 2u);
    EXPECT_EQ(tuner.stats().absorbDropped, 1u);

    // Absorbed lines reach the on-disk journal for FUTURE runs...
    CostModel model;
    EXPECT_EQ(model.loadFile(path).records, 2u);

    // ...but never the live model: this run's decisions still follow
    // the cold-start explore schedule.
    TuneDecision d = tuner.decide(sampleFingerprint());
    EXPECT_EQ(d.source, "explore:engine=search");
    std::remove(path.c_str());
}

TEST(TuneTuner, HintRoundTripsThroughRequestLine)
{
    // The coordinator renders a decision as a hint, ships it inside the
    // forwarded request line, and the worker parses it back.  The hint
    // must round-trip the request codec -- and must NOT change the
    // canonical request text that derives child seeds.
    Tuner tuner(pinnedOptions(TuneMode::Auto, ""));
    TuneDecision d = tuner.decide(sampleFingerprint());
    const std::string hint = renderHint(d);

    ArmAssignment arms;
    std::string bucket;
    std::string source;
    ASSERT_TRUE(parseArms(hint, &arms, &bucket, &source));
    EXPECT_EQ(bucket, d.bucket);
    EXPECT_EQ(source, d.source);
    EXPECT_EQ(renderArms(arms), renderArms(d.arms));

    serve::JobRequest req;
    req.id = "job-1";
    req.benchmark = "F1";
    serve::JobRequest hinted = req;
    hinted.tuneHint = hint;

    const std::string plainLine = serve::writeRequest(req);
    const std::string hintedLine = serve::writeRequest(hinted);
    EXPECT_EQ(plainLine.find("tune"), std::string::npos);
    EXPECT_NE(hintedLine.find(hint), std::string::npos);

    serve::RequestParseResult parsed = serve::parseRequest(hintedLine);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.request.tuneHint, hint);

    EXPECT_EQ(serve::canonicalRequestText(req, "problem"),
              serve::canonicalRequestText(hinted, "problem"));
}

TEST(TuneTuner, StatsCountDecisions)
{
    Tuner tuner(pinnedOptions(TuneMode::Auto, ""));
    const WorkloadFingerprint fp = sampleFingerprint();
    for (int i = 0; i < 4; ++i)
        (void)tuner.decide(fp);
    Tuner::Stats stats = tuner.stats();
    EXPECT_EQ(stats.decisions, 4u);
    EXPECT_EQ(stats.explored, 4u);
    EXPECT_EQ(stats.exploited, 0u);
}

} // namespace
} // namespace rasengan::tune
