/**
 * @file
 * Unit tests for src/device: coupling topologies, BFS paths, SWAP
 * routing (validated by simulating routed vs original circuits), device
 * presets, and the latency model.
 */

#include <gtest/gtest.h>

#include "circuit/transpile.h"
#include "core/rasengan.h"
#include "device/device.h"
#include "device/latency.h"
#include "device/routing.h"
#include "device/topology.h"
#include "problems/suite.h"
#include "qsim/statevector.h"

namespace rasengan::device {
namespace {

TEST(Topology, LinearChain)
{
    CouplingMap map = CouplingMap::linear(4);
    EXPECT_EQ(map.numQubits(), 4);
    EXPECT_EQ(map.edges().size(), 3u);
    EXPECT_TRUE(map.connected(1, 2));
    EXPECT_FALSE(map.connected(0, 3));
    EXPECT_EQ(map.distance(0, 3), 3);
    EXPECT_TRUE(map.isConnected());
}

TEST(Topology, GridNeighbors)
{
    CouplingMap map = CouplingMap::grid(2, 3);
    EXPECT_EQ(map.numQubits(), 6);
    EXPECT_TRUE(map.connected(0, 1));
    EXPECT_TRUE(map.connected(0, 3));
    EXPECT_FALSE(map.connected(0, 4));
    EXPECT_EQ(map.distance(0, 5), 3);
}

TEST(Topology, FullCoupling)
{
    CouplingMap map = CouplingMap::full(5);
    EXPECT_EQ(map.edges().size(), 10u);
    EXPECT_EQ(map.distance(0, 4), 1);
}

TEST(Topology, ShortestPathEndpoints)
{
    CouplingMap map = CouplingMap::linear(5);
    auto path = map.shortestPath(1, 4);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 1);
    EXPECT_EQ(path.back(), 4);
    for (size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(map.connected(path[i], path[i + 1]));
    EXPECT_EQ(map.shortestPath(2, 2), (std::vector<int>{2}));
}

TEST(Topology, DisconnectedGraphReportsUnreachable)
{
    CouplingMap map(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(map.isConnected());
    EXPECT_EQ(map.distance(0, 3), -1);
    EXPECT_TRUE(map.shortestPath(0, 3).empty());
}

TEST(Topology, DeduplicatesEdges)
{
    CouplingMap map(2, {{0, 1}, {1, 0}, {0, 1}});
    EXPECT_EQ(map.edges().size(), 1u);
}

TEST(Topology, HeavyHexIsConnected)
{
    CouplingMap map = CouplingMap::heavyHex(7, 15);
    EXPECT_GE(map.numQubits(), 105);
    EXPECT_TRUE(map.isConnected());
    // Heavy-hex is sparse: average degree must stay below 3.
    double avg_degree =
        2.0 * map.edges().size() / map.numQubits();
    EXPECT_LT(avg_degree, 3.0);
}

TEST(Routing, AdjacentGatesUntouched)
{
    circuit::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    RoutingResult r = route(c, CouplingMap::linear(3));
    EXPECT_EQ(r.swapsInserted, 0);
    EXPECT_EQ(r.routed.size(), c.size());
}

TEST(Routing, InsertsSwapsForDistantGates)
{
    circuit::Circuit c(4);
    c.cx(0, 3);
    RoutingResult r = route(c, CouplingMap::linear(4));
    EXPECT_GE(r.swapsInserted, 2);
    // All two-qubit gates in the routed circuit must be coupled.
    CouplingMap map = CouplingMap::linear(4);
    for (const auto &g : r.routed.gates()) {
        auto qs = g.qubits();
        if (qs.size() == 2) {
            EXPECT_TRUE(map.connected(qs[0], qs[1]));
        }
    }
}

TEST(Routing, RoutedCircuitPreservesSemantics)
{
    // Build a circuit with several distant interactions, route it onto a
    // chain, then verify by simulation: outcome probabilities of logical
    // qubits must match after applying the final layout.
    circuit::Circuit c(4);
    c.h(0);
    c.cx(0, 3);
    c.cx(1, 2);
    c.rx(3, 0.7);
    c.cx(0, 2);
    CouplingMap map = CouplingMap::linear(4);
    RoutingResult r = route(c, map, /*lower_swaps=*/false);

    qsim::Statevector logical(4);
    logical.applyCircuit(c);
    qsim::Statevector physical(4);
    physical.applyCircuit(r.routed);

    for (uint64_t idx = 0; idx < 16; ++idx) {
        BitVec logical_state = BitVec::fromIndex(idx);
        BitVec physical_state;
        for (int l = 0; l < 4; ++l)
            if (logical_state.get(l))
                physical_state.set(r.finalLayout[l]);
        EXPECT_NEAR(logical.probability(logical_state),
                    physical.probability(physical_state), 1e-9)
            << "logical state " << idx;
    }
}

TEST(Routing, LowersSwapsToCx)
{
    circuit::Circuit c(3);
    c.cx(0, 2);
    RoutingResult r = route(c, CouplingMap::linear(3), true);
    EXPECT_EQ(r.routed.countKind(circuit::GateKind::Swap), 0);
    EXPECT_GE(r.routed.countCx(), 4); // 3 per swap + the gate itself
}

TEST(RoutingLookahead, AdjacentGatesUntouched)
{
    circuit::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    RoutingResult r = routeLookahead(c, CouplingMap::linear(3));
    EXPECT_EQ(r.swapsInserted, 0);
    EXPECT_EQ(r.routed.size(), c.size());
}

TEST(RoutingLookahead, ProducesCoupledGates)
{
    circuit::Circuit c(5);
    c.cx(0, 4);
    c.cx(1, 3);
    c.cx(0, 2);
    CouplingMap map = CouplingMap::linear(5);
    RoutingResult r = routeLookahead(c, map);
    for (const auto &g : r.routed.gates()) {
        auto qs = g.qubits();
        if (qs.size() == 2) {
            EXPECT_TRUE(map.connected(qs[0], qs[1]));
        }
    }
    EXPECT_GT(r.swapsInserted, 0);
}

TEST(RoutingLookahead, PreservesSemantics)
{
    circuit::Circuit c(4);
    c.h(0);
    c.h(1);
    c.cx(0, 3);
    c.rx(2, 0.4);
    c.cx(1, 2);
    c.cp(0, 2, 0.9);
    c.cx(3, 1);
    CouplingMap map = CouplingMap::linear(4);
    RoutingResult r = routeLookahead(c, map, /*lower_swaps=*/false);

    qsim::Statevector logical(4);
    logical.applyCircuit(c);
    qsim::Statevector physical(4);
    physical.applyCircuit(r.routed);

    for (uint64_t idx = 0; idx < 16; ++idx) {
        BitVec logical_state = BitVec::fromIndex(idx);
        BitVec physical_state;
        for (int l = 0; l < 4; ++l)
            if (logical_state.get(l))
                physical_state.set(r.finalLayout[l]);
        EXPECT_NEAR(logical.probability(logical_state),
                    physical.probability(physical_state), 1e-9)
            << "logical state " << idx;
    }
}

TEST(RoutingLookahead, ReordersIndependentGatesAroundBlockedOnes)
{
    // Gate cx(3,4) is executable immediately even though cx(0,4)... the
    // DAG ties them; use disjoint wires instead: cx(0,3) blocked, the
    // independent cx(1,2) must not wait for swaps.
    circuit::Circuit c(4);
    c.cx(0, 3);
    c.cx(1, 2);
    RoutingResult r = routeLookahead(c, CouplingMap::linear(4));
    ASSERT_FALSE(r.routed.gates().empty());
    // The first emitted operation is the independent adjacent CX, not a
    // swap for the blocked pair.
    const auto &first = r.routed.gates()[0];
    EXPECT_EQ(first.kind, circuit::GateKind::CX);
    EXPECT_EQ(first.controls[0], 1);
    EXPECT_EQ(first.targets[0], 2);
}

TEST(RoutingLookahead, NoWorseThanGreedyOnInterleavedPairs)
{
    // Repeated interactions between the two chain ends: the lookahead
    // heuristic should not exceed the greedy walker's swap count.
    circuit::Circuit c(6);
    for (int rep = 0; rep < 3; ++rep) {
        c.cx(0, 5);
        c.cx(1, 4);
    }
    CouplingMap map = CouplingMap::linear(6);
    RoutingResult greedy = route(c, map);
    RoutingResult lookahead = routeLookahead(c, map);
    EXPECT_LE(lookahead.swapsInserted, greedy.swapsInserted);
}

TEST(RoutingLookahead, HandlesHeavyHex)
{
    problems::Problem p = problems::makeBenchmark("S2");
    core::RasenganSolver solver(p, {});
    std::vector<double> nominal(solver.numParams(), 0.5);
    circuit::Circuit lowered = circuit::transpile(
        solver.segmentCircuit(0, p.trivialFeasible(), nominal));
    CouplingMap map = CouplingMap::heavyHex(7, 15);
    RoutingResult r = routeLookahead(lowered, map);
    for (const auto &g : r.routed.gates()) {
        auto qs = g.qubits();
        if (qs.size() == 2) {
            EXPECT_TRUE(map.connected(qs[0], qs[1]));
        }
    }
}

TEST(Device, PresetsAreOrdered)
{
    DeviceModel kyiv = DeviceModel::ibmKyiv();
    DeviceModel brisbane = DeviceModel::ibmBrisbane();
    // Section 5.4: Kyiv's two-qubit error rate exceeds Brisbane's.
    EXPECT_GT(kyiv.error2q, brisbane.error2q);
    EXPECT_NEAR(kyiv.error2q, 0.012, 1e-9);
    EXPECT_NEAR(brisbane.error2q, 0.0082, 1e-9);
    EXPECT_GE(kyiv.coupling.numQubits(), 105);
}

TEST(Device, NoiseModelFromCalibration)
{
    qsim::NoiseModel noise = DeviceModel::ibmKyiv().toNoiseModel();
    EXPECT_NEAR(noise.depol2q, 0.012, 1e-9);
    EXPECT_GT(noise.amplitudeDamping, 0.0);
    EXPECT_LT(noise.amplitudeDamping, 0.01);
    EXPECT_GT(noise.phaseDamping, 0.0);
    EXPECT_TRUE(noise.enabled());
}

TEST(Device, NoiselessPresetIsQuiet)
{
    qsim::NoiseModel noise = DeviceModel::noiseless(8).toNoiseModel();
    EXPECT_FALSE(noise.enabled());
}

TEST(Latency, DeeperCircuitsTakeLonger)
{
    LatencyModel latency(DeviceModel::ibmQuebec());
    circuit::Circuit shallow(2);
    shallow.h(0);
    circuit::Circuit deep(2);
    for (int i = 0; i < 50; ++i)
        deep.cx(0, 1);
    EXPECT_GT(latency.circuitTimeUs(deep), latency.circuitTimeUs(shallow));
}

TEST(Latency, ScalesLinearlyInShots)
{
    LatencyModel latency(DeviceModel::ibmQuebec());
    circuit::Circuit c(2);
    c.cx(0, 1);
    double one = latency.executionTimeSeconds(c, 1000);
    double two = latency.executionTimeSeconds(c, 2000);
    EXPECT_NEAR(two, 2.0 * one, 1e-12);
}

TEST(Latency, SegmentedTimeAddsUp)
{
    LatencyModel latency(DeviceModel::ibmQuebec());
    circuit::Circuit c(2);
    c.cx(0, 1);
    std::vector<std::pair<circuit::Circuit, uint64_t>> segments{
        {c, 100}, {c, 200}};
    EXPECT_NEAR(latency.segmentedTimeSeconds(segments),
                latency.executionTimeSeconds(c, 100) +
                    latency.executionTimeSeconds(c, 200),
                1e-12);
}

} // namespace
} // namespace rasengan::device
