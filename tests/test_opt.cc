/**
 * @file
 * Unit tests for src/opt: the COBYLA-style optimizer, Nelder-Mead, and
 * SPSA on standard test functions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "opt/adamspsa.h"
#include "opt/cobyla.h"
#include "opt/neldermead.h"
#include "opt/spsa.h"

namespace rasengan::opt {
namespace {

double
sphere(const std::vector<double> &x)
{
    double acc = 0.0;
    for (double v : x)
        acc += v * v;
    return acc;
}

double
shiftedQuadratic(const std::vector<double> &x)
{
    double a = x[0] - 1.5;
    double b = x[1] + 0.5;
    return 3.0 * a * a + b * b + 2.0;
}

double
rosenbrock(const std::vector<double> &x)
{
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
}

TEST(Cobyla, MinimizesSphere)
{
    OptOptions oo;
    oo.maxIterations = 500;
    Cobyla opt(oo);
    OptResult res = opt.minimize(sphere, {2.0, -1.0, 0.5});
    EXPECT_LT(res.value, 1e-3);
    EXPECT_LE(res.evaluations, 500);
}

TEST(Cobyla, FindsShiftedMinimum)
{
    OptOptions oo;
    oo.maxIterations = 600;
    Cobyla opt(oo);
    OptResult res = opt.minimize(shiftedQuadratic, {0.0, 0.0});
    EXPECT_NEAR(res.value, 2.0, 1e-2);
    EXPECT_NEAR(res.x[0], 1.5, 0.1);
    EXPECT_NEAR(res.x[1], -0.5, 0.1);
}

TEST(Cobyla, MakesProgressOnRosenbrock)
{
    OptOptions oo;
    oo.maxIterations = 800;
    Cobyla opt(oo);
    OptResult res = opt.minimize(rosenbrock, {-1.0, 1.0});
    EXPECT_LT(res.value, rosenbrock({-1.0, 1.0}) * 0.05);
}

TEST(Cobyla, RespectsEvaluationBudget)
{
    OptOptions oo;
    oo.maxIterations = 25;
    Cobyla opt(oo);
    int calls = 0;
    auto counted = [&](const std::vector<double> &x) {
        ++calls;
        return sphere(x);
    };
    OptResult res = opt.minimize(counted, {1.0, 1.0, 1.0, 1.0});
    EXPECT_LE(calls, 25);
    EXPECT_EQ(res.evaluations, calls);
}

TEST(Cobyla, HandlesZeroDimensional)
{
    Cobyla opt;
    OptResult res = opt.minimize(
        [](const std::vector<double> &) { return 42.0; }, {});
    EXPECT_DOUBLE_EQ(res.value, 42.0);
    EXPECT_TRUE(res.converged);
}

TEST(Cobyla, HandlesFlatObjective)
{
    OptOptions oo;
    oo.maxIterations = 60;
    Cobyla opt(oo);
    OptResult res = opt.minimize(
        [](const std::vector<double> &) { return 1.0; }, {0.3, -0.2});
    EXPECT_DOUBLE_EQ(res.value, 1.0);
}

TEST(NelderMead, MinimizesSphere)
{
    OptOptions oo;
    oo.maxIterations = 500;
    NelderMead opt(oo);
    OptResult res = opt.minimize(sphere, {2.0, -1.0});
    EXPECT_LT(res.value, 1e-6);
}

TEST(NelderMead, FindsShiftedMinimum)
{
    OptOptions oo;
    oo.maxIterations = 800;
    NelderMead opt(oo);
    OptResult res = opt.minimize(shiftedQuadratic, {0.0, 0.0});
    EXPECT_NEAR(res.value, 2.0, 1e-3);
}

TEST(NelderMead, RosenbrockConvergence)
{
    OptOptions oo;
    oo.maxIterations = 2000;
    oo.tolerance = 1e-10;
    NelderMead opt(oo);
    OptResult res = opt.minimize(rosenbrock, {-1.0, 1.0});
    EXPECT_LT(res.value, 1e-3);
}

TEST(Spsa, ReducesSphereObjective)
{
    OptOptions oo;
    oo.maxIterations = 2000;
    oo.initialStep = 0.2;
    Spsa opt(oo);
    OptResult res = opt.minimize(sphere, {2.0, -1.0, 1.0});
    EXPECT_LT(res.value, 0.5);
}

TEST(Spsa, DeterministicForFixedSeed)
{
    OptOptions oo;
    oo.maxIterations = 200;
    oo.seed = 99;
    Spsa a(oo), b(oo);
    OptResult ra = a.minimize(sphere, {1.0, 1.0});
    OptResult rb = b.minimize(sphere, {1.0, 1.0});
    EXPECT_EQ(ra.value, rb.value);
    EXPECT_EQ(ra.x, rb.x);
}

TEST(AdamSpsa, MinimizesSphere)
{
    OptOptions oo;
    oo.maxIterations = 1500;
    oo.initialStep = 0.05;
    AdamSpsa opt(oo);
    OptResult res = opt.minimize(sphere, {2.0, -1.0, 1.0});
    EXPECT_LT(res.value, 0.1);
}

TEST(AdamSpsa, FindsShiftedMinimumApproximately)
{
    OptOptions oo;
    oo.maxIterations = 2500;
    oo.initialStep = 0.05;
    AdamSpsa opt(oo);
    OptResult res = opt.minimize(shiftedQuadratic, {0.0, 0.0});
    EXPECT_LT(res.value, 2.5);
}

TEST(AdamSpsa, DeterministicForFixedSeed)
{
    OptOptions oo;
    oo.maxIterations = 300;
    oo.seed = 5;
    AdamSpsa a(oo), b(oo);
    OptResult ra = a.minimize(sphere, {1.0, -1.0});
    OptResult rb = b.minimize(sphere, {1.0, -1.0});
    EXPECT_EQ(ra.value, rb.value);
    EXPECT_EQ(ra.x, rb.x);
}

TEST(AdamSpsa, HandlesZeroDimensional)
{
    AdamSpsa opt;
    OptResult res = opt.minimize(
        [](const std::vector<double> &) { return 3.0; }, {});
    EXPECT_DOUBLE_EQ(res.value, 3.0);
}

TEST(AllOptimizers, ReportEvaluationCounts)
{
    OptOptions oo;
    oo.maxIterations = 100;
    for (auto *opt : std::initializer_list<Optimizer *>{
             new Cobyla(oo), new NelderMead(oo), new Spsa(oo),
             new AdamSpsa(oo)}) {
        int calls = 0;
        OptResult res = opt->minimize(
            [&](const std::vector<double> &x) {
                ++calls;
                return sphere(x);
            },
            {0.5, 0.5});
        EXPECT_EQ(res.evaluations, calls);
        EXPECT_GT(res.evaluations, 0);
        delete opt;
    }
}

TEST(GuardedObjective, SubstitutesNonFiniteScores)
{
    OptOptions oo;
    oo.nonFiniteScore = 1e18;
    oo.maxConsecutiveNonFinite = 3;
    int calls = 0;
    ObjectiveFn fn = [&](const std::vector<double> &) {
        ++calls;
        return calls % 2 == 0 ? std::nan("") : 1.0;
    };
    GuardedObjective guarded(fn, oo);
    std::vector<double> x{0.0};
    EXPECT_DOUBLE_EQ(guarded(x), 1.0);
    EXPECT_DOUBLE_EQ(guarded(x), 1e18); // NaN substituted
    EXPECT_DOUBLE_EQ(guarded(x), 1.0);  // finite eval resets the streak
    EXPECT_FALSE(guarded.diverged());
    EXPECT_EQ(guarded.nonFiniteEvals(), 1);
}

TEST(GuardedObjective, DivergesAfterConsecutiveNonFinite)
{
    OptOptions oo;
    oo.maxConsecutiveNonFinite = 3;
    ObjectiveFn fn = [](const std::vector<double> &) {
        return std::numeric_limits<double>::infinity();
    };
    GuardedObjective guarded(fn, oo);
    std::vector<double> x{0.0};
    guarded(x);
    guarded(x);
    EXPECT_FALSE(guarded.diverged());
    guarded(x);
    EXPECT_TRUE(guarded.diverged());

    OptResult res;
    guarded.finalize(res);
    EXPECT_EQ(res.status, OptStatus::Diverged);
    EXPECT_EQ(res.nonFiniteEvals, 3);
}

TEST(AllOptimizers, NanObjectiveStopsWithDivergedStatus)
{
    // A backend meltdown that turns every evaluation into NaN must stop
    // the trainer quickly with a finite result, never loop or abort.
    OptOptions oo;
    oo.maxIterations = 400;
    oo.tolerance = 0.0; // rule out convergence-by-step-size
    int diverged = 0;
    for (auto *opt : std::initializer_list<Optimizer *>{
             new Cobyla(oo), new NelderMead(oo), new Spsa(oo),
             new AdamSpsa(oo)}) {
        OptResult res = opt->minimize(
            [](const std::vector<double> &) { return std::nan(""); },
            {0.5, -0.25});
        // Either the guard tripped, or the substituted-flat landscape
        // satisfied the optimizer's own convergence test -- but the
        // budget must never be burned on a dead backend.
        EXPECT_TRUE(res.status == OptStatus::Diverged || res.converged);
        diverged += res.status == OptStatus::Diverged ? 1 : 0;
        EXPECT_GT(res.nonFiniteEvals, 0);
        EXPECT_LT(res.evaluations, oo.maxIterations / 2);
        EXPECT_TRUE(std::isfinite(res.value));
        delete opt;
    }
    EXPECT_GE(diverged, 3); // the streak detector does the stopping
}

TEST(AllOptimizers, TransientNanIsSurvivable)
{
    OptOptions oo;
    oo.maxIterations = 200;
    oo.tolerance = 0.0; // keep iterating long enough to hit the NaNs
    for (auto *opt : std::initializer_list<Optimizer *>{
             new Cobyla(oo), new NelderMead(oo), new Spsa(oo),
             new AdamSpsa(oo)}) {
        int calls = 0;
        OptResult res = opt->minimize(
            [&](const std::vector<double> &x) {
                ++calls;
                return calls % 7 == 0 ? std::nan("") : sphere(x);
            },
            {1.0, -1.0});
        // SPSA-family gradients can blow up off a substituted score and
        // then legitimately trip the divergence guard; what matters is
        // that the best finite iterate survives either way.
        EXPECT_GT(res.nonFiniteEvals, 0);
        EXPECT_TRUE(std::isfinite(res.value));
        // Never worse than the start: the 1e18 substitutions cannot be
        // reported as the best value.
        EXPECT_LE(res.value, sphere({1.0, -1.0}) + 1e-9);
        delete opt;
    }
}

} // namespace
} // namespace rasengan::opt
