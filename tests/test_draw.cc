/**
 * @file
 * Tests for the ASCII circuit renderer.
 */

#include <gtest/gtest.h>

#include "circuit/draw.h"

namespace rasengan::circuit {
namespace {

TEST(Draw, EmptyCircuitShowsBareWires)
{
    Circuit c(2);
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("q0: "), std::string::npos);
    EXPECT_NE(art.find("q1: "), std::string::npos);
}

TEST(Draw, SingleQubitGates)
{
    Circuit c(2);
    c.h(0);
    c.x(1);
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
}

TEST(Draw, ControlAndTargetMarkers)
{
    Circuit c(2);
    c.cx(0, 1);
    std::string art = drawCircuit(c);
    // Control renders '*', target 'X'.
    EXPECT_NE(art.find("*"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
}

TEST(Draw, ConnectorThroughMiddleWire)
{
    Circuit c(3);
    c.cx(0, 2); // spans q1
    std::string art = drawCircuit(c);
    // The middle wire shows a '|' pass-through.
    size_t q1_line = art.find("q1: ");
    ASSERT_NE(q1_line, std::string::npos);
    size_t newline = art.find('\n', q1_line);
    EXPECT_NE(art.substr(q1_line, newline - q1_line).find('|'),
              std::string::npos);
}

TEST(Draw, RotationsShowAngles)
{
    Circuit c(1);
    c.rz(0, 0.5);
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("rz(0.50)"), std::string::npos);
}

TEST(Draw, ParallelGatesShareColumn)
{
    Circuit c(2);
    c.h(0);
    c.h(1); // same level: one column
    c.cx(0, 1);
    std::string art = drawCircuit(c);
    // Both wires show H at the same horizontal offset.
    size_t q0_h = art.find('H');
    size_t q1_line = art.find("q1: ");
    size_t q1_h = art.find('H', q1_line);
    size_t q0_off = q0_h - art.find("q0: ");
    size_t q1_off = q1_h - q1_line;
    EXPECT_EQ(q0_off, q1_off);
}

TEST(Draw, TruncationMarks)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.h(0);
    std::string art = drawCircuit(c, 3);
    EXPECT_NE(art.find("..."), std::string::npos);
}

TEST(Draw, RowCountMatchesQubits)
{
    Circuit c(5);
    c.h(2);
    std::string art = drawCircuit(c);
    int rows = 0;
    for (char ch : art)
        rows += ch == '\n' ? 1 : 0;
    EXPECT_EQ(rows, 5);
}

} // namespace
} // namespace rasengan::circuit
