/**
 * @file
 * Tests for the flat structure-of-arrays sparse engine
 * (qsim/sparsestate.h) and the rotation-plan cache
 * (qsim/sparseplan.h): cross-validation against a dense reference
 * evolution at 1e-12, prune/renormalize edge cases, key-order
 * invariants of the merge kernels, bit-identical results across thread
 * counts, plan record/replay equivalence including the pruning-forced
 * invalidation and abort paths, and deterministic Counts serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <numbers>
#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/basis.h"
#include "core/rasengan.h"
#include "core/transition.h"
#include "problems/suite.h"
#include "qsim/counts.h"
#include "qsim/sparseplan.h"
#include "qsim/sparsestate.h"

namespace rasengan {
namespace {

using core::TransitionHamiltonian;
using qsim::SparseState;
using Complex = SparseState::Complex;

constexpr double kPi = std::numbers::pi;

/** RAII: restore the env-derived thread configuration on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { parallel::setThreadCount(0); }
};

/** Random transition vector with entries in {-1, 0, 1}, not all zero. */
linalg::IntVec
randomTransition(int n, Rng &rng)
{
    for (;;) {
        linalg::IntVec u(n);
        bool nonzero = false;
        for (int i = 0; i < n; ++i) {
            u[i] = static_cast<int>(rng.uniformInt(0, 2)) - 1;
            nonzero |= u[i] != 0;
        }
        if (nonzero)
            return u;
    }
}

/**
 * Reference evolution on a dense 2^n amplitude vector, straight from
 * the partner/dark semantics of Definition 1 (no pruning, no sparse
 * bookkeeping): every state with a partner takes the two-level
 * rotation, dark states are untouched.
 */
void
denseReferenceApply(std::vector<Complex> &amps,
                    const TransitionHamiltonian &tau, double t)
{
    const Complex ms = Complex{0.0, -1.0} * std::sin(t);
    const double c = std::cos(t);
    std::vector<Complex> next = amps;
    for (uint64_t idx = 0; idx < amps.size(); ++idx) {
        BitVec x = BitVec::fromIndex(idx);
        if (auto y = tau.partner(x))
            next[idx] = c * amps[idx] + ms * amps[y->toIndex()];
    }
    amps = std::move(next);
}

void
expectMatchesDenseReference(int n, int steps, uint64_t seed)
{
    Rng rng(seed);
    BitVec start = BitVec::fromIndex(rng.uniformInt(0, (1u << n) - 1));
    SparseState sparse(n, start);
    std::vector<Complex> dense(uint64_t{1} << n, Complex{0.0, 0.0});
    dense[start.toIndex()] = Complex{1.0, 0.0};

    for (int k = 0; k < steps; ++k) {
        TransitionHamiltonian tau(randomTransition(n, rng));
        double t = rng.uniformReal(0.1, 1.4);
        tau.applyTo(sparse, t);
        denseReferenceApply(dense, tau, t);
    }

    for (uint64_t idx = 0; idx < dense.size(); ++idx) {
        BitVec y = BitVec::fromIndex(idx);
        EXPECT_NEAR(std::abs(sparse.amplitude(y) - dense[idx]), 0.0, 1e-12)
            << "n=" << n << " seed=" << seed << " y=" << idx;
    }
}

TEST(SparseVsDense, RandomChainsUpTo14Qubits)
{
    expectMatchesDenseReference(4, 12, 11);
    expectMatchesDenseReference(8, 16, 12);
    expectMatchesDenseReference(12, 20, 13);
    expectMatchesDenseReference(14, 20, 14);
}

TEST(SparseState, KeysStayStrictlySortedUnderRotationsAndX)
{
    Rng rng(21);
    const int n = 10;
    SparseState s(n, BitVec::fromIndex(37));
    for (int k = 0; k < 25; ++k) {
        TransitionHamiltonian tau(randomTransition(n, rng));
        tau.applyTo(s, rng.uniformReal(0.1, 1.4));
        if (k % 3 == 0)
            s.applyX(static_cast<int>(rng.uniformInt(0, n - 1)));
        const auto &keys = s.keys();
        for (size_t i = 1; i < keys.size(); ++i)
            ASSERT_TRUE(keys[i - 1] < keys[i]) << "after step " << k;
        ASSERT_EQ(keys.size(), s.amps().size());
    }
}

TEST(SparseState, ApplyXMatchesAmplitudeRelabeling)
{
    Rng rng(31);
    const int n = 9;
    SparseState s(n, BitVec::fromIndex(5));
    for (int k = 0; k < 8; ++k)
        TransitionHamiltonian(randomTransition(n, rng))
            .applyTo(s, rng.uniformReal(0.2, 1.2));
    SparseState flipped = s;
    const int q = 4;
    flipped.applyX(q);
    ASSERT_EQ(flipped.supportSize(), s.supportSize());
    for (size_t i = 0; i < s.keys().size(); ++i) {
        BitVec y = s.keys()[i];
        y.flip(q);
        EXPECT_EQ(flipped.amplitude(y), s.amps()[i]);
    }
}

TEST(SparseState, RotationCreatesUnpopulatedPartner)
{
    TransitionHamiltonian tau({-1, 1, 0, 0});
    SparseState s(4, BitVec::fromString("1000"));
    const double t = 0.8;
    // Partner |0100> is not populated: the rotation must create it with
    // amplitude -i sin(t) while the source keeps cos(t).
    s.applyPairRotation(tau.mask(), tau.patternPlus(), t);
    ASSERT_EQ(s.supportSize(), 2u);
    EXPECT_NEAR(std::abs(s.amplitude(BitVec::fromString("1000")) -
                         Complex{std::cos(t), 0.0}),
                0.0, 1e-15);
    EXPECT_NEAR(std::abs(s.amplitude(BitVec::fromString("0100")) -
                         Complex{0.0, -std::sin(t)}),
                0.0, 1e-15);
}

TEST(SparseState, DarkStatesAreUntouched)
{
    // |0000> is dark for u = (-1,1,0,0): neither pattern matches.
    TransitionHamiltonian tau({-1, 1, 0, 0});
    SparseState s(4, BitVec{});
    s.applyPairRotation(tau.mask(), tau.patternPlus(), 1.1);
    ASSERT_EQ(s.supportSize(), 1u);
    EXPECT_EQ(s.amplitude(BitVec{}), (Complex{1.0, 0.0}));
}

TEST(SparseState, PruneDropsBelowThresholdAndBumpsEpoch)
{
    SparseState s = SparseState::fromSorted(
        4,
        {BitVec::fromIndex(1), BitVec::fromIndex(3), BitVec::fromIndex(9)},
        {Complex{1e-14, 0.0}, Complex{0.8, 0.0}, Complex{0.0, 0.6}});
    const uint64_t epoch0 = s.supportEpoch();
    EXPECT_EQ(s.prune(1e-24), 1u);
    EXPECT_EQ(s.supportEpoch(), epoch0 + 1);
    ASSERT_EQ(s.supportSize(), 2u);
    EXPECT_EQ(s.keys()[0], BitVec::fromIndex(3));
    EXPECT_EQ(s.keys()[1], BitVec::fromIndex(9));
    // Nothing left below threshold: a second prune is a no-op and must
    // NOT advance the epoch.
    EXPECT_EQ(s.prune(1e-24), 0u);
    EXPECT_EQ(s.supportEpoch(), epoch0 + 1);
    s.renormalize();
    EXPECT_NEAR(s.normSquared(), 1.0, 1e-12);
}

TEST(SparseState, PruneCanEmptyTheSupport)
{
    SparseState s = SparseState::fromSorted(
        3, {BitVec::fromIndex(2), BitVec::fromIndex(5)},
        {Complex{1e-15, 0.0}, Complex{0.0, 1e-16}});
    EXPECT_EQ(s.prune(1e-24), 2u);
    EXPECT_EQ(s.supportSize(), 0u);
    EXPECT_EQ(s.normSquared(), 0.0);
}

TEST(SparseState, SingleStatePruneKeepsItWhenAboveThreshold)
{
    SparseState s(6, BitVec::fromIndex(17));
    EXPECT_EQ(s.prune(), 0u);
    ASSERT_EQ(s.supportSize(), 1u);
    EXPECT_EQ(s.amplitude(BitVec::fromIndex(17)), (Complex{1.0, 0.0}));
}

TEST(SparseState, HalfPiRotationPrunesTheSource)
{
    // cos(pi/2) ~ 6e-17 -> |amp|^2 ~ 4e-33 < default threshold: the
    // default policy drops the rotated-away source state.
    TransitionHamiltonian tau({1, -1, 0});
    SparseState s(3, BitVec::fromString("010"));
    tau.applyTo(s, kPi / 2);
    EXPECT_EQ(s.supportSize(), 1u);
    // With pruning disabled the numerical zero survives.
    SparseState kept(3, BitVec::fromString("010"));
    tau.applyTo(kept, kPi / 2, /*prune_threshold=*/0.0);
    EXPECT_EQ(kept.supportSize(), 2u);
}

TEST(SparseState, FromSortedRejectsUnsortedKeys)
{
    EXPECT_DEATH(SparseState::fromSorted(
                     3, {BitVec::fromIndex(5), BitVec::fromIndex(2)},
                     {Complex{1.0, 0.0}, Complex{0.0, 0.0}}),
                 "");
}

TEST(SparseState, ResultsAreBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    problems::Problem p = problems::makeBenchmark("J1");
    auto transitions = core::makeTransitions(core::homogeneousBasis(p));

    std::vector<BitVec> ref_keys;
    std::vector<Complex> ref_amps;
    qsim::Counts ref_counts;
    for (int tc : {1, 2, 7}) {
        parallel::setThreadCount(tc);
        SparseState s(p.numVars(), p.trivialFeasible());
        Rng rng(5);
        for (int round = 0; round < 3; ++round)
            for (const auto &tau : transitions)
                tau.applyTo(s, rng.uniformReal(0.1, 1.4));
        s.renormalize();
        qsim::Counts counts = s.sample(rng, 2000);
        if (tc == 1) {
            ref_keys = s.keys();
            ref_amps = s.amps();
            ref_counts = counts;
            continue;
        }
        ASSERT_EQ(s.keys().size(), ref_keys.size()) << "threads=" << tc;
        EXPECT_TRUE(std::equal(ref_keys.begin(), ref_keys.end(),
                               s.keys().begin()))
            << "threads=" << tc;
        EXPECT_EQ(std::memcmp(s.amps().data(), ref_amps.data(),
                              ref_amps.size() * sizeof(Complex)),
                  0)
            << "threads=" << tc;
        EXPECT_EQ(counts.sorted(), ref_counts.sorted())
            << "threads=" << tc;
    }
}

/** Record a plan over a few transitions of the J1 basis. */
struct RecordedSegment
{
    int n = 0;
    std::vector<TransitionHamiltonian> taus;
    std::vector<double> times;
    qsim::SparseSegmentPlan plan;
    SparseState state{1, BitVec{}};
};

RecordedSegment
recordJ1Segment(const std::vector<double> &times)
{
    problems::Problem p = problems::makeBenchmark("J1");
    auto transitions = core::makeTransitions(core::homogeneousBasis(p));
    RecordedSegment rec;
    rec.n = p.numVars();
    rec.times = times;
    rec.plan.numQubits = rec.n;
    rec.plan.initial = p.trivialFeasible();
    SparseState s(rec.n, p.trivialFeasible());
    const uint64_t epoch0 = s.supportEpoch();
    for (size_t k = 0; k < times.size(); ++k) {
        const auto &tau = transitions[k % transitions.size()];
        rec.taus.push_back(tau);
        s.applyPairRotation(tau.mask(), tau.patternPlus(), times[k],
                            SparseState::kDefaultPruneThreshold,
                            &rec.plan.steps.emplace_back());
    }
    if (s.supportEpoch() != epoch0)
        rec.plan.replayable = false;
    else
        rec.plan.finalKeys = s.keys();
    rec.state = std::move(s);
    return rec;
}

TEST(SparsePlan, ReplayIsBitIdenticalToDirectExecution)
{
    RecordedSegment rec = recordJ1Segment({0.7, 0.4, 1.1, 0.9});
    ASSERT_TRUE(rec.plan.replayable);
    auto replayed = qsim::replaySegmentPlan(rec.plan, rec.times.data());
    ASSERT_TRUE(replayed.has_value());
    ASSERT_EQ(replayed->supportSize(), rec.state.supportSize());
    EXPECT_TRUE(std::equal(rec.state.keys().begin(), rec.state.keys().end(),
                           replayed->keys().begin()));
    EXPECT_EQ(std::memcmp(replayed->amps().data(), rec.state.amps().data(),
                          rec.state.amps().size() * sizeof(Complex)),
              0);
}

TEST(SparsePlan, ReplayWithNewAnglesMatchesDirect)
{
    // The whole point of the cache: the structure is angle-independent,
    // so a plan recorded at one angle vector replays others exactly.
    RecordedSegment rec = recordJ1Segment({0.7, 0.4, 1.1, 0.9});
    ASSERT_TRUE(rec.plan.replayable);
    std::vector<double> other{1.3, 0.2, 0.8, 0.5};
    auto replayed = qsim::replaySegmentPlan(rec.plan, other.data());
    ASSERT_TRUE(replayed.has_value());

    SparseState direct(rec.n, rec.plan.initial);
    for (size_t k = 0; k < other.size(); ++k)
        direct.applyPairRotation(rec.taus[k].mask(),
                                 rec.taus[k].patternPlus(), other[k]);
    ASSERT_EQ(replayed->supportSize(), direct.supportSize());
    EXPECT_TRUE(std::equal(direct.keys().begin(), direct.keys().end(),
                           replayed->keys().begin()));
    EXPECT_EQ(std::memcmp(replayed->amps().data(), direct.amps().data(),
                          direct.amps().size() * sizeof(Complex)),
              0);
}

TEST(SparsePlan, ReplayAbortsWhenAnglesWouldPrune)
{
    // pi/2 rotates the source to numerical zero: direct execution
    // prunes, so replay must refuse and hand back to the kernels.
    RecordedSegment rec = recordJ1Segment({0.7, 0.4, 1.1, 0.9});
    ASSERT_TRUE(rec.plan.replayable);
    std::vector<double> pruning(rec.times.size(), kPi / 2);
    EXPECT_FALSE(
        qsim::replaySegmentPlan(rec.plan, pruning.data()).has_value());
}

TEST(SparsePlan, RecordingUnderPruningMarksPlanUnreplayable)
{
    RecordedSegment rec =
        recordJ1Segment({kPi / 2, kPi / 2, kPi / 2, kPi / 2});
    EXPECT_FALSE(rec.plan.replayable);
}

TEST(SparsePlan, FingerprintSeparatesStructures)
{
    problems::Problem p = problems::makeBenchmark("J1");
    auto transitions = core::makeTransitions(core::homogeneousBasis(p));
    std::vector<std::pair<BitVec, BitVec>> steps;
    for (const auto &tau : transitions)
        steps.emplace_back(tau.mask(), tau.patternPlus());

    const uint64_t base = qsim::planStructureFingerprint(
        p.numVars(), p.trivialFeasible(), steps);
    EXPECT_EQ(qsim::planStructureFingerprint(p.numVars(),
                                             p.trivialFeasible(), steps),
              base);

    BitVec other = p.trivialFeasible();
    other.flip(0);
    EXPECT_NE(qsim::planStructureFingerprint(p.numVars(), other, steps),
              base);
    std::vector<std::pair<BitVec, BitVec>> shorter(steps.begin(),
                                                   steps.end() - 1);
    EXPECT_NE(qsim::planStructureFingerprint(p.numVars(),
                                             p.trivialFeasible(), shorter),
              base);
}

TEST(PlanCache, SolverResultsIdenticalWithCachingOnAndOff)
{
    problems::Problem p = problems::makeBenchmark("J1");
    core::RasenganOptions on;
    on.cacheRotationPlans = true;
    core::RasenganOptions off = on;
    off.cacheRotationPlans = false;
    core::RasenganSolver cached(p, on);
    core::RasenganSolver direct(p, off);

    std::vector<double> times(cached.numParams(), 0.6);
    Rng rng_a(3), rng_b(3);
    // First call records, second replays: both must equal the uncached
    // solver's output exactly.
    for (int round = 0; round < 3; ++round) {
        for (auto &t : times)
            t += 0.05 * round;
        auto a = cached.execute(times, rng_a);
        auto b = direct.execute(times, rng_b);
        auto key = [](const std::pair<BitVec, double> &x,
                      const std::pair<BitVec, double> &y) {
            return x.first < y.first;
        };
        std::sort(a.entries.begin(), a.entries.end(), key);
        std::sort(b.entries.begin(), b.entries.end(), key);
        ASSERT_EQ(a.entries.size(), b.entries.size());
        for (size_t i = 0; i < a.entries.size(); ++i) {
            EXPECT_EQ(a.entries[i].first, b.entries[i].first);
            EXPECT_NEAR(a.entries[i].second, b.entries[i].second, 1e-10);
        }
    }
    EXPECT_GT(cached.planStats().recorded, 0u);
    EXPECT_GT(cached.planStats().replayed, 0u);
    EXPECT_EQ(direct.planStats().recorded, 0u);
    EXPECT_EQ(direct.planStats().replayed, 0u);
}

TEST(PlanCache, PruningForcedFallbackStillMatchesDirect)
{
    problems::Problem p = problems::makeBenchmark("J1");
    core::RasenganOptions on;
    on.cacheRotationPlans = true;
    core::RasenganOptions off = on;
    off.cacheRotationPlans = false;
    core::RasenganSolver cached(p, on);
    core::RasenganSolver direct(p, off);

    // Record healthy plans first, then execute at pi/2 where every
    // rotation prunes its source: replay must abort (or the recording
    // itself must have been invalidated) and fall back to the kernels,
    // still agreeing with the uncached solver.
    std::vector<double> warm(cached.numParams(), 0.7);
    Rng rng_w(9);
    cached.execute(warm, rng_w);

    std::vector<double> pruning(cached.numParams(), kPi / 2);
    Rng rng_a(9), rng_b(9);
    auto a = cached.execute(pruning, rng_a);
    auto b = direct.execute(pruning, rng_b);
    EXPECT_GT(cached.planStats().aborted + cached.planStats().invalidated,
              0u);
    ASSERT_EQ(a.failed, b.failed);
    auto key = [](const std::pair<BitVec, double> &x,
                  const std::pair<BitVec, double> &y) {
        return x.first < y.first;
    };
    std::sort(a.entries.begin(), a.entries.end(), key);
    std::sort(b.entries.begin(), b.entries.end(), key);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].first, b.entries[i].first);
        EXPECT_NEAR(a.entries[i].second, b.entries[i].second, 1e-10);
    }
}

std::string
serializeCounts(const qsim::Counts &counts, int n)
{
    std::ostringstream os;
    for (const auto &[outcome, cnt] : counts.sorted())
        os << outcome.toString(n) << ":" << cnt << "\n";
    return os.str();
}

TEST(CountsDeterminism, SerializationIsByteIdenticalAcrossInsertionOrder)
{
    Rng rng(77);
    std::vector<std::pair<BitVec, uint64_t>> entries;
    for (int i = 0; i < 200; ++i)
        entries.emplace_back(BitVec::fromIndex(rng.uniformInt(0, 1 << 16)),
                             1 + rng.uniformInt(0, 50));

    qsim::Counts forward, backward, shuffled;
    for (const auto &[k, v] : entries)
        forward.add(k, v);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        backward.add(it->first, it->second);
    std::vector<std::pair<BitVec, uint64_t>> perm = entries;
    for (size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.uniformInt(0, i - 1)]);
    for (const auto &[k, v] : perm)
        shuffled.add(k, v);

    const std::string ref = serializeCounts(forward, 17);
    EXPECT_EQ(serializeCounts(backward, 17), ref);
    EXPECT_EQ(serializeCounts(shuffled, 17), ref);

    // sorted() is strictly ascending and preserves the totals.
    auto sorted = forward.sorted();
    for (size_t i = 1; i < sorted.size(); ++i)
        EXPECT_TRUE(sorted[i - 1].first < sorted[i].first);
    uint64_t total = 0;
    for (const auto &[k, v] : sorted)
        total += v;
    EXPECT_EQ(total, forward.total());
}

TEST(CountsDeterminism, ExpectationIsInsertionOrderIndependent)
{
    // The FP sum must be accumulated in sorted order: identical bytes
    // out regardless of how the histogram was built.
    Rng rng(101);
    std::vector<std::pair<BitVec, uint64_t>> entries;
    for (int i = 0; i < 300; ++i)
        entries.emplace_back(BitVec::fromIndex(rng.uniformInt(0, 1 << 20)),
                             1 + rng.uniformInt(0, 9));
    qsim::Counts forward, backward;
    for (const auto &[k, v] : entries)
        forward.add(k, v);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        backward.add(it->first, it->second);
    auto value = [](const BitVec &x) {
        return std::sin(static_cast<double>(x.low64() % 997)) * 1e6;
    };
    const double a = forward.expectation(value);
    const double b = backward.expectation(value);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
}

} // namespace
} // namespace rasengan
