/**
 * @file
 * Unit tests for src/common: BitVec, Rng, stats, timers, log formatting.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bitvec.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"

namespace rasengan {
namespace {

TEST(BitVec, DefaultIsZero)
{
    BitVec v;
    for (int i = 0; i < kMaxBits; ++i)
        EXPECT_FALSE(v.get(i));
    EXPECT_EQ(v.popcount(), 0);
}

TEST(BitVec, SetClearFlipAssign)
{
    BitVec v;
    v.set(3);
    EXPECT_TRUE(v.get(3));
    v.flip(3);
    EXPECT_FALSE(v.get(3));
    v.flip(100);
    EXPECT_TRUE(v.get(100));
    v.clear(100);
    EXPECT_FALSE(v.get(100));
    v.assign(64, true);
    EXPECT_TRUE(v.get(64));
    v.assign(64, false);
    EXPECT_FALSE(v.get(64));
}

TEST(BitVec, HighWordIndependentOfLowWord)
{
    BitVec v;
    v.set(0);
    v.set(127);
    EXPECT_EQ(v.popcount(), 2);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(127));
    EXPECT_FALSE(v.get(63));
    EXPECT_FALSE(v.get(64));
}

TEST(BitVec, IndexRoundTrip)
{
    for (uint64_t idx : {0ull, 1ull, 5ull, 0xDEADBEEFull}) {
        EXPECT_EQ(BitVec::fromIndex(idx).toIndex(), idx);
    }
}

TEST(BitVec, StringRoundTrip)
{
    BitVec v = BitVec::fromString("01101");
    EXPECT_FALSE(v.get(0));
    EXPECT_TRUE(v.get(1));
    EXPECT_TRUE(v.get(2));
    EXPECT_FALSE(v.get(3));
    EXPECT_TRUE(v.get(4));
    EXPECT_EQ(v.toString(5), "01101");
    EXPECT_EQ(v.toVector(5), (std::vector<int>{0, 1, 1, 0, 1}));
}

TEST(BitVec, FromVectorMatchesFromString)
{
    EXPECT_EQ(BitVec::fromVector({1, 0, 1}), BitVec::fromString("101"));
}

TEST(BitVec, XorAndOr)
{
    BitVec a = BitVec::fromString("1100");
    BitVec b = BitVec::fromString("1010");
    EXPECT_EQ((a ^ b).toString(4), "0110");
    EXPECT_EQ((a & b).toString(4), "1000");
    EXPECT_EQ((a | b).toString(4), "1110");
}

TEST(BitVec, OrderingIsTotal)
{
    BitVec a = BitVec::fromIndex(1);
    BitVec b = BitVec::fromIndex(2);
    BitVec c;
    c.set(64); // high word
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, BitVec::fromIndex(1));
}

TEST(BitVec, HashSpreads)
{
    std::set<size_t> hashes;
    for (uint64_t i = 0; i < 256; ++i)
        hashes.insert(BitVec::fromIndex(i).hash());
    // A few collisions would be tolerable; identical hashes are a bug.
    EXPECT_GT(hashes.size(), 250u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntWithinBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(7);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(3);
    std::vector<double> weights{0.0, 10.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.weightedIndex(weights), 1u);
}

TEST(Rng, WeightedIndexEmpiricalDistribution)
{
    Rng rng(5);
    std::vector<double> weights{1.0, 3.0};
    int ones = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        ones += rng.weightedIndex(weights) == 1 ? 1 : 0;
    double frac = static_cast<double>(ones) / trials;
    EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng child = a.fork();
    // The child stream should differ from the parent's continuation.
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniformInt(0, 1 << 30) != child.uniformInt(0, 1 << 30);
    EXPECT_TRUE(any_diff);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, ExactRankPercentileIsAlwaysASample)
{
    // Ten latencies; nearest-rank p99 must be the max, not an
    // interpolated value between the two largest samples.
    std::vector<double> xs;
    for (int i = 1; i <= 10; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(exactRankPercentile(xs, 99), 10.0);
    EXPECT_DOUBLE_EQ(exactRankPercentile(xs, 100), 10.0);
    EXPECT_DOUBLE_EQ(exactRankPercentile(xs, 0), 1.0);
    // ceil(0.50 * 10) = rank 5.
    EXPECT_DOUBLE_EQ(exactRankPercentile(xs, 50), 5.0);
    // ceil(0.51 * 10) = rank 6.
    EXPECT_DOUBLE_EQ(exactRankPercentile(xs, 51), 6.0);
    // Input order must not matter.
    std::vector<double> shuffled{7, 2, 9, 1, 10, 4, 3, 8, 6, 5};
    EXPECT_DOUBLE_EQ(exactRankPercentile(shuffled, 99), 10.0);
    // Single sample: every percentile is that sample.
    std::vector<double> one{42.0};
    EXPECT_DOUBLE_EQ(exactRankPercentile(one, 1), 42.0);
    EXPECT_DOUBLE_EQ(exactRankPercentile(one, 99), 42.0);
}

TEST(Stats, MinMax)
{
    std::vector<double> xs{3.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 3.0);
}

TEST(Stats, RunningStatMatchesBatch)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStat rs;
    for (double x : xs)
        rs.push(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Timer, AccumulatesAcrossStartStop)
{
    Stopwatch w;
    w.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    w.stop();
    double first = w.seconds();
    EXPECT_GT(first, 0.0);
    w.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    w.stop();
    EXPECT_GT(w.seconds(), first);
    w.reset();
    EXPECT_DOUBLE_EQ(w.seconds(), 0.0);
}

TEST(Timer, ScopedTimerStops)
{
    Stopwatch w;
    {
        ScopedTimer guard(w);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    double t = w.seconds();
    EXPECT_GT(t, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_DOUBLE_EQ(w.seconds(), t);
}

TEST(Logging, FormatSubstitution)
{
    EXPECT_EQ(detail::format("a {} b {}", 1, "x"), "a 1 b x");
    EXPECT_EQ(detail::format("no placeholders"), "no placeholders");
    EXPECT_EQ(detail::format("extra {} {}", 7), "extra 7 {}");
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(original);
}

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("silent", LogLevel::Inform), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("WARN", LogLevel::Inform), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("inform", LogLevel::Silent), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("info", LogLevel::Silent), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("Debug", LogLevel::Inform), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("0", LogLevel::Inform), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("3", LogLevel::Inform), LogLevel::Debug);
    // Unrecognised values keep the fallback.
    EXPECT_EQ(parseLogLevel("", LogLevel::Warn), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("loud", LogLevel::Inform), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("7", LogLevel::Warn), LogLevel::Warn);
}

TEST(Logging, LogTailRendering)
{
    EXPECT_TRUE(LogTail().empty());
    EXPECT_EQ(LogTail().render(), "");
    EXPECT_EQ(LogTail().kv("attempt", 3).render(), " attempt=3");
    EXPECT_EQ(LogTail().kv("a", 1).kv("b", 2.5).render(), " a=1 b=2.5");
    // Values with spaces are quoted so the tail splits on whitespace.
    EXPECT_EQ(LogTail().kvText("reason", "queue full").render(),
              " reason=\"queue full\"");
    EXPECT_EQ(LogTail().kv("level", "Full").kvText("reason", "x").render(),
              " level=Full reason=x");
}

} // namespace
} // namespace rasengan
