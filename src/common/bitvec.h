/**
 * @file
 * Fixed-capacity bit vector representing an assignment to binary variables.
 *
 * A BitVec stores up to 128 bits in two 64-bit words.  Bit i corresponds to
 * binary variable x_i (equivalently qubit i, with weight 2^i when converted
 * to a dense statevector index).  The class is a cheap value type: it is
 * trivially copyable, hashable, and ordered, so it can key hash maps in the
 * sparse simulator.
 */

#ifndef RASENGAN_COMMON_BITVEC_H
#define RASENGAN_COMMON_BITVEC_H

#include <bit>
#include <compare>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"

namespace rasengan {

/** Maximum number of variables a BitVec can hold. */
constexpr int kMaxBits = 128;

class BitVec
{
  public:
    /** All-zero vector. */
    constexpr BitVec() : words_{0, 0} {}

    /** Construct from a dense statevector index (bit i of @p index -> x_i). */
    static BitVec
    fromIndex(uint64_t index)
    {
        BitVec v;
        v.words_[0] = index;
        return v;
    }

    /**
     * Construct from a 0/1 vector, entry i -> bit i.
     * Entries must be 0 or 1.
     */
    static BitVec
    fromVector(const std::vector<int> &bits)
    {
        fatal_if(bits.size() > static_cast<size_t>(kMaxBits),
                 "BitVec supports at most {} bits, got {}", kMaxBits,
                 bits.size());
        BitVec v;
        for (size_t i = 0; i < bits.size(); ++i) {
            panic_if(bits[i] != 0 && bits[i] != 1,
                     "non-binary entry {} at position {}", bits[i], i);
            if (bits[i])
                v.set(static_cast<int>(i));
        }
        return v;
    }

    /** Parse from a string like "01101" where character i -> bit i. */
    static BitVec
    fromString(const std::string &s)
    {
        fatal_if(s.size() > static_cast<size_t>(kMaxBits),
                 "BitVec supports at most {} bits, got {}", kMaxBits,
                 s.size());
        BitVec v;
        for (size_t i = 0; i < s.size(); ++i) {
            fatal_if(s[i] != '0' && s[i] != '1',
                     "invalid bit character '{}'", s[i]);
            if (s[i] == '1')
                v.set(static_cast<int>(i));
        }
        return v;
    }

    /** Value of bit @p i. */
    bool
    get(int i) const
    {
        return (words_[wordOf(i)] >> bitOf(i)) & 1;
    }

    /** Set bit @p i to 1. */
    void set(int i) { words_[wordOf(i)] |= (uint64_t{1} << bitOf(i)); }

    /** Clear bit @p i. */
    void clear(int i) { words_[wordOf(i)] &= ~(uint64_t{1} << bitOf(i)); }

    /** Flip bit @p i. */
    void flip(int i) { words_[wordOf(i)] ^= (uint64_t{1} << bitOf(i)); }

    /** Assign bit @p i to @p value. */
    void
    assign(int i, bool value)
    {
        if (value)
            set(i);
        else
            clear(i);
    }

    /** Number of set bits. */
    int
    popcount() const
    {
        return std::popcount(words_[0]) + std::popcount(words_[1]);
    }

    /** Interpret the low 64 bits as a statevector index. */
    uint64_t
    toIndex() const
    {
        panic_if(words_[1] != 0, "BitVec does not fit in a 64-bit index");
        return words_[0];
    }

    /** Raw low word (bits 0-63), for hashing/serialization. */
    uint64_t low64() const { return words_[0]; }

    /** Raw high word (bits 64-127), for hashing/serialization. */
    uint64_t high64() const { return words_[1]; }

    /** First @p n bits as a 0/1 vector. */
    std::vector<int>
    toVector(int n) const
    {
        std::vector<int> out(n);
        for (int i = 0; i < n; ++i)
            out[i] = get(i) ? 1 : 0;
        return out;
    }

    /** First @p n bits as a string, character i = bit i. */
    std::string
    toString(int n) const
    {
        std::string s(n, '0');
        for (int i = 0; i < n; ++i)
            if (get(i))
                s[i] = '1';
        return s;
    }

    /** Bitwise XOR, used for flip masks. */
    BitVec
    operator^(const BitVec &o) const
    {
        BitVec v;
        v.words_[0] = words_[0] ^ o.words_[0];
        v.words_[1] = words_[1] ^ o.words_[1];
        return v;
    }

    /** Bitwise AND, used for support masking. */
    BitVec
    operator&(const BitVec &o) const
    {
        BitVec v;
        v.words_[0] = words_[0] & o.words_[0];
        v.words_[1] = words_[1] & o.words_[1];
        return v;
    }

    /** Bitwise OR. */
    BitVec
    operator|(const BitVec &o) const
    {
        BitVec v;
        v.words_[0] = words_[0] | o.words_[0];
        v.words_[1] = words_[1] | o.words_[1];
        return v;
    }

    friend bool
    operator==(const BitVec &a, const BitVec &b)
    {
        return a.words_[0] == b.words_[0] && a.words_[1] == b.words_[1];
    }

    friend std::strong_ordering
    operator<=>(const BitVec &a, const BitVec &b)
    {
        if (auto c = a.words_[1] <=> b.words_[1]; c != 0)
            return c;
        return a.words_[0] <=> b.words_[0];
    }

    /** 64-bit hash (splitmix-style mix of the two words). */
    size_t
    hash() const
    {
        uint64_t h = words_[0] * 0x9E3779B97F4A7C15ull;
        h ^= (words_[1] + 0xBF58476D1CE4E5B9ull) + (h << 6) + (h >> 2);
        h ^= h >> 31;
        h *= 0x94D049BB133111EBull;
        h ^= h >> 29;
        return static_cast<size_t>(h);
    }

  private:
    static int
    wordOf(int i)
    {
        panic_if(i < 0 || i >= kMaxBits, "bit index {} out of range", i);
        return i >> 6;
    }

    static int bitOf(int i) { return i & 63; }

    uint64_t words_[2];
};

/** Hash functor so BitVec can key unordered containers. */
struct BitVecHash
{
    size_t operator()(const BitVec &v) const { return v.hash(); }
};

} // namespace rasengan

#endif // RASENGAN_COMMON_BITVEC_H
