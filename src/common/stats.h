/**
 * @file
 * Small statistics helpers shared by the evaluation harnesses.
 */

#ifndef RASENGAN_COMMON_STATS_H
#define RASENGAN_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace rasengan {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/** Geometric mean of strictly positive samples; 0 for an empty sample. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 * @param xs sample (not required to be sorted)
 * @param p  percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/** Minimum; +inf for an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; -inf for an empty sample. */
double maxOf(const std::vector<double> &xs);

/**
 * Streaming accumulator for mean/variance (Welford) plus min/max.
 */
class RunningStat
{
  public:
    void push(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rasengan

#endif // RASENGAN_COMMON_STATS_H
