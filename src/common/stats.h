/**
 * @file
 * Small statistics helpers shared by the evaluation harnesses.
 */

#ifndef RASENGAN_COMMON_STATS_H
#define RASENGAN_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace rasengan {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/** Geometric mean of strictly positive samples; 0 for an empty sample. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile (type R-7, the numpy default).
 * Interpolation biases tail percentiles toward the interior on small
 * samples (p99 of 10 points lands between the 9th and 10th order
 * statistics); use exactRankPercentile() when a reported tail value
 * must be an actually observed sample.
 * @param xs sample (not required to be sorted)
 * @param p  percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/**
 * Nearest-rank (exact) percentile: the smallest sample value such that
 * at least p% of the sample is <= it -- rank ceil(p/100 * n), so the
 * result is always a member of @p xs and p99 of 10 samples is the max.
 * p = 0 returns the minimum.
 * @param xs sample (not required to be sorted)
 * @param p  percentile in [0, 100]
 */
double exactRankPercentile(std::vector<double> xs, double p);

/** Minimum; +inf for an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; -inf for an empty sample. */
double maxOf(const std::vector<double> &xs);

/**
 * Streaming accumulator for mean/variance (Welford) plus min/max.
 */
class RunningStat
{
  public:
    void push(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rasengan

#endif // RASENGAN_COMMON_STATS_H
