#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace rasengan {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        fatal_if(x <= 0.0, "geomean requires positive samples, got {}", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    fatal_if(xs.empty(), "percentile of empty sample");
    fatal_if(p < 0.0 || p > 100.0, "percentile {} out of [0,100]", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
exactRankPercentile(std::vector<double> xs, double p)
{
    fatal_if(xs.empty(), "percentile of empty sample");
    fatal_if(p < 0.0 || p > 100.0, "percentile {} out of [0,100]", p);
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(xs.size())));
    if (rank == 0)
        rank = 1;
    // ceil can overshoot n when p is within rounding error of 100.
    rank = std::min(rank, xs.size());
    return xs[rank - 1];
}

double
minOf(const std::vector<double> &xs)
{
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::min(m, x);
    return m;
}

double
maxOf(const std::vector<double> &xs)
{
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::max(m, x);
    return m;
}

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace rasengan
