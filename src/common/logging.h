/**
 * @file
 * Status-message and error-reporting helpers, in the gem5 style.
 *
 * Two error functions with distinct purposes:
 *  - panic(): an internal invariant was violated (a bug in this library).
 *    Calls std::abort() so a debugger/core dump can catch it.
 *  - fatal(): the caller/user did something unsupported (bad configuration,
 *    invalid argument).  Exits with status 1.
 *
 * Two status functions:
 *  - warn():   something may be wrong or approximated; execution continues.
 *  - inform(): purely informational progress output.
 */

#ifndef RASENGAN_COMMON_LOGGING_H
#define RASENGAN_COMMON_LOGGING_H

#include <cstddef>
#include <sstream>
#include <string>

namespace rasengan {

/** Verbosity levels for status output. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity threshold (default: Inform). */
void setLogLevel(LogLevel level);

/**
 * Current global verbosity threshold.  The initial value honours the
 * RASENGAN_LOG_LEVEL environment variable (silent/warn/inform/debug or
 * 0-3, case-insensitive; unrecognised values keep the Inform default).
 */
LogLevel logLevel();

/** Parse a level name or digit; returns fallback when unrecognised. */
LogLevel parseLogLevel(const std::string &text, LogLevel fallback);

/**
 * Observer called for every emitted log line (and for panic/fatal
 * before they terminate), with the level name ("warn", "info",
 * "debug", "panic", "fatal") and the formatted message.  One tap
 * process-wide; the flight recorder installs one so recent log lines
 * are present in crash dumps.  Pass nullptr to remove.  The tap must
 * be async-signal-tolerant in the sense that it may be invoked on any
 * thread, but it is never invoked from a signal handler by this
 * library.
 */
using LogTapFn = void (*)(const char *level, const char *text,
                          size_t len);

/** Install (or clear, with nullptr) the process-wide log tap. */
void setLogTap(LogTapFn tap);

/**
 * Structured key=value tail appended to a log line, for output that is
 * both human-readable and machine-greppable:
 *
 *     warn(LogTail().kv("attempt", 3).kv("backoff_s", 0.25),
 *          "executor retrying");
 *     // -> warn: executor retrying attempt=3 backoff_s=0.25
 *
 * Values render through operator<<; values containing spaces are
 * quoted so the tail stays splittable on whitespace.
 */
class LogTail
{
  public:
    template <typename T>
    LogTail &
    kv(const char *key, const T &value)
    {
        std::ostringstream os;
        os << value;
        return kvText(key, os.str());
    }

    LogTail &kvText(const char *key, const std::string &value);

    bool empty() const { return tail_.empty(); }

    /** " k1=v1 k2=v2" (leading space) or "" when empty. */
    const std::string &render() const { return tail_; }

  private:
    std::string tail_;
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Minimal "{}"-style formatter: each "{}" is replaced by the next arg. */
inline void
formatRest(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
formatRest(std::ostringstream &os, const char *fmt, T &&first, Rest &&...rest)
{
    for (const char *p = fmt; *p; ++p) {
        if (p[0] == '{' && p[1] == '}') {
            os << first;
            formatRest(os, p + 2, std::forward<Rest>(rest)...);
            return;
        }
        os << *p;
    }
}

template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    formatRest(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

} // namespace detail

} // namespace rasengan

/** Report an internal bug and abort. */
#define panic(...) \
    ::rasengan::detail::panicImpl(__FILE__, __LINE__, \
                                  ::rasengan::detail::format(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define fatal(...) \
    ::rasengan::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::rasengan::detail::format(__VA_ARGS__))

/** Abort with a message if the invariant @p cond does not hold. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** Exit with a message if the user-facing condition @p cond holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

namespace rasengan {

/** Print a warning (level >= Warn). */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::format(fmt, std::forward<Args>(args)...));
}

/** Print a warning with a structured key=value tail. */
template <typename... Args>
void
warn(const LogTail &tail, const char *fmt, Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::format(fmt, std::forward<Args>(args)...) +
                         tail.render());
}

/** Print an informational message (level >= Inform). */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::informImpl(detail::format(fmt, std::forward<Args>(args)...));
}

/** Print an informational message with a structured key=value tail. */
template <typename... Args>
void
inform(const LogTail &tail, const char *fmt, Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::informImpl(detail::format(fmt, std::forward<Args>(args)...) +
                           tail.render());
}

/** Print a debug message (level >= Debug). */
template <typename... Args>
void
debugLog(const char *fmt, Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::format(fmt, std::forward<Args>(args)...));
}

} // namespace rasengan

#endif // RASENGAN_COMMON_LOGGING_H
