/**
 * @file
 * Wall-clock stopwatch used for the classical-latency measurements.
 *
 * Reads time through obs::nowNanos() -- the one wall-clock seam shared
 * with trace/metric timestamps -- so a test that pins the obs time
 * source sees deterministic stopwatch readings too.
 */

#ifndef RASENGAN_COMMON_TIMER_H
#define RASENGAN_COMMON_TIMER_H

#include "obs/clock.h"

namespace rasengan {

/**
 * A resettable stopwatch accumulating elapsed wall-clock time.
 * start()/stop() may be called repeatedly; seconds() returns the total
 * accumulated running time.
 */
class Stopwatch
{
  public:
    void
    start()
    {
        if (!running_) {
            begin_ = obs::nowNanos();
            running_ = true;
        }
    }

    void
    stop()
    {
        if (running_) {
            accum_ += obs::nowNanos() - begin_;
            running_ = false;
        }
    }

    void
    reset()
    {
        accum_ = 0;
        running_ = false;
    }

    /** Accumulated running time in seconds (includes the open interval). */
    double
    seconds() const
    {
        obs::TimeNanos total = accum_;
        if (running_)
            total += obs::nowNanos() - begin_;
        return static_cast<double>(total) * 1e-9;
    }

    double milliseconds() const { return seconds() * 1e3; }

  private:
    obs::TimeNanos accum_ = 0;
    obs::TimeNanos begin_ = 0;
    bool running_ = false;
};

/** RAII guard accumulating its lifetime into a Stopwatch. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Stopwatch &watch) : watch_(watch) { watch_.start(); }
    ~ScopedTimer() { watch_.stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stopwatch &watch_;
};

} // namespace rasengan

#endif // RASENGAN_COMMON_TIMER_H
