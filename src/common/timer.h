/**
 * @file
 * Wall-clock stopwatch used for the classical-latency measurements.
 */

#ifndef RASENGAN_COMMON_TIMER_H
#define RASENGAN_COMMON_TIMER_H

#include <chrono>

namespace rasengan {

/**
 * A resettable stopwatch accumulating elapsed wall-clock time.
 * start()/stop() may be called repeatedly; seconds() returns the total
 * accumulated running time.
 */
class Stopwatch
{
  public:
    void
    start()
    {
        if (!running_) {
            begin_ = Clock::now();
            running_ = true;
        }
    }

    void
    stop()
    {
        if (running_) {
            accum_ += Clock::now() - begin_;
            running_ = false;
        }
    }

    void
    reset()
    {
        accum_ = Duration::zero();
        running_ = false;
    }

    /** Accumulated running time in seconds (includes the open interval). */
    double
    seconds() const
    {
        Duration total = accum_;
        if (running_)
            total += Clock::now() - begin_;
        return std::chrono::duration<double>(total).count();
    }

    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    using Duration = Clock::duration;

    Duration accum_ = Duration::zero();
    Clock::time_point begin_{};
    bool running_ = false;
};

/** RAII guard accumulating its lifetime into a Stopwatch. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Stopwatch &watch) : watch_(watch) { watch_.start(); }
    ~ScopedTimer() { watch_.stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stopwatch &watch_;
};

} // namespace rasengan

#endif // RASENGAN_COMMON_TIMER_H
