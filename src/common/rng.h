/**
 * @file
 * Deterministic random number generator used throughout the library.
 *
 * All stochastic components (measurement sampling, noise trajectories,
 * instance generation, optimizer perturbations) draw from an explicitly
 * seeded Rng so that every experiment is reproducible from its seed.
 */

#ifndef RASENGAN_COMMON_RNG_H
#define RASENGAN_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace rasengan {

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5A17F00Dull) : engine_(seed) {}

    /** Reseed the generator. */
    void seed(uint64_t s) { engine_.seed(s); }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        panic_if(lo > hi, "uniformInt: empty range [{}, {}]", lo, hi);
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Standard normal sample scaled to @p mean / @p stddev. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniformly chosen index in [0, n). */
    size_t
    index(size_t n)
    {
        panic_if(n == 0, "index: empty range");
        return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
    }

    /** Uniformly chosen element of @p items. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        panic_if(items.empty(), "choice: empty vector");
        return items[index(items.size())];
    }

    /**
     * Sample an index from an unnormalized weight vector.
     * Weights must be non-negative with a positive sum.
     */
    size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights) {
            panic_if(!std::isfinite(w), "weightedIndex: non-finite weight {}",
                     w);
            panic_if(w < 0.0, "weightedIndex: negative weight {}", w);
            total += w;
        }
        panic_if(!std::isfinite(total) || total <= 0.0,
                 "weightedIndex: degenerate total weight {}", total);
        double r = uniformReal(0.0, total);
        double acc = 0.0;
        for (size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (r < acc)
                return i;
        }
        return weights.size() - 1;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i)
            std::swap(items[i - 1], items[index(i)]);
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

    /** Derive an independent child generator (for parallel workloads). */
    Rng
    fork()
    {
        return Rng(engine_());
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace rasengan

#endif // RASENGAN_COMMON_RNG_H
