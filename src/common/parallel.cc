#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace rasengan::parallel {

namespace {

thread_local bool tls_in_parallel = false;

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return std::min(requested, 256);
    if (const char *env = std::getenv("RASENGAN_THREADS")) {
        int n = std::atoi(env);
        if (n > 0)
            return std::min(n, 256);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
}

/**
 * The global pool.  Workers park on a condition variable between jobs;
 * each job assigns worker w the chunk ranges_[w + 1] (the caller runs
 * ranges_[0]), so the work assignment is static and lock-free during
 * execution.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    int size() const { return size_; }

    void
    configure(int requested)
    {
        std::lock_guard<std::mutex> serial(runMutex_);
        stopWorkers();
        size_ = resolveThreadCount(requested);
        startWorkers();
    }

    /**
     * Run @p fn over the chunk list @p ranges (ranges.size() >= 1).
     * The caller executes ranges[0]; workers 0..ranges.size()-2 execute
     * the rest.  Returns after every chunk completed.
     */
    void
    run(const std::function<void(uint64_t, uint64_t)> &fn,
        std::vector<std::pair<uint64_t, uint64_t>> ranges)
    {
        std::lock_guard<std::mutex> serial(runMutex_);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            fn_ = &fn;
            ranges_ = std::move(ranges);
            pending_ = static_cast<int>(ranges_.size()) - 1;
            ++generation_;
        }
        wake_.notify_all();

        tls_in_parallel = true;
        (*fn_)(ranges_[0].first, ranges_[0].second);
        tls_in_parallel = false;

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        fn_ = nullptr;
    }

  private:
    Pool() : size_(resolveThreadCount(0)) { startWorkers(); }

    ~Pool() { stopWorkers(); }

    void
    startWorkers()
    {
        shutdown_ = false;
        // Fresh workers must not observe a generation bump from before
        // they were spawned: hand each its starting generation so the
        // first wake only fires on the next run().
        const uint64_t gen = generation_;
        for (int w = 0; w < size_ - 1; ++w)
            workers_.emplace_back([this, w, gen] { workerLoop(w, gen); });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
        workers_.clear();
        // All workers are joined: drop the stale job so nothing dangles.
        fn_ = nullptr;
        ranges_.clear();
    }

    void
    workerLoop(int index, uint64_t seen)
    {
        for (;;) {
            std::pair<uint64_t, uint64_t> range{0, 0};
            const std::function<void(uint64_t, uint64_t)> *fn = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return shutdown_ || generation_ != seen;
                });
                if (shutdown_)
                    return;
                seen = generation_;
                size_t slot = static_cast<size_t>(index) + 1;
                if (slot >= ranges_.size())
                    continue; // more workers than chunks this round
                range = ranges_[slot];
                fn = fn_;
            }
            tls_in_parallel = true;
            (*fn)(range.first, range.second);
            tls_in_parallel = false;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --pending_;
            }
            done_.notify_one();
        }
    }

    std::mutex runMutex_; ///< serializes run()/configure() callers

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    const std::function<void(uint64_t, uint64_t)> *fn_ = nullptr;
    std::vector<std::pair<uint64_t, uint64_t>> ranges_;
    uint64_t generation_ = 0;
    int pending_ = 0;
    int size_ = 1;
    bool shutdown_ = false;
};

} // namespace

int
threadCount()
{
    return Pool::instance().size();
}

void
setThreadCount(int n)
{
    panic_if(tls_in_parallel,
             "setThreadCount from inside a parallel region");
    Pool::instance().configure(n);
}

bool
inParallelRegion()
{
    return tls_in_parallel;
}

void
parallelFor(uint64_t begin, uint64_t end, uint64_t grain,
            const std::function<void(uint64_t, uint64_t)> &fn)
{
    if (begin >= end)
        return;
    const uint64_t n = end - begin;
    if (grain == 0)
        grain = 1;
    Pool &pool = Pool::instance();
    uint64_t chunks = std::min<uint64_t>(pool.size(), n / grain);
    if (chunks <= 1 || tls_in_parallel) {
        fn(begin, end);
        return;
    }
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    ranges.reserve(chunks);
    for (uint64_t c = 0; c < chunks; ++c) {
        uint64_t lo = begin + n * c / chunks;
        uint64_t hi = begin + n * (c + 1) / chunks;
        ranges.emplace_back(lo, hi);
    }
    pool.run(fn, std::move(ranges));
}

void
parallelForDynamic(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t)> &fn)
{
    if (begin >= end)
        return;
    const uint64_t n = end - begin;
    Pool &pool = Pool::instance();
    uint64_t lanes = std::min<uint64_t>(pool.size(), n);
    if (lanes <= 1 || tls_in_parallel) {
        for (uint64_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    std::atomic<uint64_t> next{begin};
    // Every lane runs the same claim loop; the range arguments carry no
    // information (the shared counter is the work list).
    auto claimLoop = [&](uint64_t, uint64_t) {
        for (;;) {
            uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                return;
            fn(i);
        }
    };
    std::vector<std::pair<uint64_t, uint64_t>> ranges(
        lanes, std::pair<uint64_t, uint64_t>{0, 0});
    pool.run(claimLoop, std::move(ranges));
}

double
reduceBlocks(uint64_t begin, uint64_t end, uint64_t block,
             const std::function<double(uint64_t, uint64_t)> &fn)
{
    if (begin >= end)
        return 0.0;
    if (block == 0)
        block = 1;
    const uint64_t nblocks = (end - begin + block - 1) / block;
    if (nblocks == 1)
        return fn(begin, end);
    std::vector<double> partial(nblocks);
    parallelFor(0, nblocks, 1, [&](uint64_t b0, uint64_t b1) {
        for (uint64_t b = b0; b < b1; ++b) {
            uint64_t lo = begin + b * block;
            uint64_t hi = std::min(lo + block, end);
            partial[b] = fn(lo, hi);
        }
    });
    double acc = 0.0;
    for (double p : partial)
        acc += p;
    return acc;
}

std::complex<double>
reduceBlocksComplex(uint64_t begin, uint64_t end, uint64_t block,
                    const std::function<std::complex<double>(
                        uint64_t, uint64_t)> &fn)
{
    if (begin >= end)
        return {0.0, 0.0};
    if (block == 0)
        block = 1;
    const uint64_t nblocks = (end - begin + block - 1) / block;
    if (nblocks == 1)
        return fn(begin, end);
    std::vector<std::complex<double>> partial(nblocks);
    parallelFor(0, nblocks, 1, [&](uint64_t b0, uint64_t b1) {
        for (uint64_t b = b0; b < b1; ++b) {
            uint64_t lo = begin + b * block;
            uint64_t hi = std::min(lo + block, end);
            partial[b] = fn(lo, hi);
        }
    });
    std::complex<double> acc{0.0, 0.0};
    for (const std::complex<double> &p : partial)
        acc += p;
    return acc;
}

} // namespace rasengan::parallel
