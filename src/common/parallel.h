/**
 * @file
 * Deterministic parallelism substrate: a fixed-size thread pool with
 * static partitioning.
 *
 * Design goals, in order:
 *  1. Bit-identical results at every thread count.  parallelFor only
 *     runs callables whose iterations write disjoint data, so the
 *     thread count merely reschedules work.  Floating-point reductions
 *     go through reduceBlocks/reduceBlocksComplex, which sum fixed-size
 *     blocks and combine the partials in index order -- the association
 *     of the additions depends on the block size only, never on the
 *     thread count (including the serial case).
 *  2. No oversubscription: one global pool, lazily created.  A region
 *     already executing inside the pool (or inside a parallelFor on the
 *     caller thread) runs nested parallelFor calls serially.
 *  3. Cheap opt-out: ranges smaller than the grain never touch the
 *     pool, so sub-threshold statevectors keep their scalar hot loops.
 *
 * Thread count resolution (first use, or setThreadCount):
 *   explicit setThreadCount(n > 0)  >  RASENGAN_THREADS env  >
 *   std::thread::hardware_concurrency().
 */

#ifndef RASENGAN_COMMON_PARALLEL_H
#define RASENGAN_COMMON_PARALLEL_H

#include <complex>
#include <cstdint>
#include <functional>

namespace rasengan::parallel {

/** Default iterations per chunk below which a range stays serial. */
constexpr uint64_t kDefaultGrain = uint64_t{1} << 12;

/** Fixed reduction block size; determines the summation association. */
constexpr uint64_t kReduceBlock = uint64_t{1} << 14;

/** Configured worker count (including the calling thread), >= 1. */
int threadCount();

/**
 * Reconfigure the pool to @p n threads; @p n <= 0 re-resolves from the
 * RASENGAN_THREADS environment variable / hardware concurrency.  Safe
 * to call repeatedly (tests sweep 1/2/7); must not be called from
 * inside a pool task.
 */
void setThreadCount(int n);

/** True while the calling thread is executing a pool task. */
bool inParallelRegion();

/**
 * Execute @p fn over [begin, end) split into at most threadCount()
 * contiguous chunks of at least @p grain iterations each.  @p fn is
 * called as fn(chunk_begin, chunk_end) and must only write data that
 * no other chunk writes.  Runs serially when the range is small, the
 * pool has one thread, or the caller is already inside a pool task.
 */
void parallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)> &fn);

/**
 * Execute @p fn(i) once for every i in [begin, end), distributing the
 * indices dynamically: workers claim the next unprocessed index from a
 * shared atomic counter, so long-running items do not stall the rest of
 * the batch behind a static partition.  Intended for coarse,
 * independent work items (e.g. whole solve jobs); each invocation must
 * only write data no other invocation writes.  Which thread runs which
 * index is nondeterministic -- callers needing reproducible output must
 * make each item's result independent of scheduling (the serve layer
 * does this with per-item seeds).  Runs serially when the pool has one
 * thread or the caller is already inside a pool task.
 */
void parallelForDynamic(uint64_t begin, uint64_t end,
                        const std::function<void(uint64_t)> &fn);

/**
 * Deterministic parallel sum: partition [begin, end) into fixed
 * @p block -sized blocks, evaluate @p fn(block_begin, block_end) for
 * each, and combine the per-block partials in index order.  The result
 * is bit-identical for every thread count.
 */
double reduceBlocks(uint64_t begin, uint64_t end, uint64_t block,
                    const std::function<double(uint64_t, uint64_t)> &fn);

/** Complex-valued analogue of reduceBlocks. */
std::complex<double>
reduceBlocksComplex(uint64_t begin, uint64_t end, uint64_t block,
                    const std::function<std::complex<double>(
                        uint64_t, uint64_t)> &fn);

} // namespace rasengan::parallel

#endif // RASENGAN_COMMON_PARALLEL_H
