#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace rasengan {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("RASENGAN_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Inform;
    return parseLogLevel(env, LogLevel::Inform);
}

std::atomic<LogLevel> &
globalLevel()
{
    // Meyer's singleton so the getenv read happens on first use, not at
    // an unspecified point in static initialisation order.
    static std::atomic<LogLevel> level{initialLevel()};
    return level;
}

std::atomic<LogTapFn> g_logTap{nullptr};

void
tapLine(const char *level, const std::string &msg)
{
    LogTapFn tap = g_logTap.load(std::memory_order_acquire);
    if (tap != nullptr)
        tap(level, msg.c_str(), msg.size());
}

} // namespace

void
setLogTap(LogTapFn tap)
{
    g_logTap.store(tap, std::memory_order_release);
}

void
setLogLevel(LogLevel level)
{
    globalLevel().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel().load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &text, LogLevel fallback)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "silent" || lower == "0")
        return LogLevel::Silent;
    if (lower == "warn" || lower == "1")
        return LogLevel::Warn;
    if (lower == "inform" || lower == "info" || lower == "2")
        return LogLevel::Inform;
    if (lower == "debug" || lower == "3")
        return LogLevel::Debug;
    return fallback;
}

LogTail &
LogTail::kvText(const char *key, const std::string &value)
{
    tail_ += " ";
    tail_ += key;
    tail_ += "=";
    if (value.find(' ') != std::string::npos)
        tail_ += "\"" + value + "\"";
    else
        tail_ += value;
    return *this;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    tapLine("panic", msg);
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    tapLine("fatal", msg);
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    tapLine("warn", msg);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    tapLine("info", msg);
    std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    tapLine("debug", msg);
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace rasengan
