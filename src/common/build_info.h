/**
 * @file
 * Build identity constants, compiled in by CMake.
 *
 * RASENGAN_VERSION / RASENGAN_GIT_DESCRIBE are injected as compile
 * definitions (see the root CMakeLists); out-of-CMake builds fall back
 * to placeholders rather than failing.  The daemon publishes these as
 * the `rasengan_build_info` gauge so operators can tell from /metrics
 * exactly which build is serving.
 */

#ifndef RASENGAN_COMMON_BUILD_INFO_H
#define RASENGAN_COMMON_BUILD_INFO_H

namespace rasengan {

inline const char *
buildVersion()
{
#ifdef RASENGAN_VERSION
    return RASENGAN_VERSION;
#else
    return "dev";
#endif
}

/** `git describe --always --dirty` at configure time ("unknown" when
 *  the source tree is not a git checkout). */
inline const char *
buildGitDescribe()
{
#ifdef RASENGAN_GIT_DESCRIBE
    return RASENGAN_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

} // namespace rasengan

#endif // RASENGAN_COMMON_BUILD_INFO_H
