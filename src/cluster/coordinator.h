/**
 * @file
 * Cluster coordinator: screens a batch, shards it across workers, and
 * merges the streamed results into the exact byte stream a
 * single-process run would produce.
 *
 * Determinism argument, piece by piece:
 *
 *  - Rejections.  submit() screens every request through the same
 *    serve::screenRequest the BatchScheduler uses, in submission order,
 *    against one stateful AdmissionController -- so rejection result
 *    lines (reason, code, cost) are byte-identical to single-process.
 *    (Batch-mode admission is fully serial at submit time: no release()
 *    runs until the batch executes, so screening here sees the same
 *    queue occupancy the single-process submit loop would.)
 *
 *  - Accepted jobs.  Workers re-derive the child seed from canonical
 *    request content + batch seed and run with unlimited admission;
 *    estimateJobCost is limits-independent, so cost_units matches too.
 *    Result lines cross the wire as the worker's writeResult() bytes
 *    and are stored verbatim in the submission-order slot -- the merge
 *    is placement- and completion-order-invariant by construction, and
 *    re-running an orphaned job on a different worker reproduces the
 *    same bytes.
 *
 * Failure handling: a worker death (EOF, write error, corrupt frame) is
 * detected by the poll loop; its unfinished jobs are re-placed across
 * the survivors under exec::RetryPolicy semantics (attempt cap +
 * backoff between re-placements).  A job that exhausts its attempts --
 * or outlives the last worker -- completes as a deterministic
 * accepted-but-failed result naming the placement failure.
 *
 * Single-threaded: runAll() multiplexes every worker connection with
 * poll() and non-blocking writes through per-worker output buffers, so
 * a stalled worker can never deadlock the coordinator.
 */

#ifndef RASENGAN_CLUSTER_COORDINATOR_H
#define RASENGAN_CLUSTER_COORDINATOR_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/protocol.h"
#include "common/rng.h"
#include "exec/retry.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/runner.h"
#include "tune/tuner.h"

namespace rasengan::cluster {

struct CoordinatorOptions
{
    uint64_t batchSeed = 0;
    /** Threads per worker (0 = each worker keeps its own config). */
    int threads = 0;
    uint64_t cacheBudgetBytes = 64ull << 20;
    /** Real admission limits; screening happens here, never on workers. */
    serve::AdmissionLimits limits;
    size_t maxFrameBytes = kDefaultMaxFrameBytes;
    /** Fault plan forwarded to worker @p faultWorker's hello (tests/CI). */
    std::string faultSpec;
    int faultWorker = -1;
    /** Re-placement attempt cap and backoff for jobs orphaned by a
     *  worker death (maxAttempts counts placements, initial included). */
    exec::RetryPolicy retry;
    /** Import each worker's batch_done metrics snapshot into the global
     *  registry as <metricsPrefix><name>{worker="N",...} gauges. */
    bool importMetrics = true;
    std::string metricsPrefix = "cluster_worker_";
    /**
     * Adaptive-tuner configuration (mode Off disables all tune
     * traffic).  The coordinator decides per-job knob hints at the
     * serial submit point -- so the decision sequence matches a
     * single-process run over the same request stream -- and ships
     * each hint inside the forwarded request line; workers report
     * measurements back in batch_done and the coordinator journals
     * them for FUTURE runs.  processKnobs is forced off: worker
     * schedulers run jobs concurrently and cannot honor process-wide
     * knob changes.
     */
    tune::TunerOptions tune;
};

struct CoordinatorStats
{
    size_t workers = 0;
    size_t workersDead = 0;
    size_t jobsReplaced = 0;    ///< re-placements after a death
    size_t jobsSynthesized = 0; ///< failed: attempts/workers exhausted
    size_t rejected = 0;
    uint64_t cacheHits = 0; ///< summed over surviving workers
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
};

class Coordinator
{
  public:
    /** @p workerFds: one connected stream per worker; the coordinator
     *  takes ownership and closes them. */
    Coordinator(CoordinatorOptions options, std::vector<int> workerFds);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Screen @p req (serial, submission order); returns its slot. */
    size_t submit(const serve::JobRequest &req);

    /**
     * Distribute, execute, and merge.  Returns false on a coordinator-
     * level failure (no workers, every worker lost before placement
     * finished); individual job failures are reported in their result
     * lines, exactly like single-process failed jobs.
     */
    bool runAll(std::string *error);

    /** writeResult() lines, submission order (complete after runAll). */
    const std::vector<std::string> &resultLines() const
    {
        return resultLines_;
    }

    /** writeTelemetry() lines, submission order. */
    const std::vector<std::string> &telemetryLines() const
    {
        return telemetryLines_;
    }

    const CoordinatorStats &stats() const { return stats_; }

    /** The coordinator's tuner (decision/absorb stats for tests/CLI). */
    const tune::Tuner &tuner() const { return tuner_; }

    /**
     * Span forests shipped by workers in batch_done (decoded,
     * accumulated across cycles), each tagged with its Perfetto process
     * name and the clock offset measured at hello_ack.  Empty unless
     * tracing was enabled during runAll.
     */
    std::vector<obs::ForeignSpans> foreignSpans() const;

    /**
     * Stitch the coordinator's local trace buffers and every worker's
     * shipped spans into ONE Chrome trace-event JSON at @p path (see
     * obs::writeMergedChromeTrace).  Call after runAll.
     */
    bool writeMergedTrace(const std::string &path,
                          std::string *error) const;

    /** obs::mergedSpanTreeSignature over local + shipped forests:
     *  byte-identical across worker and thread counts. */
    std::string mergedSignature() const;

    /** Span events workers dropped to fit batch_done under the frame
     *  cap (summed; nonzero means the merged trace has holes). */
    uint64_t shippedSpansDropped() const;

  private:
    struct AdmittedJob
    {
        uint64_t slot = 0;
        std::string id;
        std::string line; ///< forwarded writeRequest() rendering
        double costUnits = 0.0;
        int attempts = 0; ///< placements so far (initial included)
    };

    struct WorkerConn
    {
        int fd = -1;
        FrameDecoder decoder;
        std::string outBuf;
        size_t outPos = 0;
        bool alive = true;
        bool byeSeen = false;
        bool haveDone = false;
        Message lastDone;             ///< latest batch_done snapshot
        std::set<uint64_t> outstanding; ///< slots awaiting results
        /** nowNanos() when the hello was queued (clock-offset probe). */
        obs::TimeNanos helloSent = 0;
        /** Coordinator clock minus worker clock, from hello_ack. */
        int64_t clockOffsetNanos = 0;
        /** Decoded span events shipped in batch_done, across cycles. */
        std::vector<obs::FlatEvent> spans;
        uint64_t spansDropped = 0;

        explicit WorkerConn(int f, size_t maxFrame)
            : fd(f), decoder(maxFrame)
        {
        }
    };

    void queueFrame(int w, const Message &msg);
    bool flushWorker(int w); ///< false when the write killed the conn
    void readWorker(int w);
    void handleFrame(int w, const Message &msg);
    void workerDied(int w, const std::string &why);
    void placeJobs(const std::vector<size_t> &jobIndices);
    void synthesizeFailure(size_t jobIndex, const std::string &why);
    void finishSlot(uint64_t slot, std::string resultLine,
                    std::string telemetryLine);
    void drainWorkers();

    CoordinatorOptions options_;
    serve::JobRunner runner_; ///< prepare-only (cache budget 0)
    serve::AdmissionController admission_;
    tune::Tuner tuner_;
    Placer placer_;
    Rng rng_; ///< backoff jitter stream (seeded from the batch seed)

    std::vector<WorkerConn> conns_;
    std::vector<AdmittedJob> admitted_;
    std::map<uint64_t, size_t> jobBySlot_;

    std::vector<std::string> resultLines_;
    std::vector<std::string> telemetryLines_;
    std::vector<bool> slotDone_;
    size_t remaining_ = 0; ///< admitted slots still unfilled
    bool ran_ = false;

    CoordinatorStats stats_;
};

} // namespace rasengan::cluster

#endif // RASENGAN_CLUSTER_COORDINATOR_H
