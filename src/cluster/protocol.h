/**
 * @file
 * Wire protocol for the distributed solve cluster.
 *
 * Framing.  Every message is one length-prefixed frame:
 *
 *     <decimal payload length>\n<payload>\n
 *
 * The payload is one flat JSON object in the serve/jsonl dialect, so
 * both ends reuse parseFlatJson/JsonWriter and inherit their
 * determinism guarantees (insertion-order keys, %.17g doubles).  The
 * explicit length makes the stream robust to payloads that themselves
 * contain anything the transport might mangle, keeps the decoder
 * allocation-bounded (a corrupt header cannot demand a huge buffer:
 * lengths above the cap poison the stream immediately), and lets the
 * reader detect a torn frame -- a dead worker's last partial write --
 * as cleanly as the journal detects a torn line.
 *
 * Messages (type field):
 *
 *   coordinator -> worker
 *     hello       version, worker index, batch seed, threads, cache
 *                 budget, forwarded fault spec; when the coordinator is
 *                 tracing also trace=true + trace_parent (the span id
 *                 worker job spans open under)
 *     job         slot index + one writeRequest() line
 *     run         execute the jobs accumulated since the last run
 *     drain       finish up and exit cleanly
 *
 *   worker -> coordinator
 *     hello_ack   version echo + worker index + the worker's clock
 *                 ("now", nanoseconds) for span-timestamp alignment
 *     result      slot index + writeResult() + writeTelemetry() lines
 *     batch_done  jobs finished this cycle + cache stats + a
 *                 jsonText() snapshot of the worker's metric registry
 *                 + optional tune measurement lines for the
 *                 coordinator's cost-model journal + optional compacted
 *                 span buffers (encodeSpanEvents) when tracing
 *     bye         clean shutdown acknowledgment
 *
 * Determinism contract: result payloads are the exact writeResult()
 * bytes the worker's BatchScheduler produced, carried opaquely; the
 * coordinator never re-renders them, so the merged output is built
 * from the same bytes a single-process run would have written.
 */

#ifndef RASENGAN_CLUSTER_PROTOCOL_H
#define RASENGAN_CLUSTER_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace rasengan::cluster {

/** Bumped on any wire-incompatible change; hello/hello_ack carry it.
 *  v2: distributed tracing -- hello carries trace/trace_parent, every
 *  hello_ack carries the worker's clock (`now`, for offset alignment),
 *  batch_done may carry compacted span buffers. */
constexpr int kProtocolVersion = 2;

/**
 * Default frame cap: a request line tops out at LineReader's 1 MiB,
 * and a batch_done metrics snapshot stays far below this.  Overridable
 * via RASENGAN_CLUSTER_MAX_FRAME for pathological workloads.
 */
constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/** Render @p payload as one frame (length header + payload + '\n'). */
std::string frame(const std::string &payload);

/**
 * Incremental frame decoder: feed() raw socket bytes, then drain
 * complete frames with next().  Never over-allocates: the payload
 * buffer grows only after a sane header promised that many bytes.  A
 * malformed header (non-digit, oversized length, missing terminator)
 * poisons the stream permanently -- framing is lost, so the peer must
 * be treated as dead; there is no resynchronization.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t maxFrameBytes = kDefaultMaxFrameBytes)
        : maxFrameBytes_(maxFrameBytes)
    {
    }

    /** Append @p n raw bytes (no-op once corrupt). */
    void feed(const char *data, size_t n);

    /**
     * Pop the next complete frame payload into @p payload.  Returns
     * false when no complete frame is buffered (check corrupt() to
     * distinguish "need more bytes" from "stream is garbage").
     */
    bool next(std::string &payload);

    bool corrupt() const { return corrupt_; }
    const std::string &corruptReason() const { return corruptReason_; }

    size_t framesDecoded() const { return framesDecoded_; }

    /** Bytes buffered but not yet consumed (bounded by the cap). */
    size_t bufferedBytes() const { return buffer_.size() - start_; }

  private:
    void poison(const std::string &why);

    size_t maxFrameBytes_;
    std::string buffer_;
    size_t start_ = 0; ///< consumed prefix (compacted lazily)
    bool corrupt_ = false;
    std::string corruptReason_;
    size_t framesDecoded_ = 0;
};

/**
 * One decoded protocol message.  A flat struct rather than a variant:
 * only the fields relevant to `type` are meaningful, everything else
 * keeps its default.  encodeMessage writes only the relevant fields.
 */
struct Message
{
    std::string type;

    // hello / hello_ack
    int version = 0;
    int worker = -1;
    uint64_t batchSeed = 0;
    int threads = 0;
    uint64_t cacheBudgetBytes = 0;
    std::string fault; ///< forwarded ProcessFaultPlan spec ("" = none)
    /** hello: ship span buffers back (the coordinator is tracing). */
    bool traceSpans = false;
    /** hello: the coordinator-side span id worker job spans open under
     *  (a REMOTE parent; carried outside the request line because it is
     *  batch-scoped, not job-scoped). */
    uint64_t traceParent = 0;
    /** hello_ack: the worker's obs::nowNanos() at ack time; with the
     *  coordinator's send/receive times it yields the per-worker clock
     *  offset that aligns shipped span timestamps. */
    uint64_t now = 0;

    // job / result
    uint64_t index = 0;    ///< coordinator-side result slot
    std::string request;   ///< writeRequest() line (job)
    std::string result;    ///< writeResult() line (result)
    std::string telemetry; ///< writeTelemetry() line (result)

    // run / batch_done
    uint64_t jobs = 0; ///< jobs in the cycle (run) / finished (done)

    // batch_done cache + metrics snapshot
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheBytesInUse = 0;
    std::string metrics; ///< obs jsonText() snapshot ("" = none)
    /** Newline-joined tune measurement lines from the worker's cycle
     *  ("" = none); the coordinator appends them to its cost-model
     *  journal so the next run's decisions learn from the fleet. */
    std::string tuneRecords;
    /** batch_done: obs::encodeSpanEvents() of the cycle's job span
     *  subtrees ("" = none / tracing off). */
    std::string spans;
    /** batch_done: span events the worker dropped to fit the frame cap. */
    uint64_t spansDropped = 0;
};

struct MessageParseResult
{
    bool ok = false;
    std::string error;
    Message msg;
};

/** Render @p msg as a frame payload (flat JSON, fixed key order). */
std::string encodeMessage(const Message &msg);

/** Parse and validate one frame payload. */
MessageParseResult parseMessage(const std::string &payload);

/** The frame cap from RASENGAN_CLUSTER_MAX_FRAME, else the default. */
size_t maxFrameBytesFromEnv();

} // namespace rasengan::cluster

#endif // RASENGAN_CLUSTER_PROTOCOL_H
