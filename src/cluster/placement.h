/**
 * @file
 * Deterministic job placement for the cluster coordinator.
 *
 * Jobs are assigned to the worker with the least accumulated estimated
 * cost (the same AdmissionController estimate used for screening), ties
 * broken by lowest worker index.  Because the estimates are pure
 * functions of the request and jobs are placed in submission order, the
 * assignment is a deterministic function of (batch, live worker set) --
 * the same inputs place identically on every run, which is what the
 * placement-determinism test pins down.
 *
 * Worker death removes the worker; its unfinished jobs are re-placed
 * across the survivors by the same rule.  Cost bookkeeping is left
 * untouched on death deliberately: the survivors' loads still reflect
 * work actually placed on them.
 */

#ifndef RASENGAN_CLUSTER_PLACEMENT_H
#define RASENGAN_CLUSTER_PLACEMENT_H

#include <cstddef>
#include <vector>

namespace rasengan::cluster {

class Placer
{
  public:
    explicit Placer(size_t workers);

    /** Place one job of @p costUnits; returns the worker index, or -1
     *  when no workers are alive. */
    int place(double costUnits);

    /** Mark a worker dead; it will never be chosen again. */
    void markDead(int worker);

    bool alive(int worker) const;
    size_t aliveCount() const { return aliveCount_; }

    /** Accumulated estimated cost placed on @p worker so far. */
    double loadOf(int worker) const;

  private:
    std::vector<bool> alive_;
    std::vector<double> load_;
    size_t aliveCount_;
};

} // namespace rasengan::cluster

#endif // RASENGAN_CLUSTER_PLACEMENT_H
