#include "cluster/worker.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "exec/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "tune/tuner.h"

namespace rasengan::cluster {

namespace {

/** Write all of @p data to @p fd, riding out EINTR and short writes. */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

struct WorkerState
{
    int fd = -1;
    bool configured = false;
    int workerIndex = -1;
    uint64_t batchSeed = 0;
    int threads = 0;
    size_t maxFrameBytes = kDefaultMaxFrameBytes;
    /** Coordinator asked for span shipping at hello. */
    bool shipSpans = false;
    /** Coordinator-side span id this cycle's job spans open under. */
    uint64_t traceParent = 0;
    std::shared_ptr<serve::ArtifactCache> cache;
    exec::ProcessFaultPlan fault;
    std::atomic<uint64_t> faultEvents{0};

    /** Once true, nothing more is written: the injected-disconnect
     *  fault, or a peer that vanished under us. */
    std::atomic<bool> disconnected{false};
    /** Trips the scheduler's cooperative stop on disconnect. */
    std::atomic<bool> stop{false};
    std::mutex sendMutex;

    /** Jobs accumulated since the last run: (coordinator slot, line). */
    std::vector<std::pair<uint64_t, std::string>> cycleJobs;
    size_t jobsRun = 0;

    /** Tune measurement lines for this cycle's batch_done.  Guarded by
     *  its own mutex: onJobComplete fires from pool threads.  Line
     *  order follows completion order, which is fine -- the cost model
     *  is a commutative sum, so journal order never affects decisions. */
    std::mutex tuneMutex;
    std::vector<std::string> tuneLines;
};

/**
 * Turn a finished job's telemetry into a cost-model measurement line.
 * Everything needed rides the telemetry the scheduler already fills
 * (bucket, applied arms, wall time, observed shape), so the worker
 * needs no tuner of its own -- it is a pure measurement source.
 */
void
recordTuneMeasurement(WorkerState &state, const serve::JobResult &result)
{
    tune::Measurement m;
    if (!tune::measurementForResult(result, &m))
        return;
    std::lock_guard<std::mutex> lock(state.tuneMutex);
    state.tuneLines.push_back(tune::encodeMeasurement(m));
}

bool
sendMessage(WorkerState &state, const Message &msg)
{
    std::lock_guard<std::mutex> lock(state.sendMutex);
    if (state.disconnected.load(std::memory_order_relaxed))
        return false;
    if (!writeAll(state.fd, frame(encodeMessage(msg)))) {
        state.disconnected.store(true, std::memory_order_relaxed);
        return false;
    }
    return true;
}

/** The injected-disconnect fault: go silent without a goodbye. */
void
disconnectNow(WorkerState &state)
{
    std::lock_guard<std::mutex> lock(state.sendMutex);
    state.disconnected.store(true, std::memory_order_relaxed);
    state.stop.store(true, std::memory_order_relaxed);
    ::shutdown(state.fd, SHUT_RDWR);
}

void
sendResult(WorkerState &state, uint64_t slot,
           const serve::JobResult &result)
{
    Message m;
    m.type = "result";
    m.index = slot;
    m.result = serve::writeResult(result);
    m.telemetry = serve::writeTelemetry(result);
    sendMessage(state, m);
}

bool
handleHello(WorkerState &state, const Message &msg, std::string *error)
{
    if (state.configured) {
        *error = "duplicate hello";
        return false;
    }
    if (msg.version != kProtocolVersion) {
        *error = "protocol version mismatch: coordinator speaks " +
                 std::to_string(msg.version) + ", worker speaks " +
                 std::to_string(kProtocolVersion);
        return false;
    }
    exec::ProcessFaultParseResult fault =
        exec::parseProcessFaultPlan(msg.fault);
    if (!fault.ok) {
        *error = fault.error;
        return false;
    }
    state.configured = true;
    state.workerIndex = msg.worker;
    state.batchSeed = msg.batchSeed;
    state.threads = msg.threads;
    state.fault = fault.plan;
    state.cache =
        std::make_shared<serve::ArtifactCache>(msg.cacheBudgetBytes);
    if (msg.traceSpans) {
        state.shipSpans = true;
        state.traceParent = msg.traceParent;
        obs::startTracing(); // idempotent; in-process tests share it
    }

    Message ack;
    ack.type = "hello_ack";
    ack.version = kProtocolVersion;
    ack.worker = msg.worker;
    // The worker's clock at ack time: with the coordinator's local
    // send/receive timestamps this yields the per-worker offset that
    // rebases shipped span timestamps onto the coordinator's clock.
    ack.now = static_cast<uint64_t>(obs::nowNanos());
    sendMessage(state, ack);
    return true;
}

bool
runCycle(WorkerState &state, uint64_t expectedJobs, std::string *error)
{
    if (expectedJobs != state.cycleJobs.size()) {
        *error = "run announced " + std::to_string(expectedJobs) +
                 " jobs but " + std::to_string(state.cycleJobs.size()) +
                 " arrived";
        return false;
    }

    serve::ServeOptions options;
    options.threads = state.threads;
    options.batchSeed = state.batchSeed;
    // The coordinator already screened against the real limits;
    // screening again here would double-count the batch budget.
    options.limits = serve::AdmissionLimits::unlimited();
    options.stopFlag = &state.stop;
    if (state.shipSpans) {
        // Job spans open under the coordinator's batch span (remote
        // parent); the local batch span is suppressed so the merged
        // forest does not depend on how jobs shard across workers.
        options.traceRemoteParent = state.traceParent;
        options.suppressBatchSpan = true;
    }
    std::vector<uint64_t> slotOf; // local result index -> coordinator slot
    slotOf.reserve(state.cycleJobs.size());
    options.onJobComplete = [&](size_t local,
                                const serve::JobResult &result) {
        uint64_t events =
            state.faultEvents.fetch_add(1, std::memory_order_relaxed) + 1;
        if (state.fault.triggers(events)) {
            if (state.fault.action ==
                exec::ProcessFaultPlan::Action::Kill) {
                ::kill(::getpid(), SIGKILL);
            }
            disconnectNow(state);
            return;
        }
        if (state.disconnected.load(std::memory_order_relaxed))
            return;
        recordTuneMeasurement(state, result);
        sendResult(state, slotOf[local], result);
    };

    serve::BatchScheduler scheduler(options, state.cache);
    std::set<std::string> cycleTraceIds;
    for (const auto &[slot, line] : state.cycleJobs) {
        serve::RequestParseResult parsed = serve::parseRequest(line);
        if (!parsed.ok) {
            // The coordinator only forwards screened requests, so a
            // parse failure means the stream is not trustworthy.
            *error = "unparseable forwarded request: " + parsed.error;
            return false;
        }
        if (!parsed.request.traceHint.empty())
            cycleTraceIds.insert(parsed.request.traceHint);
        size_t local = scheduler.submit(parsed.request);
        slotOf.push_back(slot);
        // With unlimited admission only a validation defect can reject;
        // it completes at submit time and never reaches onJobComplete.
        const serve::JobResult &early = scheduler.results()[local];
        if (!early.accepted && !early.rejectCode.empty())
            sendResult(state, slot, early);
    }
    scheduler.runAll();
    state.jobsRun += state.cycleJobs.size();
    state.cycleJobs.clear();

    if (state.disconnected.load(std::memory_order_relaxed))
        return true; // injected disconnect: vanish without batch_done

    serve::ArtifactCache::Stats cache = state.cache->stats();
    Message done;
    done.type = "batch_done";
    done.jobs = expectedJobs;
    done.cacheHits = cache.hits;
    done.cacheMisses = cache.misses;
    done.cacheEvictions = cache.evictions;
    done.cacheBytesInUse = cache.bytesInUse;
    done.metrics = obs::Registry::global().jsonText();
    {
        std::lock_guard<std::mutex> lock(state.tuneMutex);
        for (size_t i = 0; i < state.tuneLines.size(); ++i) {
            if (i)
                done.tuneRecords += '\n';
            done.tuneRecords += state.tuneLines[i];
        }
        state.tuneLines.clear();
    }
    if (state.shipSpans) {
        // Ship only the subtrees rooted at this cycle's remote-parented
        // job spans: in-process deployments share the trace registry
        // with the coordinator, and earlier cycles' events are already
        // on the wire.  The trace buffers are NOT cleared -- the
        // per-cycle trace-id filter makes re-shipment impossible.
        std::vector<obs::FlatEvent> ship = obs::remoteRootedEvents(
            obs::snapshotTraceEvents(), cycleTraceIds);
        uint64_t dropped = 0;
        size_t cap = ship.size();
        std::string encoded = obs::encodeSpanEvents(ship, 0, &dropped);
        // Keep the span payload well under the frame cap; halving the
        // event budget converges fast and keeps the earliest (root-
        // most) events, which matter most for stitching.
        while (!encoded.empty() && cap > 0 &&
               encoded.size() > state.maxFrameBytes / 2) {
            cap /= 2;
            encoded = obs::encodeSpanEvents(ship, cap, &dropped);
        }
        done.spans = std::move(encoded);
        done.spansDropped = dropped;
    }
    sendMessage(state, done);
    return true;
}

} // namespace

WorkerOutcome
runWorker(int fd, size_t maxFrameBytes)
{
    // A coordinator death mid-write must surface as EPIPE, not kill us.
    std::signal(SIGPIPE, SIG_IGN);

    WorkerOutcome outcome;
    WorkerState state;
    state.fd = fd;
    state.maxFrameBytes = maxFrameBytes;
    FrameDecoder decoder(maxFrameBytes);
    std::string payload;
    char buf[1 << 16];

    auto fail = [&](const std::string &why) -> WorkerOutcome & {
        outcome.ok = false;
        outcome.error = why;
        return outcome;
    };

    for (;;) {
        bool done = false;
        while (!done && decoder.next(payload)) {
            MessageParseResult parsed = parseMessage(payload);
            if (!parsed.ok) {
                fail(parsed.error);
                done = true;
                break;
            }
            const Message &msg = parsed.msg;
            std::string error;
            if (msg.type == "hello") {
                if (!handleHello(state, msg, &error)) {
                    fail(error);
                    done = true;
                }
            } else if (!state.configured) {
                fail("message before hello: " + msg.type);
                done = true;
            } else if (msg.type == "job") {
                state.cycleJobs.emplace_back(msg.index, msg.request);
            } else if (msg.type == "run") {
                if (!runCycle(state, msg.jobs, &error)) {
                    fail(error);
                    done = true;
                } else if (state.disconnected.load(
                               std::memory_order_relaxed)) {
                    outcome.ok = true; // injected disconnect
                    done = true;
                }
            } else if (msg.type == "drain") {
                Message bye;
                bye.type = "bye";
                sendMessage(state, bye);
                outcome.ok = true;
                outcome.drained = true;
                done = true;
            } else {
                fail("unexpected message from coordinator: " + msg.type);
                done = true;
            }
        }
        if (done)
            break;
        if (decoder.corrupt()) {
            fail("corrupt stream from coordinator: " +
                 decoder.corruptReason());
            break;
        }
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            // Peer is gone.  Clean only if nothing is half-finished.
            outcome.ok = state.cycleJobs.empty();
            if (!outcome.ok)
                outcome.error = "coordinator vanished mid-cycle";
            break;
        }
        decoder.feed(buf, static_cast<size_t>(n));
    }

    outcome.jobsRun = state.jobsRun;
    ::close(fd);
    return outcome;
}

} // namespace rasengan::cluster
