#include "cluster/placement.h"

namespace rasengan::cluster {

Placer::Placer(size_t workers)
    : alive_(workers, true), load_(workers, 0.0), aliveCount_(workers)
{
}

int
Placer::place(double costUnits)
{
    int best = -1;
    for (size_t w = 0; w < alive_.size(); ++w) {
        if (!alive_[w])
            continue;
        // Strict < keeps the tie on the lowest index.
        if (best < 0 || load_[w] < load_[static_cast<size_t>(best)])
            best = static_cast<int>(w);
    }
    if (best >= 0)
        load_[static_cast<size_t>(best)] += costUnits;
    return best;
}

void
Placer::markDead(int worker)
{
    if (worker < 0 || static_cast<size_t>(worker) >= alive_.size())
        return;
    if (alive_[static_cast<size_t>(worker)]) {
        alive_[static_cast<size_t>(worker)] = false;
        --aliveCount_;
    }
}

bool
Placer::alive(int worker) const
{
    return worker >= 0 && static_cast<size_t>(worker) < alive_.size() &&
           alive_[static_cast<size_t>(worker)];
}

double
Placer::loadOf(int worker) const
{
    if (worker < 0 || static_cast<size_t>(worker) >= load_.size())
        return 0.0;
    return load_[static_cast<size_t>(worker)];
}

} // namespace rasengan::cluster
