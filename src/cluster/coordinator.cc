#include "cluster/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/job.h"
#include "serve/jsonl.h"
#include "serve/scheduler.h"

namespace rasengan::cluster {

namespace {

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Worker schedulers run jobs concurrently, so the coordinator can
 *  never hand out process-wide knobs regardless of what the CLI set. */
tune::TunerOptions
coordinatorTune(tune::TunerOptions t)
{
    t.processKnobs = false;
    return t;
}

} // namespace

Coordinator::Coordinator(CoordinatorOptions options,
                         std::vector<int> workerFds)
    : options_(std::move(options)),
      // Prepare-only runner: budget 0 so the coordinator never caches
      // artifacts (jobs execute on workers, not here).
      runner_(serve::RunnerOptions{options_.batchSeed, ""},
              std::make_shared<serve::ArtifactCache>(0)),
      admission_(options_.limits),
      tuner_(coordinatorTune(options_.tune)), placer_(workerFds.size()),
      rng_(options_.batchSeed ^ 0xC0DA117Aull)
{
    tuner_.load();
    stats_.workers = workerFds.size();
    conns_.reserve(workerFds.size());
    for (int fd : workerFds) {
        setNonBlocking(fd);
        conns_.emplace_back(fd, options_.maxFrameBytes);
    }
}

Coordinator::~Coordinator()
{
    for (WorkerConn &conn : conns_) {
        if (conn.fd >= 0)
            ::close(conn.fd);
    }
}

size_t
Coordinator::submit(const serve::JobRequest &req)
{
    size_t slot = resultLines_.size();
    serve::ScreenedJob screened =
        serve::screenRequest(runner_, admission_, req);
    resultLines_.emplace_back();
    telemetryLines_.emplace_back();
    slotDone_.push_back(false);
    if (!screened.admitted) {
        // Identical bytes to the single-process rejection slot.
        finishSlot(slot, serve::writeResult(screened.rejection),
                   serve::writeTelemetry(screened.rejection));
        ++stats_.rejected;
        return slot;
    }
    ++remaining_;
    if (tuner_.mode() != tune::TuneMode::Off) {
        // Decide here, at the serial submission point, so the decision
        // sequence is a pure function of the request stream -- the hint
        // rides the forwarded request line (excluded from its canonical
        // hash, so child seeds and result bytes are unaffected).
        tune::TuneDecision d =
            tuner_.decide(tune::fingerprintForJob(screened.prepared));
        screened.prepared.req.tuneHint = tune::renderHint(d);
    }
    // Mint the job's trace id exactly as a single-process
    // BatchScheduler would (deterministic, unconditional), so telemetry
    // bytes match single-process runs and the worker's job span carries
    // the same id the coordinator hands to trace consumers.
    if (screened.prepared.req.traceHint.empty())
        screened.prepared.req.traceHint =
            serve::traceIdForJob(screened.prepared);
    AdmittedJob job;
    job.slot = slot;
    job.id = screened.prepared.req.id;
    job.line = serve::writeRequest(screened.prepared.req);
    job.costUnits = screened.costUnits;
    jobBySlot_[slot] = admitted_.size();
    admitted_.push_back(std::move(job));
    return slot;
}

void
Coordinator::finishSlot(uint64_t slot, std::string resultLine,
                        std::string telemetryLine)
{
    if (slotDone_[slot])
        return;
    resultLines_[slot] = std::move(resultLine);
    telemetryLines_[slot] = std::move(telemetryLine);
    slotDone_[slot] = true;
}

void
Coordinator::queueFrame(int w, const Message &msg)
{
    WorkerConn &conn = conns_[static_cast<size_t>(w)];
    if (!conn.alive)
        return;
    conn.outBuf += frame(encodeMessage(msg));
}

bool
Coordinator::flushWorker(int w)
{
    WorkerConn &conn = conns_[static_cast<size_t>(w)];
    if (!conn.alive)
        return false;
    while (conn.outPos < conn.outBuf.size()) {
        ssize_t n = ::write(conn.fd, conn.outBuf.data() + conn.outPos,
                            conn.outBuf.size() - conn.outPos);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // socket full; poll for POLLOUT
            workerDied(w, "write failed");
            return false;
        }
        conn.outPos += static_cast<size_t>(n);
    }
    if (conn.outPos == conn.outBuf.size()) {
        conn.outBuf.clear();
        conn.outPos = 0;
    }
    return true;
}

void
Coordinator::readWorker(int w)
{
    WorkerConn &conn = conns_[static_cast<size_t>(w)];
    if (!conn.alive)
        return;
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(conn.fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            workerDied(w, "read failed");
            return;
        }
        if (n == 0) {
            // EOF: clean only when the worker owes us nothing.
            if (!conn.outstanding.empty() || !conn.byeSeen) {
                workerDied(w, "connection closed");
            } else {
                conn.alive = false;
                ::close(conn.fd);
                conn.fd = -1;
            }
            return;
        }
        conn.decoder.feed(buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof buf)
            break; // drained the socket for now
    }
    std::string payload;
    while (conn.alive && conn.decoder.next(payload)) {
        MessageParseResult parsed = parseMessage(payload);
        if (!parsed.ok) {
            workerDied(w, "bad frame: " + parsed.error);
            return;
        }
        handleFrame(w, parsed.msg);
    }
    if (conn.alive && conn.decoder.corrupt())
        workerDied(w, "corrupt stream: " + conn.decoder.corruptReason());
}

void
Coordinator::handleFrame(int w, const Message &msg)
{
    WorkerConn &conn = conns_[static_cast<size_t>(w)];
    if (msg.type == "hello_ack") {
        if (msg.version != kProtocolVersion) {
            workerDied(w, "protocol version mismatch");
            return;
        }
        // Clock alignment: assume the ack's network delay is symmetric,
        // so the worker stamped `now` at the midpoint of our
        // send->receive window.  offset = coordinator time at midpoint
        // minus the worker's clock; shipped span timestamps add it.
        obs::TimeNanos recv = obs::nowNanos();
        int64_t midpoint = static_cast<int64_t>(conn.helloSent) +
                           (static_cast<int64_t>(recv) -
                            static_cast<int64_t>(conn.helloSent)) /
                               2;
        conn.clockOffsetNanos =
            midpoint - static_cast<int64_t>(msg.now);
        return;
    }
    if (msg.type == "result") {
        conn.outstanding.erase(msg.index);
        if (msg.index < slotDone_.size() && !slotDone_[msg.index]) {
            finishSlot(msg.index, msg.result, msg.telemetry);
            --remaining_;
        }
        return;
    }
    if (msg.type == "batch_done") {
        conn.lastDone = msg;
        conn.haveDone = true;
        if (!msg.spans.empty()) {
            std::vector<obs::FlatEvent> shipped =
                obs::decodeSpanEvents(msg.spans);
            conn.spans.insert(conn.spans.end(),
                              std::make_move_iterator(shipped.begin()),
                              std::make_move_iterator(shipped.end()));
        }
        conn.spansDropped += msg.spansDropped;
        if (!msg.tuneRecords.empty())
            tuner_.absorbLines(msg.tuneRecords);
        if (options_.importMetrics && !msg.metrics.empty()) {
            std::string text = msg.metrics;
            while (!text.empty() &&
                   (text.back() == '\n' || text.back() == ' '))
                text.pop_back();
            serve::JsonParseResult parsed = serve::parseFlatJson(text);
            if (parsed.ok) {
                std::map<std::string, double> values;
                for (const auto &[key, value] : parsed.object) {
                    if (value.kind == serve::JsonValue::Kind::Number)
                        values[key] = value.num;
                }
                obs::Registry::global().importFlat(
                    values, options_.metricsPrefix,
                    {{"worker", std::to_string(w)}},
                    "Imported cluster worker metric");
            }
        }
        return;
    }
    if (msg.type == "bye") {
        conn.byeSeen = true;
        return;
    }
    workerDied(w, "unexpected message from worker: " + msg.type);
}

void
Coordinator::synthesizeFailure(size_t jobIndex, const std::string &why)
{
    AdmittedJob &job = admitted_[jobIndex];
    if (slotDone_[job.slot])
        return;
    serve::JobResult result;
    result.id = job.id;
    result.accepted = true;
    result.costUnits = job.costUnits;
    result.ok = false;
    result.error = why;
    finishSlot(job.slot, serve::writeResult(result),
               serve::writeTelemetry(result));
    --remaining_;
    ++stats_.jobsSynthesized;
}

void
Coordinator::placeJobs(const std::vector<size_t> &jobIndices)
{
    std::map<int, uint64_t> cycleCounts;
    for (size_t jobIndex : jobIndices) {
        AdmittedJob &job = admitted_[jobIndex];
        if (slotDone_[job.slot])
            continue;
        int w = placer_.place(job.costUnits);
        if (w < 0) {
            synthesizeFailure(jobIndex, "no surviving cluster worker");
            continue;
        }
        ++job.attempts;
        Message m;
        m.type = "job";
        m.index = job.slot;
        m.request = job.line;
        queueFrame(w, m);
        conns_[static_cast<size_t>(w)].outstanding.insert(job.slot);
        ++cycleCounts[w];
    }
    for (const auto &[w, jobs] : cycleCounts) {
        Message run;
        run.type = "run";
        run.jobs = jobs;
        queueFrame(w, run);
    }
}

void
Coordinator::workerDied(int w, const std::string &why)
{
    WorkerConn &conn = conns_[static_cast<size_t>(w)];
    if (!conn.alive)
        return;
    conn.alive = false;
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    placer_.markDead(w);
    ++stats_.workersDead;
    obs::instantEvent("cluster", "worker-dead",
                      "worker " + std::to_string(w) + ": " + why);

    // Orphaned jobs: re-place onto survivors, attempt-capped.
    std::vector<size_t> replace;
    int maxAttempts = 0;
    for (uint64_t slot : conn.outstanding) {
        if (slotDone_[slot])
            continue;
        size_t jobIndex = jobBySlot_[slot];
        AdmittedJob &job = admitted_[jobIndex];
        if (job.attempts >= options_.retry.maxAttempts) {
            synthesizeFailure(jobIndex,
                              "cluster worker died; placement attempts "
                              "exhausted (" +
                                  std::to_string(job.attempts) + ")");
            continue;
        }
        maxAttempts = std::max(maxAttempts, job.attempts);
        replace.push_back(jobIndex);
    }
    conn.outstanding.clear();
    if (replace.empty())
        return;
    if (placer_.aliveCount() == 0) {
        for (size_t jobIndex : replace)
            synthesizeFailure(jobIndex, "no surviving cluster worker");
        return;
    }

    // Exec-style backoff before flooding the survivors: each orphan is
    // on (re)attempt maxAttempts, so sleep that retry's delay once.
    double delay = options_.retry.delaySeconds(maxAttempts, rng_);
    if (delay > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    }
    stats_.jobsReplaced += replace.size();
    obs::instantEvent("cluster", "jobs-replaced",
                      std::to_string(replace.size()) +
                          " jobs re-placed after worker " +
                          std::to_string(w) + " died");
    placeJobs(replace);
}

bool
Coordinator::runAll(std::string *error)
{
    if (ran_) {
        if (error)
            *error = "runAll called twice";
        return false;
    }
    ran_ = true;
    if (conns_.empty()) {
        if (error)
            *error = "no workers";
        return false;
    }
    // A worker death mid-write must surface as EPIPE, not a signal.
    std::signal(SIGPIPE, SIG_IGN);
    // Detail must not mention the worker count: the merged span-tree
    // signature is compared byte-for-byte across cluster shapes.
    obs::Span span("cluster", "coordinator-batch",
                   "jobs=" + std::to_string(admitted_.size()));
    const bool tracing = obs::tracingEnabled();

    // Configure every worker, then shard the batch.
    for (size_t w = 0; w < conns_.size(); ++w) {
        Message hello;
        hello.type = "hello";
        hello.version = kProtocolVersion;
        hello.worker = static_cast<int>(w);
        hello.batchSeed = options_.batchSeed;
        hello.threads = options_.threads;
        hello.cacheBudgetBytes = options_.cacheBudgetBytes;
        if (static_cast<int>(w) == options_.faultWorker)
            hello.fault = options_.faultSpec;
        if (tracing) {
            hello.traceSpans = true;
            hello.traceParent = span.id();
        }
        conns_[w].helloSent = obs::nowNanos();
        queueFrame(static_cast<int>(w), hello);
    }
    std::vector<size_t> initial(admitted_.size());
    for (size_t i = 0; i < initial.size(); ++i)
        initial[i] = i;
    placeJobs(initial);

    // Single-threaded poll loop until every admitted slot is filled.
    std::vector<pollfd> fds;
    std::vector<int> fdWorker;
    while (remaining_ > 0) {
        fds.clear();
        fdWorker.clear();
        for (size_t w = 0; w < conns_.size(); ++w) {
            WorkerConn &conn = conns_[w];
            if (!conn.alive)
                continue;
            pollfd p{};
            p.fd = conn.fd;
            p.events = POLLIN;
            if (conn.outPos < conn.outBuf.size())
                p.events |= POLLOUT;
            fds.push_back(p);
            fdWorker.push_back(static_cast<int>(w));
        }
        if (fds.empty()) {
            // Every worker died; workerDied() already synthesized what
            // it could, but jobs never placed can still linger.
            for (size_t i = 0; i < admitted_.size(); ++i)
                synthesizeFailure(i, "no surviving cluster worker");
            if (error)
                *error = "all workers died";
            return false;
        }
        int ready = ::poll(fds.data(), fds.size(), 1000);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = "poll failed";
            return false;
        }
        for (size_t i = 0; i < fds.size(); ++i) {
            int w = fdWorker[i];
            if (!conns_[static_cast<size_t>(w)].alive)
                continue; // an earlier death this round closed it
            if (fds[i].revents & POLLOUT)
                if (!flushWorker(w))
                    continue;
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                readWorker(w);
        }
    }

    if (placer_.aliveCount() == 0) {
        // Every slot is filled (synthesized failures included), but the
        // batch did not complete normally: no worker survived it.
        if (error)
            *error = "all workers died";
        return false;
    }

    drainWorkers();

    // Merged cache stats from the latest batch_done snapshots.
    for (const WorkerConn &conn : conns_) {
        if (!conn.haveDone)
            continue;
        stats_.cacheHits += conn.lastDone.cacheHits;
        stats_.cacheMisses += conn.lastDone.cacheMisses;
        stats_.cacheEvictions += conn.lastDone.cacheEvictions;
    }
    return true;
}

void
Coordinator::drainWorkers()
{
    Message drain;
    drain.type = "drain";
    for (size_t w = 0; w < conns_.size(); ++w) {
        if (conns_[w].alive)
            queueFrame(static_cast<int>(w), drain);
    }
    // Bounded farewell: flush the drains and wait briefly for byes; a
    // worker that ignores the drain is simply closed.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::vector<pollfd> fds;
    std::vector<int> fdWorker;
    for (;;) {
        fds.clear();
        fdWorker.clear();
        for (size_t w = 0; w < conns_.size(); ++w) {
            WorkerConn &conn = conns_[w];
            if (!conn.alive || conn.byeSeen)
                continue;
            pollfd p{};
            p.fd = conn.fd;
            p.events = POLLIN;
            if (conn.outPos < conn.outBuf.size())
                p.events |= POLLOUT;
            fds.push_back(p);
            fdWorker.push_back(static_cast<int>(w));
        }
        if (fds.empty())
            break;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0)
            break;
        int ready = ::poll(fds.data(), fds.size(),
                           static_cast<int>(left.count()));
        if (ready < 0 && errno == EINTR)
            continue;
        if (ready <= 0)
            break;
        for (size_t i = 0; i < fds.size(); ++i) {
            int w = fdWorker[i];
            if (!conns_[static_cast<size_t>(w)].alive)
                continue;
            if (fds[i].revents & POLLOUT)
                if (!flushWorker(w))
                    continue;
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                readWorker(w);
        }
    }
    for (WorkerConn &conn : conns_) {
        if (conn.fd >= 0) {
            ::close(conn.fd);
            conn.fd = -1;
        }
        conn.alive = false;
    }
}

std::vector<obs::ForeignSpans>
Coordinator::foreignSpans() const
{
    std::vector<obs::ForeignSpans> out;
    for (size_t w = 0; w < conns_.size(); ++w) {
        const WorkerConn &conn = conns_[w];
        if (conn.spans.empty())
            continue;
        obs::ForeignSpans f;
        f.process = "worker " + std::to_string(w);
        f.clockOffsetNanos = conn.clockOffsetNanos;
        f.events = conn.spans;
        out.push_back(std::move(f));
    }
    return out;
}

bool
Coordinator::writeMergedTrace(const std::string &path,
                              std::string *error) const
{
    if (!obs::writeMergedChromeTrace(path, obs::snapshotTraceEvents(),
                                     foreignSpans())) {
        if (error)
            *error = "cannot write merged trace to " + path;
        return false;
    }
    return true;
}

std::string
Coordinator::mergedSignature() const
{
    return obs::mergedSpanTreeSignature(obs::snapshotTraceEvents(),
                                        foreignSpans());
}

uint64_t
Coordinator::shippedSpansDropped() const
{
    uint64_t total = 0;
    for (const WorkerConn &conn : conns_)
        total += conn.spansDropped;
    return total;
}

} // namespace rasengan::cluster
