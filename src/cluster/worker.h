/**
 * @file
 * Cluster worker: one process (or loopback thread) that runs a shard of
 * a batch on its own serve::BatchScheduler and streams results back.
 *
 * The worker is configured entirely over the wire (the hello message
 * carries seed, threads, cache budget, and an optional fault-injection
 * spec), then serves any number of job.../run cycles until the
 * coordinator drains it.  Per cycle it builds a fresh BatchScheduler
 * over ONE long-lived ArtifactCache, so artifacts warm across
 * re-placement cycles exactly as they would across batches in the
 * daemon.
 *
 * Determinism: the scheduler runs with AdmissionLimits::unlimited() --
 * the coordinator already screened every request against the real
 * limits, and screening twice would double-count the batch budget.
 * Result frames carry the exact writeResult()/writeTelemetry() bytes;
 * the child seed is re-derived from content + batch seed, so a job
 * produces the same result bytes on any worker.
 *
 * Fault injection (tests and the CI smoke job): the hello-forwarded
 * exec::ProcessFaultPlan counts completed jobs; on the Nth completion
 * the worker either SIGKILLs itself (fork mode) or silently closes its
 * socket (loopback mode), before sending that result.  Either way the
 * coordinator observes a dead worker with results missing.
 */

#ifndef RASENGAN_CLUSTER_WORKER_H
#define RASENGAN_CLUSTER_WORKER_H

#include <cstddef>
#include <string>

#include "cluster/protocol.h"

namespace rasengan::cluster {

struct WorkerOutcome
{
    bool ok = false;
    std::string error; ///< protocol violation / stream failure when !ok
    size_t jobsRun = 0;
    bool drained = false; ///< clean coordinator-initiated shutdown
};

/**
 * Run the worker loop over the connected stream @p fd (a socketpair end
 * in fork/loopback mode, a TCP connection in remote mode).  Blocks
 * until drain, peer disconnect, or a protocol error; always closes
 * @p fd before returning.
 */
WorkerOutcome runWorker(int fd, size_t maxFrameBytes = maxFrameBytesFromEnv());

} // namespace rasengan::cluster

#endif // RASENGAN_CLUSTER_WORKER_H
