#include "cluster/protocol.h"

#include <cstdlib>

#include "serve/jsonl.h"

namespace rasengan::cluster {

std::string
frame(const std::string &payload)
{
    std::string out = std::to_string(payload.size());
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

void
FrameDecoder::poison(const std::string &why)
{
    corrupt_ = true;
    corruptReason_ = why;
    buffer_.clear();
    buffer_.shrink_to_fit();
    start_ = 0;
}

void
FrameDecoder::feed(const char *data, size_t n)
{
    if (corrupt_)
        return;
    // The header is tiny, so the only way the buffer can grow past the
    // cap is a payload a sane header promised; still, bound the header
    // scan so a peer streaming digits forever cannot balloon memory.
    buffer_.append(data, n);
}

bool
FrameDecoder::next(std::string &payload)
{
    if (corrupt_)
        return false;

    // Compact the consumed prefix once it dominates the buffer.
    if (start_ > 4096 && start_ > buffer_.size() / 2) {
        buffer_.erase(0, start_);
        start_ = 0;
    }

    // Parse the length header.
    size_t pos = start_;
    uint64_t length = 0;
    size_t digits = 0;
    while (pos < buffer_.size()) {
        char c = buffer_[pos];
        if (c == '\n')
            break;
        if (c < '0' || c > '9') {
            poison("non-digit in frame length header");
            return false;
        }
        length = length * 10 + static_cast<uint64_t>(c - '0');
        if (++digits > 10 || length > maxFrameBytes_) {
            poison("frame length " + std::to_string(length) +
                   " exceeds the cap " + std::to_string(maxFrameBytes_));
            return false;
        }
        ++pos;
    }
    if (pos >= buffer_.size()) {
        if (digits > 10) {
            poison("unterminated frame length header");
            return false;
        }
        return false; // header incomplete; need more bytes
    }
    if (digits == 0) {
        poison("empty frame length header");
        return false;
    }
    ++pos; // consume the header newline

    // Payload + its trailing newline.
    if (buffer_.size() - pos < length + 1)
        return false; // need more bytes
    if (buffer_[pos + length] != '\n') {
        poison("frame payload not terminated by newline");
        return false;
    }
    payload.assign(buffer_, pos, length);
    start_ = pos + length + 1;
    ++framesDecoded_;
    return true;
}

namespace {

MessageParseResult
fail(const std::string &why)
{
    MessageParseResult r;
    r.error = why;
    return r;
}

const serve::JsonValue *
field(const serve::JsonObject &obj, const char *key)
{
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

bool
strField(const serve::JsonObject &obj, const char *key, std::string *out)
{
    const serve::JsonValue *v = field(obj, key);
    if (v == nullptr || v->kind != serve::JsonValue::Kind::String)
        return false;
    *out = v->str;
    return true;
}

bool
u64Field(const serve::JsonObject &obj, const char *key, uint64_t *out)
{
    const serve::JsonValue *v = field(obj, key);
    if (v == nullptr || v->kind != serve::JsonValue::Kind::Number ||
        v->num < 0)
        return false;
    *out = static_cast<uint64_t>(v->num);
    return true;
}

bool
boolField(const serve::JsonObject &obj, const char *key, bool *out)
{
    const serve::JsonValue *v = field(obj, key);
    if (v == nullptr || v->kind != serve::JsonValue::Kind::Bool)
        return false;
    *out = v->flag;
    return true;
}

bool
intField(const serve::JsonObject &obj, const char *key, int *out)
{
    const serve::JsonValue *v = field(obj, key);
    if (v == nullptr || v->kind != serve::JsonValue::Kind::Number)
        return false;
    *out = static_cast<int>(v->num);
    return true;
}

// Seeds are full 64-bit values; JSON numbers are doubles (exact only to
// 2^53), so they cross the wire as decimal strings.
bool
u64StrField(const serve::JsonObject &obj, const char *key, uint64_t *out)
{
    std::string text;
    if (!strField(obj, key, &text) || text.empty())
        return false;
    uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

} // namespace

std::string
encodeMessage(const Message &msg)
{
    serve::JsonWriter w;
    w.field("type", msg.type);
    if (msg.type == "hello") {
        w.field("version", msg.version);
        w.field("worker", msg.worker);
        w.field("batch_seed", std::to_string(msg.batchSeed));
        w.field("threads", msg.threads);
        w.field("cache_bytes", msg.cacheBudgetBytes);
        if (!msg.fault.empty())
            w.field("fault", msg.fault);
        if (msg.traceSpans) {
            w.boolean("trace", true);
            w.field("trace_parent", std::to_string(msg.traceParent));
        }
    } else if (msg.type == "hello_ack") {
        w.field("version", msg.version);
        w.field("worker", msg.worker);
        w.field("now", std::to_string(msg.now));
    } else if (msg.type == "job") {
        w.field("index", msg.index);
        w.field("request", msg.request);
    } else if (msg.type == "run") {
        w.field("jobs", msg.jobs);
    } else if (msg.type == "result") {
        w.field("index", msg.index);
        w.field("result", msg.result);
        w.field("telemetry", msg.telemetry);
    } else if (msg.type == "batch_done") {
        w.field("jobs", msg.jobs);
        w.field("cache_hits", msg.cacheHits);
        w.field("cache_misses", msg.cacheMisses);
        w.field("cache_evictions", msg.cacheEvictions);
        w.field("cache_bytes_in_use", msg.cacheBytesInUse);
        if (!msg.metrics.empty())
            w.field("metrics", msg.metrics);
        if (!msg.tuneRecords.empty())
            w.field("tune_records", msg.tuneRecords);
        if (!msg.spans.empty())
            w.field("spans", msg.spans);
        if (msg.spansDropped != 0)
            w.field("spans_dropped", msg.spansDropped);
    }
    // "drain" and "bye" carry only the type.
    return w.str();
}

MessageParseResult
parseMessage(const std::string &payload)
{
    serve::JsonParseResult parsed = serve::parseFlatJson(payload);
    if (!parsed.ok)
        return fail("frame payload: " + parsed.error);
    const serve::JsonObject &obj = parsed.object;

    MessageParseResult out;
    Message &msg = out.msg;
    if (!strField(obj, "type", &msg.type))
        return fail("frame payload has no type");

    if (msg.type == "hello") {
        if (!intField(obj, "version", &msg.version) ||
            !intField(obj, "worker", &msg.worker) ||
            !u64StrField(obj, "batch_seed", &msg.batchSeed) ||
            !intField(obj, "threads", &msg.threads) ||
            !u64Field(obj, "cache_bytes", &msg.cacheBudgetBytes))
            return fail("hello is missing a required field");
        strField(obj, "fault", &msg.fault); // optional
        if (boolField(obj, "trace", &msg.traceSpans) && msg.traceSpans) {
            if (!u64StrField(obj, "trace_parent", &msg.traceParent))
                return fail("hello trace is missing trace_parent");
        }
    } else if (msg.type == "hello_ack") {
        if (!intField(obj, "version", &msg.version) ||
            !intField(obj, "worker", &msg.worker) ||
            !u64StrField(obj, "now", &msg.now))
            return fail("hello_ack is missing a required field");
    } else if (msg.type == "job") {
        if (!u64Field(obj, "index", &msg.index) ||
            !strField(obj, "request", &msg.request))
            return fail("job is missing a required field");
    } else if (msg.type == "run") {
        if (!u64Field(obj, "jobs", &msg.jobs))
            return fail("run is missing the job count");
    } else if (msg.type == "result") {
        if (!u64Field(obj, "index", &msg.index) ||
            !strField(obj, "result", &msg.result) ||
            !strField(obj, "telemetry", &msg.telemetry))
            return fail("result is missing a required field");
    } else if (msg.type == "batch_done") {
        if (!u64Field(obj, "jobs", &msg.jobs))
            return fail("batch_done is missing the job count");
        u64Field(obj, "cache_hits", &msg.cacheHits);
        u64Field(obj, "cache_misses", &msg.cacheMisses);
        u64Field(obj, "cache_evictions", &msg.cacheEvictions);
        u64Field(obj, "cache_bytes_in_use", &msg.cacheBytesInUse);
        strField(obj, "metrics", &msg.metrics);
        strField(obj, "tune_records", &msg.tuneRecords);
        strField(obj, "spans", &msg.spans);
        u64Field(obj, "spans_dropped", &msg.spansDropped);
    } else if (msg.type == "drain" || msg.type == "bye") {
        // type-only messages
    } else {
        return fail("unknown message type \"" + msg.type + "\"");
    }
    out.ok = true;
    return out;
}

size_t
maxFrameBytesFromEnv()
{
    const char *env = std::getenv("RASENGAN_CLUSTER_MAX_FRAME");
    if (env == nullptr || *env == '\0')
        return kDefaultMaxFrameBytes;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v < 4096)
        return kDefaultMaxFrameBytes;
    return static_cast<size_t>(v);
}

} // namespace rasengan::cluster
