/**
 * @file
 * Quantum circuit container with builder methods and depth/size metrics.
 */

#ifndef RASENGAN_CIRCUIT_CIRCUIT_H
#define RASENGAN_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace rasengan::circuit {

class Circuit
{
  public:
    /**
     * @param num_qubits total wires, including any ancillas
     */
    explicit Circuit(int num_qubits = 0);

    int numQubits() const { return numQubits_; }

    /**
     * Grow the register to at least @p n qubits (used by transpilation
     * passes that allocate ancillas).
     */
    void ensureQubits(int n);

    const std::vector<Gate> &gates() const { return gates_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /// @name Builder methods
    /// @{
    void x(int q);
    void h(int q);
    void rx(int q, double theta);
    void ry(int q, double theta);
    void rz(int q, double theta);
    void p(int q, double theta);
    void cx(int control, int target);
    void cp(int control, int target, double theta);
    void swap(int a, int b);
    void mcx(const std::vector<int> &controls, int target);
    void mcp(const std::vector<int> &controls, int target, double theta);
    void barrier();
    /** Mid-circuit Z-basis measurement of @p q (stochastic collapse). */
    void measure(int q);
    /** Active reset of @p q to |0> (measure, flip if 1). */
    void reset(int q);
    /** Append an arbitrary gate record (validated). */
    void append(Gate g);
    /** Append every gate of @p other (qubit counts are merged). */
    void append(const Circuit &other);
    /// @}

    /// @name Metrics
    /// @{
    /** Standard circuit depth: longest chain of dependent gates. */
    int depth() const;
    /** Depth counting only multi-qubit gates (barriers ignored). */
    int twoQubitDepth() const;
    /** Number of CX gates (other gates not counted). */
    int countCx() const;
    /** Number of gates of @p kind. */
    int countKind(GateKind kind) const;
    /** Total non-barrier gates. */
    int countOps() const;
    /// @}

    /** OpenQASM 2.0-style textual dump (MCX/MCP printed as comments). */
    std::string toQasm() const;

    /**
     * Content hash of the circuit: qubit count plus every gate record
     * (kind, controls, targets, exact parameter bits), FNV-1a folded.
     * Two circuits with identical gate streams hash equal; used by the
     * serve layer to content-address transpiled-circuit caches.
     */
    uint64_t fingerprint() const;

  private:
    void checkQubit(int q) const;
    void checkGate(const Gate &g) const;

    int numQubits_;
    std::vector<Gate> gates_;
};

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_CIRCUIT_H
