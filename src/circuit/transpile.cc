#include "circuit/transpile.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "obs/prof.h"

namespace rasengan::circuit {

namespace {

constexpr double kPi = std::numbers::pi;

/** CP via {P, CX}: cp(c,t,th) = p(c,th/2) cx p(t,-th/2) cx p(t,th/2). */
void
appendCpAsCx(Circuit &out, int control, int target, double theta)
{
    out.p(control, theta / 2.0);
    out.cx(control, target);
    out.p(target, -theta / 2.0);
    out.cx(control, target);
    out.p(target, theta / 2.0);
}

void
appendSwapAsCx(Circuit &out, int a, int b)
{
    out.cx(a, b);
    out.cx(b, a);
    out.cx(a, b);
}

/** Doubly-controlled phase via 3 CP + 2 CX (no ancilla). */
void
appendCcp(Circuit &out, int c1, int c2, int target, double theta)
{
    out.cp(c2, target, theta / 2.0);
    out.cx(c1, c2);
    out.cp(c2, target, -theta / 2.0);
    out.cx(c1, c2);
    out.cp(c1, target, theta / 2.0);
}

/**
 * Gray-code synthesis of the diagonal phase e^{i theta} on the all-ones
 * state of @p qs: for every nonempty subset S of qs, a Z_S rotation with
 * angle sign (-1)^{|S|} theta / 2^{m-1} (RZ convention), realized by a CX
 * parity chain onto the last element of S.
 */
void
appendAllOnesPhase(Circuit &out, const std::vector<int> &qs, double theta)
{
    int m = static_cast<int>(qs.size());
    panic_if(m < 1 || m > 20, "all-ones phase on {} qubits", m);
    double base = theta / std::ldexp(1.0, m - 1); // theta / 2^{m-1}
    for (uint32_t code = 1; code < (1u << m); ++code) {
        uint32_t subset = code ^ (code >> 1); // gray code enumeration
        int popcount = __builtin_popcount(subset);
        // RZ angle: -2 * alpha_S with alpha_S = theta (-1)^{|S|} / 2^m,
        // i.e. +base for odd |S| and -base for even |S|.
        double angle = (popcount % 2 == 1) ? base : -base;

        std::vector<int> members;
        for (int i = 0; i < m; ++i)
            if (subset & (1u << i))
                members.push_back(qs[i]);
        int last = members.back();
        for (size_t i = 0; i + 1 < members.size(); ++i)
            out.cx(members[i], last);
        out.rz(last, angle);
        for (size_t i = members.size() - 1; i-- > 0;)
            out.cx(members[i], last);
    }
}

/**
 * Compute the AND of @p controls into ancillas via a Toffoli ladder.
 * Returns the ancilla wire holding the full conjunction.  @p emit_forward
 * false replays the ladder in reverse (uncompute).
 */
int
appendLadder(Circuit &out, const std::vector<int> &controls, int anc_base,
             bool forward)
{
    int n = static_cast<int>(controls.size());
    panic_if(n < 2, "ladder needs at least 2 controls");
    int stages = n - 1;
    if (forward) {
        appendToffoli(out, controls[0], controls[1], anc_base);
        for (int i = 2; i < n; ++i)
            appendToffoli(out, controls[i], anc_base + i - 2,
                          anc_base + i - 1);
    } else {
        for (int i = n - 1; i >= 2; --i)
            appendToffoli(out, controls[i], anc_base + i - 2,
                          anc_base + i - 1);
        appendToffoli(out, controls[0], controls[1], anc_base);
    }
    return anc_base + stages - 1;
}

void
lowerMcp(Circuit &out, const Gate &g, const TranspileOptions &opts,
         int anc_base, bool lower_cp)
{
    const auto &cs = g.controls;
    int t = g.targets[0];
    double theta = g.param;

    if (cs.size() == 2 && opts.mode == TranspileMode::GrayCode) {
        // Small-case shortcut cheaper than the subset expansion.
        appendCcp(out, cs[0], cs[1], t, theta);
        return;
    }
    if (opts.mode == TranspileMode::AncillaLadder) {
        if (cs.size() == 2) {
            appendCcp(out, cs[0], cs[1], t, theta);
            return;
        }
        int top = appendLadder(out, cs, anc_base, true);
        if (lower_cp)
            appendCpAsCx(out, top, t, theta);
        else
            out.cp(top, t, theta);
        appendLadder(out, cs, anc_base, false);
        return;
    }
    std::vector<int> qs = cs;
    qs.push_back(t);
    appendAllOnesPhase(out, qs, theta);
}

void
lowerMcx(Circuit &out, const Gate &g, const TranspileOptions &opts,
         int anc_base, bool lower_cp)
{
    // MCX = H(t) . MCP(pi) . H(t).
    int t = g.targets[0];
    if (opts.mode == TranspileMode::AncillaLadder && g.controls.size() == 2) {
        appendToffoli(out, g.controls[0], g.controls[1], t);
        return;
    }
    out.h(t);
    Gate phase{GateKind::MCP, g.controls, {t}, kPi};
    lowerMcp(out, phase, opts, anc_base, lower_cp);
    out.h(t);
}

} // namespace

void
appendToffoli(Circuit &c, int a, int b, int target)
{
    const double t = kPi / 4.0;
    c.h(target);
    c.cx(b, target);
    c.p(target, -t);
    c.cx(a, target);
    c.p(target, t);
    c.cx(b, target);
    c.p(target, -t);
    c.cx(a, target);
    c.p(target, t);
    c.p(b, t);
    c.h(target);
    c.cx(a, b);
    c.p(a, t);
    c.p(b, -t);
    c.cx(a, b);
}

int
paperTransitionCxCost(int k)
{
    fatal_if(k < 1, "transition with empty support");
    return 34 * k;
}

Circuit
transpile(const Circuit &input, const TranspileOptions &opts)
{
    RASENGAN_PROF("transpile", "transpile");
    // Size the ancilla pool for the widest multi-controlled gate.
    int max_anc = 0;
    if (opts.mode == TranspileMode::AncillaLadder) {
        for (const Gate &g : input.gates()) {
            if ((g.kind == GateKind::MCP || g.kind == GateKind::MCX) &&
                g.controls.size() >= 3) {
                max_anc = std::max(
                    max_anc, static_cast<int>(g.controls.size()) - 1);
            }
        }
    }
    int anc_base = input.numQubits();
    Circuit out(input.numQubits() + max_anc);

    for (const Gate &g : input.gates()) {
        switch (g.kind) {
          case GateKind::MCP:
            lowerMcp(out, g, opts, anc_base, opts.lowerToCx);
            break;
          case GateKind::MCX:
            lowerMcx(out, g, opts, anc_base, opts.lowerToCx);
            break;
          case GateKind::CP:
            if (opts.lowerToCx)
                appendCpAsCx(out, g.controls[0], g.targets[0], g.param);
            else
                out.append(g);
            break;
          case GateKind::Swap:
            if (opts.lowerToCx)
                appendSwapAsCx(out, g.targets[0], g.targets[1]);
            else
                out.append(g);
            break;
          default:
            out.append(g);
            break;
        }
    }
    return out;
}

} // namespace rasengan::circuit
