/**
 * @file
 * Transpilation: lowering MCX/MCP/Swap/CP to the {1q, CX} basis.
 *
 * Two lowering strategies for the multi-controlled primitives:
 *
 *  - AncillaLadder: a compute/uncompute Toffoli ladder ANDs the controls
 *    into ancilla qubits, then a single CP fires on the target.  CX cost is
 *    linear in the number of controls (the strategy behind the paper's
 *    "34k CX per transition operator" cost model [20]), at the price of
 *    k-1 ancilla wires.
 *
 *  - GrayCode: exact diagonal-phase synthesis over the k+1 involved qubits
 *    with no ancillas; CX cost grows as O(k * 2^k), acceptable for the
 *    small supports (k <= ~6) that remain after Hamiltonian simplification.
 *
 * Both strategies are validated against the native MCP/MCX matrices in the
 * test suite (equality up to global phase).
 */

#ifndef RASENGAN_CIRCUIT_TRANSPILE_H
#define RASENGAN_CIRCUIT_TRANSPILE_H

#include "circuit/circuit.h"

namespace rasengan::circuit {

enum class TranspileMode {
    AncillaLadder, ///< linear CX count, allocates ancillas
    GrayCode,      ///< no ancillas, exponential CX count in control count
};

struct TranspileOptions
{
    TranspileMode mode = TranspileMode::AncillaLadder;
    /** Also lower CP and Swap to {1q, CX}. */
    bool lowerToCx = true;
};

/**
 * Lower every MCX/MCP (and optionally CP/Swap) gate of @p input.
 * AncillaLadder mode appends ancilla wires after the original register;
 * ancillas start in |0> and are returned to |0>.
 */
Circuit transpile(const Circuit &input, const TranspileOptions &opts = {});

/**
 * The paper's linear cost model: CX gates needed for one transition
 * operator whose homogeneous basis vector has @p k nonzero entries,
 * including routing overhead on a heavy-hex device (Section 3.2).
 */
int paperTransitionCxCost(int k);

/** Append a standard 6-CX Toffoli (CCX) on (@p a, @p b) -> @p target. */
void appendToffoli(Circuit &c, int a, int b, int target);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_TRANSPILE_H
