/**
 * @file
 * OpenQASM 2.0 (subset) parser, the inverse of Circuit::toQasm().
 *
 * Supported statements: the OPENQASM/include headers, a single
 * `qreg q[N];` declaration, the gates this IR emits (x, h, rx, ry, rz, p,
 * cx, cp, swap), `barrier q;`, and the annotated `// mcp(...)` /
 * `// mcx(...)` pseudo-op comments toQasm() writes for multi-controlled
 * gates -- so dump/parse is a lossless round trip.  Useful for storing
 * compiled segments and for interoperability tests.
 */

#ifndef RASENGAN_CIRCUIT_QASM_H
#define RASENGAN_CIRCUIT_QASM_H

#include <optional>
#include <string>

#include "circuit/circuit.h"

namespace rasengan::circuit {

struct QasmParseResult
{
    std::optional<Circuit> circuit; ///< set on success
    std::string error;              ///< human-readable message on failure
    int errorLine = 0;              ///< 1-based line of the failure
};

/** Parse QASM text produced by Circuit::toQasm() (or compatible). */
QasmParseResult parseQasm(const std::string &text);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_QASM_H
