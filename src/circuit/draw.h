/**
 * @file
 * ASCII circuit rendering for debugging and examples.
 *
 * Gates are placed into columns by the same level scheduling the depth
 * metric uses; controls render as '*', X-targets as 'X', other targets by
 * their mnemonic, and multi-qubit gates draw '|' connectors through the
 * wires they span.
 */

#ifndef RASENGAN_CIRCUIT_DRAW_H
#define RASENGAN_CIRCUIT_DRAW_H

#include <string>

#include "circuit/circuit.h"

namespace rasengan::circuit {

/**
 * Render @p circ as ASCII art, one row per qubit.
 * @param max_columns truncate wide circuits after this many columns
 *                    (a trailing "..." marks the cut); <= 0 = unlimited.
 */
std::string drawCircuit(const Circuit &circ, int max_columns = 0);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_DRAW_H
