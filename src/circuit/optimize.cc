#include "circuit/optimize.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace rasengan::circuit {

namespace {

constexpr double kAngleEps = 1e-12;

bool
sameWiring(const Gate &a, const Gate &b)
{
    return a.kind == b.kind && a.controls == b.controls &&
           a.targets == b.targets;
}

bool
isSelfInverse(GateKind kind)
{
    return kind == GateKind::X || kind == GateKind::H ||
           kind == GateKind::CX || kind == GateKind::Swap;
}

bool
isMergeableRotation(GateKind kind)
{
    return kind == GateKind::RX || kind == GateKind::RY ||
           kind == GateKind::RZ || kind == GateKind::P ||
           kind == GateKind::CP || kind == GateKind::MCP;
}

/** CP and MCP are diagonal: control/target roles are interchangeable. */
bool
samePhaseWiring(const Gate &a, const Gate &b)
{
    if (a.kind != b.kind)
        return false;
    auto qubit_set = [](const Gate &g) {
        std::vector<int> qs = g.qubits();
        std::sort(qs.begin(), qs.end());
        return qs;
    };
    return qubit_set(a) == qubit_set(b);
}

bool
sharesQubit(const Gate &a, const Gate &b)
{
    for (int qa : a.qubits())
        for (int qb : b.qubits())
            if (qa == qb)
                return true;
    return false;
}

/** One peephole pass; returns nullopt when nothing changed. */
std::optional<std::vector<Gate>>
pass(const std::vector<Gate> &gates)
{
    std::vector<Gate> out;
    bool changed = false;

    for (const Gate &g : gates) {
        if (g.kind == GateKind::Barrier) {
            out.push_back(g);
            continue;
        }
        if ((isMergeableRotation(g.kind) && g.targets.size() == 1) &&
            std::abs(g.param) < kAngleEps) {
            changed = true; // identity rotation
            continue;
        }

        // Find the nearest earlier surviving gate sharing a qubit.
        int prev = -1;
        for (int i = static_cast<int>(out.size()) - 1; i >= 0; --i) {
            if (out[i].kind == GateKind::Barrier)
                break;
            if (sharesQubit(out[i], g)) {
                prev = i;
                break;
            }
        }
        if (prev >= 0) {
            Gate &p = out[prev];
            if (isSelfInverse(g.kind) && sameWiring(p, g)) {
                out.erase(out.begin() + prev);
                changed = true;
                continue;
            }
            bool diagonal = g.kind == GateKind::CP || g.kind == GateKind::MCP;
            bool wiring_ok = diagonal ? samePhaseWiring(p, g)
                                      : sameWiring(p, g);
            if (isMergeableRotation(g.kind) && wiring_ok) {
                p.param += g.param;
                if (std::abs(p.param) < kAngleEps)
                    out.erase(out.begin() + prev);
                changed = true;
                continue;
            }
        }
        out.push_back(g);
    }
    if (!changed)
        return std::nullopt;
    return out;
}

} // namespace

Circuit
optimizeCircuit(const Circuit &input, int max_passes)
{
    std::vector<Gate> gates = input.gates();
    for (int i = 0; i < max_passes; ++i) {
        auto next = pass(gates);
        if (!next)
            break;
        gates = std::move(*next);
    }
    Circuit out(input.numQubits());
    for (Gate &g : gates)
        out.append(std::move(g));
    return out;
}

} // namespace rasengan::circuit
