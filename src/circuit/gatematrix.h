/**
 * @file
 * 2x2 unitaries for the single-qubit gate kinds.
 *
 * Lives in the circuit layer (rather than qsim) so circuit-level passes
 * -- notably the gate-fusion pass (fusion.h) -- can compose matrices
 * without depending on a simulator.  qsim re-exports these names for
 * backward compatibility.
 */

#ifndef RASENGAN_CIRCUIT_GATEMATRIX_H
#define RASENGAN_CIRCUIT_GATEMATRIX_H

#include <complex>

#include "circuit/gate.h"

namespace rasengan::circuit {

/** 2x2 unitary in row-major order. */
struct Mat2
{
    std::complex<double> m00, m01, m10, m11;
};

/** The 2x2 matrix of a single-qubit gate kind with parameter @p theta. */
Mat2 gateMatrix(GateKind kind, double theta);

/** Matrix product a * b (i.e. apply b first, then a). */
Mat2 matmul(const Mat2 &a, const Mat2 &b);

/** Max elementwise distance from the identity. */
double distanceFromIdentity(const Mat2 &u);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_GATEMATRIX_H
