/**
 * @file
 * Gate records for the quantum circuit IR.
 *
 * The gate set covers everything the Rasengan pipeline and the baseline
 * VQAs emit: Pauli-X, Hadamard, the parameterized rotations RX/RY/RZ, the
 * phase gate P, controlled gates CX/CP, swap, and the multi-controlled
 * MCX/MCP primitives that implement transition operators before they are
 * lowered by the transpiler.
 */

#ifndef RASENGAN_CIRCUIT_GATE_H
#define RASENGAN_CIRCUIT_GATE_H

#include <string>
#include <vector>

namespace rasengan::circuit {

enum class GateKind {
    X,       ///< Pauli-X
    H,       ///< Hadamard
    RX,      ///< exp(-i theta X / 2)
    RY,      ///< exp(-i theta Y / 2)
    RZ,      ///< exp(-i theta Z / 2)
    P,       ///< phase: diag(1, e^{i theta})
    CX,      ///< controlled-X
    CP,      ///< controlled-phase
    Swap,    ///< swap two qubits
    MCX,     ///< multi-controlled X
    MCP,     ///< multi-controlled phase
    Barrier, ///< scheduling barrier (no-op for simulation)
    Measure, ///< mid-circuit Z-basis measurement (stochastic collapse)
    Reset,   ///< measure-and-flip-to-|0> (active qubit reset)
};

/** True for gates carrying an angle parameter. */
bool gateHasParam(GateKind kind);

/** Lower-case OpenQASM-style mnemonic. */
std::string gateName(GateKind kind);

struct Gate
{
    GateKind kind;
    std::vector<int> controls; ///< control qubits (all positive controls)
    std::vector<int> targets;  ///< target qubit(s)
    double param = 0.0;        ///< rotation/phase angle when applicable

    /** All qubits the gate touches, controls first. */
    std::vector<int>
    qubits() const
    {
        std::vector<int> qs = controls;
        qs.insert(qs.end(), targets.begin(), targets.end());
        return qs;
    }

    /** True when the gate acts on two or more qubits. */
    bool
    isMultiQubit() const
    {
        return controls.size() + targets.size() >= 2;
    }
};

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_GATE_H
