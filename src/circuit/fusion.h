/**
 * @file
 * Gate-fusion pass: compiles a Circuit into a shorter list of fused
 * simulator operations.
 *
 * Two algebraic rewrites drive the win on Rasengan's segment circuits:
 *
 *  1. **1q-run fusion.** A run of adjacent single-qubit gates on the
 *     same wire (adjacent = no intervening gate touching that wire)
 *     multiplies into one 2x2 unitary, so k gates cost one statevector
 *     sweep instead of k.  Segment circuits open with X columns and the
 *     transition operators conjugate with H/RX layers, so such runs are
 *     common after transpilation.
 *  2. **Diagonal coalescing.** Consecutive diagonal gates (P, RZ, CP,
 *     MCP -- the entire phase chain a lowered MCP emits) combine into a
 *     single diagonal application: one sweep accumulating the phase of
 *     every term per basis state, instead of one sweep per gate.
 *
 * The pass is exact (no approximation beyond floating-point rounding of
 * the matrix products) and preserves gate order: operations are only
 * merged across neighbours they commute with (disjoint wires, or
 * diagonal-with-diagonal).  Mid-circuit Measure/Reset act as fences and
 * are forwarded verbatim; barriers are dropped (they are simulation
 * no-ops).
 *
 * Consumers: Statevector::applyFused (qsim), which the dense simulator
 * uses transparently for measurement-free circuits when fusion is
 * enabled (default on; RASENGAN_FUSION=0 or setFusionEnabled(false)
 * disables, e.g. for A/B benchmarking).
 */

#ifndef RASENGAN_CIRCUIT_FUSION_H
#define RASENGAN_CIRCUIT_FUSION_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/gatematrix.h"

namespace rasengan::circuit {

/**
 * One term of a fused diagonal: basis index i picks up phase angle
 * (i & targetBit ? phase1 : phase0) when (i & controlMask) == controlMask.
 */
struct DiagTerm
{
    uint64_t controlMask = 0; ///< all these bits must be 1 (0 = always)
    uint64_t targetBit = 0;   ///< selects phase0 vs phase1
    double phase0 = 0.0;      ///< angle when the target bit is 0
    double phase1 = 0.0;      ///< angle when the target bit is 1
};

struct FusedOp
{
    enum class Kind {
        Unitary1q,    ///< fused 2x2 unitary on `target`
        Controlled1q, ///< `unitary` on `target` under `controls`
        Swap,         ///< swap `target` and `other`
        Diagonal,     ///< coalesced diagonal phase block (`diag`)
        Measure,      ///< mid-circuit measurement fence
        Reset,        ///< mid-circuit reset fence
    };

    Kind kind;
    int target = -1;
    int other = -1;
    std::vector<int> controls;
    Mat2 unitary{1, 0, 0, 1};
    std::vector<DiagTerm> diag;
    /** Source gates merged into this op (for fusion-ratio reporting). */
    int sourceGates = 1;
};

struct FusedProgram
{
    int numQubits = 0;
    std::vector<FusedOp> ops;
    /** Non-barrier gates in the source circuit. */
    size_t sourceOps = 0;

    size_t fusedOps() const { return ops.size(); }
};

/**
 * Fuse @p circ.  Requires at most 64 qubits (diagonal terms use dense
 * 64-bit masks; the dense simulator caps at 30 anyway).
 */
FusedProgram fuseCircuit(const Circuit &circ);

/** Global fusion toggle (initialised from RASENGAN_FUSION, default on). */
bool fusionEnabled();
void setFusionEnabled(bool enabled);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_FUSION_H
