#include "circuit/fusion.h"

#include <atomic>
#include <cstdlib>
#include <optional>

#include "common/logging.h"
#include "obs/prof.h"

namespace rasengan::circuit {

namespace {

/** Fused unitaries this close to identity are dropped entirely. */
constexpr double kIdentityEps = 1e-14;

bool
isDiagonalKind(GateKind kind)
{
    return kind == GateKind::P || kind == GateKind::RZ ||
           kind == GateKind::CP || kind == GateKind::MCP;
}

bool
is1qKind(GateKind kind)
{
    return kind == GateKind::X || kind == GateKind::H ||
           kind == GateKind::RX || kind == GateKind::RY ||
           kind == GateKind::RZ || kind == GateKind::P;
}

uint64_t
bitOf(int q)
{
    return uint64_t{1} << q;
}

/** Streaming fusion state: pending 1q runs + a pending diagonal block.
 *  Invariant: the qubits of the diagonal block and the qubits with an
 *  active 1q run are disjoint, so flush order between them never
 *  matters (disjoint-wire operations commute). */
class Fuser
{
  public:
    explicit Fuser(const Circuit &circ)
        : run_(circ.numQubits()), runGates_(circ.numQubits(), 0)
    {
        prog_.numQubits = circ.numQubits();
    }

    FusedProgram
    operator()(const Circuit &circ)
    {
        for (const Gate &g : circ.gates())
            consume(g);
        flushDiag();
        for (int q = 0; q < prog_.numQubits; ++q)
            flushRun(q);
        return std::move(prog_);
    }

  private:
    void
    consume(const Gate &g)
    {
        if (g.kind == GateKind::Barrier)
            return;
        ++prog_.sourceOps;
        if (g.kind == GateKind::Measure || g.kind == GateKind::Reset) {
            int q = g.targets[0];
            if (diagMask_ & bitOf(q))
                flushDiag();
            flushRun(q);
            FusedOp op;
            op.kind = g.kind == GateKind::Measure ? FusedOp::Kind::Measure
                                                  : FusedOp::Kind::Reset;
            op.target = q;
            prog_.ops.push_back(std::move(op));
            return;
        }
        if (g.kind == GateKind::Swap) {
            uint64_t qs = bitOf(g.targets[0]) | bitOf(g.targets[1]);
            if (diagMask_ & qs)
                flushDiag();
            flushRun(g.targets[0]);
            flushRun(g.targets[1]);
            FusedOp op;
            op.kind = FusedOp::Kind::Swap;
            op.target = g.targets[0];
            op.other = g.targets[1];
            prog_.ops.push_back(std::move(op));
            return;
        }
        if (g.controls.empty() && is1qKind(g.kind)) {
            int q = g.targets[0];
            // A diagonal 1q gate folds into an open run on its wire;
            // otherwise it joins the diagonal block.
            if (isDiagonalKind(g.kind) && !run_[q]) {
                appendDiagTerm(g);
                return;
            }
            if (diagMask_ & bitOf(q))
                flushDiag();
            Mat2 u = gateMatrix(g.kind, g.param);
            run_[q] = run_[q] ? matmul(u, *run_[q]) : u;
            ++runGates_[q];
            return;
        }
        if (g.kind == GateKind::CP || g.kind == GateKind::MCP) {
            for (int q : g.qubits())
                flushRun(q);
            appendDiagTerm(g);
            return;
        }
        // Controlled non-diagonal: CX / MCX.
        uint64_t qs = 0;
        for (int q : g.qubits())
            qs |= bitOf(q);
        if (diagMask_ & qs)
            flushDiag();
        for (int q : g.qubits())
            flushRun(q);
        FusedOp op;
        op.kind = FusedOp::Kind::Controlled1q;
        op.target = g.targets[0];
        op.controls = g.controls;
        op.unitary = gateMatrix(g.kind, g.param);
        prog_.ops.push_back(std::move(op));
    }

    void
    appendDiagTerm(const Gate &g)
    {
        DiagTerm term;
        term.targetBit = bitOf(g.targets[0]);
        for (int c : g.controls)
            term.controlMask |= bitOf(c);
        if (g.kind == GateKind::RZ) {
            term.phase0 = -g.param / 2.0;
            term.phase1 = g.param / 2.0;
        } else {
            term.phase1 = g.param; // P / CP / MCP
        }
        if (pendingDiag_.empty())
            diagSourceGates_ = 0;
        pendingDiag_.push_back(term);
        ++diagSourceGates_;
        diagMask_ |= term.controlMask | term.targetBit;
    }

    void
    flushDiag()
    {
        if (pendingDiag_.empty())
            return;
        FusedOp op;
        op.kind = FusedOp::Kind::Diagonal;
        op.diag = std::move(pendingDiag_);
        op.sourceGates = diagSourceGates_;
        prog_.ops.push_back(std::move(op));
        pendingDiag_.clear();
        diagMask_ = 0;
    }

    void
    flushRun(int q)
    {
        if (!run_[q])
            return;
        if (distanceFromIdentity(*run_[q]) > kIdentityEps) {
            FusedOp op;
            op.kind = FusedOp::Kind::Unitary1q;
            op.target = q;
            op.unitary = *run_[q];
            op.sourceGates = runGates_[q];
            prog_.ops.push_back(std::move(op));
        }
        run_[q].reset();
        runGates_[q] = 0;
    }

    FusedProgram prog_;
    std::vector<std::optional<Mat2>> run_; ///< open 1q run per wire
    std::vector<int> runGates_;            ///< gates folded per run
    std::vector<DiagTerm> pendingDiag_;    ///< open diagonal block
    uint64_t diagMask_ = 0;                ///< wires the block touches
    int diagSourceGates_ = 0;
};

std::atomic<int> g_fusion_enabled{-1}; // -1 = read env on first use

} // namespace

FusedProgram
fuseCircuit(const Circuit &circ)
{
    fatal_if(circ.numQubits() > 64,
             "gate fusion supports up to 64 qubits, got {}",
             circ.numQubits());
    RASENGAN_PROF("transpile", "fuse");
    return Fuser(circ)(circ);
}

bool
fusionEnabled()
{
    int state = g_fusion_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        const char *env = std::getenv("RASENGAN_FUSION");
        state = (env && env[0] == '0' && env[1] == '\0') ? 0 : 1;
        g_fusion_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void
setFusionEnabled(bool enabled)
{
    g_fusion_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

} // namespace rasengan::circuit
