#include "circuit/draw.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace rasengan::circuit {

namespace {

/** Short cell label for the gate's role on one qubit. */
std::string
cellLabel(const Gate &g, int q)
{
    for (int c : g.controls)
        if (c == q)
            return "*";
    bool is_target = false;
    for (int t : g.targets)
        if (t == q)
            is_target = true;
    if (!is_target)
        return "";
    switch (g.kind) {
      case GateKind::X:
      case GateKind::CX:
      case GateKind::MCX:
        return "X";
      case GateKind::H:
        return "H";
      case GateKind::Swap:
        return "x";
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::CP:
      case GateKind::MCP: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s(%.2f)",
                      gateName(g.kind).c_str(), g.param);
        return buf;
      }
      case GateKind::Barrier:
        return "";
      case GateKind::Measure:
        return "M";
      case GateKind::Reset:
        return "|0>";
    }
    return "?";
}

} // namespace

std::string
drawCircuit(const Circuit &circ, int max_columns)
{
    const int n = circ.numQubits();
    if (n == 0)
        return "";

    // Level-schedule gates into columns (barriers flush the frontier).
    std::vector<std::vector<const Gate *>> columns;
    std::vector<int> level(n, 0);
    for (const Gate &g : circ.gates()) {
        if (g.kind == GateKind::Barrier) {
            int frontier = 0;
            for (int l : level)
                frontier = std::max(frontier, l);
            std::fill(level.begin(), level.end(), frontier);
            continue;
        }
        int start = 0;
        for (int q : g.qubits())
            start = std::max(start, level[q]);
        if (static_cast<size_t>(start) >= columns.size())
            columns.resize(start + 1);
        columns[start].push_back(&g);
        for (int q : g.qubits())
            level[q] = start + 1;
    }

    bool truncated = false;
    if (max_columns > 0 &&
        columns.size() > static_cast<size_t>(max_columns)) {
        columns.resize(max_columns);
        truncated = true;
    }

    // Per column: cell text per qubit plus connector flags.
    std::vector<std::vector<std::string>> cells(
        columns.size(), std::vector<std::string>(n));
    std::vector<std::vector<bool>> connect(
        columns.size(), std::vector<bool>(n, false));
    std::vector<size_t> width(columns.size(), 1);

    for (size_t col = 0; col < columns.size(); ++col) {
        for (const Gate *g : columns[col]) {
            auto qs = g->qubits();
            int lo = *std::min_element(qs.begin(), qs.end());
            int hi = *std::max_element(qs.begin(), qs.end());
            for (int q = lo; q <= hi; ++q) {
                std::string label = cellLabel(*g, q);
                if (!label.empty())
                    cells[col][q] = label;
                else if (g->isMultiQubit())
                    connect[col][q] = true; // pass-through wire
            }
        }
        for (int q = 0; q < n; ++q)
            width[col] = std::max(width[col], cells[col][q].size());
    }

    std::ostringstream os;
    for (int q = 0; q < n; ++q) {
        os << "q" << q << ": ";
        if (q < 10)
            os << " ";
        for (size_t col = 0; col < columns.size(); ++col) {
            os << "-";
            std::string cell = cells[col][q];
            if (cell.empty())
                cell = connect[col][q] ? "|" : "-";
            // Center-ish pad with the column's fill character.
            char fill = cells[col][q].empty() && connect[col][q] ? ' ' : '-';
            size_t pad = width[col] - cell.size();
            os << std::string(pad / 2, fill) << cell
               << std::string(pad - pad / 2, fill);
            os << "-";
        }
        if (truncated)
            os << "...";
        os << "\n";
    }
    return os.str();
}

} // namespace rasengan::circuit
