#include "circuit/gatematrix.h"

#include <cmath>

#include "common/logging.h"

namespace rasengan::circuit {

namespace {

constexpr std::complex<double> kI{0.0, 1.0};
constexpr double kSqrtHalf = 0.70710678118654752440;

} // namespace

Mat2
gateMatrix(GateKind kind, double theta)
{
    double half = theta / 2.0;
    switch (kind) {
      case GateKind::X:
      case GateKind::CX:
      case GateKind::MCX:
        return {0, 1, 1, 0};
      case GateKind::H:
        return {kSqrtHalf, kSqrtHalf, kSqrtHalf, -kSqrtHalf};
      case GateKind::RX:
        return {std::cos(half), -kI * std::sin(half),
                -kI * std::sin(half), std::cos(half)};
      case GateKind::RY:
        return {std::cos(half), -std::sin(half),
                std::sin(half), std::cos(half)};
      case GateKind::RZ:
        return {std::exp(-kI * half), 0, 0, std::exp(kI * half)};
      case GateKind::P:
      case GateKind::CP:
      case GateKind::MCP:
        return {1, 0, 0, std::exp(kI * theta)};
      default:
        panic("gate {} has no 2x2 matrix", gateName(kind));
    }
}

Mat2
matmul(const Mat2 &a, const Mat2 &b)
{
    return {a.m00 * b.m00 + a.m01 * b.m10,
            a.m00 * b.m01 + a.m01 * b.m11,
            a.m10 * b.m00 + a.m11 * b.m10,
            a.m10 * b.m01 + a.m11 * b.m11};
}

double
distanceFromIdentity(const Mat2 &u)
{
    double d = std::abs(u.m00 - 1.0);
    d = std::max(d, std::abs(u.m01));
    d = std::max(d, std::abs(u.m10));
    d = std::max(d, std::abs(u.m11 - 1.0));
    return d;
}

} // namespace rasengan::circuit
