#include "circuit/circuit.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace rasengan::circuit {

bool
gateHasParam(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::CP:
      case GateKind::MCP:
        return true;
      default:
        return false;
    }
}

std::string
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::X: return "x";
      case GateKind::H: return "h";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::P: return "p";
      case GateKind::CX: return "cx";
      case GateKind::CP: return "cp";
      case GateKind::Swap: return "swap";
      case GateKind::MCX: return "mcx";
      case GateKind::MCP: return "mcp";
      case GateKind::Barrier: return "barrier";
      case GateKind::Measure: return "measure";
      case GateKind::Reset: return "reset";
    }
    panic("unknown gate kind {}", static_cast<int>(kind));
}

Circuit::Circuit(int num_qubits) : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0, "negative qubit count {}", num_qubits);
}

void
Circuit::ensureQubits(int n)
{
    numQubits_ = std::max(numQubits_, n);
}

void
Circuit::checkQubit(int q) const
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range [0, {})", q,
             numQubits_);
}

void
Circuit::checkGate(const Gate &g) const
{
    std::set<int> seen;
    for (int q : g.qubits()) {
        checkQubit(q);
        panic_if(!seen.insert(q).second, "duplicate qubit {} in {} gate", q,
                 gateName(g.kind));
    }
    switch (g.kind) {
      case GateKind::X:
      case GateKind::H:
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::Measure:
      case GateKind::Reset:
        panic_if(!g.controls.empty() || g.targets.size() != 1,
                 "{} gate must have one target and no controls",
                 gateName(g.kind));
        break;
      case GateKind::CX:
      case GateKind::CP:
        panic_if(g.controls.size() != 1 || g.targets.size() != 1,
                 "{} gate must have one control and one target",
                 gateName(g.kind));
        break;
      case GateKind::Swap:
        panic_if(!g.controls.empty() || g.targets.size() != 2,
                 "swap gate must have two targets");
        break;
      case GateKind::MCX:
      case GateKind::MCP:
        panic_if(g.targets.size() != 1,
                 "{} gate must have one target", gateName(g.kind));
        break;
      case GateKind::Barrier:
        break;
    }
}

void Circuit::x(int q) { append({GateKind::X, {}, {q}, 0.0}); }
void Circuit::h(int q) { append({GateKind::H, {}, {q}, 0.0}); }
void Circuit::rx(int q, double t) { append({GateKind::RX, {}, {q}, t}); }
void Circuit::ry(int q, double t) { append({GateKind::RY, {}, {q}, t}); }
void Circuit::rz(int q, double t) { append({GateKind::RZ, {}, {q}, t}); }
void Circuit::p(int q, double t) { append({GateKind::P, {}, {q}, t}); }

void
Circuit::cx(int control, int target)
{
    append({GateKind::CX, {control}, {target}, 0.0});
}

void
Circuit::cp(int control, int target, double theta)
{
    append({GateKind::CP, {control}, {target}, theta});
}

void
Circuit::swap(int a, int b)
{
    append({GateKind::Swap, {}, {a, b}, 0.0});
}

void
Circuit::mcx(const std::vector<int> &controls, int target)
{
    if (controls.empty())
        x(target);
    else if (controls.size() == 1)
        cx(controls[0], target);
    else
        append({GateKind::MCX, controls, {target}, 0.0});
}

void
Circuit::mcp(const std::vector<int> &controls, int target, double theta)
{
    if (controls.empty())
        p(target, theta);
    else if (controls.size() == 1)
        cp(controls[0], target, theta);
    else
        append({GateKind::MCP, controls, {target}, theta});
}

void
Circuit::barrier()
{
    append({GateKind::Barrier, {}, {}, 0.0});
}

void
Circuit::measure(int q)
{
    append({GateKind::Measure, {}, {q}, 0.0});
}

void
Circuit::reset(int q)
{
    append({GateKind::Reset, {}, {q}, 0.0});
}

void
Circuit::append(Gate g)
{
    checkGate(g);
    gates_.push_back(std::move(g));
}

void
Circuit::append(const Circuit &other)
{
    ensureQubits(other.numQubits());
    for (const Gate &g : other.gates())
        append(g);
}

namespace {

/** Generic level-scheduling depth: predicate selects counted gates. */
template <typename Pred>
int
scheduledDepth(const Circuit &c, Pred counts)
{
    std::vector<int> level(c.numQubits(), 0);
    int depth = 0;
    for (const Gate &g : c.gates()) {
        if (g.kind == GateKind::Barrier) {
            // A barrier aligns every wire to the current frontier.
            int frontier = 0;
            for (int l : level)
                frontier = std::max(frontier, l);
            std::fill(level.begin(), level.end(), frontier);
            continue;
        }
        int start = 0;
        for (int q : g.qubits())
            start = std::max(start, level[q]);
        int next = start + (counts(g) ? 1 : 0);
        for (int q : g.qubits())
            level[q] = next;
        depth = std::max(depth, next);
    }
    return depth;
}

} // namespace

int
Circuit::depth() const
{
    return scheduledDepth(*this, [](const Gate &) { return true; });
}

int
Circuit::twoQubitDepth() const
{
    return scheduledDepth(*this,
                          [](const Gate &g) { return g.isMultiQubit(); });
}

int
Circuit::countCx() const
{
    return countKind(GateKind::CX);
}

int
Circuit::countKind(GateKind kind) const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.kind == kind)
            ++n;
    return n;
}

int
Circuit::countOps() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.kind != GateKind::Barrier)
            ++n;
    return n;
}

std::string
Circuit::toQasm() const
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n" << "include \"qelib1.inc\";\n";
    os << "qreg q[" << numQubits_ << "];\n";
    if (countKind(GateKind::Measure) > 0)
        os << "creg c[" << numQubits_ << "];\n";
    for (const Gate &g : gates_) {
        if (g.kind == GateKind::Barrier) {
            os << "barrier q;\n";
            continue;
        }
        if (g.kind == GateKind::Measure) {
            os << "measure q[" << g.targets[0] << "] -> c["
               << g.targets[0] << "];\n";
            continue;
        }
        if (g.kind == GateKind::MCX || g.kind == GateKind::MCP) {
            // Not part of qelib1; print as annotated pseudo-ops.
            os << "// " << gateName(g.kind) << "(";
            if (gateHasParam(g.kind))
                os << g.param;
            os << ") controls=[";
            for (size_t i = 0; i < g.controls.size(); ++i)
                os << (i ? "," : "") << g.controls[i];
            os << "] target=" << g.targets[0] << "\n";
            continue;
        }
        os << gateName(g.kind);
        if (gateHasParam(g.kind))
            os << "(" << g.param << ")";
        os << " ";
        bool first = true;
        for (int q : g.qubits()) {
            os << (first ? "" : ", ") << "q[" << q << "]";
            first = false;
        }
        os << ";\n";
    }
    return os.str();
}

uint64_t
Circuit::fingerprint() const
{
    // FNV-1a 64-bit over a canonical byte stream of the circuit.
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    auto mix64 = [&h](uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= kPrime;
        }
    };
    mix64(static_cast<uint64_t>(numQubits_));
    mix64(gates_.size());
    for (const Gate &g : gates_) {
        mix64(static_cast<uint64_t>(g.kind));
        mix64(g.controls.size());
        for (int q : g.controls)
            mix64(static_cast<uint64_t>(q));
        mix64(g.targets.size());
        for (int q : g.targets)
            mix64(static_cast<uint64_t>(q));
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(g.param));
        std::memcpy(&bits, &g.param, sizeof(bits));
        mix64(bits);
    }
    return h;
}

} // namespace rasengan::circuit
