#include "circuit/qasm.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace rasengan::circuit {

namespace {

/**
 * Upper bound on register width accepted from untrusted QASM: any index
 * beyond this is a parse error, never an allocation (a corrupted or
 * hostile file otherwise turns `qreg q[2000000000]` into an OOM).
 */
constexpr int kMaxParsedQubits = 4096;

/** Cursor over one statement line. */
class LineScanner
{
  public:
    explicit LineScanner(const std::string &line) : s_(line) {}

    void
    skipSpace()
    {
        while (pos_ < s_.size() && std::isspace(
                   static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= s_.size();
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const std::string &word)
    {
        skipSpace();
        if (s_.compare(pos_, word.size(), word) == 0) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    /** [a-z_][a-z0-9_]* */
    std::string
    identifier()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_')) {
            ++pos_;
        }
        return s_.substr(start, pos_ - start);
    }

    std::optional<double>
    number()
    {
        skipSpace();
        const char *begin = s_.c_str() + pos_;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin)
            return std::nullopt;
        pos_ += static_cast<size_t>(end - begin);
        return value;
    }

    std::optional<int>
    integer()
    {
        auto v = number();
        if (!v || *v != static_cast<int>(*v))
            return std::nullopt;
        return static_cast<int>(*v);
    }

    /** q[<int>] */
    std::optional<int>
    qubitRef()
    {
        skipSpace();
        if (!consumeWord("q") || !consume('['))
            return std::nullopt;
        auto idx = integer();
        if (!idx || !consume(']'))
            return std::nullopt;
        return idx;
    }

  private:
    const std::string &s_;
    size_t pos_ = 0;
};

struct Parser
{
    QasmParseResult result;
    std::optional<Circuit> circ;

    bool
    fail(int line, const std::string &message)
    {
        result.error = message;
        result.errorLine = line;
        return false;
    }

    bool
    parsePseudoOp(LineScanner &sc, int line_no, bool is_mcp)
    {
        // "// mcp(theta) controls=[a,b,...] target=t"
        double theta = 0.0;
        if (!sc.consume('('))
            return fail(line_no, "expected '(' in pseudo-op");
        if (is_mcp) {
            auto v = sc.number();
            if (!v)
                return fail(line_no, "expected angle in mcp pseudo-op");
            theta = *v;
        }
        if (!sc.consume(')'))
            return fail(line_no, "expected ')' in pseudo-op");
        if (!sc.consumeWord("controls") || !sc.consume('=') ||
            !sc.consume('[')) {
            return fail(line_no, "expected controls=[...]");
        }
        std::vector<int> controls;
        if (!sc.consume(']')) {
            while (true) {
                auto q = sc.integer();
                if (!q)
                    return fail(line_no, "expected control index");
                controls.push_back(*q);
                if (sc.consume(']'))
                    break;
                if (!sc.consume(','))
                    return fail(line_no, "expected ',' or ']'");
            }
        }
        if (!sc.consumeWord("target") || !sc.consume('='))
            return fail(line_no, "expected target=");
        auto target = sc.integer();
        if (!target)
            return fail(line_no, "expected target index");
        if (*target < 0 || *target >= kMaxParsedQubits)
            return fail(line_no, "pseudo-op target index out of range");
        int max_q = *target;
        for (int c : controls) {
            if (c < 0 || c >= kMaxParsedQubits)
                return fail(line_no, "pseudo-op control index out of range");
            if (c == *target)
                return fail(line_no, "pseudo-op control equals target");
            max_q = std::max(max_q, c);
        }
        circ->ensureQubits(max_q + 1);
        if (is_mcp)
            circ->mcp(controls, *target, theta);
        else
            circ->mcx(controls, *target);
        return true;
    }

    bool
    parseGate(LineScanner &sc, int line_no, const std::string &name)
    {
        struct Spec
        {
            GateKind kind;
            int qubits;
            bool param;
        };
        static const std::vector<std::pair<std::string, Spec>> kSpecs = {
            {"x", {GateKind::X, 1, false}},
            {"h", {GateKind::H, 1, false}},
            {"rx", {GateKind::RX, 1, true}},
            {"ry", {GateKind::RY, 1, true}},
            {"rz", {GateKind::RZ, 1, true}},
            {"p", {GateKind::P, 1, true}},
            {"cx", {GateKind::CX, 2, false}},
            {"cp", {GateKind::CP, 2, true}},
            {"swap", {GateKind::Swap, 2, false}},
        };
        const Spec *spec = nullptr;
        for (const auto &[n, s] : kSpecs) {
            if (n == name) {
                spec = &s;
                break;
            }
        }
        if (!spec)
            return fail(line_no, "unknown gate '" + name + "'");

        double theta = 0.0;
        if (spec->param) {
            if (!sc.consume('('))
                return fail(line_no, "expected '(' after " + name);
            auto v = sc.number();
            if (!v)
                return fail(line_no, "expected angle for " + name);
            theta = *v;
            if (!sc.consume(')'))
                return fail(line_no, "expected ')' after angle");
        }
        std::vector<int> qs;
        for (int i = 0; i < spec->qubits; ++i) {
            if (i > 0 && !sc.consume(','))
                return fail(line_no, "expected ',' between operands");
            auto q = sc.qubitRef();
            if (!q)
                return fail(line_no, "expected qubit operand");
            if (*q < 0 || *q >= circ->numQubits())
                return fail(line_no, "qubit index out of the qreg range");
            qs.push_back(*q);
        }
        if (!sc.consume(';'))
            return fail(line_no, "expected ';'");

        switch (spec->kind) {
          case GateKind::X: circ->x(qs[0]); break;
          case GateKind::H: circ->h(qs[0]); break;
          case GateKind::RX: circ->rx(qs[0], theta); break;
          case GateKind::RY: circ->ry(qs[0], theta); break;
          case GateKind::RZ: circ->rz(qs[0], theta); break;
          case GateKind::P: circ->p(qs[0], theta); break;
          case GateKind::CX: circ->cx(qs[0], qs[1]); break;
          case GateKind::CP: circ->cp(qs[0], qs[1], theta); break;
          case GateKind::Swap: circ->swap(qs[0], qs[1]); break;
          default: return fail(line_no, "unsupported gate");
        }
        return true;
    }

    bool
    run(const std::string &text)
    {
        std::istringstream stream(text);
        std::string line;
        int line_no = 0;
        bool saw_header = false;
        while (std::getline(stream, line)) {
            ++line_no;
            LineScanner sc(line);
            if (sc.atEnd())
                continue;
            if (sc.consumeWord("//")) {
                std::string op = sc.identifier();
                if (op == "mcp" || op == "mcx") {
                    if (!circ)
                        return fail(line_no, "gate before qreg");
                    if (!parsePseudoOp(sc, line_no, op == "mcp"))
                        return false;
                }
                continue; // ordinary comment
            }
            if (sc.consumeWord("OPENQASM")) {
                saw_header = true;
                continue;
            }
            if (sc.consumeWord("include"))
                continue;
            if (sc.consumeWord("qreg")) {
                if (circ)
                    return fail(line_no, "duplicate qreg");
                LineScanner rest(line);
                rest.consumeWord("qreg");
                auto n = rest.qubitRef();
                if (!n)
                    return fail(line_no, "malformed qreg");
                if (*n < 1 || *n > kMaxParsedQubits)
                    return fail(line_no, "qreg size out of range");
                circ.emplace(*n);
                continue;
            }
            if (sc.consumeWord("creg"))
                continue; // classical bits are implicit in this IR
            if (sc.consumeWord("barrier")) {
                if (!circ)
                    return fail(line_no, "barrier before qreg");
                circ->barrier();
                continue;
            }
            if (sc.consumeWord("measure")) {
                if (!circ)
                    return fail(line_no, "measure before qreg");
                auto q = sc.qubitRef();
                if (!q || *q < 0 || *q >= circ->numQubits())
                    return fail(line_no, "malformed measure operand");
                // Optional "-> c[i]" suffix is accepted and ignored.
                circ->measure(*q);
                continue;
            }
            if (sc.consumeWord("reset")) {
                if (!circ)
                    return fail(line_no, "reset before qreg");
                auto q = sc.qubitRef();
                if (!q || *q < 0 || *q >= circ->numQubits())
                    return fail(line_no, "malformed reset operand");
                if (!sc.consume(';'))
                    return fail(line_no, "expected ';'");
                circ->reset(*q);
                continue;
            }
            std::string name = sc.identifier();
            if (name.empty())
                return fail(line_no, "unparseable statement");
            if (!circ)
                return fail(line_no, "gate before qreg");
            if (!parseGate(sc, line_no, name))
                return false;
        }
        if (!saw_header)
            return fail(1, "missing OPENQASM header");
        if (!circ)
            return fail(line_no, "missing qreg declaration");
        result.circuit = std::move(circ);
        return true;
    }
};

} // namespace

QasmParseResult
parseQasm(const std::string &text)
{
    Parser parser;
    parser.run(text);
    return std::move(parser.result);
}

} // namespace rasengan::circuit
