/**
 * @file
 * Peephole circuit optimization passes.
 *
 * Rasengan's segmented circuits begin with a column of X gates preparing
 * the segment's initial basis state; adjacent segments and the transition
 * operator's symmetric conjugation structure create cancellation
 * opportunities (X-X, H-H, CX-CX pairs and mergeable rotations).  The
 * optimizer runs simple peephole passes to a fixed point.
 */

#ifndef RASENGAN_CIRCUIT_OPTIMIZE_H
#define RASENGAN_CIRCUIT_OPTIMIZE_H

#include "circuit/circuit.h"

namespace rasengan::circuit {

/**
 * Apply cancellation/merge passes until a fixed point (or @p max_passes).
 *
 * Rules, applied to a gate and the nearest earlier gate that shares any
 * qubit with it (merging only when the qubit sets match exactly):
 *  - X.X, H.H, CX.CX, Swap.Swap with identical wiring cancel;
 *  - consecutive RX/RY/RZ/P on one wire and CP on one pair merge angles;
 *  - rotations with (merged) angle ~ 0 are dropped.
 */
Circuit optimizeCircuit(const Circuit &input, int max_passes = 10);

} // namespace rasengan::circuit

#endif // RASENGAN_CIRCUIT_OPTIMIZE_H
