#include "opt/adamspsa.h"

#include <cmath>

namespace rasengan::opt {

OptResult
AdamSpsa::minimize(const ObjectiveFn &objective, std::vector<double> x0)
{
    OptResult res;
    const int n = static_cast<int>(x0.size());
    const int max_evals = std::max(options_.maxIterations, 3);

    GuardedObjective guarded(objective, options_);
    auto eval = [&](const std::vector<double> &x) {
        ++res.evaluations;
        return guarded(x);
    };

    if (n == 0) {
        res.x = std::move(x0);
        res.value = eval(res.x);
        res.converged = true;
        guarded.finalize(res);
        return res;
    }

    Rng rng(options_.seed);
    std::vector<double> x = std::move(x0);
    std::vector<double> m(n, 0.0), v(n, 0.0), delta(n), grad(n);

    std::vector<double> best_x = x;
    double best_f = eval(x);

    int k = 0;
    while (res.evaluations + 2 <= max_evals && !guarded.diverged()) {
        ++k;
        ++res.iterations;
        const double ck = hyper_.perturbation;
        for (int i = 0; i < n; ++i)
            delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
        std::vector<double> plus = x, minus = x;
        for (int i = 0; i < n; ++i) {
            plus[i] += ck * delta[i];
            minus[i] -= ck * delta[i];
        }
        double f_plus = eval(plus);
        double f_minus = eval(minus);
        double diff = (f_plus - f_minus) / (2.0 * ck);
        for (int i = 0; i < n; ++i)
            grad[i] = diff / delta[i];

        // Adam moment updates with bias correction.
        double step_norm = 0.0;
        double bias1 = 1.0 - std::pow(hyper_.beta1, k);
        double bias2 = 1.0 - std::pow(hyper_.beta2, k);
        for (int i = 0; i < n; ++i) {
            m[i] = hyper_.beta1 * m[i] + (1.0 - hyper_.beta1) * grad[i];
            v[i] = hyper_.beta2 * v[i] +
                   (1.0 - hyper_.beta2) * grad[i] * grad[i];
            double m_hat = m[i] / bias1;
            double v_hat = v[i] / bias2;
            double step = options_.initialStep * m_hat /
                          (std::sqrt(v_hat) + hyper_.epsilon);
            x[i] -= step;
            step_norm += step * step;
        }
        double f_lower = std::min(f_plus, f_minus);
        if (f_lower < best_f) {
            best_f = f_lower;
            best_x = f_plus < f_minus ? plus : minus;
        }
        if (std::sqrt(step_norm) < options_.tolerance) {
            res.converged = true;
            break;
        }
    }

    if (res.evaluations < max_evals && !guarded.diverged()) {
        double f = eval(x);
        if (f < best_f) {
            best_f = f;
            best_x = x;
        }
    }
    res.x = std::move(best_x);
    res.value = best_f;
    guarded.finalize(res);
    return res;
}

} // namespace rasengan::opt
