/**
 * @file
 * COBYLA-style linear-approximation trust-region optimizer.
 *
 * Reimplementation (from scratch) of the method family of Powell's
 * "constrained optimization by linear approximation" [33]: maintain a
 * simplex of n+1 interpolation points, fit the unique affine model of the
 * objective through them, step against the model gradient within an
 * l2 trust region, and shrink the region when the model stops predicting
 * descent.  The VQA training objectives here are unconstrained in the
 * parameters, so the constraint machinery of full COBYLA is not needed.
 */

#ifndef RASENGAN_OPT_COBYLA_H
#define RASENGAN_OPT_COBYLA_H

#include "opt/optimizer.h"

namespace rasengan::opt {

class Cobyla : public Optimizer
{
  public:
    explicit Cobyla(OptOptions options = {}) : Optimizer(options) {}

    OptResult minimize(const ObjectiveFn &objective,
                       std::vector<double> x0) override;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_COBYLA_H
