/**
 * @file
 * Derivative-free optimizer interface shared by every VQA in this
 * repository (the paper trains all methods with the same optimizer family
 * so that the comparison isolates the ansatz).
 */

#ifndef RASENGAN_OPT_OPTIMIZER_H
#define RASENGAN_OPT_OPTIMIZER_H

#include <functional>
#include <vector>

#include "common/rng.h"

namespace rasengan::opt {

/** Objective to minimize over a real parameter vector. */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

struct OptOptions
{
    int maxIterations = 300;  ///< outer iterations (paper Section 5.2)
    double initialStep = 0.5; ///< initial trust-region radius / simplex size
    double tolerance = 1e-6;  ///< convergence threshold on step/spread
    uint64_t seed = 1;        ///< for stochastic methods (SPSA)
};

struct OptResult
{
    std::vector<double> x;   ///< best parameters found
    double value = 0.0;      ///< objective at x
    int iterations = 0;      ///< outer iterations executed
    int evaluations = 0;     ///< objective evaluations spent
    bool converged = false;  ///< tolerance reached before the budget
};

/** Abstract minimizer. */
class Optimizer
{
  public:
    explicit Optimizer(OptOptions options) : options_(options) {}
    virtual ~Optimizer() = default;

    /** Minimize @p objective starting from @p x0. */
    virtual OptResult minimize(const ObjectiveFn &objective,
                               std::vector<double> x0) = 0;

    const OptOptions &options() const { return options_; }

  protected:
    OptOptions options_;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_OPTIMIZER_H
