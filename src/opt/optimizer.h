/**
 * @file
 * Derivative-free optimizer interface shared by every VQA in this
 * repository (the paper trains all methods with the same optimizer family
 * so that the comparison isolates the ansatz).
 */

#ifndef RASENGAN_OPT_OPTIMIZER_H
#define RASENGAN_OPT_OPTIMIZER_H

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace rasengan::opt {

/** Objective to minimize over a real parameter vector. */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

struct OptOptions
{
    int maxIterations = 300;  ///< outer iterations (paper Section 5.2)
    double initialStep = 0.5; ///< initial trust-region radius / simplex size
    double tolerance = 1e-6;  ///< convergence threshold on step/spread
    uint64_t seed = 1;        ///< for stochastic methods (SPSA)

    /** Worst-case score substituted for a non-finite evaluation. */
    double nonFiniteScore = 1e18;
    /**
     * Consecutive non-finite evaluations before the trainer declares
     * divergence and stops (0 disables the check).
     */
    int maxConsecutiveNonFinite = 8;
};

/** How a training run ended. */
enum class OptStatus {
    Ok,       ///< normal termination (budget or tolerance)
    Diverged, ///< stopped early: objective returned only NaN/Inf
};

struct OptResult
{
    std::vector<double> x;   ///< best parameters found
    double value = 0.0;      ///< objective at x
    int iterations = 0;      ///< outer iterations executed
    int evaluations = 0;     ///< objective evaluations spent
    bool converged = false;  ///< tolerance reached before the budget
    OptStatus status = OptStatus::Ok;
    int nonFiniteEvals = 0;  ///< evaluations sanitized to nonFiniteScore
};

/**
 * NaN/Inf hardening shared by every trainer: a non-finite evaluation is
 * replaced by the worst-case `nonFiniteScore` (so minimizers move away
 * from it instead of propagating NaN through simplex/gradient algebra)
 * and counted; after `maxConsecutiveNonFinite` bad evaluations in a row
 * the wrapper reports divergence so the trainer can stop early.
 */
class GuardedObjective
{
  public:
    GuardedObjective(const ObjectiveFn &fn, const OptOptions &options)
        : fn_(fn), options_(options)
    {
    }

    double operator()(const std::vector<double> &x)
    {
        double value = fn_(x);
        if (!std::isfinite(value)) {
            ++nonFinite_;
            ++consecutive_;
            return options_.nonFiniteScore;
        }
        consecutive_ = 0;
        return value;
    }

    bool diverged() const
    {
        return options_.maxConsecutiveNonFinite > 0 &&
               consecutive_ >= options_.maxConsecutiveNonFinite;
    }
    int nonFiniteEvals() const { return nonFinite_; }

    /** Record the sanitization outcome into @p res. */
    void finalize(OptResult &res) const
    {
        res.nonFiniteEvals = nonFinite_;
        if (diverged())
            res.status = OptStatus::Diverged;
    }

  private:
    const ObjectiveFn &fn_;
    const OptOptions &options_;
    int nonFinite_ = 0;
    int consecutive_ = 0;
};

/** Abstract minimizer. */
class Optimizer
{
  public:
    explicit Optimizer(OptOptions options) : options_(options) {}
    virtual ~Optimizer() = default;

    /** Minimize @p objective starting from @p x0. */
    virtual OptResult minimize(const ObjectiveFn &objective,
                               std::vector<double> x0) = 0;

    const OptOptions &options() const { return options_; }

  protected:
    OptOptions options_;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_OPTIMIZER_H
