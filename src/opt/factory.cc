#include "opt/factory.h"

#include "common/logging.h"
#include "opt/adamspsa.h"
#include "opt/cobyla.h"
#include "opt/neldermead.h"
#include "opt/spsa.h"

namespace rasengan::opt {

std::unique_ptr<Optimizer>
makeOptimizer(Method method, const OptOptions &options)
{
    switch (method) {
      case Method::Cobyla:
        return std::make_unique<Cobyla>(options);
      case Method::NelderMead:
        return std::make_unique<NelderMead>(options);
      case Method::Spsa:
        return std::make_unique<Spsa>(options);
      case Method::AdamSpsa:
        return std::make_unique<AdamSpsa>(options);
    }
    panic("unknown optimizer method {}", static_cast<int>(method));
}

std::string
methodName(Method method)
{
    switch (method) {
      case Method::Cobyla: return "cobyla";
      case Method::NelderMead: return "nelder-mead";
      case Method::Spsa: return "spsa";
      case Method::AdamSpsa: return "adam-spsa";
    }
    return "?";
}

} // namespace rasengan::opt
