/**
 * @file
 * Adam optimizer driven by SPSA gradient estimates.
 *
 * For shot-noise-limited VQA objectives, the simultaneous-perturbation
 * gradient estimator (two evaluations per step, any dimension) combined
 * with Adam's per-coordinate moment scaling is a common practical
 * choice; kept here alongside COBYLA / Nelder-Mead / SPSA so the solvers
 * can be trained with any of the four.
 */

#ifndef RASENGAN_OPT_ADAMSPSA_H
#define RASENGAN_OPT_ADAMSPSA_H

#include "opt/optimizer.h"

namespace rasengan::opt {

struct AdamSpsaHyper
{
    double beta1 = 0.9;   ///< first-moment decay
    double beta2 = 0.999; ///< second-moment decay
    double epsilon = 1e-8;
    double perturbation = 0.05; ///< SPSA probe radius
};

class AdamSpsa : public Optimizer
{
  public:
    using Hyper = AdamSpsaHyper;

    explicit AdamSpsa(OptOptions options = {}, Hyper hyper = {})
        : Optimizer(options), hyper_(hyper)
    {}

    OptResult minimize(const ObjectiveFn &objective,
                       std::vector<double> x0) override;

  private:
    Hyper hyper_;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_ADAMSPSA_H
