#include "opt/neldermead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rasengan::opt {

OptResult
NelderMead::minimize(const ObjectiveFn &objective, std::vector<double> x0)
{
    OptResult res;
    const int n = static_cast<int>(x0.size());
    const int max_evals = std::max(options_.maxIterations, n + 2);

    GuardedObjective guarded(objective, options_);
    auto eval = [&](const std::vector<double> &x) {
        ++res.evaluations;
        return guarded(x);
    };

    if (n == 0) {
        res.x = std::move(x0);
        res.value = eval(res.x);
        res.converged = true;
        guarded.finalize(res);
        return res;
    }

    // Adaptive coefficients (Gao & Han) improve behaviour for larger n.
    const double alpha = 1.0;
    const double beta = 1.0 + 2.0 / n;
    const double gamma = 0.75 - 1.0 / (2.0 * n);
    const double delta = 1.0 - 1.0 / n;

    std::vector<std::vector<double>> pts(n + 1, x0);
    std::vector<double> vals(n + 1);
    for (int i = 0; i < n; ++i)
        pts[i + 1][i] += options_.initialStep;
    for (int i = 0; i <= n; ++i)
        vals[i] = eval(pts[i]);

    std::vector<size_t> order(n + 1);

    while (res.evaluations < max_evals && !guarded.diverged()) {
        ++res.iterations;
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return vals[a] < vals[b]; });
        size_t best = order[0];
        size_t worst = order[n];
        size_t second_worst = order[n - 1];

        // Convergence: simplex value spread below tolerance.
        if (std::abs(vals[worst] - vals[best]) <
            options_.tolerance * (std::abs(vals[best]) + options_.tolerance)) {
            res.converged = true;
            break;
        }

        // Centroid excluding the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (size_t i = 0; i <= static_cast<size_t>(n); ++i) {
            if (i == worst)
                continue;
            for (int k = 0; k < n; ++k)
                centroid[k] += pts[i][k];
        }
        for (int k = 0; k < n; ++k)
            centroid[k] /= n;

        auto blend = [&](double coeff) {
            std::vector<double> p(n);
            for (int k = 0; k < n; ++k)
                p[k] = centroid[k] + coeff * (centroid[k] - pts[worst][k]);
            return p;
        };

        std::vector<double> reflected = blend(alpha);
        double f_reflected = eval(reflected);

        if (f_reflected < vals[best]) {
            std::vector<double> expanded = blend(beta);
            double f_expanded = eval(expanded);
            if (f_expanded < f_reflected) {
                pts[worst] = std::move(expanded);
                vals[worst] = f_expanded;
            } else {
                pts[worst] = std::move(reflected);
                vals[worst] = f_reflected;
            }
        } else if (f_reflected < vals[second_worst]) {
            pts[worst] = std::move(reflected);
            vals[worst] = f_reflected;
        } else {
            bool outside = f_reflected < vals[worst];
            std::vector<double> contracted = blend(outside ? gamma : -gamma);
            double f_contracted = eval(contracted);
            if (f_contracted < std::min(f_reflected, vals[worst])) {
                pts[worst] = std::move(contracted);
                vals[worst] = f_contracted;
            } else {
                // Shrink the whole simplex toward the best vertex.
                for (size_t i = 0; i <= static_cast<size_t>(n); ++i) {
                    if (i == best)
                        continue;
                    for (int k = 0; k < n; ++k)
                        pts[i][k] = pts[best][k] +
                                    delta * (pts[i][k] - pts[best][k]);
                    if (res.evaluations >= max_evals)
                        break;
                    vals[i] = eval(pts[i]);
                }
            }
        }
    }

    size_t best = static_cast<size_t>(
        std::min_element(vals.begin(), vals.end()) - vals.begin());
    res.x = pts[best];
    res.value = vals[best];
    guarded.finalize(res);
    return res;
}

} // namespace rasengan::opt
