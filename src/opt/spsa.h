/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA).
 *
 * Two objective evaluations per iteration regardless of dimension, which
 * makes it the standard choice for shot-noise-limited VQA training; kept
 * here as an alternative to the COBYLA-style default.
 */

#ifndef RASENGAN_OPT_SPSA_H
#define RASENGAN_OPT_SPSA_H

#include "opt/optimizer.h"

namespace rasengan::opt {

class Spsa : public Optimizer
{
  public:
    explicit Spsa(OptOptions options = {}) : Optimizer(options) {}

    OptResult minimize(const ObjectiveFn &objective,
                       std::vector<double> x0) override;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_SPSA_H
