#include "opt/cobyla.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rasengan::opt {

namespace {

/**
 * Solve the n x n system A g = r by Gaussian elimination with partial
 * pivoting.  Returns false when A is numerically singular.
 */
bool
solveDense(std::vector<std::vector<double>> a, std::vector<double> r,
           std::vector<double> &out)
{
    const size_t n = r.size();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row)
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        if (std::abs(a[pivot][col]) < 1e-14)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(r[col], r[pivot]);
        for (size_t row = col + 1; row < n; ++row) {
            double factor = a[row][col] / a[col][col];
            for (size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            r[row] -= factor * r[col];
        }
    }
    out.assign(n, 0.0);
    for (size_t col = n; col-- > 0;) {
        double acc = r[col];
        for (size_t k = col + 1; k < n; ++k)
            acc -= a[col][k] * out[k];
        out[col] = acc / a[col][col];
    }
    return true;
}

} // namespace

OptResult
Cobyla::minimize(const ObjectiveFn &objective, std::vector<double> x0)
{
    OptResult res;
    const int n = static_cast<int>(x0.size());
    const int max_evals = std::max(options_.maxIterations, n + 2);

    GuardedObjective guarded(objective, options_);
    auto eval = [&](const std::vector<double> &x) {
        ++res.evaluations;
        return guarded(x);
    };

    if (n == 0) {
        res.x = std::move(x0);
        res.value = eval(res.x);
        res.converged = true;
        guarded.finalize(res);
        return res;
    }

    std::vector<std::vector<double>> points;
    std::vector<double> values;

    double rho = options_.initialStep;
    const double rho_end = std::max(options_.tolerance, 1e-12);

    auto rebuild_simplex = [&](const std::vector<double> &center,
                               double radius) {
        points.assign(1, center);
        values.assign(1, values.empty() ? eval(center) : values[0]);
        for (int i = 0; i < n && res.evaluations < max_evals; ++i) {
            std::vector<double> p = center;
            p[i] += radius;
            points.push_back(p);
            values.push_back(eval(p));
        }
    };

    // Initial simplex about x0.
    points.push_back(x0);
    values.push_back(eval(x0));
    for (int i = 0; i < n && res.evaluations < max_evals; ++i) {
        std::vector<double> p = x0;
        p[i] += rho;
        points.push_back(p);
        values.push_back(eval(p));
    }

    auto best_index = [&]() {
        return static_cast<size_t>(
            std::min_element(values.begin(), values.end()) - values.begin());
    };
    auto worst_index = [&]() {
        return static_cast<size_t>(
            std::max_element(values.begin(), values.end()) - values.begin());
    };

    while (res.evaluations < max_evals && rho > rho_end &&
           !guarded.diverged()) {
        ++res.iterations;
        if (points.size() != static_cast<size_t>(n) + 1) {
            // Budget ran out while building the simplex.
            break;
        }
        size_t best = best_index();

        // Affine model through the simplex: g solves
        // (p_i - p_best) . g = f_i - f_best for all i != best.
        std::vector<std::vector<double>> a;
        std::vector<double> r;
        for (size_t i = 0; i < points.size(); ++i) {
            if (i == best)
                continue;
            std::vector<double> row(n);
            for (int k = 0; k < n; ++k)
                row[k] = points[i][k] - points[best][k];
            a.push_back(std::move(row));
            r.push_back(values[i] - values[best]);
        }
        std::vector<double> g;
        if (!solveDense(std::move(a), std::move(r), g)) {
            // Degenerate simplex: rebuild around the incumbent.
            std::vector<double> center = points[best];
            double fbest = values[best];
            values.assign(1, fbest);
            rebuild_simplex(center, rho);
            continue;
        }

        double gnorm = 0.0;
        for (double v : g)
            gnorm += v * v;
        gnorm = std::sqrt(gnorm);
        if (gnorm < 1e-14) {
            // Flat model: the region is resolved at this radius.
            rho *= 0.5;
            std::vector<double> center = points[best];
            double fbest = values[best];
            values.assign(1, fbest);
            rebuild_simplex(center, rho);
            continue;
        }

        std::vector<double> trial = points[best];
        for (int k = 0; k < n; ++k)
            trial[k] -= rho * g[k] / gnorm;
        double ftrial = eval(trial);

        size_t worst = worst_index();
        if (ftrial < values[worst]) {
            points[worst] = std::move(trial);
            values[worst] = ftrial;
            if (ftrial < values[best] - 0.5 * rho * gnorm) {
                // The linear model predicted well: widen the region.
                rho = std::min(rho * 1.5, 4.0 * options_.initialStep);
            } else if (ftrial >= values[best] - 0.1 * rho * gnorm) {
                // Under-delivered against the model: tighten the region.
                rho *= 0.5;
            }
        } else {
            rho *= 0.5;
            std::vector<double> center = points[best];
            double fbest = values[best];
            values.assign(1, fbest);
            rebuild_simplex(center, rho);
        }
    }

    size_t best = best_index();
    res.x = points[best];
    res.value = values[best];
    res.converged = rho <= rho_end;
    guarded.finalize(res);
    return res;
}

} // namespace rasengan::opt
