/**
 * @file
 * Optimizer selection: a method enum plus factory so solvers can be
 * configured with any of the derivative-free trainers.
 */

#ifndef RASENGAN_OPT_FACTORY_H
#define RASENGAN_OPT_FACTORY_H

#include <memory>
#include <string>

#include "opt/optimizer.h"

namespace rasengan::opt {

enum class Method {
    Cobyla,     ///< linear-approximation trust region (paper default)
    NelderMead, ///< downhill simplex
    Spsa,       ///< simultaneous perturbation
    AdamSpsa,   ///< Adam with SPSA gradient estimates
};

/** Instantiate the optimizer for @p method. */
std::unique_ptr<Optimizer> makeOptimizer(Method method,
                                         const OptOptions &options);

/** Human-readable method name. */
std::string methodName(Method method);

} // namespace rasengan::opt

#endif // RASENGAN_OPT_FACTORY_H
