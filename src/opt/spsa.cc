#include "opt/spsa.h"

#include <cmath>

namespace rasengan::opt {

OptResult
Spsa::minimize(const ObjectiveFn &objective, std::vector<double> x0)
{
    OptResult res;
    const int n = static_cast<int>(x0.size());
    const int max_evals = std::max(options_.maxIterations, 3);

    GuardedObjective guarded(objective, options_);
    auto eval = [&](const std::vector<double> &x) {
        ++res.evaluations;
        return guarded(x);
    };

    if (n == 0) {
        res.x = std::move(x0);
        res.value = eval(res.x);
        res.converged = true;
        guarded.finalize(res);
        return res;
    }

    Rng rng(options_.seed);

    // Standard gain schedules (Spall's recommended exponents).
    const double a = options_.initialStep;
    const double c = std::max(0.1 * options_.initialStep, 1e-3);
    const double big_a = 0.1 * max_evals / 2.0;
    const double alpha = 0.602;
    const double gamma_exp = 0.101;

    std::vector<double> x = std::move(x0);
    std::vector<double> best_x = x;
    double best_f = eval(x);

    std::vector<double> delta(n);
    int k = 0;
    while (res.evaluations + 2 <= max_evals && !guarded.diverged()) {
        ++k;
        ++res.iterations;
        double ak = a / std::pow(k + big_a, alpha);
        double ck = c / std::pow(k, gamma_exp);

        for (int i = 0; i < n; ++i)
            delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;

        std::vector<double> plus = x, minus = x;
        for (int i = 0; i < n; ++i) {
            plus[i] += ck * delta[i];
            minus[i] -= ck * delta[i];
        }
        double f_plus = eval(plus);
        double f_minus = eval(minus);
        double diff = (f_plus - f_minus) / (2.0 * ck);

        double step_norm = 0.0;
        for (int i = 0; i < n; ++i) {
            double step = ak * diff / delta[i];
            x[i] -= step;
            step_norm += step * step;
        }
        double f_lower = std::min(f_plus, f_minus);
        if (f_lower < best_f) {
            best_f = f_lower;
            best_x = f_plus < f_minus ? plus : minus;
        }
        if (std::sqrt(step_norm) < options_.tolerance) {
            res.converged = true;
            break;
        }
    }

    // One final evaluation at the current iterate, if budget allows.
    if (res.evaluations < max_evals && !guarded.diverged()) {
        double f = eval(x);
        if (f < best_f) {
            best_f = f;
            best_x = x;
        }
    }
    res.x = std::move(best_x);
    res.value = best_f;
    guarded.finalize(res);
    return res;
}

} // namespace rasengan::opt
