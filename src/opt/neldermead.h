/**
 * @file
 * Nelder-Mead downhill simplex minimizer with adaptive coefficients.
 */

#ifndef RASENGAN_OPT_NELDERMEAD_H
#define RASENGAN_OPT_NELDERMEAD_H

#include "opt/optimizer.h"

namespace rasengan::opt {

class NelderMead : public Optimizer
{
  public:
    explicit NelderMead(OptOptions options = {}) : Optimizer(options) {}

    OptResult minimize(const ObjectiveFn &objective,
                       std::vector<double> x0) override;
};

} // namespace rasengan::opt

#endif // RASENGAN_OPT_NELDERMEAD_H
