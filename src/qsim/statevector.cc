#include "qsim/statevector.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace rasengan::qsim {

namespace {

constexpr Complex kI{0.0, 1.0};
constexpr double kSqrtHalf = 0.70710678118654752440;

} // namespace

Mat2
gateMatrix(circuit::GateKind kind, double theta)
{
    using circuit::GateKind;
    double half = theta / 2.0;
    switch (kind) {
      case GateKind::X:
      case GateKind::CX:
      case GateKind::MCX:
        return {0, 1, 1, 0};
      case GateKind::H:
        return {kSqrtHalf, kSqrtHalf, kSqrtHalf, -kSqrtHalf};
      case GateKind::RX:
        return {std::cos(half), -kI * std::sin(half),
                -kI * std::sin(half), std::cos(half)};
      case GateKind::RY:
        return {std::cos(half), -std::sin(half),
                std::sin(half), std::cos(half)};
      case GateKind::RZ:
        return {std::exp(-kI * half), 0, 0, std::exp(kI * half)};
      case GateKind::P:
      case GateKind::CP:
      case GateKind::MCP:
        return {1, 0, 0, std::exp(kI * theta)};
      default:
        panic("gate {} has no 2x2 matrix", circuit::gateName(kind));
    }
}

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0 || num_qubits > 30,
             "dense statevector limited to 30 qubits, got {}", num_qubits);
    amps_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

Statevector::Statevector(int num_qubits, const BitVec &basis)
    : Statevector(num_qubits)
{
    uint64_t idx = basis.toIndex();
    panic_if(idx >= amps_.size(), "basis state outside register");
    amps_[0] = 0.0;
    amps_[idx] = 1.0;
}

void
Statevector::checkQubit(int q) const
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range [0, {})", q,
             numQubits_);
}

double
Statevector::normSquared() const
{
    double acc = 0.0;
    for (const Complex &a : amps_)
        acc += std::norm(a);
    return acc;
}

void
Statevector::renormalize()
{
    double n2 = normSquared();
    panic_if(n2 < 1e-300, "renormalizing a zero state");
    double inv = 1.0 / std::sqrt(n2);
    for (Complex &a : amps_)
        a *= inv;
}

Complex
Statevector::inner(const Statevector &other) const
{
    panic_if(numQubits_ != other.numQubits_,
             "inner product across register sizes {} vs {}", numQubits_,
             other.numQubits_);
    Complex acc{0.0, 0.0};
    for (size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

void
Statevector::apply1q(int target, const Mat2 &u)
{
    checkQubit(target);
    const uint64_t bit = uint64_t{1} << target;
    const uint64_t dim = amps_.size();
    for (uint64_t base = 0; base < dim; ++base) {
        if (base & bit)
            continue;
        Complex a0 = amps_[base];
        Complex a1 = amps_[base | bit];
        amps_[base] = u.m00 * a0 + u.m01 * a1;
        amps_[base | bit] = u.m10 * a0 + u.m11 * a1;
    }
}

void
Statevector::applyControlled1q(const std::vector<int> &controls, int target,
                               const Mat2 &u)
{
    if (controls.empty()) {
        apply1q(target, u);
        return;
    }
    checkQubit(target);
    uint64_t cmask = 0;
    for (int c : controls) {
        checkQubit(c);
        panic_if(c == target, "control equals target {}", c);
        cmask |= uint64_t{1} << c;
    }
    const uint64_t bit = uint64_t{1} << target;
    const uint64_t dim = amps_.size();
    for (uint64_t base = 0; base < dim; ++base) {
        if ((base & bit) || (base & cmask) != cmask)
            continue;
        Complex a0 = amps_[base];
        Complex a1 = amps_[base | bit];
        amps_[base] = u.m00 * a0 + u.m01 * a1;
        amps_[base | bit] = u.m10 * a0 + u.m11 * a1;
    }
}

void
Statevector::applySwap(int a, int b)
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        return;
    const uint64_t bit_a = uint64_t{1} << a;
    const uint64_t bit_b = uint64_t{1} << b;
    const uint64_t dim = amps_.size();
    for (uint64_t i = 0; i < dim; ++i) {
        bool va = i & bit_a;
        bool vb = i & bit_b;
        if (va && !vb)
            std::swap(amps_[i], amps_[(i ^ bit_a) | bit_b]);
    }
}

void
Statevector::applyGate(const circuit::Gate &gate)
{
    using circuit::GateKind;
    switch (gate.kind) {
      case GateKind::Barrier:
        return;
      case GateKind::Measure:
      case GateKind::Reset:
        panic("mid-circuit {} needs an rng: use runTrajectory or "
              "measureQubit/resetQubit",
              circuit::gateName(gate.kind));
        return;
      case GateKind::Swap:
        applySwap(gate.targets[0], gate.targets[1]);
        return;
      default:
        applyControlled1q(gate.controls, gate.targets[0],
                          gateMatrix(gate.kind, gate.param));
        return;
    }
}

void
Statevector::applyCircuit(const circuit::Circuit &circ)
{
    fatal_if(circ.numQubits() > numQubits_,
             "circuit needs {} qubits, register has {}", circ.numQubits(),
             numQubits_);
    for (const circuit::Gate &g : circ.gates())
        applyGate(g);
}

void
Statevector::applyDiagonalPhase(
    const std::function<double(const BitVec &)> &phase)
{
    for (uint64_t i = 0; i < amps_.size(); ++i) {
        if (std::norm(amps_[i]) == 0.0)
            continue;
        amps_[i] *= std::exp(kI * phase(BitVec::fromIndex(i)));
    }
}

void
Statevector::applyDiagonalEvolution(const std::vector<double> &values,
                                    double scale)
{
    fatal_if(values.size() != amps_.size(),
             "diagonal has {} entries, state has {}", values.size(),
             amps_.size());
    for (size_t i = 0; i < amps_.size(); ++i)
        amps_[i] *= std::exp(kI * (-scale * values[i]));
}

Counts
Statevector::sample(Rng &rng, uint64_t shots, int num_bits) const
{
    if (num_bits < 0)
        num_bits = numQubits_;
    // Build the cumulative distribution once, then binary-search per shot.
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    for (size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cdf[i] = acc;
    }
    fatal_if(acc < 1e-12, "sampling from a zero state");

    const uint64_t mask = num_bits >= 64
                              ? ~uint64_t{0}
                              : ((uint64_t{1} << num_bits) - 1);
    Counts counts;
    for (uint64_t s = 0; s < shots; ++s) {
        double r = rng.uniformReal(0.0, acc);
        auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        uint64_t idx = static_cast<uint64_t>(it - cdf.begin());
        if (idx >= amps_.size())
            idx = amps_.size() - 1;
        counts.add(BitVec::fromIndex(idx & mask));
    }
    return counts;
}

double
Statevector::probabilityOfOne(int q) const
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    double p = 0.0;
    for (uint64_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p += std::norm(amps_[i]);
    return p;
}

bool
Statevector::measureQubit(int q, Rng &rng)
{
    checkQubit(q);
    double p1 = probabilityOfOne(q);
    bool outcome = rng.bernoulli(p1);
    const uint64_t bit = uint64_t{1} << q;
    for (uint64_t i = 0; i < amps_.size(); ++i) {
        bool is_one = i & bit;
        if (is_one != outcome)
            amps_[i] = 0.0;
    }
    renormalize();
    return outcome;
}

void
Statevector::resetQubit(int q, Rng &rng)
{
    if (measureQubit(q, rng))
        apply1q(q, gateMatrix(circuit::GateKind::X, 0.0));
}

} // namespace rasengan::qsim
