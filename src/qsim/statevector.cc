#include "qsim/statevector.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/prof.h"
#include "qsim/simd.h"

namespace rasengan::qsim {

namespace {

constexpr Complex kI{0.0, 1.0};

/** Grain for the gate kernels: states below ~2^14 amplitudes stay on
 *  the scalar path (pool dispatch would dominate). */
constexpr uint64_t kGateGrain = parallel::kDefaultGrain;

/** Minimum circuit size for which fusing pays off. */
constexpr size_t kFusionMinGates = 4;

/** Insert a zero bit at position `bit` of the compact pair index `h`,
 *  mapping [0, dim/2) onto the indices whose `bit` is clear. */
inline uint64_t
expandIndex(uint64_t h, uint64_t low_mask)
{
    return ((h & ~low_mask) << 1) | (h & low_mask);
}

} // namespace

Statevector::Statevector(int num_qubits) : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0 || num_qubits > 30,
             "dense statevector limited to 30 qubits, got {}", num_qubits);
    amps_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

Statevector::Statevector(int num_qubits, const BitVec &basis)
    : Statevector(num_qubits)
{
    uint64_t idx = basis.toIndex();
    panic_if(idx >= amps_.size(), "basis state outside register");
    amps_[0] = 0.0;
    amps_[idx] = 1.0;
}

void
Statevector::checkQubit(int q) const
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range [0, {})", q,
             numQubits_);
}

double
Statevector::normSquared() const
{
    return parallel::reduceBlocks(
        0, amps_.size(), parallel::kReduceBlock,
        [this](uint64_t lo, uint64_t hi) {
            double acc = 0.0;
            for (uint64_t i = lo; i < hi; ++i)
                acc += std::norm(amps_[i]);
            return acc;
        });
}

void
Statevector::renormalize()
{
    double n2 = normSquared();
    panic_if(n2 < 1e-300, "renormalizing a zero state");
    const double inv = 1.0 / std::sqrt(n2);
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t lo, uint64_t hi) {
                              for (uint64_t i = lo; i < hi; ++i)
                                  amps_[i] *= inv;
                          });
}

Complex
Statevector::inner(const Statevector &other) const
{
    panic_if(numQubits_ != other.numQubits_,
             "inner product across register sizes {} vs {}", numQubits_,
             other.numQubits_);
    return parallel::reduceBlocksComplex(
        0, amps_.size(), parallel::kReduceBlock,
        [&](uint64_t lo, uint64_t hi) {
            Complex acc{0.0, 0.0};
            for (uint64_t i = lo; i < hi; ++i)
                acc += std::conj(amps_[i]) * other.amps_[i];
            return acc;
        });
}

void
Statevector::apply1q(int target, const Mat2 &u)
{
    checkQubit(target);
    const uint64_t bit = uint64_t{1} << target;
    const uint64_t low = bit - 1;
    const uint64_t pairs = amps_.size() >> 1;
    const SimdKernels &kern = simdKernels();
    if (target == 0) {
        // Pairs (2h, 2h+1) are adjacent in memory.
        parallel::parallelFor(0, pairs, kGateGrain,
                              [&](uint64_t h0, uint64_t h1) {
            kern.pairRotateAdjacent(amps_.data(), h0, h1, u);
        });
        return;
    }
    // The compact pair space decomposes into runs of 2^target
    // consecutive h mapping to consecutive bases; feed each run
    // (clipped to the chunk) to the strided kernel.
    parallel::parallelFor(0, pairs, kGateGrain,
                          [&](uint64_t h0, uint64_t h1) {
        uint64_t h = h0;
        while (h < h1) {
            const uint64_t run_end = std::min(h1, (h | low) + 1);
            kern.pairRotateStrided(amps_.data(), expandIndex(h, low),
                                   run_end - h, bit, u);
            h = run_end;
        }
    });
}

void
Statevector::applyControlled1q(const std::vector<int> &controls, int target,
                               const Mat2 &u)
{
    if (controls.empty()) {
        apply1q(target, u);
        return;
    }
    checkQubit(target);
    uint64_t cmask = 0;
    for (int c : controls) {
        checkQubit(c);
        panic_if(c == target, "control equals target {}", c);
        cmask |= uint64_t{1} << c;
    }
    const uint64_t bit = uint64_t{1} << target;
    const uint64_t low = bit - 1;
    const uint64_t pairs = amps_.size() >> 1;
    const SimdKernels &kern = simdKernels();
    // Accumulate maximal contiguous control-satisfying base segments
    // (contiguity breaks at run boundaries, where bases jump) and hand
    // each to the strided kernel.
    parallel::parallelFor(0, pairs, kGateGrain,
                          [&](uint64_t h0, uint64_t h1) {
        uint64_t seg_base = 0;
        uint64_t seg_len = 0;
        auto flush = [&]() {
            if (seg_len != 0)
                kern.pairRotateStrided(amps_.data(), seg_base, seg_len,
                                       bit, u);
            seg_len = 0;
        };
        for (uint64_t h = h0; h < h1; ++h) {
            uint64_t base = expandIndex(h, low);
            if ((base & cmask) != cmask) {
                flush();
                continue;
            }
            if (seg_len != 0 && base == seg_base + seg_len) {
                ++seg_len;
            } else {
                flush();
                seg_base = base;
                seg_len = 1;
            }
        }
        flush();
    });
}

void
Statevector::applySwap(int a, int b)
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        return;
    const uint64_t bit_a = uint64_t{1} << a;
    const uint64_t bit_b = uint64_t{1} << b;
    // Each index with a=1,b=0 swaps with its a=0,b=1 partner; every
    // element belongs to at most one such pair, so chunks never write
    // each other's data even though partners cross chunk boundaries.
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t i0, uint64_t i1) {
        for (uint64_t i = i0; i < i1; ++i) {
            bool va = i & bit_a;
            bool vb = i & bit_b;
            if (va && !vb)
                std::swap(amps_[i], amps_[(i ^ bit_a) | bit_b]);
        }
    });
}

void
Statevector::applyGate(const circuit::Gate &gate)
{
    using circuit::GateKind;
    switch (gate.kind) {
      case GateKind::Barrier:
        return;
      case GateKind::Measure:
      case GateKind::Reset:
        panic("mid-circuit {} needs an rng: use runTrajectory or "
              "measureQubit/resetQubit",
              circuit::gateName(gate.kind));
        return;
      case GateKind::Swap:
        applySwap(gate.targets[0], gate.targets[1]);
        return;
      default:
        applyControlled1q(gate.controls, gate.targets[0],
                          gateMatrix(gate.kind, gate.param));
        return;
    }
}

void
Statevector::applyCircuit(const circuit::Circuit &circ)
{
    fatal_if(circ.numQubits() > numQubits_,
             "circuit needs {} qubits, register has {}", circ.numQubits(),
             numQubits_);
    RASENGAN_PROF("kernel", "dense-apply-circuit");
    if (circuit::fusionEnabled() && circ.size() >= kFusionMinGates) {
        applyFused(circuit::fuseCircuit(circ));
        return;
    }
    for (const circuit::Gate &g : circ.gates())
        applyGate(g);
}

void
Statevector::applyFused(const circuit::FusedProgram &prog)
{
    fatal_if(prog.numQubits > numQubits_,
             "fused program needs {} qubits, register has {}",
             prog.numQubits, numQubits_);
    RASENGAN_PROF("kernel", "dense-apply-fused");
    using Kind = circuit::FusedOp::Kind;
    for (const circuit::FusedOp &op : prog.ops) {
        switch (op.kind) {
          case Kind::Unitary1q:
            apply1q(op.target, op.unitary);
            break;
          case Kind::Controlled1q:
            applyControlled1q(op.controls, op.target, op.unitary);
            break;
          case Kind::Swap:
            applySwap(op.target, op.other);
            break;
          case Kind::Diagonal:
            applyDiagonalTerms(op.diag);
            break;
          case Kind::Measure:
          case Kind::Reset:
            panic("mid-circuit measure/reset needs an rng: use "
                  "runTrajectory or measureQubit/resetQubit");
        }
    }
}

void
Statevector::applyDiagonalTerms(const std::vector<circuit::DiagTerm> &terms)
{
    if (terms.empty())
        return;
    const SimdKernels &kern = simdKernels();
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t i0, uint64_t i1) {
        kern.diagonalTerms(amps_.data(), terms.data(), terms.size(), i0,
                           i1);
    });
}

void
Statevector::applyDiagonalPhase(
    const std::function<double(const BitVec &)> &phase)
{
    // Serial on purpose: the callback may capture state.  Zero
    // amplitudes skip the BitVec construction and the callback
    // entirely, and the exp of a repeated phase value is reused (many
    // objective-derived phases are piecewise constant).
    double cached_phase = 0.0;
    Complex cached_exp{1.0, 0.0};
    bool have_cache = false;
    for (uint64_t i = 0; i < amps_.size(); ++i) {
        if (std::norm(amps_[i]) == 0.0)
            continue;
        double p = phase(BitVec::fromIndex(i));
        if (!have_cache || p != cached_phase) {
            cached_phase = p;
            cached_exp = std::exp(kI * p);
            have_cache = true;
        }
        amps_[i] *= cached_exp;
    }
}

void
Statevector::applyDiagonalEvolution(const std::vector<double> &values,
                                    double scale)
{
    fatal_if(values.size() != amps_.size(),
             "diagonal has {} entries, state has {}", values.size(),
             amps_.size());
    const SimdKernels &kern = simdKernels();
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t i0, uint64_t i1) {
        kern.diagonalEvolution(amps_.data(), values.data(), scale, i0,
                               i1);
    });
}

Counts
Statevector::sample(Rng &rng, uint64_t shots, int num_bits) const
{
    RASENGAN_PROF("sample", "dense-sample");
    if (num_bits < 0)
        num_bits = numQubits_;
    std::vector<double> weights(amps_.size());
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t i0, uint64_t i1) {
                              for (uint64_t i = i0; i < i1; ++i)
                                  weights[i] = std::norm(amps_[i]);
                          });
    double total = parallel::reduceBlocks(
        0, weights.size(), parallel::kReduceBlock,
        [&](uint64_t lo, uint64_t hi) {
            double acc = 0.0;
            for (uint64_t i = lo; i < hi; ++i)
                acc += weights[i];
            return acc;
        });
    fatal_if(total < 1e-12, "sampling from a zero state");

    AliasTable table(weights);
    const uint64_t mask = num_bits >= 64
                              ? ~uint64_t{0}
                              : ((uint64_t{1} << num_bits) - 1);
    Counts counts;
    for (uint64_t s = 0; s < shots; ++s) {
        uint64_t idx = table.sample(rng);
        counts.add(BitVec::fromIndex(idx & mask));
    }
    return counts;
}

double
Statevector::probabilityOfOne(int q) const
{
    checkQubit(q);
    const uint64_t bit = uint64_t{1} << q;
    const uint64_t low = bit - 1;
    return parallel::reduceBlocks(
        0, amps_.size() >> 1, parallel::kReduceBlock,
        [&](uint64_t h0, uint64_t h1) {
            double acc = 0.0;
            for (uint64_t h = h0; h < h1; ++h)
                acc += std::norm(amps_[expandIndex(h, low) | bit]);
            return acc;
        });
}

bool
Statevector::measureQubit(int q, Rng &rng)
{
    checkQubit(q);
    double p1 = probabilityOfOne(q);
    bool outcome = rng.bernoulli(p1);
    const uint64_t bit = uint64_t{1} << q;
    parallel::parallelFor(0, amps_.size(), kGateGrain,
                          [&](uint64_t i0, uint64_t i1) {
        for (uint64_t i = i0; i < i1; ++i) {
            bool is_one = i & bit;
            if (is_one != outcome)
                amps_[i] = 0.0;
        }
    });
    renormalize();
    return outcome;
}

void
Statevector::resetQubit(int q, Rng &rng)
{
    if (measureQubit(q, rng))
        apply1q(q, gateMatrix(circuit::GateKind::X, 0.0));
}

} // namespace rasengan::qsim
