/**
 * @file
 * Small exact density-matrix simulator.
 *
 * Uses the vectorization trick: an n-qubit density matrix rho is stored as
 * a 2n-qubit statevector vec(rho), on which a unitary U acts as U (x) U*
 * (row wires 0..n-1, column wires n..2n-1) and a Kraus channel acts as
 * sum_i K_i (x) K_i*.  Practical to ~7 qubits; used to validate the
 * trajectory-noise machinery and for exact small-case noise studies.
 */

#ifndef RASENGAN_QSIM_DENSITY_H
#define RASENGAN_QSIM_DENSITY_H

#include <vector>

#include "qsim/noise.h"
#include "qsim/statevector.h"

namespace rasengan::qsim {

class DensityMatrix
{
  public:
    /** Initialize to |basis><basis| on @p num_qubits wires. */
    DensityMatrix(int num_qubits, const BitVec &basis);

    int numQubits() const { return numQubits_; }

    /** rho_{xx}: probability of basis state @p x. */
    double probability(const BitVec &x) const;

    /** All diagonal entries, indexed by basis index. */
    std::vector<double> diagonal() const;

    /** Trace (1 up to float error for trace-preserving evolution). */
    double trace() const;

    /** Purity tr(rho^2): 1 for pure states, < 1 for mixed states. */
    double purity() const;

    /** Apply a unitary gate: rho -> U rho U^dagger. */
    void applyGate(const circuit::Gate &gate);
    void applyCircuit(const circuit::Circuit &circ);

    /** Exact 1q Kraus channel: rho -> sum_i K_i rho K_i^dagger. */
    void applyKraus1q(int target, const std::vector<Mat2> &kraus);

    /** Exact depolarizing channel with probability @p p on @p target. */
    void applyDepolarizing(int target, double p);

    /** Exact amplitude damping with rate @p gamma on @p target. */
    void applyAmplitudeDamping(int target, double gamma);

    /** Exact phase damping with rate @p lambda on @p target. */
    void applyPhaseDamping(int target, double lambda);

    /**
     * Apply @p circ with the post-gate channels of @p noise inserted
     * exactly (no sampling).  Readout error is not applied here; use
     * sample() + applyReadoutError.
     */
    void applyNoisyCircuit(const circuit::Circuit &circ,
                           const NoiseModel &noise);

    /** Sample measurement outcomes from the diagonal. */
    Counts sample(Rng &rng, uint64_t shots, int num_bits = -1) const;

  private:
    int numQubits_;
    Statevector vec_; ///< vec(rho) on 2n wires
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_DENSITY_H
