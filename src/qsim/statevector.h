/**
 * @file
 * Dense statevector simulator.
 *
 * Stores all 2^n complex amplitudes; practical to ~24 qubits.  Supports
 * every gate the circuit IR defines (multi-controlled gates natively, so
 * circuits can be simulated either before or after transpilation) and
 * measurement sampling.  Used for the baseline VQAs and for the exactness
 * tests of the sparse simulator and the transpiler.
 *
 * Performance substrate:
 *  - every O(2^n) kernel (gate application, norms, inner products,
 *    collapse) runs on the deterministic thread pool (common/parallel.h)
 *    above a size threshold; results are bit-identical at any thread
 *    count (reductions use fixed-block summation);
 *  - applyCircuit transparently routes measurement-free circuits through
 *    the gate-fusion pass (circuit/fusion.h) when fusion is enabled;
 *  - sample() builds an O(dim) alias table and draws each shot in O(1)
 *    (counts.h), replacing the O(dim) CDF + O(log dim) binary search.
 */

#ifndef RASENGAN_QSIM_STATEVECTOR_H
#define RASENGAN_QSIM_STATEVECTOR_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/gatematrix.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "qsim/counts.h"

namespace rasengan::qsim {

using Complex = std::complex<double>;

/** 2x2 unitary in row-major order (defined in circuit/gatematrix.h). */
using Mat2 = circuit::Mat2;

/** The 2x2 matrix of a single-qubit gate kind with parameter @p theta. */
using circuit::gateMatrix;

class Statevector
{
  public:
    /** Initialize to |0...0> on @p num_qubits wires. */
    explicit Statevector(int num_qubits);

    /** Initialize to the computational basis state @p basis. */
    Statevector(int num_qubits, const BitVec &basis);

    int numQubits() const { return numQubits_; }
    size_t dimension() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }

    /** Mutable amplitude access (density-matrix accumulation, tests). */
    std::vector<Complex> &mutableAmplitudes() { return amps_; }

    Complex
    amplitude(const BitVec &basis) const
    {
        return amps_[basis.toIndex()];
    }

    /** Probability of measuring @p basis. */
    double
    probability(const BitVec &basis) const
    {
        return std::norm(amps_[basis.toIndex()]);
    }

    /** Squared norm (1 up to float error for unitary evolution). */
    double normSquared() const;

    /** Rescale to unit norm; aborts on a numerically zero state. */
    void renormalize();

    /** <this|other>. */
    Complex inner(const Statevector &other) const;

    /// @name Gate application
    /// @{
    void apply1q(int target, const Mat2 &u);
    /** Apply @p u on @p target where all @p controls are |1>. */
    void applyControlled1q(const std::vector<int> &controls, int target,
                           const Mat2 &u);
    void applySwap(int a, int b);
    void applyGate(const circuit::Gate &gate);
    void applyCircuit(const circuit::Circuit &circ);
    /** Execute a fused program (panics on Measure/Reset: needs an rng). */
    void applyFused(const circuit::FusedProgram &prog);
    /** One coalesced diagonal block (phase accumulation per basis state). */
    void applyDiagonalTerms(const std::vector<circuit::DiagTerm> &terms);
    /// @}

    /** Multiply amplitude of each basis state x by e^{i phase(x)}. */
    void applyDiagonalPhase(const std::function<double(const BitVec &)> &phase);

    /**
     * Fast diagonal evolution: amplitude of basis index i is multiplied by
     * e^{-i scale * values[i]} (values.size() must equal dimension()).
     */
    void applyDiagonalEvolution(const std::vector<double> &values,
                                double scale);

    /** Sample @p shots measurement outcomes over the low @p num_bits wires
     *  (default: all wires). */
    Counts sample(Rng &rng, uint64_t shots, int num_bits = -1) const;

    /** Marginal probability that qubit @p q reads 1. */
    double probabilityOfOne(int q) const;

    /**
     * Projective Z-basis measurement of @p q: samples an outcome from the
     * Born rule, collapses and renormalizes the state, returns the
     * outcome.
     */
    bool measureQubit(int q, Rng &rng);

    /** Active reset: measure @p q and flip to |0> if it read 1. */
    void resetQubit(int q, Rng &rng);

  private:
    void checkQubit(int q) const;

    int numQubits_;
    std::vector<Complex> amps_;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_STATEVECTOR_H
