/**
 * @file
 * Dense statevector simulator.
 *
 * Stores all 2^n complex amplitudes; practical to ~24 qubits.  Supports
 * every gate the circuit IR defines (multi-controlled gates natively, so
 * circuits can be simulated either before or after transpilation) and
 * measurement sampling.  Used for the baseline VQAs and for the exactness
 * tests of the sparse simulator and the transpiler.
 */

#ifndef RASENGAN_QSIM_STATEVECTOR_H
#define RASENGAN_QSIM_STATEVECTOR_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "qsim/counts.h"

namespace rasengan::qsim {

using Complex = std::complex<double>;

/** 2x2 unitary in row-major order. */
struct Mat2
{
    Complex m00, m01, m10, m11;
};

/** The 2x2 matrix of a single-qubit gate kind with parameter @p theta. */
Mat2 gateMatrix(circuit::GateKind kind, double theta);

class Statevector
{
  public:
    /** Initialize to |0...0> on @p num_qubits wires. */
    explicit Statevector(int num_qubits);

    /** Initialize to the computational basis state @p basis. */
    Statevector(int num_qubits, const BitVec &basis);

    int numQubits() const { return numQubits_; }
    size_t dimension() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }

    /** Mutable amplitude access (density-matrix accumulation, tests). */
    std::vector<Complex> &mutableAmplitudes() { return amps_; }

    Complex
    amplitude(const BitVec &basis) const
    {
        return amps_[basis.toIndex()];
    }

    /** Probability of measuring @p basis. */
    double
    probability(const BitVec &basis) const
    {
        return std::norm(amps_[basis.toIndex()]);
    }

    /** Squared norm (1 up to float error for unitary evolution). */
    double normSquared() const;

    /** Rescale to unit norm; aborts on a numerically zero state. */
    void renormalize();

    /** <this|other>. */
    Complex inner(const Statevector &other) const;

    /// @name Gate application
    /// @{
    void apply1q(int target, const Mat2 &u);
    /** Apply @p u on @p target where all @p controls are |1>. */
    void applyControlled1q(const std::vector<int> &controls, int target,
                           const Mat2 &u);
    void applySwap(int a, int b);
    void applyGate(const circuit::Gate &gate);
    void applyCircuit(const circuit::Circuit &circ);
    /// @}

    /** Multiply amplitude of each basis state x by e^{i phase(x)}. */
    void applyDiagonalPhase(const std::function<double(const BitVec &)> &phase);

    /**
     * Fast diagonal evolution: amplitude of basis index i is multiplied by
     * e^{-i scale * values[i]} (values.size() must equal dimension()).
     */
    void applyDiagonalEvolution(const std::vector<double> &values,
                                double scale);

    /** Sample @p shots measurement outcomes over the low @p num_bits wires
     *  (default: all wires). */
    Counts sample(Rng &rng, uint64_t shots, int num_bits = -1) const;

    /** Marginal probability that qubit @p q reads 1. */
    double probabilityOfOne(int q) const;

    /**
     * Projective Z-basis measurement of @p q: samples an outcome from the
     * Born rule, collapses and renormalizes the state, returns the
     * outcome.
     */
    bool measureQubit(int q, Rng &rng);

    /** Active reset: measure @p q and flip to |0> if it read 1. */
    void resetQubit(int q, Rng &rng);

  private:
    void checkQubit(int q) const;

    int numQubits_;
    std::vector<Complex> amps_;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_STATEVECTOR_H
