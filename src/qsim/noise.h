/**
 * @file
 * Quantum noise channels and Monte-Carlo trajectory execution.
 *
 * Supported channels (the ones the paper's sensitivity study, Section 5.5,
 * sweeps): depolarizing (Pauli) noise with separate 1q/2q rates, amplitude
 * damping, phase damping, and symmetric readout bit-flip error.  Channels
 * fire after every gate on every qubit the gate touches.
 *
 * Noisy execution uses quantum trajectories: each trajectory samples one
 * Kraus branch per channel application and keeps a pure state, which is
 * exact in distribution; the density-matrix simulator (density.h) provides
 * the closed-form channel application the tests validate trajectories
 * against.
 */

#ifndef RASENGAN_QSIM_NOISE_H
#define RASENGAN_QSIM_NOISE_H

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "qsim/counts.h"
#include "qsim/statevector.h"

namespace rasengan::qsim {

struct NoiseModel
{
    double depol1q = 0.0;          ///< depolarizing prob. per 1q gate
    double depol2q = 0.0;          ///< depolarizing prob. per qubit of a 2q+ gate
    double amplitudeDamping = 0.0; ///< gamma per gate-qubit
    double phaseDamping = 0.0;     ///< lambda per gate-qubit
    double readoutError = 0.0;     ///< per-bit flip prob. at measurement

    bool
    enabled() const
    {
        return depol1q > 0.0 || depol2q > 0.0 || amplitudeDamping > 0.0 ||
               phaseDamping > 0.0 || readoutError > 0.0;
    }
};

/** Apply one sampled Pauli (X, Y or Z, uniformly) to @p q. */
void applyRandomPauli(Statevector &sv, int q, Rng &rng);

/** One sampled branch of the amplitude-damping channel on @p q. */
void applyAmplitudeDampingTrajectory(Statevector &sv, int q, double gamma,
                                     Rng &rng);

/** One sampled branch of the phase-damping channel on @p q. */
void applyPhaseDampingTrajectory(Statevector &sv, int q, double lambda,
                                 Rng &rng);

/** Post-gate noise insertion for one trajectory. */
void applyGateNoise(Statevector &sv, const circuit::Gate &gate,
                    const NoiseModel &noise, Rng &rng);

/**
 * Run a single noisy trajectory of @p circ from basis state @p init on
 * @p num_qubits wires (>= circ.numQubits(); extra wires are ancillas).
 */
Statevector runTrajectory(const circuit::Circuit &circ, int num_qubits,
                          const BitVec &init, const NoiseModel &noise,
                          Rng &rng);

/**
 * Sample @p shots noisy measurement outcomes of @p circ, running
 * @p trajectories independent trajectories and drawing shots from each
 * (shots are distributed as evenly as possible).  Readout error is applied
 * per sampled bitstring over the low @p num_bits wires.
 *
 * @param num_bits how many wires are measured (problem qubits, excluding
 *                 ancillas); -1 measures everything.
 */
Counts sampleNoisy(const circuit::Circuit &circ, int num_qubits,
                   const BitVec &init, const NoiseModel &noise, Rng &rng,
                   uint64_t shots, int trajectories = 16, int num_bits = -1);

/** Flip each of the low @p num_bits bits of every outcome w.p. @p p. */
Counts applyReadoutError(const Counts &counts, int num_bits, double p,
                         Rng &rng);

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_NOISE_H
