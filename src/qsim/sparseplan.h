/**
 * @file
 * Cached rotation plans for the sparse simulator.
 *
 * A Rasengan segment applies a fixed sequence of transition rotations
 * whose *structure* (which basis states pair with which, which states
 * are dark, which partner states get created) depends only on the
 * initial support and the transition masks/patterns -- never on the
 * evolution angles the optimizer tunes.  A SparseSegmentPlan captures
 * that structure once, in index space: per rotation a scatter map from
 * the previous support layout into the next one plus the (plus, minus)
 * index pairs to rotate.  Replaying a plan is then pure arithmetic on a
 * flat amplitude array -- no key classification, no partner search, no
 * key-array rebuilds -- and is bit-identical to the direct kernels
 * (replay applies exactly the scatter + pair rotations the recording
 * run applied).
 *
 * Pruning is the one way the structure can become angle-dependent: if
 * prune() removes a state mid-segment, every later rotation sees a
 * different support.  The contract is therefore:
 *  - a plan recorded while the state's support epoch advanced is marked
 *    non-replayable (recording ran under the caller's prune policy and
 *    pruning actually fired);
 *  - replaySegmentPlan() re-checks the caller's prune threshold after
 *    every step and *aborts* (returns nullopt) the moment any amplitude
 *    falls below it, because the direct path would have pruned there.
 *    The caller falls back to direct execution and invalidates the
 *    plan, so planned and unplanned execution always produce identical
 *    results.
 */

#ifndef RASENGAN_QSIM_SPARSEPLAN_H
#define RASENGAN_QSIM_SPARSEPLAN_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "qsim/sparsestate.h"

namespace rasengan::qsim {

/** Scatter-source sentinel: the slot starts at amplitude zero (a
 *  partner state the rotation creates). */
constexpr uint32_t kPlanNoSource = UINT32_MAX;

/** Index-space structure of one pair rotation. */
struct SparseStepPlan
{
    /**
     * scatter[k] = index in the previous amplitude array whose value
     * seeds slot k of the next array, or kPlanNoSource for a freshly
     * created (zero) slot.  Its size is the post-rotation support size.
     */
    std::vector<uint32_t> scatter;
    /** (plus, minus) slot pairs to rotate, indices into the next array. */
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
};

/** Angle-independent replay recipe for one segment + initial state. */
struct SparseSegmentPlan
{
    int numQubits = 0;
    BitVec initial;
    /**
     * False when the recording run pruned mid-segment: the structure
     * was angle-dependent for the recording angles, so the plan only
     * memoizes that fact (steps/finalKeys are empty).
     */
    bool replayable = true;
    std::vector<SparseStepPlan> steps;
    /** Support after the last step, strictly ascending. */
    std::vector<BitVec> finalKeys;

    /** Rough heap footprint, for ArtifactCache byte accounting. */
    uint64_t approxBytes() const;
};

/**
 * Replay @p plan with per-step angles @p times (times[i] drives step i;
 * the caller guarantees plan.steps.size() angles).  After each step the
 * amplitudes are checked against @p prune_threshold exactly like the
 * direct kernels would; the first would-be prune aborts the replay
 * (returns nullopt) so the caller can fall back to direct execution.
 * @p plan must be replayable.
 */
std::optional<SparseState>
replaySegmentPlan(const SparseSegmentPlan &plan, const double *times,
                  double prune_threshold =
                      SparseState::kDefaultPruneThreshold);

/**
 * FNV-1a fingerprint of the angle-independent inputs of a plan: qubit
 * count, initial basis state, and the (mask, pattern) of every step.
 * Used as the content-address of plans shared across solves.
 */
uint64_t
planStructureFingerprint(int num_qubits, const BitVec &initial,
                         const std::vector<std::pair<BitVec, BitVec>> &steps);

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_SPARSEPLAN_H
