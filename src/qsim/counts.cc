#include "qsim/counts.h"

#include "common/logging.h"

namespace rasengan::qsim {

BitVec
Counts::mostFrequent() const
{
    fatal_if(empty(), "mostFrequent of empty counts");
    const BitVec *best = nullptr;
    uint64_t best_n = 0;
    for (const auto &[outcome, n] : counts_) {
        if (!best || n > best_n || (n == best_n && outcome < *best)) {
            best = &outcome;
            best_n = n;
        }
    }
    return *best;
}

} // namespace rasengan::qsim
