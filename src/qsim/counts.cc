#include "qsim/counts.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rasengan::qsim {

std::vector<std::pair<BitVec, uint64_t>>
Counts::sorted() const
{
    std::vector<std::pair<BitVec, uint64_t>> entries(counts_.begin(),
                                                     counts_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return entries;
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    fatal_if(weights.empty(), "alias table over an empty weight vector");
    const size_t n = weights.size();
    for (double w : weights) {
        // Degenerate inputs reach this point when aggressive noise or
        // degradation collapses a probability vector; fail loudly here
        // instead of sampling from a silently corrupt table.
        panic_if(!std::isfinite(w),
                 "alias table: non-finite weight {} (noise/degradation "
                 "produced an invalid probability vector)",
                 w);
        panic_if(w < 0.0, "alias table: negative weight {}", w);
        total_ += w;
    }
    panic_if(!std::isfinite(total_),
             "alias table: weight sum overflowed to {}", total_);
    fatal_if(total_ <= 0.0,
             "alias table: zero total weight (all outcomes have "
             "probability 0 -- noise or degradation emptied the "
             "distribution)");

    // Vose's method with index-ordered worklists: scaled weight < 1 goes
    // to `small`, >= 1 to `large`; each small slot is topped up by one
    // large donor.  Processing order is a deterministic function of the
    // weights, so the table (and thus every sampled stream) is too.
    prob_.resize(n);
    alias_.resize(n);
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    const double mean = total_ / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] / mean;
        if (scaled[i] < 1.0)
            small.push_back(static_cast<uint32_t>(i));
        else
            large.push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        uint32_t s = small.back();
        uint32_t l = large.back();
        small.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Leftovers are exactly 1 up to rounding: accept unconditionally.
    for (uint32_t l : large) {
        prob_[l] = 1.0;
        alias_[l] = l;
    }
    for (uint32_t s : small) {
        prob_[s] = 1.0;
        alias_[s] = s;
    }
}

BitVec
Counts::mostFrequent() const
{
    fatal_if(empty(), "mostFrequent of empty counts");
    const BitVec *best = nullptr;
    uint64_t best_n = 0;
    for (const auto &[outcome, n] : counts_) {
        if (!best || n > best_n || (n == best_n && outcome < *best)) {
            best = &outcome;
            best_n = n;
        }
    }
    return *best;
}

} // namespace rasengan::qsim
