#include "qsim/density.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace rasengan::qsim {

namespace {

Mat2
conjugated(const Mat2 &u)
{
    return {std::conj(u.m00), std::conj(u.m01),
            std::conj(u.m10), std::conj(u.m11)};
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits, const BitVec &basis)
    : numQubits_(num_qubits), vec_(2 * num_qubits)
{
    fatal_if(num_qubits < 1 || num_qubits > 13,
             "density matrix limited to 13 qubits, got {}", num_qubits);
    uint64_t idx = basis.toIndex();
    BitVec diag = BitVec::fromIndex(idx | (idx << num_qubits));
    vec_ = Statevector(2 * num_qubits, diag);
}

double
DensityMatrix::probability(const BitVec &x) const
{
    uint64_t idx = x.toIndex();
    return vec_.amplitudes()[idx | (idx << numQubits_)].real();
}

std::vector<double>
DensityMatrix::diagonal() const
{
    std::vector<double> out(size_t{1} << numQubits_);
    for (uint64_t i = 0; i < out.size(); ++i)
        out[i] = vec_.amplitudes()[i | (i << numQubits_)].real();
    return out;
}

double
DensityMatrix::trace() const
{
    double acc = 0.0;
    for (double d : diagonal())
        acc += d;
    return acc;
}

double
DensityMatrix::purity() const
{
    // tr(rho^2) = sum_{ij} |rho_{ij}|^2 = || vec(rho) ||^2.
    return vec_.normSquared();
}

void
DensityMatrix::applyGate(const circuit::Gate &gate)
{
    using circuit::GateKind;
    if (gate.kind == GateKind::Barrier)
        return;
    auto shift = [this](const std::vector<int> &qs) {
        std::vector<int> out;
        out.reserve(qs.size());
        for (int q : qs)
            out.push_back(q + numQubits_);
        return out;
    };
    if (gate.kind == GateKind::Swap) {
        vec_.applySwap(gate.targets[0], gate.targets[1]);
        vec_.applySwap(gate.targets[0] + numQubits_,
                       gate.targets[1] + numQubits_);
        return;
    }
    Mat2 u = gateMatrix(gate.kind, gate.param);
    vec_.applyControlled1q(gate.controls, gate.targets[0], u);
    vec_.applyControlled1q(shift(gate.controls),
                           gate.targets[0] + numQubits_, conjugated(u));
}

void
DensityMatrix::applyCircuit(const circuit::Circuit &circ)
{
    fatal_if(circ.numQubits() > numQubits_,
             "circuit needs {} qubits, density matrix has {}",
             circ.numQubits(), numQubits_);
    for (const circuit::Gate &g : circ.gates())
        applyGate(g);
}

void
DensityMatrix::applyKraus1q(int target, const std::vector<Mat2> &kraus)
{
    fatal_if(kraus.empty(), "empty Kraus set");
    // vec(rho) -> sum_i (K_i (x) K_i*) vec(rho): accumulate over branches.
    Statevector acc(2 * numQubits_);
    bool first = true;
    for (const Mat2 &k : kraus) {
        Statevector branch = vec_;
        branch.apply1q(target, k);
        branch.apply1q(target + numQubits_, conjugated(k));
        if (first) {
            acc = std::move(branch);
            first = false;
        } else {
            // Element-wise accumulation through the amplitude vector.
            auto &out = acc.mutableAmplitudes();
            const auto &b = branch.amplitudes();
            parallel::parallelFor(0, out.size(), parallel::kDefaultGrain,
                                  [&](uint64_t i0, uint64_t i1) {
                                      for (uint64_t i = i0; i < i1; ++i)
                                          out[i] += b[i];
                                  });
        }
    }
    vec_ = std::move(acc);
}

void
DensityMatrix::applyDepolarizing(int target, double p)
{
    if (p <= 0.0)
        return;
    fatal_if(p > 1.0, "depolarizing probability {} > 1", p);
    constexpr Complex i{0.0, 1.0};
    double keep = std::sqrt(1.0 - p);
    double each = std::sqrt(p / 3.0);
    std::vector<Mat2> kraus = {
        {keep, 0, 0, keep},                     // sqrt(1-p) I
        {0, each, each, 0},                     // sqrt(p/3) X
        {0, -i * each, i * each, 0},            // sqrt(p/3) Y
        {each, 0, 0, -each},                    // sqrt(p/3) Z
    };
    applyKraus1q(target, kraus);
}

void
DensityMatrix::applyAmplitudeDamping(int target, double gamma)
{
    if (gamma <= 0.0)
        return;
    fatal_if(gamma > 1.0, "amplitude damping gamma {} > 1", gamma);
    std::vector<Mat2> kraus = {
        {1, 0, 0, std::sqrt(1.0 - gamma)},
        {0, std::sqrt(gamma), 0, 0},
    };
    applyKraus1q(target, kraus);
}

void
DensityMatrix::applyPhaseDamping(int target, double lambda)
{
    if (lambda <= 0.0)
        return;
    fatal_if(lambda > 1.0, "phase damping lambda {} > 1", lambda);
    std::vector<Mat2> kraus = {
        {1, 0, 0, std::sqrt(1.0 - lambda)},
        {0, 0, 0, std::sqrt(lambda)},
    };
    applyKraus1q(target, kraus);
}

void
DensityMatrix::applyNoisyCircuit(const circuit::Circuit &circ,
                                 const NoiseModel &noise)
{
    fatal_if(circ.numQubits() > numQubits_,
             "circuit needs {} qubits, density matrix has {}",
             circ.numQubits(), numQubits_);
    for (const circuit::Gate &g : circ.gates()) {
        applyGate(g);
        if (g.kind == circuit::GateKind::Barrier)
            continue;
        double depol = g.isMultiQubit() ? noise.depol2q : noise.depol1q;
        for (int q : g.qubits()) {
            applyDepolarizing(q, depol);
            applyAmplitudeDamping(q, noise.amplitudeDamping);
            applyPhaseDamping(q, noise.phaseDamping);
        }
    }
}

Counts
DensityMatrix::sample(Rng &rng, uint64_t shots, int num_bits) const
{
    if (num_bits < 0)
        num_bits = numQubits_;
    std::vector<double> diag = diagonal();
    // Clamp tiny negative float noise on the diagonal.
    for (double &d : diag)
        d = std::max(d, 0.0);
    const uint64_t mask = num_bits >= 64
                              ? ~uint64_t{0}
                              : ((uint64_t{1} << num_bits) - 1);
    AliasTable table(diag); // O(1)/shot instead of a linear scan
    Counts counts;
    for (uint64_t s = 0; s < shots; ++s) {
        uint64_t idx = table.sample(rng);
        counts.add(BitVec::fromIndex(idx & mask));
    }
    return counts;
}

} // namespace rasengan::qsim
