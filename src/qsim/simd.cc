/**
 * @file
 * SIMD kernel dispatch: ISA detection, RASENGAN_SIMD resolution, and
 * the active-table atomic the engines read on every hot call.
 */

#include "qsim/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rasengan::qsim {
namespace {

const SimdKernels *
tableFor(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return detail::simdScalarTable();
      case SimdIsa::Avx2:
        return detail::simdAvx2Table();
      case SimdIsa::Neon:
        return detail::simdNeonTable();
    }
    return nullptr;
}

bool
cpuSupports(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return true;
      case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case SimdIsa::Neon:
        // NEON is baseline on aarch64, so a compiled-in table implies
        // CPU support.
        return true;
    }
    return false;
}

bool
usable(SimdIsa isa)
{
    return tableFor(isa) != nullptr && cpuSupports(isa);
}

/** Mark @p isa active (1) and every other ISA inactive (0). */
void
publishIsaGauges(SimdIsa active)
{
    static const SimdIsa kAll[] = {SimdIsa::Scalar, SimdIsa::Avx2,
                                   SimdIsa::Neon};
    for (SimdIsa isa : kAll) {
        obs::Registry::global()
            .gauge("simd_isa_info",
                   "Active SIMD kernel ISA (1 = active)",
                   {{"isa", simdIsaName(isa)}})
            .set(isa == active ? 1.0 : 0.0);
    }
}

std::atomic<const SimdKernels *> g_active{nullptr};

/** Resolve RASENGAN_SIMD (default auto) exactly once. */
const SimdKernels *
resolveInitial()
{
    const char *env = std::getenv("RASENGAN_SIMD");
    std::string spec = (env != nullptr && *env != '\0') ? env : "auto";
    std::string error;
    if (!selectSimdIsa(spec, &error)) {
        warn("RASENGAN_SIMD: {}; falling back to auto", error);
        selectSimdIsa("auto");
    }
    return g_active.load(std::memory_order_acquire);
}

const SimdKernels *
activeTable()
{
    const SimdKernels *t = g_active.load(std::memory_order_acquire);
    if (t != nullptr)
        return t;
    static std::once_flag once;
    std::call_once(once, [] { resolveInitial(); });
    return g_active.load(std::memory_order_acquire);
}

} // namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return "scalar";
      case SimdIsa::Avx2:
        return "avx2";
      case SimdIsa::Neon:
        return "neon";
    }
    return "unknown";
}

const SimdKernels &
simdKernels()
{
    return *activeTable();
}

SimdIsa
simdActiveIsa()
{
    return activeTable()->isa;
}

SimdIsa
simdBestIsa()
{
    if (usable(SimdIsa::Avx2))
        return SimdIsa::Avx2;
    if (usable(SimdIsa::Neon))
        return SimdIsa::Neon;
    return SimdIsa::Scalar;
}

std::vector<SimdIsa>
simdAvailableIsas()
{
    std::vector<SimdIsa> out{SimdIsa::Scalar};
    if (usable(SimdIsa::Avx2))
        out.push_back(SimdIsa::Avx2);
    if (usable(SimdIsa::Neon))
        out.push_back(SimdIsa::Neon);
    return out;
}

bool
setSimdIsa(SimdIsa isa)
{
    if (!usable(isa))
        return false;
    g_active.store(tableFor(isa), std::memory_order_release);
    publishIsaGauges(isa);
    return true;
}

bool
selectSimdIsa(const std::string &spec, std::string *error)
{
    SimdIsa isa;
    if (spec == "auto") {
        isa = simdBestIsa();
    } else if (spec == "scalar") {
        isa = SimdIsa::Scalar;
    } else if (spec == "avx2") {
        isa = SimdIsa::Avx2;
    } else if (spec == "neon") {
        isa = SimdIsa::Neon;
    } else {
        if (error != nullptr)
            *error = "unknown SIMD spec '" + spec +
                     "' (want auto|avx2|neon|scalar)";
        return false;
    }
    if (!setSimdIsa(isa)) {
        if (error != nullptr)
            *error = std::string(simdIsaName(isa)) +
                     " is not available on this build/CPU";
        return false;
    }
    return true;
}

} // namespace rasengan::qsim
