#include "qsim/sparsestate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace rasengan::qsim {

namespace {

constexpr SparseState::Complex kI{0.0, 1.0};

} // namespace

SparseState::SparseState(int num_qubits, const BitVec &basis)
    : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0 || num_qubits > kMaxBits,
             "sparse state supports up to {} qubits, got {}", kMaxBits,
             num_qubits);
    amps_.emplace(basis, Complex{1.0, 0.0});
}

SparseState::Complex
SparseState::amplitude(const BitVec &basis) const
{
    auto it = amps_.find(basis);
    return it == amps_.end() ? Complex{0.0, 0.0} : it->second;
}

double
SparseState::probability(const BitVec &basis) const
{
    return std::norm(amplitude(basis));
}

double
SparseState::normSquared() const
{
    double acc = 0.0;
    for (const auto &[_, a] : amps_)
        acc += std::norm(a);
    return acc;
}

void
SparseState::renormalize()
{
    double n2 = normSquared();
    panic_if(n2 < 1e-300, "renormalizing a zero sparse state");
    double inv = 1.0 / std::sqrt(n2);
    for (auto &[_, a] : amps_)
        a *= inv;
}

void
SparseState::prune(double threshold)
{
    for (auto it = amps_.begin(); it != amps_.end();) {
        if (std::norm(it->second) < threshold)
            it = amps_.erase(it);
        else
            ++it;
    }
}

void
SparseState::applyPairRotation(const BitVec &mask, const BitVec &pattern_plus,
                               double t)
{
    panic_if(mask == BitVec{}, "pair rotation with empty support");
    const BitVec pattern_minus = pattern_plus ^ mask;
    const double c = std::cos(t);
    const Complex ms = -kI * std::sin(t);

    // Snapshot the keys: the rotation creates partners not yet in the map.
    std::vector<BitVec> keys;
    keys.reserve(amps_.size());
    std::unordered_set<BitVec, BitVecHash> populated;
    populated.reserve(amps_.size());
    for (const auto &[x, _] : amps_) {
        keys.push_back(x);
        populated.insert(x);
    }

    for (const BitVec &x : keys) {
        BitVec restricted = x & mask;
        if (restricted != pattern_plus && restricted != pattern_minus)
            continue; // dark state: H^tau annihilates it.
        BitVec y = x ^ mask;
        // Process each unordered pair exactly once: from its pattern_plus
        // member, or from the minus member when the plus member was not
        // populated (the rotation still creates it).
        if (restricted == pattern_minus && populated.count(y))
            continue;
        Complex ax = amplitude(x);
        Complex ay = amplitude(y);
        amps_[x] = c * ax + ms * ay;
        amps_[y] = c * ay + ms * ax;
    }
    prune();
}

void
SparseState::applyX(int q)
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range", q);
    Map next;
    next.reserve(amps_.size());
    for (const auto &[x, a] : amps_) {
        BitVec y = x;
        y.flip(q);
        next.emplace(y, a);
    }
    amps_ = std::move(next);
}

void
SparseState::applyPhase(const std::function<double(const BitVec &)> &phase)
{
    for (auto &[x, a] : amps_)
        a *= std::exp(kI * phase(x));
}

Counts
SparseState::sample(Rng &rng, uint64_t shots) const
{
    fatal_if(amps_.empty(), "sampling from an empty sparse state");
    std::vector<BitVec> keys;
    std::vector<double> weights;
    keys.reserve(amps_.size());
    weights.reserve(amps_.size());
    double total = 0.0;
    for (const auto &[x, a] : amps_) {
        keys.push_back(x);
        weights.push_back(std::norm(a));
        total += weights.back();
    }
    fatal_if(!(total > 1e-18) || !std::isfinite(total),
             "sampling from a sparse state with total probability {} "
             "(noise/degradation collapsed the distribution)",
             total);
    AliasTable table(weights); // O(1)/shot instead of a linear scan
    Counts counts;
    for (uint64_t s = 0; s < shots; ++s)
        counts.add(keys[table.sample(rng)]);
    return counts;
}

BitVec
SparseState::mostLikely() const
{
    fatal_if(amps_.empty(), "mostLikely of empty sparse state");
    const BitVec *best = nullptr;
    double best_p = -1.0;
    for (const auto &[x, a] : amps_) {
        double p = std::norm(a);
        if (p > best_p || (p == best_p && (!best || x < *best))) {
            best = &x;
            best_p = p;
        }
    }
    return *best;
}

} // namespace rasengan::qsim
