#include "qsim/sparsestate.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/prof.h"
#include "qsim/simd.h"
#include "qsim/sparseplan.h"

namespace rasengan::qsim {

namespace {

constexpr SparseState::Complex kI{0.0, 1.0};
constexpr uint32_t kAbsent = UINT32_MAX;

/** Roles of a populated state under one transition. */
enum Role : uint8_t { kDark = 0, kPlus = 1, kMinus = 2 };

// The SIMD classify kernel writes these values directly.
static_assert(uint8_t{kDark} == uint8_t{kSimdRoleDark} &&
              uint8_t{kPlus} == uint8_t{kSimdRolePlus} &&
              uint8_t{kMinus} == uint8_t{kSimdRoleMinus});
static_assert(kAbsent == kSimdAbsent);

} // namespace

SparseState::SparseState(int num_qubits, const BitVec &basis)
    : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0 || num_qubits > kMaxBits,
             "sparse state supports up to {} qubits, got {}", kMaxBits,
             num_qubits);
    keys_.push_back(basis);
    amps_.push_back(Complex{1.0, 0.0});
}

SparseState
SparseState::fromSorted(int num_qubits, std::vector<BitVec> keys,
                        std::vector<Complex> amps)
{
    panic_if(keys.size() != amps.size(),
             "sparse state with {} keys but {} amplitudes", keys.size(),
             amps.size());
    panic_if(!std::is_sorted(keys.begin(), keys.end()),
             "fromSorted requires ascending keys");
    SparseState state(num_qubits, BitVec{});
    state.keys_ = std::move(keys);
    state.amps_ = std::move(amps);
    return state;
}

size_t
SparseState::findKey(const BitVec &basis) const
{
    auto it = std::lower_bound(keys_.begin(), keys_.end(), basis);
    if (it == keys_.end() || !(*it == basis))
        return keys_.size();
    return static_cast<size_t>(it - keys_.begin());
}

SparseState::Complex
SparseState::amplitude(const BitVec &basis) const
{
    size_t i = findKey(basis);
    return i == keys_.size() ? Complex{0.0, 0.0} : amps_[i];
}

double
SparseState::probability(const BitVec &basis) const
{
    return std::norm(amplitude(basis));
}

double
SparseState::normSquared() const
{
    return parallel::reduceBlocks(
        0, amps_.size(), parallel::kReduceBlock,
        [&](uint64_t b, uint64_t e) {
            double acc = 0.0;
            for (uint64_t i = b; i < e; ++i)
                acc += std::norm(amps_[i]);
            return acc;
        });
}

void
SparseState::renormalize()
{
    double n2 = normSquared();
    panic_if(n2 < 1e-300, "renormalizing a zero sparse state");
    double inv = 1.0 / std::sqrt(n2);
    parallel::parallelFor(0, amps_.size(), parallel::kDefaultGrain,
                          [&](uint64_t b, uint64_t e) {
                              for (uint64_t i = b; i < e; ++i)
                                  amps_[i] *= inv;
                          });
}

size_t
SparseState::prune(double threshold)
{
    const uint64_t n = amps_.size();
    std::vector<uint8_t> &keep = scratch_.keep;
    keep.resize(n);
    parallel::parallelFor(0, n, parallel::kDefaultGrain,
                          [&](uint64_t b, uint64_t e) {
                              for (uint64_t i = b; i < e; ++i)
                                  keep[i] =
                                      std::norm(amps_[i]) >= threshold;
                          });
    // Serial stable compaction of both arrays (order preserved, so the
    // result is sorted and independent of the thread count).
    uint64_t w = 0;
    for (uint64_t i = 0; i < n; ++i) {
        if (!keep[i])
            continue;
        if (w != i) {
            keys_[w] = keys_[i];
            amps_[w] = amps_[i];
        }
        ++w;
    }
    size_t removed = static_cast<size_t>(n - w);
    if (removed > 0) {
        keys_.resize(w);
        amps_.resize(w);
        ++supportEpoch_;
    }
    return removed;
}

void
SparseState::applyPairRotation(const BitVec &mask,
                               const BitVec &pattern_plus, double t,
                               double prune_threshold,
                               SparseStepPlan *record)
{
    panic_if(mask == BitVec{}, "pair rotation with empty support");
    RASENGAN_PROF("kernel", "sparse-pair-rotation");
    const BitVec pattern_minus = pattern_plus ^ mask;
    const double c = std::cos(t);
    const Complex ms = -kI * std::sin(t);

    const uint64_t n = keys_.size();
    fatal_if(n >= kAbsent / 2, "sparse support of {} states overflows the "
             "32-bit pair-plan index space", n);

    // Pass 1 (parallel): classify every populated state and locate its
    // partner in the sorted key array -- one binary search instead of
    // the hash engine's 4+ lookups per pair.
    std::vector<uint8_t> &role = scratch_.role;
    std::vector<uint32_t> &partner = scratch_.partnerIdx;
    role.resize(n);
    partner.resize(n);
    const SimdKernels &kern = simdKernels();
    if (denseLookupActive()) {
        // Dense direct-index partner lookup: one table load per state
        // instead of a log(n) binary search.  The role logic and the
        // partner key (keys[i] ^ mask) are exactly the classify
        // kernels'; only HOW the partner index is found differs, and
        // the found index is the same integer, so every later pass --
        // and the resulting amplitudes -- are unchanged bit for bit.
        std::vector<uint64_t> &table = scratch_.denseTable;
        const uint64_t table_size = uint64_t{1} << numQubits_;
        if (table.size() != table_size) {
            table.assign(table_size, 0);
            scratch_.denseStamp = 0;
        }
        if (++scratch_.denseStamp == 0) {
            // The 32-bit stamp wrapped; stale entries from 2^32
            // rotations ago could alias, so clear once and restart.
            std::fill(table.begin(), table.end(), uint64_t{0});
            scratch_.denseStamp = 1;
        }
        const uint64_t stamp = uint64_t{scratch_.denseStamp} << 32;
        parallel::parallelFor( // disjoint writes: keys are unique
            0, n, parallel::kDefaultGrain, [&](uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i)
                    table[keys_[i].low64()] = stamp | i;
            });
        const uint64_t mask_lo = mask.low64();
        parallel::parallelFor(
            0, n, parallel::kDefaultGrain, [&](uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i) {
                    const BitVec restricted = keys_[i] & mask;
                    if (restricted == pattern_plus)
                        role[i] = kPlus;
                    else if (restricted == pattern_minus)
                        role[i] = kMinus;
                    else {
                        role[i] = kDark;
                        continue;
                    }
                    const uint64_t entry =
                        table[keys_[i].low64() ^ mask_lo];
                    partner[i] = (entry & ~uint64_t{0xFFFFFFFF}) == stamp
                                     ? static_cast<uint32_t>(entry)
                                     : kAbsent;
                }
            });
    } else {
        parallel::parallelFor(
            0, n, parallel::kDefaultGrain, [&](uint64_t b, uint64_t e) {
                kern.sparseClassify(keys_.data(), n, b, e, mask,
                                    pattern_plus, pattern_minus,
                                    role.data(), partner.data());
            });
    }

    // Pass 2 (serial, index order): enumerate each unordered pair once
    // -- from its plus member, or from the minus member when the plus
    // member is unpopulated (the rotation still creates it).
    auto &created = scratch_.created;
    auto &pairs = scratch_.pairs;
    created.clear();
    pairs.clear();
    size_t both_populated = 0;
    for (uint64_t i = 0; i < n; ++i) {
        if (role[i] == kDark)
            continue;
        if (role[i] == kPlus) {
            if (partner[i] != kAbsent) {
                pairs.emplace_back(static_cast<uint32_t>(i), partner[i]);
                ++both_populated;
            } else {
                created.push_back({keys_[i] ^ mask,
                                   static_cast<uint32_t>(i), kMinus});
            }
        } else if (partner[i] == kAbsent) {
            created.push_back({keys_[i] ^ mask, static_cast<uint32_t>(i),
                               kPlus});
        }
        // minus member with a populated plus partner: handled above.
    }
    std::sort(created.begin(), created.end(),
              [](const Scratch::Created &a, const Scratch::Created &b) {
                  return a.key < b.key;
              });

    // Pass 3 (parallel): index translation old -> merged.  An old key's
    // new slot shifts by the number of created keys below it; a created
    // key's slot is its rank among created plus the number of old keys
    // below it.  (x XOR mask is injective, so created keys are unique
    // and never collide with populated ones.)
    const uint64_t n_created = created.size();
    const uint64_t n_next = n + n_created;
    std::vector<uint32_t> &old_to_new = scratch_.oldToNew;
    old_to_new.resize(n);
    auto created_below = [&](const BitVec &key) {
        return static_cast<uint32_t>(
            std::lower_bound(created.begin(), created.end(), key,
                             [](const Scratch::Created &cr,
                                const BitVec &k) { return cr.key < k; }) -
            created.begin());
    };
    parallel::parallelFor(0, n, parallel::kDefaultGrain,
                          [&](uint64_t b, uint64_t e) {
                              for (uint64_t i = b; i < e; ++i)
                                  old_to_new[i] =
                                      static_cast<uint32_t>(i) +
                                      created_below(keys_[i]);
                          });

    // Pass 4 (parallel): scatter keys and amplitudes into the merged
    // layout; created slots start at amplitude zero.  Disjoint writes.
    std::vector<BitVec> &next_keys = scratch_.nextKeys;
    std::vector<Complex> &next_amps = scratch_.nextAmps;
    next_keys.resize(n_next);
    next_amps.resize(n_next);
    if (record) {
        record->scatter.resize(n_next);
        record->pairs.clear();
    }
    parallel::parallelFor(
        0, n, parallel::kDefaultGrain, [&](uint64_t b, uint64_t e) {
            for (uint64_t i = b; i < e; ++i) {
                uint32_t k = old_to_new[i];
                next_keys[k] = keys_[i];
                next_amps[k] = amps_[i];
                if (record)
                    record->scatter[k] = static_cast<uint32_t>(i);
            }
        });
    std::vector<uint32_t> created_new(n_created);
    parallel::parallelFor(
        0, n_created, parallel::kDefaultGrain,
        [&](uint64_t b, uint64_t e) {
            for (uint64_t j = b; j < e; ++j) {
                uint32_t k = static_cast<uint32_t>(j) +
                             static_cast<uint32_t>(std::lower_bound(
                                                       keys_.begin(),
                                                       keys_.end(),
                                                       created[j].key) -
                                                   keys_.begin());
                created_new[j] = k;
                next_keys[k] = created[j].key;
                next_amps[k] = Complex{0.0, 0.0};
                if (record)
                    record->scatter[k] = kPlanNoSource;
            }
        });

    // Translate the pair list into merged indices: both-populated pairs
    // first (index order), then creation pairs (created-key order) --
    // deterministic regardless of the thread count.
    for (size_t p = 0; p < both_populated; ++p) {
        pairs[p].first = old_to_new[pairs[p].first];
        pairs[p].second = old_to_new[pairs[p].second];
    }
    for (uint64_t j = 0; j < n_created; ++j) {
        uint32_t src = old_to_new[created[j].src];
        if (created[j].side == kMinus)
            pairs.emplace_back(src, created_new[j]);
        else
            pairs.emplace_back(created_new[j], src);
    }

    // Pass 5 (parallel): rotate each pair.  Pairs are disjoint (every
    // slot belongs to at most one), so writes never overlap.
    parallel::parallelFor(
        0, pairs.size(), parallel::kDefaultGrain,
        [&](uint64_t b, uint64_t e) {
            kern.sparsePairRotate(next_amps.data(), pairs.data(), b, e,
                                  c, ms);
        });

    if (record)
        record->pairs.assign(pairs.begin(), pairs.end());

    // Adopt the merged layout; the old storage becomes next round's
    // scratch.
    keys_.swap(next_keys);
    amps_.swap(next_amps);

    if (prune_threshold > 0.0)
        prune(prune_threshold);
}

void
SparseState::applyX(int q)
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range", q);
    const size_t n = keys_.size();
    // Flipping bit q adds 2^q to keys where it was clear and subtracts
    // it where it was set, so each class stays internally sorted after
    // the rewrite: one two-way merge restores global order.  No re-sort.
    std::vector<BitVec> &next_keys = scratch_.nextKeys;
    std::vector<Complex> &next_amps = scratch_.nextAmps;
    next_keys.resize(n);
    next_amps.resize(n);
    std::vector<uint32_t> lo, hi; // indices with bit q set / clear
    lo.reserve(n);
    hi.reserve(n);
    for (size_t i = 0; i < n; ++i)
        (keys_[i].get(q) ? lo : hi).push_back(static_cast<uint32_t>(i));
    auto flipped = [&](uint32_t i) {
        BitVec y = keys_[i];
        y.flip(q);
        return y;
    };
    size_t a = 0, b = 0, w = 0;
    while (a < lo.size() && b < hi.size()) {
        BitVec ka = flipped(lo[a]);
        BitVec kb = flipped(hi[b]);
        if (ka < kb) {
            next_keys[w] = ka;
            next_amps[w++] = amps_[lo[a++]];
        } else {
            next_keys[w] = kb;
            next_amps[w++] = amps_[hi[b++]];
        }
    }
    for (; a < lo.size(); ++a) {
        next_keys[w] = flipped(lo[a]);
        next_amps[w++] = amps_[lo[a]];
    }
    for (; b < hi.size(); ++b) {
        next_keys[w] = flipped(hi[b]);
        next_amps[w++] = amps_[hi[b]];
    }
    keys_.swap(next_keys);
    amps_.swap(next_amps);
}

Counts
SparseState::sample(Rng &rng, uint64_t shots) const
{
    fatal_if(keys_.empty(), "sampling from an empty sparse state");
    RASENGAN_PROF("sample", "sparse-sample");
    const uint64_t n = amps_.size();
    std::vector<double> weights(n);
    parallel::parallelFor(0, n, parallel::kDefaultGrain,
                          [&](uint64_t b, uint64_t e) {
                              for (uint64_t i = b; i < e; ++i)
                                  weights[i] = std::norm(amps_[i]);
                          });
    double total = parallel::reduceBlocks(
        0, n, parallel::kReduceBlock, [&](uint64_t b, uint64_t e) {
            double acc = 0.0;
            for (uint64_t i = b; i < e; ++i)
                acc += weights[i];
            return acc;
        });
    fatal_if(!(total > 1e-18) || !std::isfinite(total),
             "sampling from a sparse state with total probability {} "
             "(noise/degradation collapsed the distribution)",
             total);
    AliasTable table(weights); // O(1)/shot instead of a linear scan
    Counts counts;
    for (uint64_t s = 0; s < shots; ++s)
        counts.add(keys_[table.sample(rng)]);
    return counts;
}

BitVec
SparseState::mostLikely() const
{
    fatal_if(keys_.empty(), "mostLikely of empty sparse state");
    // Keys ascend, so keeping the first maximum ties toward the
    // smallest bitstring.
    size_t best = 0;
    double best_p = std::norm(amps_[0]);
    for (size_t i = 1; i < amps_.size(); ++i) {
        double p = std::norm(amps_[i]);
        if (p > best_p) {
            best = i;
            best_p = p;
        }
    }
    return keys_[best];
}

} // namespace rasengan::qsim
