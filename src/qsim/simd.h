/**
 * @file
 * SIMD kernel tier: runtime-dispatched amplitude kernels.
 *
 * Every hot amplitude loop of the dense and sparse engines is routed
 * through a table of kernel function pointers (SimdKernels).  The table
 * has one implementation per instruction set -- scalar (always built),
 * AVX2 (x86-64, built when the compiler supports -mavx2 and selected
 * only when the CPU reports the feature), NEON (aarch64) -- living in
 * per-ISA translation units so each can be compiled with its own
 * codegen flags without perturbing the rest of the build.
 *
 * Determinism contract.  Results are bit-identical across ISAs and
 * thread counts:
 *
 *  - every arm performs the *same IEEE-754 operations in the same
 *    per-element association* as the scalar reference
 *    (simd_generic.h); vector arms only widen the loop, they never
 *    reassociate, and no arm uses FMA (all simd TUs are compiled with
 *    -ffp-contract=off so the compiler cannot contract on targets
 *    where fused multiply-add is baseline, e.g. aarch64);
 *  - transcendental factors (the sin/cos inside e^{i*angle}) are always
 *    produced by the same scalar libm calls, in every arm;
 *  - kernels slot *beneath* the deterministic parallel-for blocking
 *    (common/parallel.h): they receive chunk ranges and write disjoint
 *    data, so the thread count only reschedules identical work.
 *
 * Selection: RASENGAN_SIMD=auto|avx2|neon|scalar (default auto = best
 * ISA the build and the CPU both support), overridable at runtime with
 * setSimdIsa()/selectSimdIsa() (the CLI --simd flag).  The active ISA
 * is published as the obs gauge `simd_isa_info{isa=...}` and recorded
 * in trace metadata by the CLI/daemon entry points.
 *
 * Switching ISAs while simulation kernels are executing is not
 * supported; callers switch between runs (tests, benches, process
 * startup).
 */

#ifndef RASENGAN_QSIM_SIMD_H
#define RASENGAN_QSIM_SIMD_H

#include <complex>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuit/fusion.h"
#include "circuit/gatematrix.h"
#include "common/bitvec.h"

namespace rasengan::qsim {

enum class SimdIsa : int {
    Scalar = 0,
    Avx2 = 1,
    Neon = 2,
};

/** "scalar", "avx2", "neon". */
const char *simdIsaName(SimdIsa isa);

/** Roles of a populated sparse state under one transition; shared by
 *  the classify kernels and SparseState::applyPairRotation. */
enum SimdRole : uint8_t {
    kSimdRoleDark = 0,
    kSimdRolePlus = 1,
    kSimdRoleMinus = 2,
};

/** Partner-index sentinel: the partner basis state is unpopulated. */
constexpr uint32_t kSimdAbsent = UINT32_MAX;

/**
 * The per-ISA kernel table.  All Complex arrays are the engines' native
 * interleaved std::complex<double> storage; every function operates on
 * an explicit index range so it can run under a parallelFor chunk.
 */
struct SimdKernels
{
    using Complex = std::complex<double>;
    using Mat2 = circuit::Mat2;

    SimdIsa isa = SimdIsa::Scalar;

    /**
     * Dense pair rotation over a contiguous run: for j in [0, len),
     * rotate the amplitude pair (amps[base+j], amps[base+j+bit]) by the
     * 2x2 unitary @p u.  The dense engine decomposes the compact pair
     * index space into such runs (run length 2^target, clipped to the
     * parallel-for chunk); the controlled kernel feeds it the maximal
     * contiguous segments of control-satisfying bases.
     */
    void (*pairRotateStrided)(Complex *amps, uint64_t base, uint64_t len,
                              uint64_t bit, const Mat2 &u);

    /**
     * Dense pair rotation for target qubit 0, where pairs are adjacent
     * in memory: rotate (amps[2h], amps[2h+1]) for h in [h0, h1).
     */
    void (*pairRotateAdjacent)(Complex *amps, uint64_t h0, uint64_t h1,
                               const Mat2 &u);

    /**
     * Batched complex multiply: amps[i] *= factors[i] for i in [0, n),
     * expanded as (ar*br - ai*bi, ai*br + ar*bi).  The primitive behind
     * the diagonal kernels; also exercised directly by the tail-fuzz
     * tests.
     */
    void (*cmulArray)(Complex *amps, const Complex *factors, uint64_t n);

    /**
     * Diagonal evolution: amps[i] *= e^{-i*scale*values[i]} for i in
     * [i0, i1).  The complex exponential is evaluated by scalar libm in
     * every arm; the multiply vectorizes.
     */
    void (*diagonalEvolution)(Complex *amps, const double *values,
                              double scale, uint64_t i0, uint64_t i1);

    /**
     * Coalesced diagonal block (fusion output): for i in [i0, i1),
     * accumulate the phase of every matching DiagTerm and multiply by
     * e^{i*angle} -- skipping (leaving bitwise untouched) amplitudes
     * whose accumulated angle is exactly zero, like the scalar path
     * always did.
     */
    void (*diagonalTerms)(Complex *amps, const circuit::DiagTerm *terms,
                          size_t num_terms, uint64_t i0, uint64_t i1);

    /**
     * Sparse pass 1: for i in [i0, i1) classify keys[i] against the
     * transition support (role[i] in {dark, plus, minus}) and, for
     * non-dark states, lower-bound search the full sorted key array
     * [0, n) for the partner keys[i]^mask (partner[i] = index, or
     * kSimdAbsent when unpopulated).  The AVX2 arm batches four
     * searches through a gather-based branchless lower bound.
     */
    void (*sparseClassify)(const BitVec *keys, uint64_t n, uint64_t i0,
                           uint64_t i1, const BitVec &mask,
                           const BitVec &pattern_plus,
                           const BitVec &pattern_minus, uint8_t *role,
                           uint32_t *partner);

    /**
     * Sparse pass 5 / plan replay: gathered pair rotation.  For p in
     * [p0, p1), rotate the (plus, minus) amplitude pair at indices
     * pairs[p] by angle t: a_plus' = c*a_plus + ms*a_minus and
     * symmetrically, with c = cos(t) and ms = -i*sin(t).
     */
    void (*sparsePairRotate)(Complex *amps,
                             const std::pair<uint32_t, uint32_t> *pairs,
                             uint64_t p0, uint64_t p1, double c,
                             Complex ms);
};

/** The active kernel table (resolving RASENGAN_SIMD on first use). */
const SimdKernels &simdKernels();

/** The active ISA (resolving RASENGAN_SIMD on first use). */
SimdIsa simdActiveIsa();

/** Best ISA this build and CPU support (what `auto` resolves to). */
SimdIsa simdBestIsa();

/** Every ISA usable on this build/CPU, scalar first. */
std::vector<SimdIsa> simdAvailableIsas();

/**
 * Activate @p isa.  Returns false (leaving the current table in place)
 * when the ISA was not compiled in or the CPU lacks it.  Not safe to
 * call while simulation kernels are executing.
 */
bool setSimdIsa(SimdIsa isa);

/**
 * Parse and activate a RASENGAN_SIMD / --simd spec
 * ("auto"|"avx2"|"neon"|"scalar").  Returns false and fills @p error
 * on an unknown name or an unsupported ISA.
 */
bool selectSimdIsa(const std::string &spec, std::string *error = nullptr);

namespace detail {

/** Per-ISA tables; null when the ISA is not compiled into this build. */
const SimdKernels *simdScalarTable();
const SimdKernels *simdAvx2Table();
const SimdKernels *simdNeonTable();

} // namespace detail

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_SIMD_H
