#include "qsim/noise.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace rasengan::qsim {

namespace {

constexpr Complex kI{0.0, 1.0};

} // namespace

void
applyRandomPauli(Statevector &sv, int q, Rng &rng)
{
    switch (rng.uniformInt(0, 2)) {
      case 0:
        sv.apply1q(q, {0, 1, 1, 0}); // X
        break;
      case 1:
        sv.apply1q(q, {0, -kI, kI, 0}); // Y
        break;
      default:
        sv.apply1q(q, {1, 0, 0, -1}); // Z
        break;
    }
}

void
applyAmplitudeDampingTrajectory(Statevector &sv, int q, double gamma,
                                Rng &rng)
{
    if (gamma <= 0.0)
        return;
    fatal_if(gamma > 1.0, "amplitude damping gamma {} > 1", gamma);
    // K1 = [[0, sqrt(g)], [0, 0]] fires with probability g * P(q = 1).
    double p1 = sv.probabilityOfOne(q);
    if (rng.bernoulli(gamma * p1)) {
        sv.apply1q(q, {0, std::sqrt(gamma), 0, 0});
    } else {
        sv.apply1q(q, {1, 0, 0, std::sqrt(1.0 - gamma)});
    }
    sv.renormalize();
}

void
applyPhaseDampingTrajectory(Statevector &sv, int q, double lambda, Rng &rng)
{
    if (lambda <= 0.0)
        return;
    fatal_if(lambda > 1.0, "phase damping lambda {} > 1", lambda);
    // K1 = [[0, 0], [0, sqrt(l)]] fires with probability l * P(q = 1).
    double p1 = sv.probabilityOfOne(q);
    if (rng.bernoulli(lambda * p1)) {
        sv.apply1q(q, {0, 0, 0, std::sqrt(lambda)});
    } else {
        sv.apply1q(q, {1, 0, 0, std::sqrt(1.0 - lambda)});
    }
    sv.renormalize();
}

void
applyGateNoise(Statevector &sv, const circuit::Gate &gate,
               const NoiseModel &noise, Rng &rng)
{
    if (gate.kind == circuit::GateKind::Barrier)
        return;
    double depol = gate.isMultiQubit() ? noise.depol2q : noise.depol1q;
    for (int q : gate.qubits()) {
        if (depol > 0.0 && rng.bernoulli(depol))
            applyRandomPauli(sv, q, rng);
        applyAmplitudeDampingTrajectory(sv, q, noise.amplitudeDamping, rng);
        applyPhaseDampingTrajectory(sv, q, noise.phaseDamping, rng);
    }
}

Statevector
runTrajectory(const circuit::Circuit &circ, int num_qubits,
              const BitVec &init, const NoiseModel &noise, Rng &rng)
{
    fatal_if(num_qubits < circ.numQubits(),
             "trajectory register {} smaller than circuit {}", num_qubits,
             circ.numQubits());
    Statevector sv(num_qubits, init);
    for (const circuit::Gate &g : circ.gates()) {
        if (g.kind == circuit::GateKind::Measure) {
            sv.measureQubit(g.targets[0], rng);
            continue;
        }
        if (g.kind == circuit::GateKind::Reset) {
            sv.resetQubit(g.targets[0], rng);
            continue;
        }
        sv.applyGate(g);
        applyGateNoise(sv, g, noise, rng);
    }
    return sv;
}

Counts
applyReadoutError(const Counts &counts, int num_bits, double p, Rng &rng)
{
    if (p <= 0.0)
        return counts;
    Counts out;
    for (const auto &[outcome, n] : counts.map()) {
        for (uint64_t i = 0; i < n; ++i) {
            BitVec flipped = outcome;
            for (int b = 0; b < num_bits; ++b)
                if (rng.bernoulli(p))
                    flipped.flip(b);
            out.add(flipped);
        }
    }
    return out;
}

Counts
sampleNoisy(const circuit::Circuit &circ, int num_qubits, const BitVec &init,
            const NoiseModel &noise, Rng &rng, uint64_t shots,
            int trajectories, int num_bits)
{
    fatal_if(shots == 0, "sampleNoisy with zero shots");
    if (num_bits < 0)
        num_bits = num_qubits;
    if (!noise.enabled()) {
        Statevector sv(num_qubits, init);
        sv.applyCircuit(circ);
        return sv.sample(rng, shots, num_bits);
    }
    int runs = static_cast<int>(
        std::min<uint64_t>(shots, std::max(trajectories, 1)));
    // Trajectories are embarrassingly parallel.  Child seeds are drawn
    // from the caller's rng *up front*, in trajectory order, so the
    // caller's stream advances identically at any thread count and each
    // trajectory owns an independent deterministic stream (the seed
    // tree described in DESIGN.md).
    std::vector<uint64_t> traj_seeds(runs), sample_seeds(runs);
    for (int r = 0; r < runs; ++r) {
        traj_seeds[r] = rng.engine()();
        sample_seeds[r] = rng.engine()();
    }
    std::vector<Counts> parts(runs);
    parallel::parallelFor(0, static_cast<uint64_t>(runs), 1,
                          [&](uint64_t r0, uint64_t r1) {
        for (uint64_t r = r0; r < r1; ++r) {
            uint64_t slice = shots / runs +
                             (r < shots % runs ? 1 : 0);
            if (slice == 0)
                continue;
            Rng traj_rng(traj_seeds[r]);
            Statevector sv =
                runTrajectory(circ, num_qubits, init, noise, traj_rng);
            Rng sample_rng(sample_seeds[r]);
            parts[r] = sv.sample(sample_rng, slice, num_bits);
        }
    });
    // Merge in trajectory order: the histogram content is
    // order-independent, but the *insertion* order fixes the map
    // iteration order that applyReadoutError consumes rng draws in.
    Counts counts;
    for (const Counts &part : parts)
        for (const auto &[outcome, n] : part.map())
            counts.add(outcome, n);
    return applyReadoutError(counts, num_bits, noise.readoutError, rng);
}

} // namespace rasengan::qsim
