#include "qsim/noise.h"

#include <cmath>

#include "common/logging.h"

namespace rasengan::qsim {

namespace {

constexpr Complex kI{0.0, 1.0};

} // namespace

void
applyRandomPauli(Statevector &sv, int q, Rng &rng)
{
    switch (rng.uniformInt(0, 2)) {
      case 0:
        sv.apply1q(q, {0, 1, 1, 0}); // X
        break;
      case 1:
        sv.apply1q(q, {0, -kI, kI, 0}); // Y
        break;
      default:
        sv.apply1q(q, {1, 0, 0, -1}); // Z
        break;
    }
}

void
applyAmplitudeDampingTrajectory(Statevector &sv, int q, double gamma,
                                Rng &rng)
{
    if (gamma <= 0.0)
        return;
    fatal_if(gamma > 1.0, "amplitude damping gamma {} > 1", gamma);
    // K1 = [[0, sqrt(g)], [0, 0]] fires with probability g * P(q = 1).
    double p1 = sv.probabilityOfOne(q);
    if (rng.bernoulli(gamma * p1)) {
        sv.apply1q(q, {0, std::sqrt(gamma), 0, 0});
    } else {
        sv.apply1q(q, {1, 0, 0, std::sqrt(1.0 - gamma)});
    }
    sv.renormalize();
}

void
applyPhaseDampingTrajectory(Statevector &sv, int q, double lambda, Rng &rng)
{
    if (lambda <= 0.0)
        return;
    fatal_if(lambda > 1.0, "phase damping lambda {} > 1", lambda);
    // K1 = [[0, 0], [0, sqrt(l)]] fires with probability l * P(q = 1).
    double p1 = sv.probabilityOfOne(q);
    if (rng.bernoulli(lambda * p1)) {
        sv.apply1q(q, {0, 0, 0, std::sqrt(lambda)});
    } else {
        sv.apply1q(q, {1, 0, 0, std::sqrt(1.0 - lambda)});
    }
    sv.renormalize();
}

void
applyGateNoise(Statevector &sv, const circuit::Gate &gate,
               const NoiseModel &noise, Rng &rng)
{
    if (gate.kind == circuit::GateKind::Barrier)
        return;
    double depol = gate.isMultiQubit() ? noise.depol2q : noise.depol1q;
    for (int q : gate.qubits()) {
        if (depol > 0.0 && rng.bernoulli(depol))
            applyRandomPauli(sv, q, rng);
        applyAmplitudeDampingTrajectory(sv, q, noise.amplitudeDamping, rng);
        applyPhaseDampingTrajectory(sv, q, noise.phaseDamping, rng);
    }
}

Statevector
runTrajectory(const circuit::Circuit &circ, int num_qubits,
              const BitVec &init, const NoiseModel &noise, Rng &rng)
{
    fatal_if(num_qubits < circ.numQubits(),
             "trajectory register {} smaller than circuit {}", num_qubits,
             circ.numQubits());
    Statevector sv(num_qubits, init);
    for (const circuit::Gate &g : circ.gates()) {
        if (g.kind == circuit::GateKind::Measure) {
            sv.measureQubit(g.targets[0], rng);
            continue;
        }
        if (g.kind == circuit::GateKind::Reset) {
            sv.resetQubit(g.targets[0], rng);
            continue;
        }
        sv.applyGate(g);
        applyGateNoise(sv, g, noise, rng);
    }
    return sv;
}

Counts
applyReadoutError(const Counts &counts, int num_bits, double p, Rng &rng)
{
    if (p <= 0.0)
        return counts;
    Counts out;
    for (const auto &[outcome, n] : counts.map()) {
        for (uint64_t i = 0; i < n; ++i) {
            BitVec flipped = outcome;
            for (int b = 0; b < num_bits; ++b)
                if (rng.bernoulli(p))
                    flipped.flip(b);
            out.add(flipped);
        }
    }
    return out;
}

Counts
sampleNoisy(const circuit::Circuit &circ, int num_qubits, const BitVec &init,
            const NoiseModel &noise, Rng &rng, uint64_t shots,
            int trajectories, int num_bits)
{
    fatal_if(shots == 0, "sampleNoisy with zero shots");
    if (num_bits < 0)
        num_bits = num_qubits;
    if (!noise.enabled()) {
        Statevector sv(num_qubits, init);
        sv.applyCircuit(circ);
        return sv.sample(rng, shots, num_bits);
    }
    int runs = static_cast<int>(
        std::min<uint64_t>(shots, std::max(trajectories, 1)));
    Counts counts;
    for (int r = 0; r < runs; ++r) {
        uint64_t slice = shots / runs + (static_cast<uint64_t>(r) <
                                         shots % runs ? 1 : 0);
        if (slice == 0)
            continue;
        Statevector sv = runTrajectory(circ, num_qubits, init, noise, rng);
        Counts part = sv.sample(rng, slice, num_bits);
        for (const auto &[outcome, n] : part.map())
            counts.add(outcome, n);
    }
    return applyReadoutError(counts, num_bits, noise.readoutError, rng);
}

} // namespace rasengan::qsim
