/**
 * @file
 * Pauli strings and Pauli-sum Hamiltonians.
 *
 * The standard operator algebra underneath VQAs: a PauliString is a
 * tensor product of I/X/Y/Z factors; a PauliHamiltonian is a real linear
 * combination of strings.  Used to express objective Hamiltonians in
 * Ising form (see baselines/qubo.h for the QUBO -> Ising conversion),
 * to compute expectation values on statevectors, and to apply exact
 * diagonal evolution for all-Z sums.
 */

#ifndef RASENGAN_QSIM_PAULI_H
#define RASENGAN_QSIM_PAULI_H

#include <string>
#include <vector>

#include "qsim/statevector.h"

namespace rasengan::qsim {

enum class PauliOp : char {
    I = 'I',
    X = 'X',
    Y = 'Y',
    Z = 'Z',
};

class PauliString
{
  public:
    /** Identity on @p num_qubits wires. */
    explicit PauliString(int num_qubits);

    /** Parse a label like "XZIY" (character i acts on qubit i). */
    static PauliString fromLabel(const std::string &label);

    int numQubits() const { return static_cast<int>(ops_.size()); }
    PauliOp op(int q) const;
    void setOp(int q, PauliOp op);

    /** Number of non-identity factors. */
    int weight() const;

    /** True when every factor is I or Z (diagonal operator). */
    bool isDiagonal() const;

    std::string label() const;

    /** |psi> -> P |psi> (in place). */
    void applyTo(Statevector &sv) const;

    /** <psi| P |psi> (real for Hermitian P up to float error). */
    double expectation(const Statevector &sv) const;

    /**
     * Diagonal eigenvalue on basis state @p x; only valid for diagonal
     * strings (+/-1 depending on the parity of set bits under Z factors).
     */
    int diagonalEigenvalue(const BitVec &x) const;

    friend bool
    operator==(const PauliString &a, const PauliString &b)
    {
        return a.ops_ == b.ops_;
    }

  private:
    std::vector<PauliOp> ops_;
};

/**
 * Append the exact evolution e^{-i theta P} of a single Pauli string to
 * @p circ: per-qubit basis changes (H for X, S-dagger H for Y), a CX
 * parity chain onto the last support qubit, RZ(2 theta), and the
 * conjugation undone.  Identity strings contribute only a global phase
 * and append nothing.
 */
void appendPauliEvolution(circuit::Circuit &circ, const PauliString &p,
                          double theta);

class PauliHamiltonian
{
  public:
    explicit PauliHamiltonian(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    size_t termCount() const { return terms_.size(); }
    const std::vector<std::pair<double, PauliString>> &terms() const
    {
        return terms_;
    }

    /** Add coeff * P; merges with an existing identical string. */
    void addTerm(double coeff, PauliString p);

    /** True when every term is diagonal (I/Z only). */
    bool isDiagonal() const;

    /** <psi| H |psi>. */
    double expectation(const Statevector &sv) const;

    /** Eigenvalue of a diagonal Hamiltonian on basis state @p x. */
    double diagonalValue(const BitVec &x) const;

    /**
     * Exact evolution e^{-i t H} for a DIAGONAL Hamiltonian (aborts
     * otherwise; non-diagonal sums need Trotterization).
     */
    void applyDiagonalEvolution(Statevector &sv, double t) const;

  private:
    int numQubits_;
    std::vector<std::pair<double, PauliString>> terms_;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_PAULI_H
