/**
 * @file
 * Sparse statevector simulator (flat structure-of-arrays engine).
 *
 * Stores only basis states with nonzero amplitude as two parallel
 * vectors: a sorted array of BitVec keys and the matching array of
 * amplitudes.  This is the repository's substitute for the
 * decision-diagram simulator (DDSim) the paper uses: Rasengan circuits
 * evolve an initial feasible basis state through transition operators,
 * so the populated support never exceeds the number of feasible
 * solutions and the simulator scales to the paper's 105-variable
 * instances regardless of qubit count.
 *
 * The central primitive is applyPairRotation(): the exact time evolution
 * e^{-i H^tau(u) t} of a transition Hamiltonian.  Because u has entries in
 * {-1, 0, 1}, a basis state either (a) pairs with exactly one partner
 * (x XOR support mask) when its restriction to the support matches the
 * raising or the lowering pattern, on which the evolution is a two-level
 * rotation, or (b) is annihilated by both terms of H^tau and left intact
 * (Theorem 1's dark-state argument).  No Trotter error is involved.
 *
 * Layout & kernels (vs the former std::unordered_map engine):
 *  - Partner pairing is index arithmetic over the sorted key array: one
 *    binary search per populated state instead of 4+ hash lookups per
 *    pair, and the post-rotation key set is produced by a sorted merge
 *    of the old keys with the (sorted) newly created partners -- no
 *    snapshot vector, no hash set, no rehashing.
 *  - applyX rewrites keys in place and restores sortedness with a
 *    single two-way merge (flipping bit q adds/subtracts 2^q, which
 *    preserves order within each of the two bit-q classes), never a
 *    full re-sort.
 *  - normSquared/renormalize/prune/applyPhase and sample's weight
 *    extraction are contiguous passes parallelized on the shared
 *    common/parallel.h pool with the same index-ordered block-reduction
 *    discipline as the dense kernels: results are bit-identical at any
 *    thread count.
 *  - applyPairRotation can record the index-space structure of the
 *    rotation (scatter + pair indices) into a SparseStepPlan; since
 *    that structure depends only on the support and the transition --
 *    never on the angle -- recorded plans are replayed across optimizer
 *    iterations (see qsim/sparseplan.h).
 *
 * Pruning is a caller-visible policy: applyPairRotation takes the
 * threshold explicitly (<= 0 disables the post-rotation prune), and
 * prune() reports how many states it removed while bumping a support
 * epoch so plan caching can detect that the angle-independence
 * assumption broke for the current angles.
 */

#ifndef RASENGAN_QSIM_SPARSESTATE_H
#define RASENGAN_QSIM_SPARSESTATE_H

#include <complex>
#include <vector>

#include "common/bitvec.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "qsim/counts.h"

namespace rasengan::qsim {

struct SparseStepPlan;

class SparseState
{
  public:
    using Complex = std::complex<double>;

    /**
     * Default post-rotation prune threshold on |amp|^2 (drops states
     * whose amplitude magnitude fell below ~1e-12, i.e. states rotated
     * to numerical zero).
     */
    static constexpr double kDefaultPruneThreshold = 1e-24;

    /** Initialize to the basis state @p basis on @p num_qubits wires. */
    SparseState(int num_qubits, const BitVec &basis);

    /**
     * Adopt an externally built support: @p keys strictly ascending,
     * one amplitude per key.  Used by the rotation-plan replay path.
     */
    static SparseState fromSorted(int num_qubits, std::vector<BitVec> keys,
                                  std::vector<Complex> amps);

    int numQubits() const { return numQubits_; }
    size_t supportSize() const { return keys_.size(); }

    /** Populated basis states, strictly ascending. */
    const std::vector<BitVec> &keys() const { return keys_; }

    /** Amplitudes, parallel to keys(). */
    const std::vector<Complex> &amps() const { return amps_; }

    /**
     * Number of times prune() actually removed states.  A segment plan
     * recorded while the epoch stayed constant is angle-independent;
     * any bump invalidates it (qsim/sparseplan.h).
     */
    uint64_t supportEpoch() const { return supportEpoch_; }

    Complex amplitude(const BitVec &basis) const;
    double probability(const BitVec &basis) const;
    double normSquared() const;
    void renormalize();

    /**
     * Drop entries with |amp|^2 below @p threshold.  Returns the number
     * of states removed; the support epoch advances when that is > 0.
     */
    size_t prune(double threshold = kDefaultPruneThreshold);

    /**
     * Largest qubit count for which the dense direct-index partner
     * lookup may be enabled: a 2^n-entry table at 8 bytes/entry tops
     * out at 8 MiB, and keys are guaranteed to fit one 64-bit word.
     */
    static constexpr int kDenseLookupMaxQubits = 20;

    /**
     * Opt into the dense direct-index partner lookup for
     * applyPairRotation's classify pass: an epoch-stamped 2^n table
     * mapping basis index -> support position replaces the per-state
     * binary search.  Only the partner SEARCH changes -- roles, partner
     * indices, and every downstream floating-point operation are
     * integer-identical to the searched path, so amplitudes are
     * bit-identical with the lookup on or off.  Ignored (falls back to
     * the search) above kDenseLookupMaxQubits.
     */
    void setDenseLookup(bool enabled) { denseLookup_ = enabled; }

    /** Whether the dense lookup is enabled AND applicable here. */
    bool denseLookupActive() const
    {
        return denseLookup_ && numQubits_ <= kDenseLookupMaxQubits;
    }

    /**
     * Exact evolution e^{-i H^tau t} for the transition Hamiltonian whose
     * support is @p mask and whose raising pattern is @p pattern_plus
     * (the support-restricted bits a state must show for x+u to stay
     * binary).  States matching pattern_plus or its support-complement
     * rotate pairwise; all other states are dark and untouched.
     *
     * @p prune_threshold is applied after the rotation (<= 0 keeps every
     * state, including exact zeros).  When @p record is non-null the
     * angle-independent index structure of this rotation is written into
     * it for later replay.
     */
    void applyPairRotation(const BitVec &mask, const BitVec &pattern_plus,
                           double t,
                           double prune_threshold = kDefaultPruneThreshold,
                           SparseStepPlan *record = nullptr);

    /** Pauli-X on wire @p q (key rewrite + two-way merge, no re-sort). */
    void applyX(int q);

    /**
     * Multiply each amplitude by e^{i phase(x)} (diagonal evolution).
     * @p phase must be safe to call from pool threads (a pure function
     * of the bitstring); it is invoked exactly once per populated state.
     */
    template <typename F>
    void
    applyPhase(F &&phase)
    {
        const uint64_t n = keys_.size();
        parallel::parallelFor(
            0, n, parallel::kDefaultGrain, [&](uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i)
                    amps_[i] *= std::exp(Complex{0.0, 1.0} *
                                         phase(keys_[i]));
            });
    }

    /** Sample @p shots outcomes from the Born distribution. */
    Counts sample(Rng &rng, uint64_t shots) const;

    /** Basis state with the largest probability. */
    BitVec mostLikely() const;

  private:
    /** Index of @p basis in keys_, or keys_.size() when absent. */
    size_t findKey(const BitVec &basis) const;

    int numQubits_;
    std::vector<BitVec> keys_; ///< strictly ascending
    std::vector<Complex> amps_;
    uint64_t supportEpoch_ = 0;

    /**
     * Reused per-rotation scratch (roles, partner indices, merge
     * buffers): one SparseState applies many rotations back to back, so
     * keeping these alive avoids an allocation storm on the hot path.
     */
    struct Scratch
    {
        std::vector<uint8_t> role;
        std::vector<uint32_t> partnerIdx;
        struct Created
        {
            BitVec key;
            uint32_t src;  ///< old index whose rotation creates this key
            uint8_t side;  ///< 1: created key is the minus member, 2: plus
        };
        std::vector<Created> created;
        std::vector<uint32_t> oldToNew;
        std::vector<BitVec> nextKeys;
        std::vector<Complex> nextAmps;
        std::vector<std::pair<uint32_t, uint32_t>> pairs;
        std::vector<uint8_t> keep;
        /**
         * Dense lookup table: entry (stamp << 32 | support index) per
         * basis state, valid only when its stamp matches denseStamp.
         * Stamping makes re-population O(support) per rotation instead
         * of O(2^n) clears.
         */
        std::vector<uint64_t> denseTable;
        uint32_t denseStamp = 0;
    };
    Scratch scratch_;
    bool denseLookup_ = false;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_SPARSESTATE_H
