/**
 * @file
 * Sparse statevector simulator.
 *
 * Stores only basis states with nonzero amplitude, keyed by BitVec.  This
 * is the repository's substitute for the decision-diagram simulator
 * (DDSim) the paper uses: Rasengan circuits evolve an initial feasible
 * basis state through transition operators, so the populated support never
 * exceeds the number of feasible solutions and the simulator scales to the
 * paper's 105-variable instances regardless of qubit count.
 *
 * The central primitive is applyPairRotation(): the exact time evolution
 * e^{-i H^tau(u) t} of a transition Hamiltonian.  Because u has entries in
 * {-1, 0, 1}, a basis state either (a) pairs with exactly one partner
 * (x XOR support mask) when its restriction to the support matches the
 * raising or the lowering pattern, on which the evolution is a two-level
 * rotation, or (b) is annihilated by both terms of H^tau and left intact
 * (Theorem 1's dark-state argument).  No Trotter error is involved.
 */

#ifndef RASENGAN_QSIM_SPARSESTATE_H
#define RASENGAN_QSIM_SPARSESTATE_H

#include <complex>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "qsim/counts.h"

namespace rasengan::qsim {

class SparseState
{
  public:
    using Complex = std::complex<double>;
    using Map = std::unordered_map<BitVec, Complex, BitVecHash>;

    /** Initialize to the basis state @p basis on @p num_qubits wires. */
    SparseState(int num_qubits, const BitVec &basis);

    int numQubits() const { return numQubits_; }
    const Map &amplitudes() const { return amps_; }
    size_t supportSize() const { return amps_.size(); }

    Complex amplitude(const BitVec &basis) const;
    double probability(const BitVec &basis) const;
    double normSquared() const;
    void renormalize();

    /** Drop entries with |amp|^2 below @p threshold. */
    void prune(double threshold = 1e-24);

    /**
     * Exact evolution e^{-i H^tau t} for the transition Hamiltonian whose
     * support is @p mask and whose raising pattern is @p pattern_plus
     * (the support-restricted bits a state must show for x+u to stay
     * binary).  States matching pattern_plus or its support-complement
     * rotate pairwise; all other states are dark and untouched.
     */
    void applyPairRotation(const BitVec &mask, const BitVec &pattern_plus,
                           double t);

    /** Pauli-X on wire @p q (rebuilds the key set). */
    void applyX(int q);

    /** Multiply each amplitude by e^{i phase(x)} (diagonal evolution). */
    void applyPhase(const std::function<double(const BitVec &)> &phase);

    /** Sample @p shots outcomes from the Born distribution. */
    Counts sample(Rng &rng, uint64_t shots) const;

    /** Basis state with the largest probability. */
    BitVec mostLikely() const;

  private:
    int numQubits_;
    Map amps_;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_SPARSESTATE_H
