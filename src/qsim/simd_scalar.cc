/**
 * @file
 * Scalar ISA table: thin wrappers around the simd_generic.h reference
 * bodies.  Always compiled in; the fallback on every target and the
 * reference every vector arm is tested against.
 */

#include "qsim/simd.h"
#include "qsim/simd_generic.h"

namespace rasengan::qsim::detail {

namespace {

const SimdKernels kScalarKernels = {
    SimdIsa::Scalar,
    &simd_generic::pairRotateStrided,
    &simd_generic::pairRotateAdjacent,
    &simd_generic::cmulArray,
    &simd_generic::diagonalEvolution,
    &simd_generic::diagonalTerms,
    &simd_generic::sparseClassify,
    &simd_generic::sparsePairRotate,
};

} // namespace

const SimdKernels *
simdScalarTable()
{
    return &kScalarKernels;
}

} // namespace rasengan::qsim::detail
