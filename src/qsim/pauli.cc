#include "qsim/pauli.h"

#include <cmath>

#include "common/logging.h"

namespace rasengan::qsim {

namespace {

constexpr Complex kI{0.0, 1.0};

} // namespace

PauliString::PauliString(int num_qubits)
    : ops_(static_cast<size_t>(num_qubits), PauliOp::I)
{
    fatal_if(num_qubits < 1, "Pauli string needs at least one qubit");
}

PauliString
PauliString::fromLabel(const std::string &label)
{
    PauliString p(static_cast<int>(label.size()));
    for (size_t i = 0; i < label.size(); ++i) {
        switch (label[i]) {
          case 'I': p.ops_[i] = PauliOp::I; break;
          case 'X': p.ops_[i] = PauliOp::X; break;
          case 'Y': p.ops_[i] = PauliOp::Y; break;
          case 'Z': p.ops_[i] = PauliOp::Z; break;
          default: fatal("invalid Pauli label character '{}'", label[i]);
        }
    }
    return p;
}

PauliOp
PauliString::op(int q) const
{
    panic_if(q < 0 || q >= numQubits(), "qubit {} out of range", q);
    return ops_[q];
}

void
PauliString::setOp(int q, PauliOp op)
{
    panic_if(q < 0 || q >= numQubits(), "qubit {} out of range", q);
    ops_[q] = op;
}

int
PauliString::weight() const
{
    int w = 0;
    for (PauliOp op : ops_)
        if (op != PauliOp::I)
            ++w;
    return w;
}

bool
PauliString::isDiagonal() const
{
    for (PauliOp op : ops_)
        if (op == PauliOp::X || op == PauliOp::Y)
            return false;
    return true;
}

std::string
PauliString::label() const
{
    std::string s;
    s.reserve(ops_.size());
    for (PauliOp op : ops_)
        s.push_back(static_cast<char>(op));
    return s;
}

void
PauliString::applyTo(Statevector &sv) const
{
    fatal_if(sv.numQubits() < numQubits(),
             "state has {} qubits, Pauli string needs {}", sv.numQubits(),
             numQubits());
    for (int q = 0; q < numQubits(); ++q) {
        switch (ops_[q]) {
          case PauliOp::I:
            break;
          case PauliOp::X:
            sv.apply1q(q, {0, 1, 1, 0});
            break;
          case PauliOp::Y:
            sv.apply1q(q, {0, -kI, kI, 0});
            break;
          case PauliOp::Z:
            sv.apply1q(q, {1, 0, 0, -1});
            break;
        }
    }
}

double
PauliString::expectation(const Statevector &sv) const
{
    Statevector applied = sv;
    applyTo(applied);
    return sv.inner(applied).real();
}

int
PauliString::diagonalEigenvalue(const BitVec &x) const
{
    panic_if(!isDiagonal(), "eigenvalue of a non-diagonal Pauli string");
    int sign = 1;
    for (int q = 0; q < numQubits(); ++q)
        if (ops_[q] == PauliOp::Z && x.get(q))
            sign = -sign;
    return sign;
}

void
appendPauliEvolution(circuit::Circuit &circ, const PauliString &p,
                     double theta)
{
    constexpr double kHalfPi = 1.57079632679489661923;
    circ.ensureQubits(p.numQubits());
    std::vector<int> support;
    for (int q = 0; q < p.numQubits(); ++q)
        if (p.op(q) != PauliOp::I)
            support.push_back(q);
    if (support.empty())
        return; // identity: global phase only

    // Basis change V with V P V^dagger = Z...Z: H for X factors,
    // S-dagger then H for Y factors.
    for (int q : support) {
        if (p.op(q) == PauliOp::X) {
            circ.h(q);
        } else if (p.op(q) == PauliOp::Y) {
            circ.p(q, -kHalfPi);
            circ.h(q);
        }
    }
    int last = support.back();
    for (size_t i = 0; i + 1 < support.size(); ++i)
        circ.cx(support[i], last);
    circ.rz(last, 2.0 * theta);
    for (size_t i = support.size() - 1; i-- > 0;)
        circ.cx(support[i], last);
    for (auto it = support.rbegin(); it != support.rend(); ++it) {
        if (p.op(*it) == PauliOp::X) {
            circ.h(*it);
        } else if (p.op(*it) == PauliOp::Y) {
            circ.h(*it);
            circ.p(*it, kHalfPi);
        }
    }
}

void
PauliHamiltonian::addTerm(double coeff, PauliString p)
{
    fatal_if(p.numQubits() != numQubits_,
             "term over {} qubits added to {}-qubit Hamiltonian",
             p.numQubits(), numQubits_);
    for (auto &[c, existing] : terms_) {
        if (existing == p) {
            c += coeff;
            return;
        }
    }
    if (coeff != 0.0)
        terms_.emplace_back(coeff, std::move(p));
}

bool
PauliHamiltonian::isDiagonal() const
{
    for (const auto &[c, p] : terms_) {
        (void)c;
        if (!p.isDiagonal())
            return false;
    }
    return true;
}

double
PauliHamiltonian::expectation(const Statevector &sv) const
{
    double acc = 0.0;
    for (const auto &[c, p] : terms_)
        acc += c * p.expectation(sv);
    return acc;
}

double
PauliHamiltonian::diagonalValue(const BitVec &x) const
{
    double acc = 0.0;
    for (const auto &[c, p] : terms_)
        acc += c * p.diagonalEigenvalue(x);
    return acc;
}

void
PauliHamiltonian::applyDiagonalEvolution(Statevector &sv, double t) const
{
    fatal_if(!isDiagonal(),
             "exact evolution requires a diagonal Hamiltonian (Trotterize "
             "non-diagonal sums)");
    sv.applyDiagonalPhase(
        [&](const BitVec &x) { return -t * diagonalValue(x); });
}

} // namespace rasengan::qsim
