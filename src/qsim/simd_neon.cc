/**
 * @file
 * NEON ISA table (aarch64).  One complex<double> per 128-bit q
 * register; each kernel mirrors the scalar reference arithmetic of
 * simd_generic.h exactly -- separate multiply and add/sub steps, no
 * vfma (this TU, like every simd TU, is compiled with
 * -ffp-contract=off, which matters on aarch64 where GCC contracts by
 * default).  The key-search and control-mask kernels delegate to the
 * shared scalar bodies: they are integer-dominated, and the scalar
 * bodies are already the canonical op sequence.
 *
 * Gated on __aarch64__; other targets compile this TU to a null table.
 */

#include "qsim/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "qsim/simd_generic.h"

namespace rasengan::qsim::detail {
namespace {

using Complex = SimdKernels::Complex;
using Mat2 = SimdKernels::Mat2;

/**
 * Complex product (ar*br - ai*bi, ai*br + ar*bi): both lanes of the
 * sub and the add are computed, then the matching lane of each is
 * kept.  Same multiplies, same one add/sub per component as scalar.
 */
inline float64x2_t
cmul2(float64x2_t a, float64x2_t b)
{
    float64x2_t br = vdupq_laneq_f64(b, 0);
    float64x2_t bi = vdupq_laneq_f64(b, 1);
    float64x2_t as = vextq_f64(a, a, 1); // [ai, ar]
    float64x2_t t0 = vmulq_f64(a, br);   // [ar*br, ai*br]
    float64x2_t t1 = vmulq_f64(as, bi);  // [ai*bi, ar*bi]
    float64x2_t sub = vsubq_f64(t0, t1);
    float64x2_t add = vaddq_f64(t0, t1);
    return vsetq_lane_f64(vgetq_lane_f64(add, 1), sub, 1);
}

inline float64x2_t
loadComplex(const Complex &z)
{
    return vld1q_f64(reinterpret_cast<const double *>(&z));
}

void
pairRotateStrided(Complex *amps, uint64_t base, uint64_t len,
                  uint64_t bit, const Mat2 &u)
{
    double *d0 = reinterpret_cast<double *>(amps + base);
    double *d1 = reinterpret_cast<double *>(amps + base + bit);
    const float64x2_t m00 = loadComplex(u.m00);
    const float64x2_t m01 = loadComplex(u.m01);
    const float64x2_t m10 = loadComplex(u.m10);
    const float64x2_t m11 = loadComplex(u.m11);
    for (uint64_t j = 0; j < len; ++j) {
        float64x2_t v0 = vld1q_f64(d0 + 2 * j);
        float64x2_t v1 = vld1q_f64(d1 + 2 * j);
        vst1q_f64(d0 + 2 * j,
                  vaddq_f64(cmul2(v0, m00), cmul2(v1, m01)));
        vst1q_f64(d1 + 2 * j,
                  vaddq_f64(cmul2(v0, m10), cmul2(v1, m11)));
    }
}

void
pairRotateAdjacent(Complex *amps, uint64_t h0, uint64_t h1,
                   const Mat2 &u)
{
    const float64x2_t m00 = loadComplex(u.m00);
    const float64x2_t m01 = loadComplex(u.m01);
    const float64x2_t m10 = loadComplex(u.m10);
    const float64x2_t m11 = loadComplex(u.m11);
    double *d = reinterpret_cast<double *>(amps);
    for (uint64_t h = h0; h < h1; ++h) {
        float64x2_t v0 = vld1q_f64(d + 4 * h);
        float64x2_t v1 = vld1q_f64(d + 4 * h + 2);
        vst1q_f64(d + 4 * h,
                  vaddq_f64(cmul2(v0, m00), cmul2(v1, m01)));
        vst1q_f64(d + 4 * h + 2,
                  vaddq_f64(cmul2(v0, m10), cmul2(v1, m11)));
    }
}

void
cmulArray(Complex *amps, const Complex *factors, uint64_t n)
{
    double *d = reinterpret_cast<double *>(amps);
    const double *f = reinterpret_cast<const double *>(factors);
    for (uint64_t i = 0; i < n; ++i)
        vst1q_f64(d + 2 * i,
                  cmul2(vld1q_f64(d + 2 * i), vld1q_f64(f + 2 * i)));
}

void
diagonalEvolution(Complex *amps, const double *values, double scale,
                  uint64_t i0, uint64_t i1)
{
    double *d = reinterpret_cast<double *>(amps);
    for (uint64_t i = i0; i < i1; ++i) {
        const Complex f =
            simd_generic::phaseFactor(-scale * values[i]);
        vst1q_f64(d + 2 * i, cmul2(vld1q_f64(d + 2 * i),
                                   loadComplex(f)));
    }
}

void
sparsePairRotate(Complex *amps,
                 const std::pair<uint32_t, uint32_t> *pairs, uint64_t p0,
                 uint64_t p1, double c, Complex ms)
{
    double *d = reinterpret_cast<double *>(amps);
    const float64x2_t vc = vdupq_n_f64(c);
    const float64x2_t vms = loadComplex(ms);
    for (uint64_t p = p0; p < p1; ++p) {
        const uint64_t ip = pairs[p].first, im = pairs[p].second;
        float64x2_t ap = vld1q_f64(d + 2 * ip);
        float64x2_t am = vld1q_f64(d + 2 * im);
        vst1q_f64(d + 2 * ip,
                  vaddq_f64(vmulq_f64(vc, ap), cmul2(vms, am)));
        vst1q_f64(d + 2 * im,
                  vaddq_f64(vmulq_f64(vc, am), cmul2(vms, ap)));
    }
}

const SimdKernels kNeonKernels = {
    SimdIsa::Neon,
    &pairRotateStrided,
    &pairRotateAdjacent,
    &cmulArray,
    &diagonalEvolution,
    &simd_generic::diagonalTerms,
    &simd_generic::sparseClassify,
    &sparsePairRotate,
};

} // namespace

const SimdKernels *
simdNeonTable()
{
    return &kNeonKernels;
}

} // namespace rasengan::qsim::detail

#else // !__aarch64__

namespace rasengan::qsim::detail {

const SimdKernels *
simdNeonTable()
{
    return nullptr;
}

} // namespace rasengan::qsim::detail

#endif
