/**
 * @file
 * Measurement-outcome histograms shared by all simulators, and the
 * alias-method sampler that produces them in O(1) per shot.
 */

#ifndef RASENGAN_QSIM_COUNTS_H
#define RASENGAN_QSIM_COUNTS_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"

namespace rasengan::qsim {

/** Histogram of measured basis states. */
class Counts
{
  public:
    using Map = std::unordered_map<BitVec, uint64_t, BitVecHash>;

    Counts() = default;

    void
    add(const BitVec &outcome, uint64_t n = 1)
    {
        counts_[outcome] += n;
        total_ += n;
    }

    const Map &map() const { return counts_; }
    uint64_t total() const { return total_; }
    bool empty() const { return total_ == 0; }
    size_t distinct() const { return counts_.size(); }

    /**
     * Entries in ascending BitVec order.  Every serialization path
     * (JSONL results, bench dumps) and every floating-point
     * accumulation over a histogram must use this instead of map():
     * unordered_map iteration order is hash-seed/platform dependent, so
     * walking it directly makes output bytes and FP summation order
     * irreproducible across builds.
     */
    std::vector<std::pair<BitVec, uint64_t>> sorted() const;

    /** Empirical probability of @p outcome. */
    double
    probability(const BitVec &outcome) const
    {
        if (total_ == 0)
            return 0.0;
        auto it = counts_.find(outcome);
        return it == counts_.end()
                   ? 0.0
                   : static_cast<double>(it->second) /
                         static_cast<double>(total_);
    }

    /**
     * Expectation of a per-outcome scalar under the empirical law.
     * Accumulated in ascending outcome order so the floating-point sum
     * is independent of the hash layout.
     */
    double
    expectation(const std::function<double(const BitVec &)> &value) const
    {
        if (total_ == 0)
            return 0.0;
        double acc = 0.0;
        for (const auto &[outcome, n] : sorted())
            acc += value(outcome) * static_cast<double>(n);
        return acc / static_cast<double>(total_);
    }

    /** Fraction of shots whose outcome satisfies @p pred. */
    double
    fraction(const std::function<bool(const BitVec &)> &pred) const
    {
        if (total_ == 0)
            return 0.0;
        uint64_t hits = 0;
        for (const auto &[outcome, n] : counts_)
            if (pred(outcome))
                hits += n;
        return static_cast<double>(hits) / static_cast<double>(total_);
    }

    /** Keep only outcomes satisfying @p pred (purification primitive). */
    Counts
    filtered(const std::function<bool(const BitVec &)> &pred) const
    {
        Counts out;
        for (const auto &[outcome, n] : counts_)
            if (pred(outcome))
                out.add(outcome, n);
        return out;
    }

    /** Outcome with the highest count; aborts when empty. */
    BitVec mostFrequent() const;

  private:
    Map counts_;
    uint64_t total_ = 0;
};

/**
 * Walker/Vose alias table over an unnormalized weight vector: O(n)
 * construction, O(1) per sample with a single uniform draw and no
 * allocation.  Shared by the dense, sparse, and density-matrix
 * samplers, replacing the per-shot O(log n) CDF binary search (dense)
 * and O(n) linear scan (sparse/density).
 *
 * Construction and sampling are deterministic: the table layout depends
 * only on the weights, and each sample consumes exactly one
 * uniformReal draw from the caller's Rng.
 */
class AliasTable
{
  public:
    /** @p weights must be non-negative with a positive sum (aborts
     *  otherwise). */
    explicit AliasTable(const std::vector<double> &weights);

    size_t size() const { return prob_.size(); }
    double totalWeight() const { return total_; }

    /** Draw one index with probability weights[i] / totalWeight(). */
    size_t
    sample(Rng &rng) const
    {
        double u = rng.uniformReal(0.0, static_cast<double>(prob_.size()));
        size_t slot = static_cast<size_t>(u);
        if (slot >= prob_.size()) // guard the u == n edge
            slot = prob_.size() - 1;
        double frac = u - static_cast<double>(slot);
        return frac < prob_[slot] ? slot : alias_[slot];
    }

  private:
    std::vector<double> prob_;   ///< acceptance threshold per slot
    std::vector<uint32_t> alias_;///< fallback index per slot
    double total_ = 0.0;
};

} // namespace rasengan::qsim

#endif // RASENGAN_QSIM_COUNTS_H
