#include "qsim/sparseplan.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "qsim/simd.h"

namespace rasengan::qsim {

namespace {

constexpr std::complex<double> kI{0.0, 1.0};

} // namespace

uint64_t
SparseSegmentPlan::approxBytes() const
{
    uint64_t bytes = sizeof(SparseSegmentPlan);
    for (const SparseStepPlan &s : steps) {
        bytes += s.scatter.capacity() * sizeof(uint32_t);
        bytes += s.pairs.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
        bytes += sizeof(SparseStepPlan);
    }
    bytes += finalKeys.capacity() * sizeof(BitVec);
    return bytes;
}

std::optional<SparseState>
replaySegmentPlan(const SparseSegmentPlan &plan, const double *times,
                  double prune_threshold)
{
    panic_if(!plan.replayable, "replaying an invalidated segment plan");
    using Complex = SparseState::Complex;

    std::vector<Complex> cur{Complex{1.0, 0.0}};
    std::vector<Complex> next;
    for (size_t step = 0; step < plan.steps.size(); ++step) {
        const SparseStepPlan &sp = plan.steps[step];
        const double c = std::cos(times[step]);
        const Complex ms = -kI * std::sin(times[step]);
        const uint64_t n_next = sp.scatter.size();
        next.resize(n_next);
        parallel::parallelFor(
            0, n_next, parallel::kDefaultGrain,
            [&](uint64_t b, uint64_t e) {
                for (uint64_t k = b; k < e; ++k) {
                    uint32_t src = sp.scatter[k];
                    next[k] = src == kPlanNoSource ? Complex{0.0, 0.0}
                                                   : cur[src];
                }
            });
        const SimdKernels &kern = simdKernels();
        parallel::parallelFor(
            0, sp.pairs.size(), parallel::kDefaultGrain,
            [&](uint64_t b, uint64_t e) {
                kern.sparsePairRotate(next.data(), sp.pairs.data(), b, e,
                                      c, ms);
            });
        cur.swap(next);
        if (prune_threshold > 0.0) {
            // The direct kernels would prune here; the plan's structure
            // no longer matches these angles, so hand back to them.
            // (A boolean OR over blocks: order-independent, so the
            // abort decision is identical at every thread count.)
            std::atomic<bool> would_prune{false};
            parallel::parallelFor(
                0, cur.size(), parallel::kDefaultGrain,
                [&](uint64_t b, uint64_t e) {
                    bool local = false;
                    for (uint64_t i = b; i < e; ++i)
                        local |= std::norm(cur[i]) < prune_threshold;
                    if (local)
                        would_prune.store(true,
                                          std::memory_order_relaxed);
                });
            if (would_prune.load(std::memory_order_relaxed))
                return std::nullopt;
        }
    }
    panic_if(cur.size() != plan.finalKeys.size(),
             "segment plan replay produced {} amplitudes for {} keys",
             cur.size(), plan.finalKeys.size());
    return SparseState::fromSorted(plan.numQubits,
                                   plan.finalKeys, std::move(cur));
}

uint64_t
planStructureFingerprint(int num_qubits, const BitVec &initial,
                         const std::vector<std::pair<BitVec, BitVec>> &steps)
{
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    auto mix64 = [&h](uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= kPrime;
        }
    };
    auto mix_bits = [&](const BitVec &v) {
        mix64(v.low64());
        mix64(v.high64());
    };
    mix64(static_cast<uint64_t>(num_qubits));
    mix_bits(initial);
    mix64(steps.size());
    for (const auto &[mask, pattern] : steps) {
        mix_bits(mask);
        mix_bits(pattern);
    }
    return h;
}

} // namespace rasengan::qsim
