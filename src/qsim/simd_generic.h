/**
 * @file
 * Scalar reference bodies for the SIMD kernel tier.
 *
 * These inline functions define the exact IEEE-754 operation sequence
 * every vector arm must reproduce: complex products expand to
 * (ar*br - ai*bi, ai*br + ar*bi), sums stay in the written order, and
 * nothing is reassociated.  The scalar ISA table is a thin wrapper
 * around them; the AVX2/NEON translation units include this header for
 * their sub-vector-width tails, so a tail element and a full-width lane
 * go through literally the same arithmetic.
 *
 * This header is only included from simd_*.cc translation units, all of
 * which are compiled with -ffp-contract=off (see src/qsim/CMakeLists);
 * that is what makes "same operations" mean "same bits" on targets
 * where the compiler would otherwise contract a*b+c into an FMA.
 */

#ifndef RASENGAN_QSIM_SIMD_GENERIC_H
#define RASENGAN_QSIM_SIMD_GENERIC_H

#include <cmath>
#include <complex>
#include <cstdint>

#include "qsim/simd.h"

namespace rasengan::qsim::simd_generic {

using Complex = std::complex<double>;
using Mat2 = circuit::Mat2;

/** a * b expanded as (ar*br - ai*bi, ai*br + ar*bi). */
inline Complex
cmul(const Complex &a, const Complex &b)
{
    const double ar = a.real(), ai = a.imag();
    const double br = b.real(), bi = b.imag();
    return Complex{ar * br - ai * bi, ai * br + ar * bi};
}

/** Rotate one amplitude pair by the 2x2 unitary u (row-major). */
inline void
rotatePair(Complex &a0, Complex &a1, const Mat2 &u)
{
    const Complex r00 = cmul(a0, u.m00);
    const Complex r01 = cmul(a1, u.m01);
    const Complex r10 = cmul(a0, u.m10);
    const Complex r11 = cmul(a1, u.m11);
    a0 = Complex{r00.real() + r01.real(), r00.imag() + r01.imag()};
    a1 = Complex{r10.real() + r11.real(), r10.imag() + r11.imag()};
}

inline void
pairRotateStrided(Complex *amps, uint64_t base, uint64_t len, uint64_t bit,
                  const Mat2 &u)
{
    Complex *p0 = amps + base;
    Complex *p1 = amps + base + bit;
    for (uint64_t j = 0; j < len; ++j)
        rotatePair(p0[j], p1[j], u);
}

inline void
pairRotateAdjacent(Complex *amps, uint64_t h0, uint64_t h1, const Mat2 &u)
{
    for (uint64_t h = h0; h < h1; ++h)
        rotatePair(amps[2 * h], amps[2 * h + 1], u);
}

inline void
cmulArray(Complex *amps, const Complex *factors, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        amps[i] = cmul(amps[i], factors[i]);
}

/** e^{i*angle} via scalar libm; identical in every arm. */
inline Complex
phaseFactor(double angle)
{
    return std::exp(Complex{0.0, 1.0} * angle);
}

inline void
diagonalEvolution(Complex *amps, const double *values, double scale,
                  uint64_t i0, uint64_t i1)
{
    for (uint64_t i = i0; i < i1; ++i)
        amps[i] = cmul(amps[i], phaseFactor(-scale * values[i]));
}

/** Phase of basis index i under one coalesced diagonal block. */
inline double
diagonalAngle(uint64_t i, const circuit::DiagTerm *terms, size_t num_terms)
{
    double angle = 0.0;
    for (size_t t = 0; t < num_terms; ++t) {
        if ((i & terms[t].controlMask) == terms[t].controlMask)
            angle += (i & terms[t].targetBit) ? terms[t].phase1
                                              : terms[t].phase0;
    }
    return angle;
}

inline void
diagonalTerms(Complex *amps, const circuit::DiagTerm *terms,
              size_t num_terms, uint64_t i0, uint64_t i1)
{
    for (uint64_t i = i0; i < i1; ++i) {
        double angle = diagonalAngle(i, terms, num_terms);
        if (angle != 0.0)
            amps[i] = cmul(amps[i], phaseFactor(angle));
    }
}

/**
 * Branchless lower bound (first index with keys[idx] >= q, or n).
 * Both the scalar arm and the vector arms' tails use this; the AVX2
 * batched search computes the same quantity four queries at a time.
 */
inline uint64_t
lowerBound(const BitVec *keys, uint64_t n, const BitVec &q)
{
    if (n == 0)
        return 0;
    uint64_t base = 0;
    uint64_t len = n;
    while (len > 1) {
        const uint64_t half = len >> 1;
        if (keys[base + half - 1] < q)
            base += half;
        len -= half;
    }
    return base + (keys[base] < q ? 1 : 0);
}

/** Classify + partner-search one populated state (sparse pass 1). */
inline void
classifyOne(const BitVec *keys, uint64_t n, uint64_t i, const BitVec &mask,
            const BitVec &pattern_plus, const BitVec &pattern_minus,
            uint8_t *role, uint32_t *partner)
{
    const BitVec restricted = keys[i] & mask;
    if (restricted == pattern_plus) {
        role[i] = kSimdRolePlus;
    } else if (restricted == pattern_minus) {
        role[i] = kSimdRoleMinus;
    } else {
        role[i] = kSimdRoleDark;
        return;
    }
    const BitVec q = keys[i] ^ mask;
    const uint64_t j = lowerBound(keys, n, q);
    partner[i] = (j < n && keys[j] == q) ? static_cast<uint32_t>(j)
                                         : kSimdAbsent;
}

inline void
sparseClassify(const BitVec *keys, uint64_t n, uint64_t i0, uint64_t i1,
               const BitVec &mask, const BitVec &pattern_plus,
               const BitVec &pattern_minus, uint8_t *role,
               uint32_t *partner)
{
    for (uint64_t i = i0; i < i1; ++i)
        classifyOne(keys, n, i, mask, pattern_plus, pattern_minus, role,
                    partner);
}

/** One gathered pair rotation: a+' = c*a+ + ms*a-, a-' = c*a- + ms*a+. */
inline void
rotateSparsePair(Complex &ap, Complex &am, double c, const Complex &ms)
{
    const Complex sp{c * ap.real(), c * ap.imag()};
    const Complex sm{c * am.real(), c * am.imag()};
    const Complex xp = cmul(ms, am);
    const Complex xm = cmul(ms, ap);
    ap = Complex{sp.real() + xp.real(), sp.imag() + xp.imag()};
    am = Complex{sm.real() + xm.real(), sm.imag() + xm.imag()};
}

inline void
sparsePairRotate(Complex *amps, const std::pair<uint32_t, uint32_t> *pairs,
                 uint64_t p0, uint64_t p1, double c, Complex ms)
{
    for (uint64_t p = p0; p < p1; ++p)
        rotateSparsePair(amps[pairs[p].first], amps[pairs[p].second], c,
                         ms);
}

} // namespace rasengan::qsim::simd_generic

#endif // RASENGAN_QSIM_SIMD_GENERIC_H
