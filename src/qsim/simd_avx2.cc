/**
 * @file
 * AVX2 ISA table.  Two interleaved complex<double> amplitudes per ymm
 * register; 256-bit integer compares and 64-bit gathers drive the
 * sparse classify/search kernel.
 *
 * Determinism: every lane reproduces the scalar reference arithmetic of
 * simd_generic.h -- same multiplies, same adds, same per-element
 * association.  _mm256_addsub_pd computes exactly the scalar
 * (ar*br - ai*bi, ai*br + ar*bi) complex product, no FMA is emitted
 * (this TU is compiled with -mavx2 only, not -mfma, and with
 * -ffp-contract=off), and sub-width tails fall through to the generic
 * bodies, which are the same IEEE op sequence.
 *
 * The whole implementation is gated on __AVX2__ so non-x86 builds (or
 * toolchains without -mavx2) compile this TU down to a null table.
 */

#include "qsim/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "qsim/simd_generic.h"

namespace rasengan::qsim::detail {
namespace {

using Complex = SimdKernels::Complex;
using Mat2 = SimdKernels::Mat2;

/**
 * Complex product per 128-bit lane: for each of the two packed
 * complexes, (ar*br - ai*bi, ai*br + ar*bi) -- the exact scalar
 * expansion (the odd addsub lanes add ai*br + ar*bi; IEEE addition of
 * two products is commutative bitwise).
 */
inline __m256d
cmul4(__m256d a, __m256d b)
{
    __m256d br = _mm256_movedup_pd(b);      // [br0, br0, br1, br1]
    __m256d bi = _mm256_permute_pd(b, 0xF); // [bi0, bi0, bi1, bi1]
    __m256d as = _mm256_permute_pd(a, 0x5); // [ai0, ar0, ai1, ar1]
    return _mm256_addsub_pd(_mm256_mul_pd(a, br),
                            _mm256_mul_pd(as, bi));
}

/** Broadcast one complex<double> to both 128-bit lanes.  Complex is
 *  only 8-byte aligned, so never dereference it as a __m128d. */
inline __m256d
broadcastComplex(const Complex &z)
{
    return _mm256_setr_pd(z.real(), z.imag(), z.real(), z.imag());
}

/** Pack two complexes as [lo, hi] lanes (unaligned-safe). */
inline __m256d
packComplex2(const Complex &lo, const Complex &hi)
{
    return _mm256_setr_pd(lo.real(), lo.imag(), hi.real(), hi.imag());
}

void
pairRotateStrided(Complex *amps, uint64_t base, uint64_t len,
                  uint64_t bit, const Mat2 &u)
{
    double *d0 = reinterpret_cast<double *>(amps + base);
    double *d1 = reinterpret_cast<double *>(amps + base + bit);
    const __m256d m00 = broadcastComplex(u.m00);
    const __m256d m01 = broadcastComplex(u.m01);
    const __m256d m10 = broadcastComplex(u.m10);
    const __m256d m11 = broadcastComplex(u.m11);
    uint64_t j = 0;
    for (; j + 2 <= len; j += 2) {
        __m256d v0 = _mm256_loadu_pd(d0 + 2 * j);
        __m256d v1 = _mm256_loadu_pd(d1 + 2 * j);
        __m256d o0 = _mm256_add_pd(cmul4(v0, m00), cmul4(v1, m01));
        __m256d o1 = _mm256_add_pd(cmul4(v0, m10), cmul4(v1, m11));
        _mm256_storeu_pd(d0 + 2 * j, o0);
        _mm256_storeu_pd(d1 + 2 * j, o1);
    }
    for (; j < len; ++j)
        simd_generic::rotatePair(amps[base + j], amps[base + j + bit],
                                 u);
}

void
pairRotateAdjacent(Complex *amps, uint64_t h0, uint64_t h1,
                   const Mat2 &u)
{
    // One ymm per pair: [a0, a1].  Row matrices Ma = [m00, m10] and
    // Mb = [m01, m11] put row 0 in the low lane and row 1 in the high
    // lane, so out = cmul(dup(a0), Ma) + cmul(dup(a1), Mb) is
    // (new a0, new a1) in place.
    const __m256d ma = packComplex2(u.m00, u.m10);
    const __m256d mb = packComplex2(u.m01, u.m11);
    double *d = reinterpret_cast<double *>(amps);
    for (uint64_t h = h0; h < h1; ++h) {
        __m256d v = _mm256_loadu_pd(d + 4 * h);
        __m256d va = _mm256_permute2f128_pd(v, v, 0x00); // [a0, a0]
        __m256d vb = _mm256_permute2f128_pd(v, v, 0x11); // [a1, a1]
        __m256d out = _mm256_add_pd(cmul4(va, ma), cmul4(vb, mb));
        _mm256_storeu_pd(d + 4 * h, out);
    }
}

void
cmulArray(Complex *amps, const Complex *factors, uint64_t n)
{
    double *d = reinterpret_cast<double *>(amps);
    const double *f = reinterpret_cast<const double *>(factors);
    uint64_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m256d v = _mm256_loadu_pd(d + 2 * i);
        __m256d w = _mm256_loadu_pd(f + 2 * i);
        _mm256_storeu_pd(d + 2 * i, cmul4(v, w));
    }
    for (; i < n; ++i)
        amps[i] = simd_generic::cmul(amps[i], factors[i]);
}

void
diagonalEvolution(Complex *amps, const double *values, double scale,
                  uint64_t i0, uint64_t i1)
{
    // The e^{i*angle} factors come from the same scalar libm call as
    // every other arm; only the complex multiply vectorizes.
    double *d = reinterpret_cast<double *>(amps);
    uint64_t i = i0;
    for (; i + 2 <= i1; i += 2) {
        const Complex f0 =
            simd_generic::phaseFactor(-scale * values[i]);
        const Complex f1 =
            simd_generic::phaseFactor(-scale * values[i + 1]);
        __m256d f = _mm256_setr_pd(f0.real(), f0.imag(), f1.real(),
                                   f1.imag());
        __m256d v = _mm256_loadu_pd(d + 2 * i);
        _mm256_storeu_pd(d + 2 * i, cmul4(v, f));
    }
    simd_generic::diagonalEvolution(amps, values, scale, i, i1);
}

void
diagonalTerms(Complex *amps, const circuit::DiagTerm *terms,
              size_t num_terms, uint64_t i0, uint64_t i1)
{
    // Vectorize the O(num_terms) control-mask scan four indices at a
    // time.  Where a control fails the lane adds +0.0 instead of
    // skipping the add; that is bitwise harmless because the scalar
    // accumulator can never be -0.0 (it starts at +0.0, and
    // +0.0 + -0.0 rounds to +0.0), so x + 0.0 == x exactly.
    alignas(32) double angles[4];
    uint64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        const __m256i idx = _mm256_setr_epi64x(
            static_cast<long long>(i), static_cast<long long>(i + 1),
            static_cast<long long>(i + 2),
            static_cast<long long>(i + 3));
        __m256d angle = _mm256_setzero_pd();
        for (size_t t = 0; t < num_terms; ++t) {
            const __m256i cm = _mm256_set1_epi64x(
                static_cast<long long>(terms[t].controlMask));
            const __m256i tb = _mm256_set1_epi64x(
                static_cast<long long>(terms[t].targetBit));
            __m256i ctrl =
                _mm256_cmpeq_epi64(_mm256_and_si256(idx, cm), cm);
            __m256i bit_clear = _mm256_cmpeq_epi64(
                _mm256_and_si256(idx, tb), _mm256_setzero_si256());
            __m256d sel =
                _mm256_blendv_pd(_mm256_set1_pd(terms[t].phase1),
                                 _mm256_set1_pd(terms[t].phase0),
                                 _mm256_castsi256_pd(bit_clear));
            angle = _mm256_add_pd(
                angle,
                _mm256_and_pd(sel, _mm256_castsi256_pd(ctrl)));
        }
        _mm256_store_pd(angles, angle);
        for (int k = 0; k < 4; ++k) {
            if (angles[k] != 0.0)
                amps[i + k] = simd_generic::cmul(
                    amps[i + k],
                    simd_generic::phaseFactor(angles[k]));
        }
    }
    simd_generic::diagonalTerms(amps, terms, num_terms, i, i1);
}

/**
 * Branchless lower bound for four 128-bit keys in lockstep, the exact
 * vector transcription of simd_generic::lowerBound.  BitVec is two
 * u64 words in memory, low first, compared high-word-major unsigned;
 * unsigned order comes from signed _mm256_cmpgt_epi64 after biasing
 * both sides by 2^63.  Requires n >= 1.
 */
inline void
lowerBound4(const BitVec *keys, uint64_t n, const BitVec q[4],
            uint64_t out[4])
{
    const long long *kb = reinterpret_cast<const long long *>(keys);
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i qlo =
        _mm256_setr_epi64x(static_cast<long long>(q[0].low64()),
                           static_cast<long long>(q[1].low64()),
                           static_cast<long long>(q[2].low64()),
                           static_cast<long long>(q[3].low64()));
    const __m256i qhi =
        _mm256_setr_epi64x(static_cast<long long>(q[0].high64()),
                           static_cast<long long>(q[1].high64()),
                           static_cast<long long>(q[2].high64()),
                           static_cast<long long>(q[3].high64()));
    const __m256i qlo_b = _mm256_xor_si256(qlo, bias);
    const __m256i qhi_b = _mm256_xor_si256(qhi, bias);

    // keys[probe] < q, as a full-width lane mask.
    auto key_lt = [&](__m256i probe) {
        __m256i lo_idx = _mm256_slli_epi64(probe, 1);
        __m256i hi_idx = _mm256_or_si256(lo_idx, one);
        __m256i klo = _mm256_i64gather_epi64(kb, lo_idx, 8);
        __m256i khi = _mm256_i64gather_epi64(kb, hi_idx, 8);
        __m256i hi_lt = _mm256_cmpgt_epi64(qhi_b,
                                           _mm256_xor_si256(khi, bias));
        __m256i hi_eq = _mm256_cmpeq_epi64(khi, qhi);
        __m256i lo_lt = _mm256_cmpgt_epi64(qlo_b,
                                           _mm256_xor_si256(klo, bias));
        return _mm256_or_si256(hi_lt, _mm256_and_si256(hi_eq, lo_lt));
    };

    __m256i base = _mm256_setzero_si256();
    uint64_t len = n;
    while (len > 1) {
        const uint64_t half = len >> 1;
        __m256i probe = _mm256_add_epi64(
            base,
            _mm256_set1_epi64x(static_cast<long long>(half - 1)));
        __m256i lt = key_lt(probe);
        base = _mm256_add_epi64(
            base,
            _mm256_and_si256(
                lt, _mm256_set1_epi64x(static_cast<long long>(half))));
        len -= half;
    }
    // result = base + (keys[base] < q); the lt mask is -1 where true.
    __m256i res = _mm256_sub_epi64(base, key_lt(base));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), res);
}

void
sparseClassify(const BitVec *keys, uint64_t n, uint64_t i0, uint64_t i1,
               const BitVec &mask, const BitVec &pattern_plus,
               const BitVec &pattern_minus, uint8_t *role,
               uint32_t *partner)
{
    uint64_t pend_i[4];
    BitVec pend_q[4];
    alignas(32) uint64_t found[4];
    int npend = 0;

    auto flush = [&]() {
        if (npend == 4) {
            lowerBound4(keys, n, pend_q, found);
        } else {
            for (int k = 0; k < npend; ++k)
                found[k] =
                    simd_generic::lowerBound(keys, n, pend_q[k]);
        }
        for (int k = 0; k < npend; ++k) {
            const uint64_t j = found[k];
            partner[pend_i[k]] =
                (j < n && keys[j] == pend_q[k])
                    ? static_cast<uint32_t>(j)
                    : kSimdAbsent;
        }
        npend = 0;
    };

    for (uint64_t i = i0; i < i1; ++i) {
        const BitVec restricted = keys[i] & mask;
        if (restricted == pattern_plus) {
            role[i] = kSimdRolePlus;
        } else if (restricted == pattern_minus) {
            role[i] = kSimdRoleMinus;
        } else {
            role[i] = kSimdRoleDark;
            continue;
        }
        pend_i[npend] = i;
        pend_q[npend] = keys[i] ^ mask;
        if (++npend == 4)
            flush();
    }
    flush();
}

void
sparsePairRotate(Complex *amps,
                 const std::pair<uint32_t, uint32_t> *pairs, uint64_t p0,
                 uint64_t p1, double c, Complex ms)
{
    // Two gathered pairs per iteration.  Pairs are disjoint (every
    // amplitude slot belongs to at most one), so the four 128-bit
    // loads/stores never alias within a batch.
    double *d = reinterpret_cast<double *>(amps);
    const __m256d vc = _mm256_set1_pd(c);
    const __m256d vms = broadcastComplex(ms);
    uint64_t p = p0;
    for (; p + 2 <= p1; p += 2) {
        const uint64_t ip0 = pairs[p].first, im0 = pairs[p].second;
        const uint64_t ip1 = pairs[p + 1].first,
                       im1 = pairs[p + 1].second;
        __m256d ap = _mm256_set_m128d(_mm_loadu_pd(d + 2 * ip1),
                                      _mm_loadu_pd(d + 2 * ip0));
        __m256d am = _mm256_set_m128d(_mm_loadu_pd(d + 2 * im1),
                                      _mm_loadu_pd(d + 2 * im0));
        __m256d np =
            _mm256_add_pd(_mm256_mul_pd(vc, ap), cmul4(vms, am));
        __m256d nm =
            _mm256_add_pd(_mm256_mul_pd(vc, am), cmul4(vms, ap));
        _mm_storeu_pd(d + 2 * ip0, _mm256_castpd256_pd128(np));
        _mm_storeu_pd(d + 2 * ip1, _mm256_extractf128_pd(np, 1));
        _mm_storeu_pd(d + 2 * im0, _mm256_castpd256_pd128(nm));
        _mm_storeu_pd(d + 2 * im1, _mm256_extractf128_pd(nm, 1));
    }
    for (; p < p1; ++p)
        simd_generic::rotateSparsePair(amps[pairs[p].first],
                                       amps[pairs[p].second], c, ms);
}

const SimdKernels kAvx2Kernels = {
    SimdIsa::Avx2,       &pairRotateStrided, &pairRotateAdjacent,
    &cmulArray,          &diagonalEvolution, &diagonalTerms,
    &sparseClassify,     &sparsePairRotate,
};

} // namespace

const SimdKernels *
simdAvx2Table()
{
    return &kAvx2Kernels;
}

} // namespace rasengan::qsim::detail

#else // !__AVX2__

namespace rasengan::qsim::detail {

const SimdKernels *
simdAvx2Table()
{
    return nullptr;
}

} // namespace rasengan::qsim::detail

#endif
