#include "serve/job.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "serve/jsonl.h"

namespace rasengan::serve {

namespace {

const std::set<std::string> kAlgorithms = {"rasengan", "chocoq", "pqaoa",
                                           "hea"};
const std::set<std::string> kOptimizers = {"cobyla", "nelder-mead", "spsa",
                                           "adam-spsa"};
const std::set<std::string> kExecutions = {"exact", "sampled", "noisy",
                                            "gate"};
const std::set<std::string> kNoises = {"none", "kyiv", "brisbane"};
const std::set<std::string> kPriorities = {"interactive", "batch",
                                           "best-effort"};

const std::set<std::string> kKnownKeys = {
    "id",         "benchmark",  "case",       "problem",
    "algorithm",  "iterations", "seed",       "optimizer",
    "execution",  "noise",      "shots",      "transitions_per_segment",
    "simplify",   "prune",      "purify",     "shot_growth",
    "penalty_lambda", "layers", "fault_rate", "max_attempts",
    "priority",   "deadline_ms", "timeout_ms", "tune",
    "trace",
};

bool
getString(const JsonObject &obj, const std::string &key, std::string &out,
          std::string &err)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return true;
    if (it->second.kind != JsonValue::Kind::String) {
        err = "\"" + key + "\" must be a string";
        return false;
    }
    out = it->second.str;
    return true;
}

bool
getNumber(const JsonObject &obj, const std::string &key, double &out,
          std::string &err)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return true;
    if (it->second.kind != JsonValue::Kind::Number) {
        err = "\"" + key + "\" must be a number";
        return false;
    }
    out = it->second.num;
    return true;
}

bool
getBool(const JsonObject &obj, const std::string &key, bool &out,
        std::string &err)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return true;
    if (it->second.kind != JsonValue::Kind::Bool) {
        err = "\"" + key + "\" must be a boolean";
        return false;
    }
    out = it->second.flag;
    return true;
}

bool
toInt(double v, int &out, const char *what, std::string &err)
{
    if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0) {
        err = std::string(what) + " must be an integer";
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
toU64(double v, uint64_t &out, const char *what, std::string &err)
{
    if (v != std::floor(v) || v < 0.0 || v > 9.0e15) {
        err = std::string(what) + " must be a non-negative integer";
        return false;
    }
    out = static_cast<uint64_t>(v);
    return true;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

RequestParseResult
parseRequest(const std::string &line)
{
    RequestParseResult result;
    JsonParseResult parsed = parseFlatJson(line);
    if (!parsed.ok) {
        result.error = "bad request JSON at byte " +
                       std::to_string(parsed.errorOffset) + ": " +
                       parsed.error;
        return result;
    }
    for (const auto &[key, value] : parsed.object) {
        (void)value;
        if (kKnownKeys.find(key) == kKnownKeys.end()) {
            result.error = "unknown request key \"" + key + "\"";
            return result;
        }
    }

    JobRequest &req = result.request;
    std::string &err = result.error;
    double num;

    if (!getString(parsed.object, "id", req.id, err) ||
        !getString(parsed.object, "benchmark", req.benchmark, err) ||
        !getString(parsed.object, "problem", req.problemText, err) ||
        !getString(parsed.object, "algorithm", req.algorithm, err) ||
        !getString(parsed.object, "optimizer", req.optimizer, err) ||
        !getString(parsed.object, "execution", req.execution, err) ||
        !getString(parsed.object, "noise", req.noise, err) ||
        !getBool(parsed.object, "simplify", req.simplify, err) ||
        !getBool(parsed.object, "prune", req.prune, err) ||
        !getBool(parsed.object, "purify", req.purify, err))
        return result;

    num = static_cast<double>(req.caseIndex);
    if (!getNumber(parsed.object, "case", num, err) ||
        !toU64(num, req.caseIndex, "\"case\"", err))
        return result;
    num = static_cast<double>(req.iterations);
    if (!getNumber(parsed.object, "iterations", num, err) ||
        !toInt(num, req.iterations, "\"iterations\"", err))
        return result;
    num = static_cast<double>(req.seed);
    if (!getNumber(parsed.object, "seed", num, err) ||
        !toU64(num, req.seed, "\"seed\"", err))
        return result;
    num = static_cast<double>(req.shots);
    if (!getNumber(parsed.object, "shots", num, err) ||
        !toU64(num, req.shots, "\"shots\"", err))
        return result;
    num = static_cast<double>(req.transitionsPerSegment);
    if (!getNumber(parsed.object, "transitions_per_segment", num, err) ||
        !toInt(num, req.transitionsPerSegment,
               "\"transitions_per_segment\"", err))
        return result;
    num = static_cast<double>(req.layers);
    if (!getNumber(parsed.object, "layers", num, err) ||
        !toInt(num, req.layers, "\"layers\"", err))
        return result;
    num = static_cast<double>(req.maxAttempts);
    if (!getNumber(parsed.object, "max_attempts", num, err) ||
        !toInt(num, req.maxAttempts, "\"max_attempts\"", err))
        return result;
    if (!getNumber(parsed.object, "shot_growth", req.shotGrowth, err) ||
        !getNumber(parsed.object, "penalty_lambda", req.penaltyLambda,
                   err) ||
        !getNumber(parsed.object, "fault_rate", req.faultRate, err))
        return result;
    if (!getString(parsed.object, "priority", req.priority, err) ||
        !getNumber(parsed.object, "deadline_ms", req.deadlineMs, err) ||
        !getNumber(parsed.object, "timeout_ms", req.timeoutMs, err) ||
        !getString(parsed.object, "tune", req.tuneHint, err) ||
        !getString(parsed.object, "trace", req.traceHint, err))
        return result;

    result.ok = true;
    return result;
}

std::string
writeRequest(const JobRequest &req)
{
    JsonWriter w;
    w.field("id", req.id);
    if (!req.benchmark.empty()) {
        w.field("benchmark", req.benchmark);
        w.field("case", req.caseIndex);
    }
    if (!req.problemText.empty())
        w.field("problem", req.problemText);
    w.field("algorithm", req.algorithm)
        .field("iterations", req.iterations)
        .field("seed", req.seed)
        .field("optimizer", req.optimizer)
        .field("execution", req.execution)
        .field("noise", req.noise)
        .field("shots", req.shots)
        .field("transitions_per_segment", req.transitionsPerSegment);
    w.boolean("simplify", req.simplify)
        .boolean("prune", req.prune)
        .boolean("purify", req.purify);
    w.field("shot_growth", req.shotGrowth)
        .field("penalty_lambda", req.penaltyLambda)
        .field("layers", req.layers)
        .field("fault_rate", req.faultRate)
        .field("max_attempts", req.maxAttempts);
    // Scheduling metadata: defaults are omitted so pre-daemon request
    // files round-trip byte-identically.
    if (req.priority != "batch")
        w.field("priority", req.priority);
    if (req.deadlineMs > 0.0)
        w.field("deadline_ms", req.deadlineMs);
    if (req.timeoutMs > 0.0)
        w.field("timeout_ms", req.timeoutMs);
    // Tuning hint: result-invariant (never hashed), omitted when empty
    // so untuned request files round-trip byte-identically.
    if (!req.tuneHint.empty())
        w.field("tune", req.tuneHint);
    // Trace hint: observability metadata (never hashed), omitted when
    // empty so untraced request files round-trip byte-identically.
    if (!req.traceHint.empty())
        w.field("trace", req.traceHint);
    return w.str();
}

bool
validateRequest(const JobRequest &req, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (req.benchmark.empty() == req.problemText.empty())
        return fail("exactly one of \"benchmark\" and \"problem\" must "
                    "be set");
    if (kAlgorithms.find(req.algorithm) == kAlgorithms.end())
        return fail("unknown algorithm \"" + req.algorithm + "\"");
    if (kOptimizers.find(req.optimizer) == kOptimizers.end())
        return fail("unknown optimizer \"" + req.optimizer + "\"");
    if (kExecutions.find(req.execution) == kExecutions.end())
        return fail("unknown execution \"" + req.execution + "\"");
    if (kNoises.find(req.noise) == kNoises.end())
        return fail("unknown noise model \"" + req.noise + "\"");
    if (req.iterations < 1)
        return fail("iterations must be >= 1");
    if (req.shots < 1)
        return fail("shots must be >= 1");
    if (req.layers < 1)
        return fail("layers must be >= 1");
    if (req.maxAttempts < 1)
        return fail("max_attempts must be >= 1");
    if (!(req.shotGrowth >= 1.0) || !std::isfinite(req.shotGrowth))
        return fail("shot_growth must be >= 1");
    if (!(req.faultRate >= 0.0) || !(req.faultRate < 1.0))
        return fail("fault_rate must be in [0, 1)");
    if (!std::isfinite(req.penaltyLambda))
        return fail("penalty_lambda must be finite");
    if (kPriorities.find(req.priority) == kPriorities.end())
        return fail("unknown priority \"" + req.priority + "\"");
    if (!(req.deadlineMs >= 0.0) || !std::isfinite(req.deadlineMs))
        return fail("deadline_ms must be >= 0");
    if (!(req.timeoutMs >= 0.0) || !std::isfinite(req.timeoutMs))
        return fail("timeout_ms must be >= 0");
    return true;
}

std::string
canonicalRequestText(const JobRequest &req,
                     const std::string &canonical_problem)
{
    // Line-per-field, fixed order, canonical problem bytes appended
    // last.  The id is deliberately absent: it is correlation metadata,
    // not part of the work.
    std::ostringstream out;
    out << "algorithm=" << req.algorithm << "\n"
        << "iterations=" << req.iterations << "\n"
        << "seed=" << req.seed << "\n"
        << "optimizer=" << req.optimizer << "\n"
        << "execution=" << req.execution << "\n"
        << "noise=" << req.noise << "\n"
        << "shots=" << req.shots << "\n"
        << "transitions_per_segment=" << req.transitionsPerSegment << "\n"
        << "simplify=" << (req.simplify ? 1 : 0) << "\n"
        << "prune=" << (req.prune ? 1 : 0) << "\n"
        << "purify=" << (req.purify ? 1 : 0) << "\n"
        << "shot_growth=" << fmtDouble(req.shotGrowth) << "\n"
        << "penalty_lambda=" << fmtDouble(req.penaltyLambda) << "\n"
        << "layers=" << req.layers << "\n"
        << "fault_rate=" << fmtDouble(req.faultRate) << "\n"
        << "max_attempts=" << req.maxAttempts << "\n"
        << "problem:\n"
        << canonical_problem;
    return out.str();
}

std::string
writeResult(const JobResult &result)
{
    JsonWriter w;
    w.field("id", result.id);
    w.boolean("accepted", result.accepted);
    if (!result.accepted) {
        w.field("reject_reason", result.rejectReason);
        if (!result.rejectCode.empty())
            w.field("reject_code", result.rejectCode);
        w.field("cost_units", result.costUnits);
        return w.str();
    }
    w.field("cost_units", result.costUnits);
    w.boolean("ok", result.ok);
    if (!result.ok)
        w.field("error", result.error);
    w.field("problem_id", result.problemId)
        .field("num_vars", result.numVars)
        .field("solution", result.solution)
        .field("objective", result.objective)
        .field("expected_objective", result.expectedObjective)
        .field("in_constraints_rate", result.inConstraintsRate)
        .field("chain_length", result.chainLength)
        .field("num_segments", result.numSegments)
        .field("num_params", result.numParams)
        .field("child_seed", result.childSeed)
        .field("result_hash", result.resultHash);
    return w.str();
}

std::string
writeTelemetry(const JobResult &result)
{
    JsonWriter w;
    w.field("id", result.id);
    w.boolean("accepted", result.accepted);
    w.field("queue_wait_ms", result.telemetry.queueWaitMs)
        .field("wall_ms", result.telemetry.wallMs)
        .field("cache_hits", result.telemetry.cacheHits)
        .field("cache_misses", result.telemetry.cacheMisses)
        .field("retries", result.telemetry.retries)
        .field("attempts", result.telemetry.attempts)
        .field("degradation", result.telemetry.degradation)
        .field("priority", result.telemetry.priority);
    w.boolean("deadline_hit", result.telemetry.deadlineHit);
    // Per-domain cache attribution (global hits/misses above persist
    // for compatibility; these split them by artifact domain).
    w.field("cache_pipeline_hits", result.telemetry.cachePipelineHits)
        .field("cache_pipeline_misses", result.telemetry.cachePipelineMisses)
        .field("cache_circuit_hits", result.telemetry.cacheCircuitHits)
        .field("cache_circuit_misses", result.telemetry.cacheCircuitMisses)
        .field("cache_spplan_hits", result.telemetry.cacheSpplanHits)
        .field("cache_spplan_misses", result.telemetry.cacheSpplanMisses);
    w.field("plan_recorded", result.telemetry.planRecorded)
        .field("plan_replayed", result.telemetry.planReplayed)
        .field("plan_aborted", result.telemetry.planAborted)
        .field("plan_invalidated", result.telemetry.planInvalidated)
        .field("support_max", result.telemetry.supportMax);
    if (!result.telemetry.tuneBucket.empty())
        w.field("tune_bucket", result.telemetry.tuneBucket);
    if (!result.telemetry.tuneDecision.empty())
        w.field("tune_decision", result.telemetry.tuneDecision);
    if (!result.telemetry.tuneSource.empty())
        w.field("tune_source", result.telemetry.tuneSource);
    if (!result.telemetry.traceId.empty())
        w.field("trace_id", result.telemetry.traceId);
    return w.str();
}

} // namespace rasengan::serve
