#include "serve/slo.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace rasengan::serve {

bool
parsePriority(const std::string &name, Priority *out)
{
    if (name == "interactive")
        *out = Priority::Interactive;
    else if (name == "batch")
        *out = Priority::Batch;
    else if (name == "best-effort")
        *out = Priority::BestEffort;
    else
        return false;
    return true;
}

const char *
priorityName(Priority p)
{
    switch (p) {
    case Priority::Interactive:
        return "interactive";
    case Priority::Batch:
        return "batch";
    case Priority::BestEffort:
        return "best-effort";
    }
    return "batch";
}

bool
DeadlineQueue::before(const SloJob &a, const SloJob &b) const
{
    // Strict class order first.
    if (a.priority != b.priority)
        return static_cast<int>(a.priority) < static_cast<int>(b.priority);
    // Within a class: jobs with deadlines ahead of jobs without, EDF
    // among the former.
    const bool aHas = a.deadlineMs > 0.0;
    const bool bHas = b.deadlineMs > 0.0;
    if (aHas != bHas)
        return aHas;
    if (aHas && a.deadlineMs != b.deadlineMs)
        return a.deadlineMs < b.deadlineMs;
    // FIFO tiebreak on the acceptance counter: deterministic for a
    // given request stream, independent of wall time.
    return a.arrival < b.arrival;
}

void
DeadlineQueue::push(const SloJob &job)
{
    // Linear insertion keeps the deque sorted; queue depths are bounded
    // by admission (maxQueuedJobs), so O(n) insert is irrelevant next
    // to seconds-long jobs.
    auto it = std::upper_bound(
        jobs_.begin(), jobs_.end(), job,
        [this](const SloJob &a, const SloJob &b) { return before(a, b); });
    jobs_.insert(it, job);
}

SloJob
DeadlineQueue::pop()
{
    panic_if(jobs_.empty(), "DeadlineQueue::pop on empty queue");
    SloJob job = jobs_.front();
    jobs_.pop_front();
    return job;
}

double
DeadlineQueue::earliestDeadlineMs() const
{
    double best = 0.0;
    for (const SloJob &job : jobs_)
        if (job.deadlineMs > 0.0 &&
            (best == 0.0 || job.deadlineMs < best))
            best = job.deadlineMs;
    return best;
}

double
DeadlineQueue::backlogCostUnits() const
{
    double total = 0.0;
    for (const SloJob &job : jobs_)
        total += job.costUnits;
    return total;
}

std::deque<SloJob>
DeadlineQueue::drain()
{
    std::deque<SloJob> out;
    out.swap(jobs_);
    return out;
}

ShedDecision
shedDecision(const SloJob &job, double backlog_cost, double running_cost,
             const SloPolicy &policy)
{
    ShedDecision d;
    if (job.deadlineMs <= 0.0)
        return d; // no deadline, nothing to miss
    const double rate = std::max(policy.costUnitsPerSecond, 1.0);
    // Serial worker: everything queued ahead plus the job itself must
    // finish before the deadline.  Priority classes are ignored here on
    // purpose -- a conservative (pessimistic-for-interactive) bound
    // keeps the predictor monotone and simple to reason about.
    const double total = backlog_cost + running_cost + job.costUnits;
    d.predictedMs = total / rate * 1e3;
    const double budget =
        job.deadlineMs * (1.0 - std::clamp(policy.shedMargin, 0.0, 0.9));
    if (d.predictedMs > budget) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "deadline %.0f ms unmeetable: predicted completion "
                      "%.0f ms against budget %.0f ms (backlog %.3g cost "
                      "units)",
                      job.deadlineMs, d.predictedMs, budget,
                      backlog_cost + running_cost);
        d.shed = true;
        d.reason = buf;
    }
    return d;
}

} // namespace rasengan::serve
