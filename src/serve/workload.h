/**
 * @file
 * Deterministic synthetic workloads for the serve driver, bench, and
 * CI smoke test.
 *
 * generateWorkload(n, seed) draws n requests from a deliberately small
 * configuration space (a handful of suite benchmarks x a few cases x
 * two execution modes), so realistic batches contain repeated logical
 * work and exercise the artifact cache.  Same (n, seed) -> identical
 * request list, byte for byte.
 */

#ifndef RASENGAN_SERVE_WORKLOAD_H
#define RASENGAN_SERVE_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "serve/job.h"

namespace rasengan::serve {

std::vector<JobRequest> generateWorkload(size_t jobs, uint64_t seed);

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_WORKLOAD_H
