/**
 * @file
 * Minimal flat-JSON line reader/writer for the serve request and result
 * streams.
 *
 * The request format is deliberately restricted: one JSON object per
 * line, values limited to strings, finite numbers, booleans, and null
 * -- no nested objects or arrays.  That covers every JobRequest field,
 * keeps the hand-rolled parser small enough to audit, and avoids a
 * dependency the container does not ship.  parseFlatJson reports the
 * first error with a byte offset; the writer emits keys in insertion
 * order with "%.17g" doubles, so identical results serialize to
 * identical bytes (the serve determinism check diffs whole files).
 */

#ifndef RASENGAN_SERVE_JSONL_H
#define RASENGAN_SERVE_JSONL_H

#include <cstdint>
#include <map>
#include <string>

namespace rasengan::serve {

struct JsonValue
{
    enum class Kind { String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::string str;
    double num = 0.0;
    bool flag = false;
};

/** Key -> value map of one flat object (key order is irrelevant). */
using JsonObject = std::map<std::string, JsonValue>;

struct JsonParseResult
{
    bool ok = false;
    std::string error; ///< empty when ok
    size_t errorOffset = 0;
    JsonObject object;
};

/** Parse one flat JSON object line. */
JsonParseResult parseFlatJson(const std::string &line);

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &raw);

/** Builds one flat JSON object line, keys in call order. */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &value);
    JsonWriter &field(const std::string &key, const char *value);
    JsonWriter &field(const std::string &key, double value);
    JsonWriter &field(const std::string &key, int64_t value);
    JsonWriter &field(const std::string &key, uint64_t value);
    JsonWriter &field(const std::string &key, int value);
    JsonWriter &boolean(const std::string &key, bool value);

    /** The finished single-line object (no trailing newline). */
    std::string str() const;

  private:
    void prefix(const std::string &key);
    std::string body_;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_JSONL_H
