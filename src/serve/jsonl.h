/**
 * @file
 * Minimal flat-JSON line reader/writer for the serve request and result
 * streams.
 *
 * The request format is deliberately restricted: one JSON object per
 * line, values limited to strings, finite numbers, booleans, and null
 * -- no nested objects or arrays.  That covers every JobRequest field,
 * keeps the hand-rolled parser small enough to audit, and avoids a
 * dependency the container does not ship.  parseFlatJson reports the
 * first error with a byte offset; the writer emits keys in insertion
 * order with "%.17g" doubles, so identical results serialize to
 * identical bytes (the serve determinism check diffs whole files).
 */

#ifndef RASENGAN_SERVE_JSONL_H
#define RASENGAN_SERVE_JSONL_H

#include <cstdint>
#include <istream>
#include <map>
#include <string>

namespace rasengan::serve {

struct JsonValue
{
    enum class Kind { String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::string str;
    double num = 0.0;
    bool flag = false;
};

/** Key -> value map of one flat object (key order is irrelevant). */
using JsonObject = std::map<std::string, JsonValue>;

struct JsonParseResult
{
    bool ok = false;
    std::string error; ///< empty when ok
    size_t errorOffset = 0;
    JsonObject object;
};

/** Parse one flat JSON object line. */
JsonParseResult parseFlatJson(const std::string &line);

/**
 * Bounded, truncation-aware line reader for request streams and journal
 * replay.
 *
 * Hardens the plain getline loop against the failure modes of files
 * written by a crashed process or bytes fed by an untrusted client:
 *
 *  - a line longer than @p maxLineBytes is consumed to its newline but
 *    reported oversized (never buffered whole, so a pathological line
 *    cannot balloon memory);
 *  - a final line with no trailing newline -- the classic torn
 *    partial write -- is surfaced with `truncated = true` so replay
 *    can skip-and-count it instead of parsing half a record;
 *  - a line containing a NUL byte -- binary garbage, or a journal
 *    block zero-filled by a crash mid-fsync -- is reported with
 *    `hasNul = true` and never parsed (embedded NULs silently shorten
 *    C-string views of the text and mask trailing bytes);
 *  - empty lines are skipped and counted.
 *
 * The reader never throws and never aborts the stream early: callers
 * decide per line whether a defect is fatal (request files) or merely
 * counted (journal replay).
 */
class LineReader
{
  public:
    /** Default line-length cap: generous for inline problems, small
     *  enough that a corrupt length prefix cannot eat the heap. */
    static constexpr size_t kDefaultMaxLineBytes = 1u << 20;

    explicit LineReader(std::istream &in,
                        size_t maxLineBytes = kDefaultMaxLineBytes)
        : in_(in), maxLineBytes_(maxLineBytes)
    {
    }

    struct Line
    {
        std::string text;       ///< contents (valid when ok)
        size_t number = 0;      ///< 1-based line number in the stream
        bool ok = false;        ///< a usable, complete line
        bool oversized = false; ///< exceeded maxLineBytes; text dropped
        bool truncated = false; ///< no trailing newline (torn write)
        bool hasNul = false;    ///< contains a NUL byte; text dropped
    };

    /**
     * Read the next non-empty line.  Returns false at end of stream;
     * otherwise fills @p out (check `out.ok`: oversized/truncated lines
     * are reported, not silently skipped).
     */
    bool next(Line &out);

    size_t linesRead() const { return linesRead_; }
    size_t emptyLines() const { return emptyLines_; }
    size_t oversizedLines() const { return oversizedLines_; }
    size_t truncatedLines() const { return truncatedLines_; }
    size_t nulLines() const { return nulLines_; }

  private:
    std::istream &in_;
    size_t maxLineBytes_;
    size_t lineNumber_ = 0;
    size_t linesRead_ = 0;
    size_t emptyLines_ = 0;
    size_t oversizedLines_ = 0;
    size_t truncatedLines_ = 0;
    size_t nulLines_ = 0;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &raw);

/** Builds one flat JSON object line, keys in call order. */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &value);
    JsonWriter &field(const std::string &key, const char *value);
    JsonWriter &field(const std::string &key, double value);
    JsonWriter &field(const std::string &key, int64_t value);
    JsonWriter &field(const std::string &key, uint64_t value);
    JsonWriter &field(const std::string &key, int value);
    JsonWriter &boolean(const std::string &key, bool value);

    /** The finished single-line object (no trailing newline). */
    std::string str() const;

  private:
    void prefix(const std::string &key);
    std::string body_;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_JSONL_H
