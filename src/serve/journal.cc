#include "serve/journal.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include <unistd.h>

#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/jsonl.h"

namespace rasengan::serve {

namespace {

struct JournalCounters
{
    obs::Counter &appends = obs::Registry::global().counter(
        "serve_journal_appends_total", "Records appended to the journal");
    obs::Counter &replayMalformed = obs::Registry::global().counter(
        "serve_journal_replay_malformed_total",
        "Malformed records skipped during journal replay");
};

JournalCounters &
journalCounters()
{
    static JournalCounters counters;
    return counters;
}

/** Required string field or nullptr. */
const std::string *
strField(const JsonObject &obj, const char *key)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != JsonValue::Kind::String)
        return nullptr;
    return &it->second.str;
}

bool
seqField(const JsonObject &obj, uint64_t *out)
{
    auto it = obj.find("seq");
    if (it == obj.end() || it->second.kind != JsonValue::Kind::Number)
        return false;
    double v = it->second.num;
    if (v < 1.0 || v != static_cast<double>(static_cast<uint64_t>(v)))
        return false;
    *out = static_cast<uint64_t>(v);
    return true;
}

} // namespace

std::vector<const JournalJob *>
JournalReplay::pending() const
{
    std::vector<const JournalJob *> out;
    for (const JournalJob &job : jobs)
        if (!job.done && !job.shed)
            out.push_back(&job);
    return out;
}

Journal::~Journal() { close(); }

bool
Journal::open(const std::string &path, uint64_t next_seq,
              std::string *error)
{
    panic_if(file_ != nullptr, "Journal::open called twice");
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
        if (error != nullptr)
            *error = "cannot open journal " + path + " for append";
        return false;
    }
    path_ = path;
    nextSeq_ = next_seq;
    return true;
}

void
Journal::appendLine(const std::string &line)
{
    // Caller holds mutex_.  Flush pushes the record into the kernel;
    // fdatasync makes it survive power loss, not just a SIGKILL.  One
    // syscall pair per record is affordable: journal appends are
    // O(jobs), job execution is O(seconds).
    panic_if(file_ == nullptr, "Journal append before open");
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    ::fdatasync(fileno(file_));
    journalCounters().appends.inc();
}

uint64_t
Journal::appendAccepted(const JobRequest &req,
                        const std::string &fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t seq = nextSeq_++;
    JsonWriter w;
    w.field("type", "accepted")
        .field("seq", seq)
        .field("id", req.id)
        .field("fingerprint", fingerprint)
        .field("request", writeRequest(req));
    appendLine(w.str());
    return seq;
}

void
Journal::appendRunning(uint64_t seq, const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.field("type", "running").field("seq", seq).field("id", id);
    appendLine(w.str());
}

void
Journal::appendDone(uint64_t seq, const std::string &id,
                    const std::string &result_line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.field("type", "done")
        .field("seq", seq)
        .field("id", id)
        .field("result", result_line);
    appendLine(w.str());
}

void
Journal::appendShed(uint64_t seq, const std::string &id,
                    const std::string &code, const std::string &reason)
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w;
    w.field("type", "shed")
        .field("seq", seq)
        .field("id", id)
        .field("code", code)
        .field("reason", reason);
    appendLine(w.str());
}

void
Journal::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fflush(file_);
        ::fdatasync(fileno(file_));
    }
}

void
Journal::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fflush(file_);
        ::fdatasync(fileno(file_));
        std::fclose(file_);
        file_ = nullptr;
    }
}

JournalReplay
Journal::replay(const std::string &path)
{
    JournalReplay replay;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        // Cold start: no journal yet is the normal first-run state.
        replay.ok = true;
        return replay;
    }

    // seq -> index into replay.jobs; ids may repeat across requests,
    // sequence numbers never do.
    std::unordered_map<uint64_t, size_t> bySeq;
    LineReader reader(in);
    LineReader::Line line;
    while (reader.next(line)) {
        if (!line.ok) {
            if (line.oversized)
                ++replay.oversizedLines;
            else if (line.hasNul)
                ++replay.malformedLines; // zero-filled crash debris
            else
                ++replay.truncatedLines;
            journalCounters().replayMalformed.inc();
            continue;
        }
        JsonParseResult parsed = parseFlatJson(line.text);
        if (!parsed.ok) {
            ++replay.malformedLines;
            journalCounters().replayMalformed.inc();
            continue;
        }
        const JsonObject &obj = parsed.object;
        const std::string *type = strField(obj, "type");
        uint64_t seq = 0;
        if (type == nullptr || !seqField(obj, &seq)) {
            ++replay.malformedLines;
            journalCounters().replayMalformed.inc();
            continue;
        }
        if (seq >= replay.nextSeq)
            replay.nextSeq = seq + 1;

        if (*type == "accepted") {
            const std::string *id = strField(obj, "id");
            const std::string *fp = strField(obj, "fingerprint");
            const std::string *req = strField(obj, "request");
            if (id == nullptr || fp == nullptr || req == nullptr) {
                ++replay.malformedLines;
                journalCounters().replayMalformed.inc();
                continue;
            }
            JournalJob job;
            job.seq = seq;
            job.id = *id;
            job.fingerprint = *fp;
            job.requestLine = *req;
            bySeq[seq] = replay.jobs.size();
            replay.jobs.push_back(std::move(job));
            continue;
        }

        // Transition records must reference a known accepted record; a
        // dangling one means its accepted line was itself corrupt.
        auto it = bySeq.find(seq);
        if (it == bySeq.end()) {
            ++replay.malformedLines;
            journalCounters().replayMalformed.inc();
            continue;
        }
        JournalJob &job = replay.jobs[it->second];
        if (*type == "running") {
            job.started = true;
        } else if (*type == "done") {
            const std::string *result = strField(obj, "result");
            if (result == nullptr) {
                ++replay.malformedLines;
                journalCounters().replayMalformed.inc();
                continue;
            }
            job.done = true;
            job.shed = false;
            job.resultLine = *result;
        } else if (*type == "shed") {
            job.shed = true;
        } else {
            ++replay.malformedLines;
            journalCounters().replayMalformed.inc();
        }
    }
    replay.ok = true;
    return replay;
}

bool
Journal::compact(const std::string &path, std::string *error)
{
    JournalReplay replay = Journal::replay(path);
    if (!replay.ok) {
        if (error != nullptr)
            *error = replay.error;
        return false;
    }

    const std::string tmp = path + ".compact";
    {
        std::FILE *out = std::fopen(tmp.c_str(), "wb");
        if (out == nullptr) {
            if (error != nullptr)
                *error = "cannot open " + tmp + " for write";
            return false;
        }
        for (const JournalJob *job : replay.pending()) {
            JsonWriter w;
            w.field("type", "accepted")
                .field("seq", job->seq)
                .field("id", job->id)
                .field("fingerprint", job->fingerprint)
                .field("request", job->requestLine);
            std::string line = w.str();
            std::fwrite(line.data(), 1, line.size(), out);
            std::fputc('\n', out);
        }
        std::fflush(out);
        ::fdatasync(fileno(out));
        std::fclose(out);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (error != nullptr)
            *error = "cannot rename " + tmp + " over " + path;
        return false;
    }
    return true;
}

} // namespace rasengan::serve
