/**
 * @file
 * Admission/SLO policy file for the serve daemon.
 *
 * One flat JSON object on a single line (the serve/jsonl dialect), all
 * keys optional -- absent keys keep the baseline value the daemon was
 * started with, unknown keys are an error (typo guard, mirroring
 * parseRequest):
 *
 *   {"max_queue":64,"max_qubits":22,"max_shots":100000,
 *    "max_iterations":2000,"max_job_cost":1e6,"max_batch_cost":1e8,
 *    "cost_rate":2e6,"shed_margin":0.2}
 *
 * The daemon loads the file at start (when --policy is given) and
 * re-reads it on SIGHUP, so operators retune admission limits and the
 * shed predictor without dropping connections or losing the journal.
 * The file is read through LineReader, so oversized or NUL-bearing
 * policy files are rejected like any other defective line.
 */

#ifndef RASENGAN_SERVE_POLICY_H
#define RASENGAN_SERVE_POLICY_H

#include <string>

#include "serve/admission.h"
#include "serve/slo.h"

namespace rasengan::serve {

struct DaemonPolicy
{
    AdmissionLimits limits;
    SloPolicy slo;
};

struct PolicyParseResult
{
    bool ok = false;
    std::string error; ///< set when !ok
    DaemonPolicy policy;
};

/**
 * Parse one policy object line; fields start from @p base so a partial
 * file only overrides what it names.
 */
PolicyParseResult parsePolicyText(const std::string &line,
                                  const DaemonPolicy &base);

/**
 * Read @p path (first and only non-empty line) and parse it.  A
 * missing or unreadable file is an error: a reload must never silently
 * keep stale limits the operator believes were replaced.
 */
PolicyParseResult loadPolicyFile(const std::string &path,
                                 const DaemonPolicy &base);

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_POLICY_H
