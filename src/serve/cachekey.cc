#include "serve/cachekey.h"

#include <cstdio>

namespace rasengan::serve {

std::string
CacheKey::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

uint64_t
fnv1a64(std::string_view bytes, uint64_t basis)
{
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = basis;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= kPrime;
    }
    return h;
}

CacheKey
makeKey(std::string_view domain, std::string_view payload)
{
    // Two streams with unrelated bases; the domain and a separator are
    // folded in first so "basis"+X never aliases "circuit"+X.
    CacheKey key;
    uint64_t a = fnv1a64(domain);
    a = fnv1a64("\x1f", a);
    key.lo = fnv1a64(payload, a);
    uint64_t b = fnv1a64(domain, 0x84222325cbf29ce4ull);
    b = fnv1a64("\x1f", b);
    key.hi = fnv1a64(payload, b);
    return key;
}

uint64_t
mixSeed(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace rasengan::serve
