/**
 * @file
 * Batch solve service job schema: JobRequest (one JSONL line in),
 * JobResult (one deterministic JSONL line out + one telemetry line).
 *
 * A request names a problem (suite benchmark id + case, or an inline
 * problems::io text) and a solver configuration (rasengan or one of the
 * baseline VQAs).  canonicalRequestText() renders every semantically
 * relevant field -- and the canonical problem text, but NOT the job id
 * -- in a fixed order; the scheduler hashes it to derive the job's
 * child seed and result identity, so two requests for the same work
 * produce bit-identical results regardless of id, submission order, or
 * scheduling.
 *
 * writeResult() is deterministic (no timing fields); telemetry (queue
 * wait, wall time, cache hits, retries) goes to a separate line via
 * writeTelemetry() so result files can be byte-compared across thread
 * counts in CI.
 */

#ifndef RASENGAN_SERVE_JOB_H
#define RASENGAN_SERVE_JOB_H

#include <cstdint>
#include <string>

namespace rasengan::serve {

struct JobRequest
{
    std::string id; ///< caller's correlation id; excluded from hashing

    /// @name Problem selection (exactly one of benchmark/problemText)
    /// @{
    std::string benchmark;   ///< suite id (problems::isBenchmarkId)
    uint64_t caseIndex = 0;  ///< benchmark case selector
    std::string problemText; ///< inline problems::io serialization
    /// @}

    /// @name Solver configuration
    /// @{
    std::string algorithm = "rasengan"; ///< rasengan|chocoq|pqaoa|hea
    int iterations = 60;
    uint64_t seed = 7; ///< folded into the batch child-seed derivation
    std::string optimizer = "cobyla"; ///< cobyla|nelder-mead|spsa|adam-spsa
    std::string execution = "exact";  ///< exact|sampled|noisy|gate
    std::string noise = "none";       ///< none|kyiv|brisbane
    uint64_t shots = 1024;
    /// @}

    /// @name Rasengan pipeline knobs (ignored by the baselines)
    /// @{
    int transitionsPerSegment = 3;
    bool simplify = true;
    bool prune = true;
    bool purify = true;
    double shotGrowth = 1.0;
    /// @}

    /// @name Baseline knobs (ignored by rasengan)
    /// @{
    double penaltyLambda = -1.0; ///< <0: family default
    int layers = 3;
    /// @}

    /// @name Resilience
    /// @{
    double faultRate = 0.0;
    int maxAttempts = 5;
    /// @}

    /// @name Scheduling metadata (daemon SLO layer)
    ///
    /// Deliberately EXCLUDED from canonicalRequestText: priority and
    /// deadlines shape when a job runs, never what it computes, so two
    /// requests for the same work keep the same child seed (and thus
    /// byte-identical results) regardless of urgency.  A journal replay
    /// after a crash re-runs jobs without their long-expired deadlines
    /// for the same reason.
    /// @{
    std::string priority = "batch"; ///< interactive|batch|best-effort
    double deadlineMs = 0.0; ///< accept-to-done SLO target; 0 = none
    double timeoutMs = 0.0;  ///< per-job wall-clock cap; 0 = none
    /// @}

    /// @name Adaptive-execution hint (cluster coordinator -> worker)
    ///
    /// A rendered tune::TuneDecision ("bucket=...;engine=dense;...").
    /// Like the scheduling metadata it is EXCLUDED from
    /// canonicalRequestText: every arm of every tuned knob is
    /// result-invariant, so the hint shapes how a job runs, never what
    /// it computes -- the child seed and result bytes cannot depend on
    /// it.  Empty = no hint (local policy decides).
    /// @{
    std::string tuneHint;
    /// @}

    /// @name Distributed-trace hint (cluster coordinator -> worker)
    ///
    /// The job's 32-hex 128-bit trace id, minted deterministically at
    /// admission, carried so worker spans stitch under the same trace.
    /// Like tune/priority it is EXCLUDED from canonicalRequestText:
    /// tracing observes what a job does, never changes it, so the
    /// child seed and result bytes cannot depend on it.  Empty = mint
    /// locally at admission.
    /// @{
    std::string traceHint; ///< request key "trace"
    /// @}
};

struct JobTelemetry
{
    double queueWaitMs = 0.0; ///< submit -> job start
    double wallMs = 0.0;      ///< job start -> job end
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t retries = 0;
    uint64_t attempts = 0;
    std::string degradation = "Full";
    bool deadlineHit = false; ///< stopped by the wall-clock timeout
    std::string priority = "batch";

    /// @name Per-domain artifact-cache attribution
    ///
    /// Hits/misses split by cache domain (pipeline/circuit/spplan), the
    /// per-job counterpart of the registry's labeled domain counters --
    /// the global hit rate hides which layer of reuse a job exercised.
    /// @{
    uint64_t cachePipelineHits = 0, cachePipelineMisses = 0;
    uint64_t cacheCircuitHits = 0, cacheCircuitMisses = 0;
    uint64_t cacheSpplanHits = 0, cacheSpplanMisses = 0;
    /// @}

    /// @name Rotation-plan cache outcome (rasengan jobs)
    /// @{
    uint64_t planRecorded = 0;
    uint64_t planReplayed = 0;
    uint64_t planAborted = 0;
    uint64_t planInvalidated = 0;
    /// @}

    /** Peak sparse-simulator support observed (support-growth summary
     *  that feeds the adaptive tuner's measurement records). */
    uint64_t supportMax = 0;

    /// @name Adaptive-execution decision (empty when tuning is off)
    /// @{
    std::string tuneBucket;
    std::string tuneDecision; ///< renderArms() of the applied knobs
    std::string tuneSource;   ///< default|explore:...|model|hint
    /// @}

    /** Distributed trace id this job ran under ("" when untraced). */
    std::string traceId;
};

struct JobResult
{
    std::string id;

    /// @name Admission
    /// @{
    bool accepted = false;
    std::string rejectReason; ///< set when !accepted
    /** Machine-readable rejection class when !accepted: "validation",
     *  "admission", or "deadline-unmeetable" (load shed). */
    std::string rejectCode;
    double costUnits = 0.0;   ///< admission cost estimate
    /// @}

    /// @name Solve outcome (meaningful when accepted)
    /// @{
    bool ok = false;
    std::string error; ///< set when accepted && !ok
    std::string problemId;
    int numVars = 0;
    std::string solution; ///< best feasible bitstring ("" on failure)
    double objective = 0.0;
    double expectedObjective = 0.0;
    double inConstraintsRate = 0.0;
    int chainLength = 0; ///< rasengan only
    int numSegments = 0; ///< rasengan only
    int numParams = 0;
    uint64_t childSeed = 0;
    std::string resultHash; ///< 16-hex digest of the payload fields
    /// @}

    JobTelemetry telemetry;
};

struct RequestParseResult
{
    bool ok = false;
    std::string error;
    JobRequest request;
};

/** Parse one request line; unknown keys are an error (typo guard). */
RequestParseResult parseRequest(const std::string &line);

/** Render @p req as a request line (workload generator, round-trips). */
std::string writeRequest(const JobRequest &req);

/**
 * Check enumeration fields and basic ranges; returns false and sets
 * @p error on the first violation.  Does not touch the problem.
 */
bool validateRequest(const JobRequest &req, std::string *error);

/**
 * Fixed-order canonical rendering of every semantically relevant field
 * of @p req plus @p canonical_problem (problems::canonicalProblemText).
 * Excludes the job id.  Equal logical work -> equal bytes.
 */
std::string canonicalRequestText(const JobRequest &req,
                                 const std::string &canonical_problem);

/** Deterministic result line: no timing or telemetry fields. */
std::string writeResult(const JobResult &result);

/** Telemetry line for @p result (timings, cache counters, retries). */
std::string writeTelemetry(const JobResult &result);

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_JOB_H
