/**
 * @file
 * Content-addressed artifact cache with an LRU byte budget.
 *
 * The serve layer memoizes the expensive, reusable artifacts of a solve
 * across jobs: integer nullspace/HNF kernel bases and transition
 * pipelines (core::PipelineArtifacts) and transpiled segment circuits
 * (circuit::Circuit).  Entries are keyed by CacheKey -- a hash of the
 * canonical problem/config serialization -- so equal inputs hit
 * regardless of how the request was constructed or scheduled.
 *
 * Correctness contract: cached values must be DETERMINISTIC functions
 * of their key (every producer in this repo is), so a hit returns
 * exactly what a recompute would.  Batch results are therefore
 * bit-identical whether the cache is cold, warm, or disabled.
 *
 * Concurrency: lookups and publishes take one mutex; the compute
 * callback runs OUTSIDE the lock, so concurrent jobs missing on the
 * same key may compute the value twice -- the first publish wins and
 * later ones adopt it (identical by the determinism contract).  Byte
 * accounting uses caller-supplied estimates; an artifact larger than
 * the whole budget is returned but never inserted.
 */

#ifndef RASENGAN_SERVE_ARTIFACT_CACHE_H
#define RASENGAN_SERVE_ARTIFACT_CACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/cachekey.h"

namespace rasengan::serve {

class ArtifactCache
{
  public:
    /**
     * Per-domain slice of the counters.  The LRU budget is shared
     * across domains, so one domain's working set can evict another's
     * entries; these counters attribute hits, misses, and evictions to
     * the domain that OWNED the entry (for evictions: the victim's
     * domain, regardless of which domain's insert forced it out) --
     * exactly the signal needed to spot cross-domain cache pressure.
     */
    struct DomainStats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t bytesInUse = 0;
        size_t entries = 0;
    };

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t uncacheable = 0; ///< artifacts larger than the budget
        uint64_t bytesInUse = 0;
        uint64_t byteBudget = 0;
        size_t entries = 0;
        /** Keyed by the domain string passed to getOrCompute ("" for
         *  untagged lookups). */
        std::map<std::string, DomainStats> domains;

        double
        hitRate() const
        {
            uint64_t lookups = hits + misses;
            return lookups == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups);
        }
    };

    /** Per-job hit/miss attribution (telemetry). */
    struct LookupCounters
    {
        struct DomainLookup
        {
            uint64_t hits = 0;
            uint64_t misses = 0;
        };

        uint64_t hits = 0;
        uint64_t misses = 0;
        /** The same lookups split by the domain string passed to
         *  getOrCompute -- per-job counterpart of Stats::domains. */
        std::map<std::string, DomainLookup> domains;
    };

    /** @p byte_budget 0 disables caching (every lookup misses). */
    explicit ArtifactCache(uint64_t byte_budget);

    /**
     * Return the artifact for @p key, computing it with @p make on a
     * miss.  @p make returns {value, approximate bytes}.  The hit/miss
     * is counted in the global stats and, when given, in @p counters.
     * @p domain attributes the lookup (and any resulting entry) to a
     * DomainStats slice; the CacheKey already encodes it, so passing
     * the same domain string used in makeKey keeps the attribution
     * honest.
     */
    template <typename T>
    std::shared_ptr<const T>
    getOrCompute(const CacheKey &key,
                 const std::function<std::pair<std::shared_ptr<const T>,
                                               uint64_t>()> &make,
                 LookupCounters *counters = nullptr,
                 const char *domain = "")
    {
        if (std::shared_ptr<const void> found =
                find(key, counters, domain))
            return std::static_pointer_cast<const T>(found);
        auto [value, bytes] = make();
        return std::static_pointer_cast<const T>(
            publish(key, value, bytes, domain));
    }

    /** Snapshot of the counters (copied under the lock). */
    Stats stats() const;

    /** Drop every entry (counters other than bytes/entries survive). */
    void clear();

  private:
    std::shared_ptr<const void> find(const CacheKey &key,
                                     LookupCounters *counters,
                                     const char *domain);
    std::shared_ptr<const void> publish(const CacheKey &key,
                                        std::shared_ptr<const void> value,
                                        uint64_t bytes,
                                        const char *domain);

    struct Entry
    {
        CacheKey key;
        std::shared_ptr<const void> value;
        uint64_t bytes = 0;
        std::string domain; ///< eviction attribution
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index_;
    Stats stats_;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_ARTIFACT_CACHE_H
