/**
 * @file
 * Crash-safe write-ahead job journal for the serve daemon.
 *
 * Every accepted request is appended -- with its content fingerprint
 * and the full request line -- before the daemon acknowledges it, and
 * every state transition (running, done, failed, shed) is appended as
 * it happens.  Appends are flushed and fdatasync'd per record, so after
 * a SIGKILL the journal is at worst missing (or tearing) its final
 * line.  Replay tolerates exactly that: malformed or truncated trailing
 * records are skipped and counted, never fatal.
 *
 * Replay semantics.  A job is *pending* when its accepted record has no
 * terminal record (done or shed) -- including jobs that were mid-run
 * when the process died.  The daemon re-runs pending jobs on restart;
 * because child seeds derive from request content (serve::JobRunner),
 * the re-run produces byte-identical result lines, and the
 * determinism-under-replay CI check diffs them against an uninterrupted
 * run.  Duplicate completions are therefore harmless: last record wins.
 *
 * Record format: one flat JSON object per line (serve/jsonl), with a
 * "type" tag:
 *
 *   {"type":"accepted","seq":N,"id":...,"fingerprint":...,"request":R}
 *   {"type":"running","seq":N,"id":...}
 *   {"type":"done","seq":N,"id":...,"result":R}    (terminal)
 *   {"type":"shed","seq":N,"id":...,"code":...,"reason":...} (terminal)
 *
 * where R is the writeRequest()/writeResult() line embedded as a JSON
 * string -- flat JSON has no nesting, and escaping keeps the parser
 * honest.  `seq` is a per-journal monotonic sequence number; records
 * reference their accepted record by seq, so duplicate client ids
 * cannot cross wires.
 */

#ifndef RASENGAN_SERVE_JOURNAL_H
#define RASENGAN_SERVE_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.h"

namespace rasengan::serve {

/** One replayed job with its terminal state (if any). */
struct JournalJob
{
    uint64_t seq = 0;
    std::string id;
    std::string fingerprint;
    std::string requestLine; ///< writeRequest() bytes as accepted
    bool started = false;    ///< a running record was seen
    bool done = false;       ///< terminal done record seen
    bool shed = false;       ///< terminal shed record seen
    std::string resultLine;  ///< writeResult() bytes when done
};

struct JournalReplay
{
    bool ok = false;
    std::string error; ///< I/O-level failure only (missing file is ok)
    std::vector<JournalJob> jobs; ///< in accepted order
    uint64_t nextSeq = 1;         ///< first unused sequence number
    /// @name Defect counters (never fatal)
    /// @{
    size_t malformedLines = 0; ///< unparsable or semantically bad lines
    size_t truncatedLines = 0; ///< torn final line (partial write)
    size_t oversizedLines = 0; ///< lines beyond the reader's cap
    /// @}

    /** Jobs with no terminal record: what a restarted daemon re-runs. */
    std::vector<const JournalJob *> pending() const;
};

/**
 * Append-only journal writer.  All append methods are thread-safe (the
 * daemon journals acceptance from its IO thread and completion from the
 * worker) and durable: each record is flushed and fdatasync'd before
 * the call returns.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for appending (creating it if absent); @p next_seq
     * seeds the sequence counter (use JournalReplay::nextSeq when
     * reopening an existing journal).  Returns false on I/O failure.
     */
    bool open(const std::string &path, uint64_t next_seq = 1,
              std::string *error = nullptr);

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /** Journal an accepted request; returns its sequence number. */
    uint64_t appendAccepted(const JobRequest &req,
                            const std::string &fingerprint);

    void appendRunning(uint64_t seq, const std::string &id);

    /** Terminal: job finished (ok or failed); @p result_line is the
     *  deterministic writeResult() rendering. */
    void appendDone(uint64_t seq, const std::string &id,
                    const std::string &result_line);

    /** Terminal: job shed/rejected with a structured reason. */
    void appendShed(uint64_t seq, const std::string &id,
                    const std::string &code, const std::string &reason);

    /** Flush + fdatasync any buffered bytes (appends already do). */
    void sync();

    void close();

    /**
     * Parse @p path and reconstruct job states.  A missing file yields
     * ok=true with no jobs (cold start).  Malformed/truncated/oversized
     * lines are counted and skipped -- crash debris must never brick a
     * restart.
     */
    static JournalReplay replay(const std::string &path);

    /**
     * Rewrite @p path keeping only records of jobs that are still
     * pending (SIGHUP maintenance: a long-lived daemon's journal would
     * otherwise grow without bound).  Atomic: writes a sibling temp
     * file, fsyncs, then renames over the original.  Returns false and
     * leaves the original untouched on any failure.  The journal must
     * be closed (or not yet opened) when compacting.
     */
    static bool compact(const std::string &path, std::string *error);

  private:
    void appendLine(const std::string &line);

    std::mutex mutex_;
    std::FILE *file_ = nullptr;
    std::string path_;
    uint64_t nextSeq_ = 1;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_JOURNAL_H
