#include "serve/policy.h"

#include <cmath>
#include <fstream>

#include "serve/jsonl.h"

namespace rasengan::serve {

namespace {

PolicyParseResult
fail(const std::string &why)
{
    PolicyParseResult r;
    r.error = why;
    return r;
}

bool
numberField(const JsonValue &value, double *out)
{
    if (value.kind != JsonValue::Kind::Number)
        return false;
    *out = value.num;
    return true;
}

} // namespace

PolicyParseResult
parsePolicyText(const std::string &line, const DaemonPolicy &base)
{
    JsonParseResult parsed = parseFlatJson(line);
    if (!parsed.ok)
        return fail("policy parse error at byte " +
                    std::to_string(parsed.errorOffset) + ": " +
                    parsed.error);

    PolicyParseResult out;
    out.policy = base;
    for (const auto &[key, value] : parsed.object) {
        double num = 0.0;
        if (!numberField(value, &num))
            return fail("policy key \"" + key + "\" must be a number");
        if (key == "max_queue") {
            if (num < 0.0)
                return fail("max_queue must be >= 0");
            out.policy.limits.maxQueuedJobs = static_cast<size_t>(num);
        } else if (key == "max_qubits") {
            if (num < 1.0)
                return fail("max_qubits must be >= 1");
            out.policy.limits.maxQubits = static_cast<int>(num);
        } else if (key == "max_shots") {
            if (num < 0.0)
                return fail("max_shots must be >= 0");
            out.policy.limits.maxShotsPerJob =
                static_cast<uint64_t>(num);
        } else if (key == "max_iterations") {
            if (num < 1.0)
                return fail("max_iterations must be >= 1");
            out.policy.limits.maxIterationsPerJob =
                static_cast<int>(num);
        } else if (key == "max_job_cost") {
            if (!(num > 0.0))
                return fail("max_job_cost must be > 0");
            out.policy.limits.maxJobCostUnits = num;
        } else if (key == "max_batch_cost") {
            if (!(num > 0.0))
                return fail("max_batch_cost must be > 0");
            out.policy.limits.maxBatchCostUnits = num;
        } else if (key == "cost_rate") {
            if (!(num > 0.0))
                return fail("cost_rate must be > 0");
            out.policy.slo.costUnitsPerSecond = num;
        } else if (key == "shed_margin") {
            if (num < 0.0 || num >= 1.0)
                return fail("shed_margin must be in [0, 1)");
            out.policy.slo.shedMargin = num;
        } else {
            // Unknown keys are an error, like parseRequest: a typo that
            // silently kept the old limit would defeat the reload.
            return fail("unknown policy key \"" + key + "\"");
        }
    }
    out.ok = true;
    return out;
}

PolicyParseResult
loadPolicyFile(const std::string &path, const DaemonPolicy &base)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return fail("cannot open policy file " + path);

    LineReader reader(in);
    LineReader::Line line;
    std::string text;
    bool found = false;
    while (reader.next(line)) {
        if (!line.ok) {
            const char *why = line.hasNul ? "contains a NUL byte"
                              : line.oversized
                                  ? "exceeds the line-length cap"
                                  : "is truncated (no newline)";
            return fail("policy file " + path + " line " +
                        std::to_string(line.number) + " " + why);
        }
        if (found)
            return fail("policy file " + path +
                        " must contain exactly one object line");
        text = line.text;
        found = true;
    }
    if (!found)
        return fail("policy file " + path + " is empty");
    return parsePolicyText(text, base);
}

} // namespace rasengan::serve
