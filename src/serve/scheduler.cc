#include "serve/scheduler.h"

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/metrics.h"

namespace rasengan::serve {

BatchScheduler::BatchScheduler(ServeOptions options,
                               std::shared_ptr<ArtifactCache> cache)
    : options_(options),
      runner_(RunnerOptions{options.batchSeed, ""},
              cache ? std::move(cache)
                    : std::make_shared<ArtifactCache>(
                          options.cacheBudgetBytes)),
      admission_(options.limits)
{
}

ScreenedJob
screenRequest(const JobRunner &runner, AdmissionController &admission,
              const JobRequest &req)
{
    ScreenedJob out;
    out.rejection.id = req.id;

    PrepareOutcome prepared = runner.prepare(req);
    if (!prepared.ok) {
        out.rejection.accepted = false;
        out.rejection.rejectReason = prepared.error;
        out.rejection.rejectCode = "validation";
        return out;
    }

    AdmissionDecision decision =
        admission.admit(req, prepared.job.problem->numVars());
    out.costUnits = decision.costUnits;
    out.rejection.costUnits = decision.costUnits;
    if (!decision.admitted) {
        out.rejection.accepted = false;
        out.rejection.rejectReason = decision.reason;
        out.rejection.rejectCode = "admission";
        return out;
    }

    out.admitted = true;
    out.prepared = std::move(prepared.job);
    return out;
}

size_t
BatchScheduler::submit(const JobRequest &req)
{
    panic_if(ran_, "BatchScheduler::submit after runAll");
    size_t index = results_.size();
    ScreenedJob screened = screenRequest(runner_, admission_, req);
    if (!screened.admitted) {
        results_.push_back(std::move(screened.rejection));
        return index;
    }

    results_.emplace_back();
    JobResult &slot = results_.back();
    slot.id = req.id;
    slot.costUnits = screened.costUnits;
    slot.accepted = true;
    // Serial, submission-ordered: tuner decisions made here are a pure
    // function of the request stream, independent of thread count.
    if (options_.onJobPrepared)
        options_.onJobPrepared(screened.prepared);
    // Every admitted job gets a trace id (forwarded hint wins --
    // cluster workers must stitch under the coordinator's id).
    // Minting is unconditional and deterministic, so telemetry lines
    // stay byte-identical whether tracing is on or off.
    if (screened.prepared.req.traceHint.empty())
        screened.prepared.req.traceHint =
            traceIdForJob(screened.prepared);
    obs::instantEvent("serve", "job-queued", req.id);
    pending_.push_back(PendingJob{std::move(screened.prepared),
                                  screened.costUnits, index,
                                  obs::nowNanos()});
    return index;
}

void
BatchScheduler::runAll()
{
    panic_if(ran_, "BatchScheduler::runAll called twice");
    ran_ = true;
    if (options_.threads > 0)
        parallel::setThreadCount(options_.threads);
    // Per-job spans run on pool threads, which do not inherit this
    // thread's span stack; the batch span id is passed down explicitly
    // so the job spans still parent under the batch.  Cluster workers
    // suppress it: the coordinator's span is the batch parent there.
    std::optional<obs::Span> batch_span;
    if (!options_.suppressBatchSpan)
        batch_span.emplace("serve", "batch",
                           "jobs=" + std::to_string(pending_.size()));
    const obs::SpanId batch_id = batch_span ? batch_span->id() : 0;
    parallel::parallelForDynamic(0, pending_.size(),
                                 [this, batch_id](uint64_t i) {
                                     runJob(pending_[i], batch_id);
                                 });
}

void
BatchScheduler::runJob(PendingJob &job, obs::SpanId batch_span)
{
    const JobRequest &req = job.prepared.req;
    // Remote parent (cluster worker) wins over the local batch span;
    // either way the job span carries the job's trace id so shipped
    // forests stitch under it.
    obs::SpanContext ctx;
    ctx.traceId = req.traceHint;
    ctx.remote = options_.traceRemoteParent != 0;
    ctx.parent = ctx.remote ? options_.traceRemoteParent : batch_span;
    obs::Span span("serve", "job", req.id, ctx);
    const obs::TimeNanos start = obs::nowNanos();

    JobResult result;
    if (options_.stopFlag != nullptr &&
        options_.stopFlag->load(std::memory_order_relaxed)) {
        // Graceful stop: admitted but never started.  Cheap and
        // side-effect free, so the batch drains almost immediately
        // while in-flight jobs finish normally.
        ++interrupted_;
        result.ok = false;
        result.error = "interrupted: batch stopped before this job "
                       "started";
        result.id = req.id;
        result.accepted = true;
        result.problemId = job.prepared.problem->id();
        result.numVars = job.prepared.problem->numVars();
        result.childSeed = job.prepared.childSeed;
        result.telemetry.priority = req.priority;
    } else {
        // Per-job wall-clock timeout: armed here (not in the runner)
        // so the token's lifetime spans exactly this execution.
        exec::CancelToken deadline;
        const exec::CancelToken *token = nullptr;
        if (req.timeoutMs > 0.0) {
            deadline.setDeadlineSeconds(req.timeoutMs * 1e-3);
            token = &deadline;
        }
        result = runner_.run(job.prepared, token);
    }

    result.costUnits = job.costUnits;
    result.telemetry.traceId = req.traceHint;
    const obs::TimeNanos end = obs::nowNanos();
    result.telemetry.queueWaitMs =
        static_cast<double>(start - job.submitTime) * 1e-6;
    result.telemetry.wallMs = static_cast<double>(end - start) * 1e-6;

    static obs::Counter &jobs_done = obs::Registry::global().counter(
        "serve_jobs_completed_total", "Jobs finished by the scheduler");
    static obs::Histogram &wall_hist = obs::Registry::global().histogram(
        "serve_job_wall_ms", "Per-job run time in milliseconds");
    static obs::Histogram &wait_hist = obs::Registry::global().histogram(
        "serve_job_queue_wait_ms",
        "Submission-to-start wait in milliseconds");
    jobs_done.inc();
    wall_hist.observe(result.telemetry.wallMs);
    wait_hist.observe(result.telemetry.queueWaitMs);

    results_[job.resultIndex] = std::move(result);
    admission_.release();
    if (options_.onJobComplete)
        options_.onJobComplete(job.resultIndex, results_[job.resultIndex]);
}

} // namespace rasengan::serve
