/**
 * @file
 * Admission control and backpressure for the batch solve service.
 *
 * Every request is costed before it enters the queue.  The cost model
 * is a deliberately coarse work estimate in abstract "cost units"
 * (roughly: optimizer evaluations x per-evaluation simulation effort);
 * it exists to bound the batch, not to predict wall time.  A job is
 * rejected -- with a human-readable reason echoed into its result line
 * -- when the queue is full, the instance exceeds the simulable qubit
 * cap, a per-field limit is violated, or the job/batch cost budget
 * would be exceeded.  Rejection is deterministic: it depends only on
 * the request stream, never on timing.
 */

#ifndef RASENGAN_SERVE_ADMISSION_H
#define RASENGAN_SERVE_ADMISSION_H

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/job.h"

namespace rasengan::serve {

struct AdmissionLimits
{
    size_t maxQueuedJobs = 1024;    ///< bounded queue (backpressure)
    int maxQubits = 26;             ///< dense/sparse simulability cap
    uint64_t maxShotsPerJob = 1u << 20;
    int maxIterationsPerJob = 5000;
    double maxJobCostUnits = 5e7;   ///< single-job ceiling
    double maxBatchCostUnits = 5e8; ///< sum over admitted jobs

    /**
     * Effectively-infinite limits for execution contexts that must not
     * re-screen: a cluster worker runs only jobs its coordinator already
     * admitted, so a second (stateful) admission pass would double-count
     * the batch budget and break the byte-identity contract.
     */
    static AdmissionLimits unlimited();
};

/**
 * Coarse work estimate for @p req on a problem with @p num_vars
 * variables.  Exact execution pays the sparse-state footprint
 * (bounded by 2^n); shot-based execution pays shots; gate-level noisy
 * execution additionally pays statevector trajectories (2^n amplitudes
 * per trajectory).  All scaled by the optimizer evaluation budget.
 */
double estimateJobCost(const JobRequest &req, int num_vars);

/** Outcome of one admission decision. */
struct AdmissionDecision
{
    bool admitted = false;
    std::string reason; ///< set when !admitted
    double costUnits = 0.0;
};

/**
 * Stateful gate: tracks queued-job count and admitted batch cost.
 * admit() is single-producer (the scheduler's serial submit phase);
 * release() is called concurrently from pool threads as jobs finish,
 * so the queued-job count is atomic.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionLimits limits);

    /** Decide on @p req; admission reserves queue + cost capacity. */
    AdmissionDecision admit(const JobRequest &req, int num_vars);

    /**
     * Swap the limits (daemon SIGHUP policy reload).  Must be called
     * from the thread that calls admit() -- in the daemon both run on
     * the IO thread -- because limits_ is read without a lock there.
     * Committed batch cost and queue occupancy carry over unchanged.
     */
    void updateLimits(const AdmissionLimits &limits) { limits_ = limits; }

    /** Release one queue slot (job finished); cost stays reserved. */
    void release();

    /**
     * Return @p cost_units to the budget (daemon mode: a finished job
     * frees its share, so maxBatchCostUnits bounds cost *in flight*
     * rather than cost-ever-admitted).  Batch mode never calls this,
     * keeping its cost-per-batch semantics.  Thread-safe.
     */
    void releaseCost(double cost_units);

    size_t
    queuedJobs() const
    {
        return queuedJobs_.load(std::memory_order_relaxed);
    }

    double
    batchCostUnits() const
    {
        return batchCost_.load(std::memory_order_relaxed);
    }

    const AdmissionLimits &limits() const { return limits_; }

  private:
    AdmissionLimits limits_;
    std::atomic<size_t> queuedJobs_{0};
    /** Atomic: the daemon admits on its IO thread while the worker
     *  releases cost as jobs finish. */
    std::atomic<double> batchCost_{0.0};
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_ADMISSION_H
