#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rasengan::serve {

namespace {

std::string
fmtCost(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

} // namespace

double
estimateJobCost(const JobRequest &req, int num_vars)
{
    double evals = static_cast<double>(std::max(req.iterations, 1));
    double states = std::pow(2.0, std::min(num_vars, 40));
    double perEval;
    if (req.execution == "exact") {
        // Sparse propagation touches at most the feasible portion of
        // the state space; 2^n is the conservative bound.
        perEval = states;
    } else if (req.execution == "gate") {
        // Full statevector per trajectory per segment evaluation.
        perEval = states * 8.0 + static_cast<double>(req.shots);
    } else { // sampled | noisy
        perEval = static_cast<double>(req.shots) *
                  std::max(req.shotGrowth, 1.0);
    }
    // The baselines simulate the full circuit densely per evaluation.
    if (req.algorithm != "rasengan")
        perEval = std::max(perEval, states) *
                  static_cast<double>(std::max(req.layers, 1));
    return evals * perEval / 1024.0;
}

AdmissionController::AdmissionController(AdmissionLimits limits)
    : limits_(limits)
{
}

AdmissionDecision
AdmissionController::admit(const JobRequest &req, int num_vars)
{
    AdmissionDecision d;
    d.costUnits = estimateJobCost(req, num_vars);
    if (queuedJobs_ >= limits_.maxQueuedJobs) {
        d.reason = "queue full (" + std::to_string(limits_.maxQueuedJobs) +
                   " jobs pending)";
        return d;
    }
    if (num_vars > limits_.maxQubits) {
        d.reason = "instance has " + std::to_string(num_vars) +
                   " variables; limit is " +
                   std::to_string(limits_.maxQubits);
        return d;
    }
    if (req.shots > limits_.maxShotsPerJob) {
        d.reason = "shots " + std::to_string(req.shots) +
                   " exceed the per-job limit " +
                   std::to_string(limits_.maxShotsPerJob);
        return d;
    }
    if (req.iterations > limits_.maxIterationsPerJob) {
        d.reason = "iterations " + std::to_string(req.iterations) +
                   " exceed the per-job limit " +
                   std::to_string(limits_.maxIterationsPerJob);
        return d;
    }
    if (d.costUnits > limits_.maxJobCostUnits) {
        d.reason = "estimated cost " + fmtCost(d.costUnits) +
                   " units exceeds the per-job budget " +
                   fmtCost(limits_.maxJobCostUnits);
        return d;
    }
    if (batchCost_ + d.costUnits > limits_.maxBatchCostUnits) {
        d.reason = "batch cost budget exhausted (" +
                   fmtCost(batchCost_) + " of " +
                   fmtCost(limits_.maxBatchCostUnits) +
                   " units committed)";
        return d;
    }
    d.admitted = true;
    ++queuedJobs_;
    batchCost_ += d.costUnits;
    return d;
}

void
AdmissionController::release()
{
    if (queuedJobs_ > 0)
        --queuedJobs_;
}

} // namespace rasengan::serve
