#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace rasengan::serve {

namespace {

std::string
fmtCost(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

struct AdmissionCounters
{
    obs::Counter &admitted = obs::Registry::global().counter(
        "serve_admission_admitted_total", "Jobs admitted to the batch");
    obs::Counter &rejected = obs::Registry::global().counter(
        "serve_admission_rejected_total", "Jobs rejected by admission");
    obs::Gauge &queuedJobs = obs::Registry::global().gauge(
        "serve_admission_queued_jobs", "Jobs currently admitted and queued");
    obs::Gauge &batchCost = obs::Registry::global().gauge(
        "serve_admission_batch_cost_units",
        "Cost units committed by the current batch");
};

AdmissionCounters &
admissionCounters()
{
    static AdmissionCounters counters;
    return counters;
}

} // namespace

double
estimateJobCost(const JobRequest &req, int num_vars)
{
    double evals = static_cast<double>(std::max(req.iterations, 1));
    double states = std::pow(2.0, std::min(num_vars, 40));
    double perEval;
    if (req.execution == "exact") {
        // Sparse propagation touches at most the feasible portion of
        // the state space; 2^n is the conservative bound.
        perEval = states;
    } else if (req.execution == "gate") {
        // Full statevector per trajectory per segment evaluation.
        perEval = states * 8.0 + static_cast<double>(req.shots);
    } else { // sampled | noisy
        perEval = static_cast<double>(req.shots) *
                  std::max(req.shotGrowth, 1.0);
    }
    // The baselines simulate the full circuit densely per evaluation.
    if (req.algorithm != "rasengan")
        perEval = std::max(perEval, states) *
                  static_cast<double>(std::max(req.layers, 1));
    return evals * perEval / 1024.0;
}

AdmissionLimits
AdmissionLimits::unlimited()
{
    AdmissionLimits l;
    l.maxQueuedJobs = static_cast<size_t>(-1);
    l.maxQubits = 1 << 20;
    l.maxShotsPerJob = static_cast<uint64_t>(-1);
    l.maxIterationsPerJob = 1 << 30;
    l.maxJobCostUnits = 1e300;
    l.maxBatchCostUnits = 1e300;
    return l;
}

AdmissionController::AdmissionController(AdmissionLimits limits)
    : limits_(limits)
{
}

AdmissionDecision
AdmissionController::admit(const JobRequest &req, int num_vars)
{
    AdmissionDecision d;
    d.costUnits = estimateJobCost(req, num_vars);
    if (queuedJobs() >= limits_.maxQueuedJobs) {
        d.reason = "queue full (" + std::to_string(limits_.maxQueuedJobs) +
                   " jobs pending)";
        admissionCounters().rejected.inc();
        return d;
    }
    if (num_vars > limits_.maxQubits) {
        d.reason = "instance has " + std::to_string(num_vars) +
                   " variables; limit is " +
                   std::to_string(limits_.maxQubits);
        admissionCounters().rejected.inc();
        return d;
    }
    if (req.shots > limits_.maxShotsPerJob) {
        d.reason = "shots " + std::to_string(req.shots) +
                   " exceed the per-job limit " +
                   std::to_string(limits_.maxShotsPerJob);
        admissionCounters().rejected.inc();
        return d;
    }
    if (req.iterations > limits_.maxIterationsPerJob) {
        d.reason = "iterations " + std::to_string(req.iterations) +
                   " exceed the per-job limit " +
                   std::to_string(limits_.maxIterationsPerJob);
        admissionCounters().rejected.inc();
        return d;
    }
    if (d.costUnits > limits_.maxJobCostUnits) {
        d.reason = "estimated cost " + fmtCost(d.costUnits) +
                   " units exceeds the per-job budget " +
                   fmtCost(limits_.maxJobCostUnits);
        admissionCounters().rejected.inc();
        return d;
    }
    const double committed = batchCostUnits();
    if (committed + d.costUnits > limits_.maxBatchCostUnits) {
        d.reason = "batch cost budget exhausted (" +
                   fmtCost(committed) + " of " +
                   fmtCost(limits_.maxBatchCostUnits) +
                   " units committed)";
        admissionCounters().rejected.inc();
        return d;
    }
    d.admitted = true;
    queuedJobs_.fetch_add(1, std::memory_order_relaxed);
    batchCost_.fetch_add(d.costUnits, std::memory_order_relaxed);
    admissionCounters().admitted.inc();
    admissionCounters().queuedJobs.set(static_cast<double>(queuedJobs()));
    admissionCounters().batchCost.set(batchCostUnits());
    return d;
}

void
AdmissionController::releaseCost(double cost_units)
{
    // Clamp at zero: replayed jobs release cost that was admitted by a
    // previous daemon incarnation.
    double seen = batchCost_.load(std::memory_order_relaxed);
    while (true) {
        double next = seen - cost_units;
        if (next < 0.0)
            next = 0.0;
        if (batchCost_.compare_exchange_weak(seen, next,
                                             std::memory_order_relaxed))
            break;
    }
    admissionCounters().batchCost.set(batchCostUnits());
}

void
AdmissionController::release()
{
    // Pool threads release concurrently as jobs finish; never go below
    // zero even if release() is over-called.
    size_t seen = queuedJobs_.load(std::memory_order_relaxed);
    while (seen > 0 &&
           !queuedJobs_.compare_exchange_weak(seen, seen - 1,
                                              std::memory_order_relaxed)) {
    }
    admissionCounters().queuedJobs.set(static_cast<double>(queuedJobs()));
}

} // namespace rasengan::serve
