/**
 * @file
 * Single-job preparation and execution, shared by the batch scheduler
 * and the serve daemon.
 *
 * prepare() turns a JobRequest into a PreparedJob: validated, problem
 * materialized, canonical request text hashed into the job's content
 * fingerprint and child seed.  run() executes a PreparedJob through the
 * solver stack with the artifact cache wired in, honoring an optional
 * cooperative cancel/deadline token, and returns the deterministic
 * JobResult payload.
 *
 * Determinism contract (inherited by every caller): the child seed is
 * mixSeed(fnv1a64(canonicalRequestText) ^ batchSeed) -- a pure function
 * of the job's content and the service seed, never of time, queue
 * position, or the client.  Equal logical work therefore produces
 * byte-identical writeResult() lines whether it runs in a batch, in the
 * daemon, or in a journal replay after a crash.
 *
 * When `checkpointDir` is set, rasengan jobs write segment checkpoints
 * under it (keyed by the content fingerprint) and automatically resume
 * from a compatible checkpoint -- the PR 1 machinery guarantees the
 * resumed result is bit-identical to an uninterrupted run.  The
 * checkpoint is deleted after a successful solve.
 */

#ifndef RASENGAN_SERVE_RUNNER_H
#define RASENGAN_SERVE_RUNNER_H

#include <memory>
#include <string>

#include "exec/cancel.h"
#include "problems/problem.h"
#include "serve/artifact_cache.h"
#include "serve/job.h"

namespace rasengan::serve {

struct RunnerOptions
{
    /** Mixed into every job's child seed (ServeOptions::batchSeed and
     *  the daemon's --batch-seed share this meaning). */
    uint64_t batchSeed = 0;
    /** Directory for per-job segment checkpoints; "" disables them. */
    std::string checkpointDir;
};

/**
 * Result-invariant per-job execution knobs chosen by the adaptive tuner
 * (or parsed from a coordinator's tune hint).  Deliberately a plain
 * struct -- serve does not link the tune library; the tools and the
 * cluster wire a tune::Tuner into the scheduler/daemon hooks and map
 * its decisions onto these fields.  Every field is a pure performance
 * hint: results are byte-identical for any assignment, and none of it
 * is hashed into the child seed.
 */
struct JobTuning
{
    bool denseLookup = false; ///< RasenganOptions::denseIndexLookup
    bool cachePlans = true;   ///< RasenganOptions::cacheRotationPlans
    std::string bucket;       ///< fingerprint bucket (telemetry/records)
    std::string decision;     ///< rendered knob assignment (telemetry)
    std::string source;       ///< default|explore:...|model|hint
};

/** A validated, materialized job ready to execute. */
struct PreparedJob
{
    JobRequest req;
    /** Shared so queued/journaled copies stay cheap; never null when
     *  the job came from a successful prepare(). */
    std::shared_ptr<const problems::Problem> problem;
    std::string canonicalProblem;
    uint64_t childSeed = 0;
    /** 16-hex digest of the canonical request text: the job's content
     *  identity in the journal and checkpoint filenames. */
    std::string fingerprint;
    /** Filled by prepare() from req.tuneHint when present; otherwise
     *  defaults until an onJobPrepared hook overrides it. */
    JobTuning tuning;
};

struct PrepareOutcome
{
    bool ok = false;
    std::string error; ///< validation/parse failure when !ok
    PreparedJob job;
};

/**
 * Deterministic 128-bit (32-hex) distributed trace id for @p job: a
 * pure function of the job's child seed and its correlation id, so the
 * cluster coordinator and a single-process scheduler mint the SAME id
 * for the same admitted job -- telemetry stays byte-comparable between
 * cluster and single-process runs -- while two submissions of equal
 * work under different job ids still get distinct traces.  Never
 * folded back into seeds or results (tracing observes, only).
 */
std::string traceIdForJob(const PreparedJob &job);

class JobRunner
{
  public:
    /** @p cache may be shared across runners/schedulers; must not be
     *  null. */
    JobRunner(RunnerOptions options, std::shared_ptr<ArtifactCache> cache);

    /** Validate @p req and materialize its problem; pure (no I/O). */
    PrepareOutcome prepare(const JobRequest &req) const;

    /**
     * Execute @p job and fill the deterministic result payload
     * (solution, objective, hashes, retry telemetry).  Queue-wait and
     * wall-time telemetry are the caller's concern.  @p cancel, when
     * non-null, is checked cooperatively inside the executor and
     * between segment evolutions; a tripped token yields ok=false with
     * telemetry.deadlineHit set.  Thread-safe for distinct jobs.
     */
    JobResult run(const PreparedJob &job,
                  const exec::CancelToken *cancel = nullptr) const;

    ArtifactCache &cache() { return *cache_; }
    std::shared_ptr<ArtifactCache> sharedCache() const { return cache_; }
    const RunnerOptions &options() const { return options_; }

  private:
    JobResult solveRasengan(const PreparedJob &job,
                            ArtifactCache::LookupCounters &counters,
                            const exec::CancelToken *cancel) const;
    JobResult solveBaseline(const PreparedJob &job,
                            const exec::CancelToken *cancel) const;

    RunnerOptions options_;
    std::shared_ptr<ArtifactCache> cache_;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_RUNNER_H
