#include "serve/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rasengan::serve {

namespace {

struct Cursor
{
    const std::string &s;
    size_t pos = 0;

    bool
    done() const
    {
        return pos >= s.size();
    }

    char
    peek() const
    {
        return done() ? '\0' : s[pos];
    }

    void
    skipWs()
    {
        while (!done() && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
};

JsonParseResult
fail(const Cursor &cur, const std::string &what)
{
    JsonParseResult r;
    r.ok = false;
    r.error = what;
    r.errorOffset = cur.pos;
    return r;
}

bool
parseString(Cursor &cur, std::string &out, std::string &err)
{
    if (cur.peek() != '"') {
        err = "expected '\"'";
        return false;
    }
    ++cur.pos;
    out.clear();
    while (!cur.done()) {
        char c = cur.s[cur.pos++];
        if (c == '"')
            return true;
        if (c == '\\') {
            if (cur.done()) {
                err = "unterminated escape";
                return false;
            }
            char e = cur.s[cur.pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  if (cur.pos + 4 > cur.s.size()) {
                      err = "truncated \\u escape";
                      return false;
                  }
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = cur.s[cur.pos++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else {
                          err = "bad hex digit in \\u escape";
                          return false;
                      }
                  }
                  // Requests are ASCII in practice; encode BMP code
                  // points as UTF-8 and reject surrogates.
                  if (code >= 0xD800 && code <= 0xDFFF) {
                      err = "surrogate \\u escapes unsupported";
                      return false;
                  }
                  if (code < 0x80) {
                      out.push_back(static_cast<char>(code));
                  } else if (code < 0x800) {
                      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                      out.push_back(
                          static_cast<char>(0x80 | (code & 0x3F)));
                  } else {
                      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                      out.push_back(
                          static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                      out.push_back(
                          static_cast<char>(0x80 | (code & 0x3F)));
                  }
                  break;
              }
              default:
                  err = "unknown escape character";
                  return false;
            }
        } else {
            out.push_back(c);
        }
    }
    err = "unterminated string";
    return false;
}

} // namespace

JsonParseResult
parseFlatJson(const std::string &line)
{
    Cursor cur{line};
    cur.skipWs();
    if (cur.peek() != '{')
        return fail(cur, "expected '{'");
    ++cur.pos;
    JsonParseResult result;
    cur.skipWs();
    if (cur.peek() == '}') {
        ++cur.pos;
        result.ok = true;
        return result;
    }
    while (true) {
        cur.skipWs();
        std::string key, err;
        if (!parseString(cur, key, err))
            return fail(cur, "key: " + err);
        cur.skipWs();
        if (cur.peek() != ':')
            return fail(cur, "expected ':' after key \"" + key + "\"");
        ++cur.pos;
        cur.skipWs();

        JsonValue value;
        char c = cur.peek();
        if (c == '"') {
            value.kind = JsonValue::Kind::String;
            if (!parseString(cur, value.str, err))
                return fail(cur, "value of \"" + key + "\": " + err);
        } else if (c == 't' && cur.s.compare(cur.pos, 4, "true") == 0) {
            value.kind = JsonValue::Kind::Bool;
            value.flag = true;
            cur.pos += 4;
        } else if (c == 'f' && cur.s.compare(cur.pos, 5, "false") == 0) {
            value.kind = JsonValue::Kind::Bool;
            value.flag = false;
            cur.pos += 5;
        } else if (c == 'n' && cur.s.compare(cur.pos, 4, "null") == 0) {
            value.kind = JsonValue::Kind::Null;
            cur.pos += 4;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            const char *start = line.c_str() + cur.pos;
            char *end = nullptr;
            double v = std::strtod(start, &end);
            if (end == start || !std::isfinite(v))
                return fail(cur, "bad number for key \"" + key + "\"");
            value.kind = JsonValue::Kind::Number;
            value.num = v;
            cur.pos += static_cast<size_t>(end - start);
        } else if (c == '{' || c == '[') {
            return fail(cur, "nested values are not supported (key \"" +
                                 key + "\")");
        } else {
            return fail(cur, "unexpected value for key \"" + key + "\"");
        }
        result.object[key] = std::move(value);

        cur.skipWs();
        if (cur.peek() == ',') {
            ++cur.pos;
            continue;
        }
        if (cur.peek() == '}') {
            ++cur.pos;
            break;
        }
        return fail(cur, "expected ',' or '}'");
    }
    cur.skipWs();
    if (!cur.done())
        return fail(cur, "trailing bytes after object");
    result.ok = true;
    return result;
}

bool
LineReader::next(Line &out)
{
    while (true) {
        out = Line{};
        if (!in_.good())
            return false;

        // Read manually instead of std::getline so an oversized line
        // can be drained without buffering it whole.
        std::string text;
        bool sawNewline = false;
        bool oversized = false;
        bool sawNul = false;
        int c;
        while ((c = in_.get()) != std::char_traits<char>::eof()) {
            if (c == '\n') {
                sawNewline = true;
                break;
            }
            if (c == '\r')
                continue; // tolerate CRLF streams
            if (c == '\0') {
                // NUL cannot appear in a valid JSONL record; drop the
                // text now so a zero-filled journal block cannot smuggle
                // a prefix past the parser, but keep draining to the
                // newline so the stream stays framed.
                sawNul = true;
                text.clear();
                text.shrink_to_fit();
                continue;
            }
            if (!oversized && !sawNul) {
                text.push_back(static_cast<char>(c));
                if (text.size() > maxLineBytes_) {
                    oversized = true;
                    text.clear();
                    text.shrink_to_fit();
                }
            }
        }
        if (!sawNewline && text.empty() && !oversized && !sawNul)
            return false; // clean end of stream

        ++lineNumber_;
        ++linesRead_;
        out.number = lineNumber_;

        if (sawNul) {
            ++nulLines_;
            out.hasNul = true;
            if (!sawNewline) {
                ++truncatedLines_;
                out.truncated = true;
            }
            return true;
        }
        if (oversized) {
            ++oversizedLines_;
            out.oversized = true;
            return true;
        }
        if (!sawNewline) {
            // Torn final line: a crash mid-append leaves a partial
            // record with no newline.  Report it; never parse it.
            ++truncatedLines_;
            out.truncated = true;
            out.text = std::move(text);
            return true;
        }
        if (text.empty()) {
            ++emptyLines_;
            continue;
        }
        out.ok = true;
        out.text = std::move(text);
        return true;
    }
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

void
JsonWriter::prefix(const std::string &key)
{
    if (!body_.empty())
        body_ += ",";
    body_ += "\"" + jsonEscape(key) + "\":";
}

JsonWriter &
JsonWriter::field(const std::string &key, const std::string &value)
{
    prefix(key);
    body_ += "\"" + jsonEscape(value) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, const char *value)
{
    return field(key, std::string(value));
}

JsonWriter &
JsonWriter::field(const std::string &key, double value)
{
    prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    body_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, int64_t value)
{
    prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    body_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, uint64_t value)
{
    prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    body_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, int value)
{
    return field(key, static_cast<int64_t>(value));
}

JsonWriter &
JsonWriter::boolean(const std::string &key, bool value)
{
    prefix(key);
    body_ += value ? "true" : "false";
    return *this;
}

std::string
JsonWriter::str() const
{
    return "{" + body_ + "}";
}

} // namespace rasengan::serve
