#include "serve/artifact_cache.h"

namespace rasengan::serve {

ArtifactCache::ArtifactCache(uint64_t byte_budget)
{
    stats_.byteBudget = byte_budget;
}

std::shared_ptr<const void>
ArtifactCache::find(const CacheKey &key, LookupCounters *counters)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        if (counters)
            ++counters->misses;
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second); // touch
    ++stats_.hits;
    if (counters)
        ++counters->hits;
    return it->second->value;
}

std::shared_ptr<const void>
ArtifactCache::publish(const CacheKey &key,
                       std::shared_ptr<const void> value, uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Another job computed and published the same key while we were
        // computing; adopt its (identical) value so both jobs share one
        // copy.
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->value;
    }
    if (stats_.byteBudget == 0 || bytes > stats_.byteBudget) {
        ++stats_.uncacheable;
        return value;
    }
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = lru_.begin();
    stats_.bytesInUse += bytes;
    ++stats_.insertions;
    while (stats_.bytesInUse > stats_.byteBudget && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        stats_.bytesInUse -= victim.bytes;
        index_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = lru_.size();
    return lru_.front().value;
}

ArtifactCache::Stats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_.bytesInUse = 0;
    stats_.entries = 0;
}

} // namespace rasengan::serve
