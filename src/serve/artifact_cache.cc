#include "serve/artifact_cache.h"

#include "obs/metrics.h"

namespace rasengan::serve {

namespace {

/** Registry mirrors of the per-instance Stats counters. */
struct CacheCounters
{
    obs::Counter &hits = obs::Registry::global().counter(
        "serve_cache_hits_total", "Artifact cache lookup hits");
    obs::Counter &misses = obs::Registry::global().counter(
        "serve_cache_misses_total", "Artifact cache lookup misses");
    obs::Counter &insertions = obs::Registry::global().counter(
        "serve_cache_insertions_total", "Artifacts inserted");
    obs::Counter &evictions = obs::Registry::global().counter(
        "serve_cache_evictions_total", "Artifacts evicted by the budget");
    obs::Counter &uncacheable = obs::Registry::global().counter(
        "serve_cache_uncacheable_total",
        "Artifacts larger than the whole budget");
    obs::Gauge &bytesInUse = obs::Registry::global().gauge(
        "serve_cache_bytes_in_use", "Bytes held by cached artifacts");
    obs::Gauge &entries = obs::Registry::global().gauge(
        "serve_cache_entries", "Artifacts currently cached");
};

CacheCounters &
cacheCounters()
{
    static CacheCounters counters;
    return counters;
}

/**
 * Labeled per-domain registry mirrors ({domain="pipeline"} etc.) -- the
 * global totals above hide WHICH layer of reuse is working.  Memoized
 * per domain string so the registry mutex is only taken on first sight
 * of a domain.
 */
struct DomainCounters
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &insertions;
    obs::Counter &evictions;
};

DomainCounters &
domainCounters(const std::string &domain)
{
    static std::mutex mutex;
    static std::map<std::string, DomainCounters> memo;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(domain);
    if (it == memo.end()) {
        obs::Registry &reg = obs::Registry::global();
        obs::Labels labels{
            {"domain", domain.empty() ? "untagged" : domain}};
        it = memo.emplace(
                     domain,
                     DomainCounters{
                         reg.counter("serve_cache_domain_hits_total",
                                     "Artifact cache hits by domain",
                                     labels),
                         reg.counter("serve_cache_domain_misses_total",
                                     "Artifact cache misses by domain",
                                     labels),
                         reg.counter(
                             "serve_cache_domain_insertions_total",
                             "Artifacts inserted by domain", labels),
                         reg.counter(
                             "serve_cache_domain_evictions_total",
                             "Artifacts evicted, attributed to the "
                             "victim's domain",
                             labels)})
                 .first;
    }
    return it->second;
}

} // namespace

ArtifactCache::ArtifactCache(uint64_t byte_budget)
{
    stats_.byteBudget = byte_budget;
}

std::shared_ptr<const void>
ArtifactCache::find(const CacheKey &key, LookupCounters *counters,
                    const char *domain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DomainStats &dom = stats_.domains[domain];
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        ++dom.misses;
        cacheCounters().misses.inc();
        domainCounters(domain).misses.inc();
        if (counters) {
            ++counters->misses;
            ++counters->domains[domain].misses;
        }
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second); // touch
    ++stats_.hits;
    ++dom.hits;
    cacheCounters().hits.inc();
    domainCounters(domain).hits.inc();
    if (counters) {
        ++counters->hits;
        ++counters->domains[domain].hits;
    }
    return it->second->value;
}

std::shared_ptr<const void>
ArtifactCache::publish(const CacheKey &key,
                       std::shared_ptr<const void> value, uint64_t bytes,
                       const char *domain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Another job computed and published the same key while we were
        // computing; adopt its (identical) value so both jobs share one
        // copy.
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->value;
    }
    if (stats_.byteBudget == 0 || bytes > stats_.byteBudget) {
        ++stats_.uncacheable;
        cacheCounters().uncacheable.inc();
        return value;
    }
    DomainStats &dom = stats_.domains[domain];
    lru_.push_front(Entry{key, std::move(value), bytes, domain});
    index_[key] = lru_.begin();
    stats_.bytesInUse += bytes;
    dom.bytesInUse += bytes;
    ++dom.entries;
    ++stats_.insertions;
    ++dom.insertions;
    cacheCounters().insertions.inc();
    domainCounters(domain).insertions.inc();
    while (stats_.bytesInUse > stats_.byteBudget && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        // Attribute the eviction to the VICTIM's domain: that is the
        // cross-domain pressure signal (domain A inserting can show up
        // here as domain B losing entries).
        DomainStats &vdom = stats_.domains[victim.domain];
        ++vdom.evictions;
        domainCounters(victim.domain).evictions.inc();
        vdom.bytesInUse -= victim.bytes;
        --vdom.entries;
        stats_.bytesInUse -= victim.bytes;
        index_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
        cacheCounters().evictions.inc();
    }
    stats_.entries = lru_.size();
    cacheCounters().bytesInUse.set(
        static_cast<double>(stats_.bytesInUse));
    cacheCounters().entries.set(static_cast<double>(stats_.entries));
    return lru_.front().value;
}

ArtifactCache::Stats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_.bytesInUse = 0;
    stats_.entries = 0;
    for (auto &[domain, dom] : stats_.domains) {
        dom.bytesInUse = 0;
        dom.entries = 0;
    }
    cacheCounters().bytesInUse.set(0.0);
    cacheCounters().entries.set(0.0);
}

} // namespace rasengan::serve
