#include "serve/runner.h"

#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "circuit/transpile.h"
#include "common/logging.h"
#include "core/rasengan.h"
#include "device/device.h"
#include "problems/io.h"
#include "problems/suite.h"
#include "serve/cachekey.h"

namespace rasengan::serve {

namespace {

std::optional<opt::Method>
parseOptimizer(const std::string &name)
{
    if (name == "cobyla")
        return opt::Method::Cobyla;
    if (name == "nelder-mead")
        return opt::Method::NelderMead;
    if (name == "spsa")
        return opt::Method::Spsa;
    if (name == "adam-spsa")
        return opt::Method::AdamSpsa;
    return std::nullopt;
}

qsim::NoiseModel
parseNoiseModel(const std::string &name)
{
    if (name == "kyiv")
        return device::DeviceModel::ibmKyiv().toNoiseModel();
    if (name == "brisbane")
        return device::DeviceModel::ibmBrisbane().toNoiseModel();
    return qsim::NoiseModel{};
}

uint64_t
estimatePipelineBytes(const core::PipelineArtifacts &artifacts)
{
    uint64_t bytes = 256;
    for (const auto &t : artifacts.transitions)
        bytes += 64 + static_cast<uint64_t>(t.numVars()) * 40;
    bytes += (artifacts.chain.steps.size() +
              artifacts.chain.unprunedSteps.size()) *
             24;
    bytes += (artifacts.chain.coverage.size() +
              artifacts.chain.unprunedCoverage.size()) *
             8;
    bytes += artifacts.segments.size() * 16;
    return bytes;
}

uint64_t
estimateCircuitBytes(const circuit::Circuit &circ)
{
    return 64 + static_cast<uint64_t>(circ.size()) * 80;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Content digest of the deterministic payload of @p r (16 hex). */
std::string
hashResult(const JobResult &r)
{
    std::ostringstream s;
    s << r.solution << "|" << fmtDouble(r.objective) << "|"
      << fmtDouble(r.expectedObjective) << "|"
      << fmtDouble(r.inConstraintsRate) << "|" << r.chainLength << "|"
      << r.numSegments << "|" << r.numParams << "|" << r.childSeed << "|"
      << (r.ok ? 1 : 0);
    return hex16(fnv1a64(s.str()));
}

/**
 * Parse a coordinator tune hint ("bucket=...;engine=dense;plans=off")
 * into per-job tuning fields.  Serve deliberately does not link the
 * tune library, so this accepts only the per-job keys the runner can
 * honor; unknown keys (threads/fusion/isa, applied process-wide by the
 * hint's SENDER) and malformed clauses are ignored -- a bad hint can
 * only cost performance, never correctness.
 */
JobTuning
parseTuneHint(const std::string &hint)
{
    JobTuning tuning;
    tuning.source = "hint";
    size_t pos = 0;
    while (pos < hint.size()) {
        size_t end = hint.find(';', pos);
        if (end == std::string::npos)
            end = hint.size();
        const std::string clause = hint.substr(pos, end - pos);
        pos = end + 1;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        if (key == "bucket")
            tuning.bucket = value;
        else if (key == "engine")
            tuning.denseLookup = value == "dense";
        else if (key == "plans")
            tuning.cachePlans = value != "off";
        else if (key == "source")
            tuning.source = value;
    }
    tuning.decision = hint;
    return tuning;
}

exec::ResilienceOptions
makeResilience(const JobRequest &req, uint64_t child_seed,
               const exec::CancelToken *cancel)
{
    exec::ResilienceOptions r;
    r.faults.rate = req.faultRate;
    r.faults.seed = child_seed ^ 0xFA17;
    r.retry.maxAttempts = req.maxAttempts;
    r.jitterSeed = mixSeed(child_seed ^ 0x8ACC0FF);
    r.wallClock = false; // virtual backoff: no timing nondeterminism
    // CRITICAL: jobs run inside a pool task; reconfiguring the pool
    // from there panics.  The scheduler sets the thread count once.
    r.threads = 0;
    r.cancel = cancel;
    return r;
}

} // namespace

std::string
traceIdForJob(const PreparedJob &job)
{
    // Pure function of (childSeed, job id): the coordinator and a
    // single-process scheduler derive the same id for the same
    // admitted job.  The domain constant keeps trace ids disjoint from
    // every seed-derivation stream.
    uint64_t hi = mixSeed(job.childSeed ^ 0x7261636554726163ull);
    uint64_t lo = mixSeed(hi ^ fnv1a64(job.req.id));
    return hex16(hi) + hex16(lo);
}

JobRunner::JobRunner(RunnerOptions options,
                     std::shared_ptr<ArtifactCache> cache)
    : options_(std::move(options)), cache_(std::move(cache))
{
    panic_if(cache_ == nullptr, "JobRunner requires an artifact cache");
}

PrepareOutcome
JobRunner::prepare(const JobRequest &req) const
{
    PrepareOutcome out;
    std::string err;
    if (!validateRequest(req, &err)) {
        out.error = err;
        return out;
    }

    // Materialize the problem up front: a malformed problem should be
    // a rejection at the door, not a mid-flight failure.
    std::optional<problems::Problem> problem;
    if (!req.benchmark.empty()) {
        if (!problems::isBenchmarkId(req.benchmark)) {
            out.error = "unknown benchmark \"" + req.benchmark + "\"";
            return out;
        }
        problem.emplace(problems::makeBenchmark(req.benchmark,
                                                req.caseIndex));
    } else {
        problems::ProblemParseResult parsed =
            problems::parseProblem(req.problemText);
        if (!parsed.problem) {
            out.error = "problem parse error (line " +
                        std::to_string(parsed.errorLine) +
                        "): " + parsed.error;
            return out;
        }
        problem.emplace(std::move(*parsed.problem));
    }
    if (parseOptimizer(req.optimizer) == std::nullopt) {
        out.error = "unknown optimizer \"" + req.optimizer + "\"";
        return out;
    }

    out.job.req = req;
    out.job.canonicalProblem = problems::canonicalProblemText(*problem);
    out.job.problem =
        std::make_shared<const problems::Problem>(std::move(*problem));
    const uint64_t contentHash =
        fnv1a64(canonicalRequestText(req, out.job.canonicalProblem));
    out.job.childSeed = mixSeed(contentHash ^ options_.batchSeed);
    out.job.fingerprint = hex16(contentHash);
    // The hint is NOT part of contentHash/childSeed (every tuned knob
    // is result-invariant); it only pre-loads the job's tuning fields.
    if (!req.tuneHint.empty())
        out.job.tuning = parseTuneHint(req.tuneHint);
    out.ok = true;
    return out;
}

JobResult
JobRunner::run(const PreparedJob &job,
               const exec::CancelToken *cancel) const
{
    ArtifactCache::LookupCounters counters;
    JobResult result = job.req.algorithm == "rasengan"
                           ? solveRasengan(job, counters, cancel)
                           : solveBaseline(job, cancel);
    result.id = job.req.id;
    result.accepted = true;
    result.problemId = job.problem->id();
    result.numVars = job.problem->numVars();
    result.childSeed = job.childSeed;
    result.resultHash = hashResult(result);
    result.telemetry.cacheHits = counters.hits;
    result.telemetry.cacheMisses = counters.misses;
    auto domain = [&counters](const char *name)
        -> ArtifactCache::LookupCounters::DomainLookup {
        auto it = counters.domains.find(name);
        return it == counters.domains.end()
                   ? ArtifactCache::LookupCounters::DomainLookup{}
                   : it->second;
    };
    result.telemetry.cachePipelineHits = domain("pipeline").hits;
    result.telemetry.cachePipelineMisses = domain("pipeline").misses;
    result.telemetry.cacheCircuitHits = domain("circuit").hits;
    result.telemetry.cacheCircuitMisses = domain("circuit").misses;
    result.telemetry.cacheSpplanHits = domain("spplan").hits;
    result.telemetry.cacheSpplanMisses = domain("spplan").misses;
    result.telemetry.priority = job.req.priority;
    result.telemetry.tuneBucket = job.tuning.bucket;
    result.telemetry.tuneDecision = job.tuning.decision;
    result.telemetry.tuneSource = job.tuning.source;
    return result;
}

JobResult
JobRunner::solveRasengan(const PreparedJob &job,
                         ArtifactCache::LookupCounters &counters,
                         const exec::CancelToken *cancel) const
{
    const JobRequest &req = job.req;
    core::RasenganOptions opts;
    opts.simplify = req.simplify;
    opts.prune = req.prune;
    opts.purify = req.purify;
    opts.transitionsPerSegment = req.transitionsPerSegment;
    opts.maxIterations = req.iterations;
    opts.seed = job.childSeed;
    opts.optimizer = *parseOptimizer(req.optimizer);
    opts.shotsPerSegment = req.shots;
    opts.shotGrowth = req.shotGrowth;
    opts.noise = parseNoiseModel(req.noise);
    // Adaptive-tuner per-job knobs; both are result-invariant (see
    // RasenganOptions), so applying them here cannot change the bytes
    // of the result line.
    opts.denseIndexLookup = job.tuning.denseLookup;
    opts.cacheRotationPlans = job.tuning.cachePlans;
    opts.resilience = makeResilience(req, job.childSeed, cancel);
    if (!options_.checkpointDir.empty())
        opts.checkpointPath = options_.checkpointDir + "/job-" +
                              job.fingerprint + ".ckpt";

    using Execution = core::RasenganOptions::Execution;
    if (req.execution == "exact")
        opts.execution = Execution::ExactSparse;
    else if (req.execution == "sampled")
        opts.execution = Execution::SampledSparse;
    else if (req.execution == "noisy")
        opts.execution = Execution::NoisyInjected;
    else
        opts.execution = Execution::NoisyGateLevel;
    // Fault injection needs shot jobs; mirror the CLI's promotion.
    if (req.faultRate > 0.0 && opts.execution == Execution::ExactSparse)
        opts.execution = Execution::SampledSparse;

    // Pipeline artifacts: keyed by the canonical problem plus exactly
    // the options buildPipelineArtifacts depends on, so jobs differing
    // only in shots/seed/execution share one pipeline.
    {
        std::ostringstream cfg;
        cfg << "simplify=" << (opts.simplify ? 1 : 0)
            << ";prune=" << (opts.prune ? 1 : 0)
            << ";tps=" << opts.transitionsPerSegment
            << ";rounds=" << opts.rounds
            << ";maxTracked=" << opts.maxTrackedStates << "\n"
            << job.canonicalProblem;
        CacheKey key = makeKey("pipeline", cfg.str());
        const problems::Problem &problem = *job.problem;
        const core::RasenganOptions &optsRef = opts;
        opts.pipeline =
            cache_->getOrCompute<core::PipelineArtifacts>(
                key,
                [&problem, &optsRef]()
                    -> std::pair<
                        std::shared_ptr<const core::PipelineArtifacts>,
                        uint64_t> {
                    auto built =
                        std::make_shared<core::PipelineArtifacts>(
                            core::buildPipelineArtifacts(problem,
                                                         optsRef));
                    uint64_t bytes = estimatePipelineBytes(*built);
                    return {built, bytes};
                },
                &counters, "pipeline");
    }

    // Transpiled segment circuits: content-addressed by the input
    // circuit's fingerprint + lowering options, shared across jobs.
    {
        std::shared_ptr<ArtifactCache> cache = cache_;
        ArtifactCache::LookupCounters *ctr = &counters;
        opts.lowerCircuit =
            [cache, ctr](const circuit::Circuit &circ,
                         const circuit::TranspileOptions &topts) {
                char payload[64];
                std::snprintf(payload, sizeof(payload), "%016llx|%d|%d",
                              static_cast<unsigned long long>(
                                  circ.fingerprint()),
                              static_cast<int>(topts.mode),
                              topts.lowerToCx ? 1 : 0);
                CacheKey key = makeKey("circuit", payload);
                auto lowered = cache->getOrCompute<circuit::Circuit>(
                    key,
                    [&circ, &topts]()
                        -> std::pair<
                            std::shared_ptr<const circuit::Circuit>,
                            uint64_t> {
                        auto built = std::make_shared<circuit::Circuit>(
                            circuit::transpile(circ, topts));
                        return {built, estimateCircuitBytes(*built)};
                    },
                    ctr, "circuit");
                return *lowered;
            };
    }

    // Sparse rotation plans: keyed by the segment's structural
    // fingerprint (qubits + initial support + transition masks), shared
    // across jobs solving the same problem so only the first one pays
    // for partner searches and key merges.  A plan recorded while
    // pruning fired is stored !replayable; since angles differ per job
    // seed, two jobs can legitimately race to publish different values
    // for that marker -- first-publish-wins is fine because plans are a
    // performance hint, never a correctness input (results stay
    // bit-identical with the hook on or off, or with the cache cold).
    {
        std::shared_ptr<ArtifactCache> cache = cache_;
        ArtifactCache::LookupCounters *ctr = &counters;
        opts.planStore =
            [cache, ctr](uint64_t fingerprint,
                         const std::function<std::shared_ptr<
                             const qsim::SparseSegmentPlan>()> &make) {
                char payload[32];
                std::snprintf(payload, sizeof(payload), "%016llx",
                              static_cast<unsigned long long>(fingerprint));
                CacheKey key = makeKey("spplan", payload);
                return cache->getOrCompute<qsim::SparseSegmentPlan>(
                    key,
                    [&make]()
                        -> std::pair<
                            std::shared_ptr<const qsim::SparseSegmentPlan>,
                            uint64_t> {
                        auto built = make();
                        return {built, built->approxBytes()};
                    },
                    ctr, "spplan");
            };
    }

    core::RasenganSolver solver(*job.problem, opts);
    core::RasenganResult r = solver.run();

    JobResult out;
    out.ok = !r.failed;
    if (r.failed)
        out.error = r.deadlineHit
                        ? "deadline: execution stopped at a cooperative "
                          "checkpoint (wall-clock budget exhausted)"
                        : "execution failed (purification emptied the "
                          "output or the backend exhausted retries)";
    else
        out.solution = r.solution.toString(job.problem->numVars());
    out.objective = r.objectiveValue;
    out.expectedObjective = r.expectedObjective;
    out.inConstraintsRate = r.inConstraintsRate;
    out.chainLength = r.chainLength;
    out.numSegments = r.numSegments;
    out.numParams = r.numParams;
    out.telemetry.retries = r.execStats.retries;
    out.telemetry.attempts = r.execStats.attempts;
    out.telemetry.deadlineHit = r.deadlineHit;
    out.telemetry.degradation =
        exec::degradationLevelName(r.degradation);
    out.telemetry.planRecorded = solver.planStats().recorded;
    out.telemetry.planReplayed = solver.planStats().replayed;
    out.telemetry.planAborted = solver.planStats().aborted;
    out.telemetry.planInvalidated = solver.planStats().invalidated;
    out.telemetry.supportMax = solver.maxObservedSupport();
    if (out.ok && !opts.checkpointPath.empty()) {
        // The job is done; a stale checkpoint would only confuse the
        // next crash-replay of the same content.
        std::remove(opts.checkpointPath.c_str());
    }
    return out;
}

JobResult
JobRunner::solveBaseline(const PreparedJob &job,
                         const exec::CancelToken *cancel) const
{
    const JobRequest &req = job.req;
    baselines::VqaResult r;
    int numVars = job.problem->numVars();

    auto fill = [&](auto &vqaOpts) {
        vqaOpts.layers = req.layers;
        vqaOpts.maxIterations = req.iterations;
        vqaOpts.shots = req.shots;
        vqaOpts.seed = job.childSeed;
        vqaOpts.penaltyLambda = req.penaltyLambda;
        vqaOpts.optimizer = *parseOptimizer(req.optimizer);
        vqaOpts.noise = parseNoiseModel(req.noise);
        vqaOpts.resilience = makeResilience(req, job.childSeed, cancel);
    };

    if (req.algorithm == "chocoq") {
        baselines::ChocoqOptions o;
        fill(o);
        r = baselines::Chocoq(*job.problem, o).run();
    } else if (req.algorithm == "pqaoa") {
        baselines::PqaoaOptions o;
        fill(o);
        r = baselines::Pqaoa(*job.problem, o).run();
    } else { // hea
        baselines::HeaOptions o;
        fill(o);
        r = baselines::Hea(*job.problem, o).run();
    }

    JobResult out;
    out.ok = !r.counts.empty();
    if (!out.ok) {
        const bool tripped = cancel != nullptr && cancel->stopRequested();
        out.telemetry.deadlineHit = tripped;
        out.error = tripped
                        ? "deadline: execution stopped at a cooperative "
                          "checkpoint (wall-clock budget exhausted)"
                        : "baseline produced an empty distribution";
    }
    out.expectedObjective = r.expectedObjective;
    out.inConstraintsRate = r.inConstraintsRate;
    out.numParams = r.numParams;
    out.telemetry.retries = r.execStats.retries;
    out.telemetry.attempts = r.execStats.attempts;
    out.telemetry.degradation =
        exec::degradationLevelName(r.degradation);

    // Best feasible outcome.  Walking Counts::sorted() makes the
    // objective tie-break deterministic for free: the first outcome
    // seen at the best objective is the smallest bitstring.
    bool found = false;
    for (const auto &[outcome, n] : r.counts.sorted()) {
        (void)n;
        if (!job.problem->isFeasible(outcome))
            continue;
        double obj = job.problem->objective(outcome);
        if (!found || obj < out.objective) {
            found = true;
            out.solution = outcome.toString(numVars);
            out.objective = obj;
        }
    }
    return out;
}

} // namespace rasengan::serve
