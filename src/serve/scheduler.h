/**
 * @file
 * Batch scheduler: runs many solve jobs concurrently on the shared
 * simulation thread pool with deterministic per-job seeds and a
 * content-addressed artifact cache.
 *
 * Determinism contract.  Every job's RNG seed is derived from the hash
 * of its canonical request text (canonicalRequestText: configuration +
 * canonical problem bytes, NOT the job id) mixed with the batch seed --
 * never from queue position or timing.  Jobs are dispatched with
 * parallel::parallelForDynamic (atomic work claiming, nondeterministic
 * ORDER), but each job writes only its own pre-allocated result slot
 * and seeds only from its content hash, so the deterministic result
 * lines are byte-identical at any thread count and any submission
 * order.  Cache hits return values that are deterministic functions of
 * their keys, so a warm cache changes latency, never results.
 *
 * Per-job preparation and execution live in serve::JobRunner (shared
 * with the always-on daemon); this class adds the batch-shaped parts:
 * serial admission, slot allocation, and the parallel dispatch loop.
 *
 * Worker jobs run inside a pool task, therefore their solvers must not
 * reconfigure the pool: the runner forces resilience.threads = 0 on
 * every job and applies ServeOptions::threads once, before dispatch.
 */

#ifndef RASENGAN_SERVE_SCHEDULER_H
#define RASENGAN_SERVE_SCHEDULER_H

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h" // SpanId + the obs clock
#include "serve/admission.h"
#include "serve/artifact_cache.h"
#include "serve/job.h"
#include "serve/runner.h"

namespace rasengan::serve {

struct ServeOptions
{
    /**
     * Worker threads for the batch (applied via
     * parallel::setThreadCount before dispatch).  0 keeps the
     * current/env-derived pool configuration.
     */
    int threads = 0;
    /** Mixed into every job's child seed; same batch seed + same
     *  requests -> same results. */
    uint64_t batchSeed = 0;
    /** Artifact cache LRU budget in bytes; 0 disables caching. */
    uint64_t cacheBudgetBytes = 64ull << 20;
    AdmissionLimits limits;
    /**
     * Cooperative stop flag (SIGTERM/SIGINT in the CLI).  When it
     * becomes true mid-batch, jobs already running finish normally;
     * jobs not yet started complete immediately as accepted-but-
     * interrupted failures instead of executing.  nullptr disables.
     */
    const std::atomic<bool> *stopFlag = nullptr;
    /**
     * Invoked from the pool thread that finished a job, right after its
     * result slot is written, with the slot index and the final result.
     * Callbacks for different jobs run CONCURRENTLY; the callee
     * serializes its own side effects (a cluster worker streams result
     * frames under a socket mutex).  Rejected submissions never reach
     * this hook -- their slots complete inside submit().
     */
    std::function<void(size_t, const JobResult &)> onJobComplete;
    /**
     * Invoked SERIALLY, in submission order, right after a request is
     * admitted and prepared -- the adaptive-tuner attachment point: the
     * callee may rewrite job.tuning (and nothing else) to steer the
     * result-invariant per-job knobs.  Serve does not link the tune
     * library; the tools and cluster wire a tune::Tuner in here.
     */
    std::function<void(PreparedJob &)> onJobPrepared;
    /**
     * Distributed-trace wiring for cluster workers.  When
     * traceRemoteParent is nonzero, per-job spans open under that
     * REMOTE parent (the coordinator's batch span id, propagated at
     * hello) instead of the local batch span, flagged as crossing a
     * process boundary.  suppressBatchSpan drops the local
     * "serve:batch" span entirely: the coordinator owns the batch-level
     * span, and a per-worker batch span would make the merged span
     * forest depend on the worker count.
     */
    obs::SpanId traceRemoteParent = 0;
    bool suppressBatchSpan = false;
};

/**
 * The serial submit-phase decision for one request: validate + prepare,
 * then cost + admit against @p admission.  Shared by BatchScheduler and
 * the cluster coordinator so both produce byte-identical rejection
 * result lines for the same request stream (admission is stateful and
 * order-dependent, so callers must screen in submission order).
 */
struct ScreenedJob
{
    bool admitted = false;
    /** Completed rejection result (id/reason/code/cost) when !admitted. */
    JobResult rejection;
    PreparedJob prepared; ///< valid when admitted
    double costUnits = 0.0;
};

ScreenedJob screenRequest(const JobRunner &runner,
                          AdmissionController &admission,
                          const JobRequest &req);

class BatchScheduler
{
  public:
    /**
     * @p cache lets several schedulers (e.g. a cold batch and a warm
     * batch, or repeated batches of a long-lived service) share one
     * artifact cache; nullptr creates a private cache sized by
     * @p options.cacheBudgetBytes.
     */
    explicit BatchScheduler(ServeOptions options,
                            std::shared_ptr<ArtifactCache> cache = nullptr);

    /**
     * Validate, cost, and admit @p req; allocates the job's result slot
     * immediately (rejected jobs get a completed rejection result).
     * Returns the slot index.  Not thread-safe; submission is a
     * single-producer phase.
     */
    size_t submit(const JobRequest &req);

    /**
     * Run every admitted job; blocks until the batch drains.  Must be
     * called from outside any parallel region.  Safe to call once.
     */
    void runAll();

    /** Result slots, in submission order (complete after runAll). */
    const std::vector<JobResult> &results() const { return results_; }

    ArtifactCache &cache() { return runner_.cache(); }
    const AdmissionController &admission() const { return admission_; }

    /** Jobs admitted (== jobs runAll will execute). */
    size_t admittedJobs() const { return pending_.size(); }

    /** Jobs skipped because the stop flag tripped mid-batch. */
    size_t interruptedJobs() const
    {
        return interrupted_.load(std::memory_order_relaxed);
    }

  private:
    struct PendingJob
    {
        PreparedJob prepared;
        double costUnits = 0.0;
        size_t resultIndex = 0;
        obs::TimeNanos submitTime = 0;
    };

    void runJob(PendingJob &job, obs::SpanId batch_span);

    ServeOptions options_;
    JobRunner runner_;
    AdmissionController admission_;
    std::vector<PendingJob> pending_;
    std::vector<JobResult> results_;
    std::atomic<size_t> interrupted_{0};
    bool ran_ = false;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_SCHEDULER_H
