/**
 * @file
 * Content-addressed cache keys for the batch solve service.
 *
 * A CacheKey is a 128-bit hash (two independent 64-bit FNV-1a streams)
 * of a canonical byte string: a short domain tag ("basis", "pipeline",
 * "circuit", "job") plus the canonical serialization of whatever the
 * artifact depends on.  Canonical means construction-order independent
 * -- problems go through problems::canonicalProblemText, solver configs
 * through serve::canonicalRequestText, circuits through
 * circuit::Circuit::fingerprint -- so the same logical input always
 * addresses the same cache slot, while any differing field changes the
 * key.
 */

#ifndef RASENGAN_SERVE_CACHEKEY_H
#define RASENGAN_SERVE_CACHEKEY_H

#include <cstdint>
#include <string>
#include <string_view>

namespace rasengan::serve {

struct CacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    friend bool
    operator==(const CacheKey &a, const CacheKey &b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }

    friend bool operator!=(const CacheKey &a, const CacheKey &b)
    {
        return !(a == b);
    }

    /** 32-hex-digit rendering (stable across runs/platforms). */
    std::string hex() const;
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey &k) const
    {
        return static_cast<size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ull));
    }
};

/** FNV-1a 64-bit over @p bytes starting from @p basis. */
uint64_t fnv1a64(std::string_view bytes,
                 uint64_t basis = 0xcbf29ce484222325ull);

/**
 * Build a key for @p payload in @p domain.  Different domains never
 * collide on equal payloads (the domain is folded into both streams).
 */
CacheKey makeKey(std::string_view domain, std::string_view payload);

/** splitmix64: derive a well-mixed child seed from @p x. */
uint64_t mixSeed(uint64_t x);

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_CACHEKEY_H
