/**
 * @file
 * Deadline/SLO-aware dispatch for the serve daemon.
 *
 * The daemon runs jobs serially on one worker (each job is internally
 * parallel across the simulation pool), so "scheduling" reduces to two
 * decisions made here:
 *
 *  1. *Ordering*: which queued job runs next.  Strict priority classes
 *     (interactive > batch > best-effort); within a class, earliest
 *     deadline first; jobs without deadlines after those with, FIFO by
 *     arrival as the final tiebreak.  Arrival order -- not wall time --
 *     breaks ties, so dispatch order is a pure function of the request
 *     stream.
 *
 *  2. *Shedding*: whether to reject a job whose deadline the backlog
 *     already makes unmeetable.  The predictor converts the admission
 *     cost model's abstract units into seconds via a calibrated
 *     `costUnitsPerSecond` rate and compares (backlog + job) time
 *     against the deadline with a safety margin.  A hopeless job is
 *     rejected at accept time with reject_code "deadline-unmeetable"
 *     instead of burning worker time to miss anyway.
 *
 * Scheduling metadata never feeds the result bytes: priority and
 * deadline are excluded from the canonical request text, so a job that
 * *does* run produces the same result line regardless of urgency.
 */

#ifndef RASENGAN_SERVE_SLO_H
#define RASENGAN_SERVE_SLO_H

#include <cstdint>
#include <deque>
#include <string>

namespace rasengan::serve {

/** Priority classes, highest first.  Wire names in priorityName(). */
enum class Priority { Interactive = 0, Batch = 1, BestEffort = 2 };

/** Parse a wire name ("interactive" | "batch" | "best-effort");
 *  returns false on anything else. */
bool parsePriority(const std::string &name, Priority *out);

const char *priorityName(Priority p);

/** Tuning for the shed predictor. */
struct SloPolicy
{
    /**
     * Calibrated throughput of the worker in admission cost units per
     * second.  The default is deliberately generous (sheds only
     * hopeless jobs); operators calibrate it from the
     * serve_job_wall_ms / cost-unit telemetry of their own hardware.
     */
    double costUnitsPerSecond = 1e6;
    /** Fraction of the deadline kept as safety margin: a job is shed
     *  when predicted completion exceeds deadline * (1 - margin). */
    double shedMargin = 0.1;
};

/** One queued job as the dispatcher sees it. */
struct SloJob
{
    uint64_t seq = 0;        ///< journal sequence (identity + FIFO order)
    Priority priority = Priority::Batch;
    double deadlineMs = 0.0; ///< relative to acceptance; 0 = none
    double costUnits = 0.0;  ///< admission cost estimate
    uint64_t arrival = 0;    ///< monotone acceptance counter (FIFO key)
};

/** Outcome of a shed decision. */
struct ShedDecision
{
    bool shed = false;
    std::string reason; ///< structured, human-readable (set when shed)
    double predictedMs = 0.0; ///< predicted completion, ms from now
};

/**
 * Priority + EDF + FIFO ready queue.  Not thread-safe: the daemon
 * mutates it only under its queue mutex.
 */
class DeadlineQueue
{
  public:
    void push(const SloJob &job);

    bool empty() const { return jobs_.empty(); }
    size_t size() const { return jobs_.size(); }

    /** Remove and return the next job to run (queue must be non-empty). */
    SloJob pop();

    /** Smallest deadline over queued jobs, or 0 when none have one. */
    double earliestDeadlineMs() const;

    /** Sum of queued cost units (the backlog the predictor charges). */
    double backlogCostUnits() const;

    /** Drop every queued job, returning them (daemon shutdown path). */
    std::deque<SloJob> drain();

  private:
    bool before(const SloJob &a, const SloJob &b) const;

    std::deque<SloJob> jobs_;
};

/**
 * Predict whether @p job can meet its deadline given @p backlog_cost
 * units queued ahead of it (plus @p running_cost still executing), and
 * shed it if not.  Jobs without a deadline are never shed.
 */
ShedDecision shedDecision(const SloJob &job, double backlog_cost,
                          double running_cost, const SloPolicy &policy);

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_SLO_H
