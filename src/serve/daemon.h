/**
 * @file
 * Always-on serve daemon: JSONL jobs over a Unix/TCP socket with a
 * crash-safe journal, deadline/SLO scheduling, and graceful drain.
 *
 * Architecture.  Two threads:
 *
 *  - The *IO thread* owns every socket.  It poll()s the listener, the
 *    connected clients, and a self-pipe; parses newline-delimited
 *    request lines (bounded by maxLineBytes); journals and enqueues
 *    accepted jobs; and writes every response byte -- immediate
 *    rejections and streamed completions alike -- so socket writes are
 *    single-threaded by construction.
 *
 *  - The *worker thread* pops jobs in priority/EDF order (serve/slo)
 *    and runs them serially through serve::JobRunner; each job is
 *    internally parallel across the simulation pool.  Completions are
 *    handed back to the IO thread through a queue plus a wake byte on
 *    the self-pipe.
 *
 * Requests reuse the batch JSONL format (serve/job) with the
 * scheduling extras: `priority` (interactive | batch | best-effort),
 * `deadline_ms` (relative to acceptance; enforced as a cooperative
 * cancellation checkpoint and consulted by the shed predictor), and
 * `timeout_ms`.  The response to a request line is its deterministic
 * writeResult() line, streamed when the job finishes (immediately for
 * rejections); clients correlate by `id`.
 *
 * HTTP probes ride the same socket: a line starting with "GET " is
 * answered as HTTP/1.0 and the connection closed.  `/healthz` is
 * liveness, `/readyz` flips to 503 while draining, `/metrics` serves
 * the live obs registry in Prometheus text format, `/metrics.json` the
 * same as flat JSON.
 *
 * Lifecycle.  start() replays the journal (re-running unfinished jobs;
 * content-derived child seeds make the replayed results byte-identical
 * to an uninterrupted run), binds the socket, and launches both
 * threads.  SIGTERM/SIGINT (via notifySignal, or requestDrain in
 * tests) drains: the listener closes, queued jobs stay journaled as
 * pending, the in-flight job is cooperatively cancelled -- its segment
 * checkpoint survives for the next incarnation to resume bit-exactly
 * -- the journal is flushed, and wait() returns.  SIGHUP compacts the
 * journal in place (dropping terminal records) without dropping
 * connections.
 */

#ifndef RASENGAN_SERVE_DAEMON_H
#define RASENGAN_SERVE_DAEMON_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.h"
#include "serve/admission.h"
#include "serve/journal.h"
#include "serve/jsonl.h"
#include "serve/policy.h"
#include "serve/runner.h"
#include "serve/slo.h"

namespace rasengan::serve {

struct DaemonOptions
{
    /** "unix:PATH", "tcp:PORT", or "tcp:HOST:PORT" (loopback default;
     *  tcp:0 binds an ephemeral port, see Daemon::boundPort). */
    std::string listen = "unix:rasengand.sock";
    /** Write-ahead journal path; "" runs without crash safety. */
    std::string journalPath;
    /** Mirror of every result line (appended as jobs finish); "". */
    std::string resultsPath;
    /** Segment-checkpoint directory for drain/crash resume; "". */
    std::string checkpointDir;
    uint64_t batchSeed = 0;
    /** Simulation pool threads, applied once at start (0 = keep). */
    int threads = 0;
    uint64_t cacheBudgetBytes = 64ull << 20;
    AdmissionLimits limits;
    SloPolicy slo;
    /**
     * Admission/SLO policy file (serve/policy format).  When set, the
     * file is loaded at start() -- overriding `limits`/`slo` -- and
     * re-read on SIGHUP, so operators retune the daemon live.  A
     * defective file fails start(); a defective reload keeps the
     * current policy and logs the error.
     */
    std::string policyPath;
    size_t maxLineBytes = LineReader::kDefaultMaxLineBytes;

    /**
     * Adaptive-tuner attachment points (the daemon does not link the
     * tune library; rasengan_served wires a tune::Tuner in).  Both run
     * on the WORKER thread, which executes jobs strictly serially --
     * so onJobPrepared may additionally apply process-wide knobs
     * (threads, fusion, SIMD ISA) for the job it is about to run, and
     * onJobComplete observes the finished job's telemetry for
     * measurement recording.  onJobPrepared may rewrite job.tuning and
     * nothing else.
     */
    std::function<void(PreparedJob &)> onJobPrepared;
    std::function<void(const PreparedJob &, const JobResult &)>
        onJobComplete;
};

/** Monotonic counters snapshot (tests and /healthz debugging). */
struct DaemonStats
{
    uint64_t connections = 0;
    uint64_t accepted = 0;  ///< journaled + queued
    uint64_t rejected = 0;  ///< validation/admission rejections
    uint64_t shed = 0;      ///< deadline-unmeetable rejections
    uint64_t completed = 0; ///< jobs run to a terminal result
    uint64_t replayed = 0;  ///< pending jobs re-run from the journal
    uint64_t drainCancelled = 0; ///< in-flight jobs checkpointed by drain
    size_t queueDepth = 0;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();
    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Replay the journal, bind the listen socket, and launch the IO
     * and worker threads.  Returns false (with @p error) on socket or
     * journal I/O failure.
     */
    bool start(std::string *error);

    /** Begin a graceful drain (idempotent; safe from any thread). */
    void requestDrain();

    /** Compact the journal in place (idempotent; any thread). */
    void requestReload();

    /**
     * Async-signal-safe signal forwarder: installs nothing itself --
     * the CLI's handler calls this with the raw signal number.
     * SIGTERM/SIGINT map to drain, SIGHUP to reload.
     */
    void notifySignal(int sig);

    /** Block until the daemon has fully drained and both threads
     *  exited.  start() must have succeeded. */
    void wait();

    /** requestDrain() + wait(). */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Bound TCP port (after start; 0 for unix sockets). */
    int boundPort() const { return boundPort_; }

    DaemonStats stats() const;

    const DaemonOptions &options() const { return options_; }

    /** The live admission/SLO policy (post-reload; any thread). */
    DaemonPolicy policySnapshot() const;

    /** SIGHUP reloads so far that parsed and applied cleanly. */
    uint64_t policyReloads() const
    {
        return statPolicyReloads_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;        ///< generation id (fds are reused)
        std::string inBuffer;   ///< unframed request bytes
        std::string outBuffer;  ///< unsent response bytes
        bool skippingLongLine = false;
        bool lineHasNul = false; ///< current line carries a NUL byte
        bool closeAfterFlush = false; ///< HTTP probe connections
    };

    struct QueuedJob
    {
        PreparedJob prepared;
        SloJob slo; ///< slo.deadlineMs is *absolute* ms since start
        uint64_t journalSeq = 0;
        uint64_t connId = 0;   ///< 0 when the client is gone (replay)
        bool replayed = false; ///< deadline/timeout enforcement waived
        double acceptMs = 0.0; ///< acceptance time, ms since start
    };

    struct Completion
    {
        uint64_t connId = 0;
        std::string line; ///< response bytes (no trailing newline)
    };

    // -- IO thread -------------------------------------------------
    void ioLoop();
    void acceptClients();
    void readClient(Conn &conn);
    void handleLine(Conn &conn, const std::string &line);
    void handleHttp(Conn &conn, const std::string &line);
    void handleSubmit(Conn &conn, const std::string &line);
    void respond(Conn &conn, const std::string &line);
    void flushConn(Conn &conn);
    void closeConn(size_t index);
    void drainControlPipe();
    void drainCompletions();
    void beginDrain();
    void compactJournal();
    void reloadPolicy();

    // -- worker thread ---------------------------------------------
    void workerLoop();
    void runOne(QueuedJob job);
    void finishJob(const QueuedJob &job, const JobResult &result,
                   bool checkpointed);

    // -- shared helpers --------------------------------------------
    double nowMs() const;
    void wake(char code);
    void updateQueueGauges();
    void enqueue(QueuedJob job);

    DaemonOptions options_;
    JobRunner runner_;
    AdmissionController admission_;
    /** Guards policy_ for cross-thread snapshots; the IO thread is the
     *  only writer (SIGHUP reload) and the only policy *consumer*
     *  (admission + shed prediction), so its reads are uncontended. */
    mutable std::mutex policyMutex_;
    DaemonPolicy policy_;
    Journal journal_;
    std::mutex journalMutex_; ///< serializes appends vs. compaction

    int listenFd_ = -1;
    int boundPort_ = 0;
    std::string unixPath_; ///< unlinked on shutdown when non-empty
    int controlPipe_[2] = {-1, -1};

    std::vector<Conn> conns_;
    uint64_t nextConnId_ = 1;

    mutable std::mutex queueMutex_; ///< stats() reads under it
    std::condition_variable queueCv_;
    DeadlineQueue queue_;
    std::map<uint64_t, QueuedJob> queuedBySeq_; ///< payloads, keyed by seq
    double runningCostUnits_ = 0.0;
    exec::CancelToken *runningToken_ = nullptr; ///< drain cancels it
    bool drainRequested_ = false;
    bool workerDone_ = false;

    std::mutex completionMutex_;
    std::deque<Completion> completions_;

    std::FILE *resultsFile_ = nullptr;

    uint64_t arrivalCounter_ = 0;
    std::chrono::steady_clock::time_point epoch_;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<uint64_t> statConnections_{0};
    std::atomic<uint64_t> statAccepted_{0};
    std::atomic<uint64_t> statRejected_{0};
    std::atomic<uint64_t> statShed_{0};
    std::atomic<uint64_t> statCompleted_{0};
    std::atomic<uint64_t> statReplayed_{0};
    std::atomic<uint64_t> statDrainCancelled_{0};
    std::atomic<uint64_t> statPolicyReloads_{0};

    std::thread ioThread_;
    std::thread workerThread_;
};

} // namespace rasengan::serve

#endif // RASENGAN_SERVE_DAEMON_H
