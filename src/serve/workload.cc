#include "serve/workload.h"

#include <string>

#include "common/rng.h"

namespace rasengan::serve {

std::vector<JobRequest>
generateWorkload(size_t jobs, uint64_t seed)
{
    // Small benchmarks keep the dense baseline VQAs cheap; the larger
    // suite instances give the rasengan jobs pipelines expensive enough
    // that a warm artifact cache shows up in batch wall time.
    static const char *kSmall[] = {"F1", "F2", "K1", "K2",
                                   "J1", "S1", "G1", "G2"};
    static const char *kLarge[] = {"F3", "F4", "K3", "K4", "G3", "G4"};
    static const char *kBaselines[] = {"chocoq", "pqaoa", "hea"};

    Rng rng(seed);
    std::vector<JobRequest> requests;
    requests.reserve(jobs);
    for (size_t i = 0; i < jobs; ++i) {
        JobRequest req;
        req.id = "job-" + std::to_string(i);
        // Every 7th job is a baseline VQA on one of the three smallest
        // instances (dense simulation makes larger ones dominate the
        // batch); the rest run rasengan.
        if (i % 7 == 6) {
            req.benchmark = kSmall[rng.uniformInt(0, 2) * 2];
            req.caseIndex = static_cast<uint64_t>(rng.uniformInt(0, 2));
            req.algorithm = kBaselines[rng.uniformInt(0, 2)];
            req.iterations = 8;
            req.layers = 2;
            req.shots = 256;
        } else {
            req.benchmark = rng.bernoulli(0.5)
                                ? kSmall[rng.uniformInt(0, 7)]
                                : kLarge[rng.uniformInt(0, 5)];
            req.caseIndex = static_cast<uint64_t>(rng.uniformInt(0, 2));
            req.algorithm = "rasengan";
            req.iterations = static_cast<int>(rng.uniformInt(6, 12));
            req.execution = rng.bernoulli(0.5) ? "exact" : "sampled";
            req.shots = 512;
        }
        requests.push_back(std::move(req));
    }
    return requests;
}

} // namespace rasengan::serve
