#include "serve/daemon.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qsim/simd.h"

namespace rasengan::serve {

namespace {

/// Control-pipe opcodes (one byte each; written by signal handlers and
/// worker completions, drained by the IO thread).
constexpr char kWakeDrain = 'D';
constexpr char kWakeReload = 'R';
constexpr char kWakeCompletion = 'C';
constexpr char kWakeWorkerDone = 'X';

struct DaemonCounters
{
    obs::Gauge &queueDepth = obs::Registry::global().gauge(
        "serve_daemon_queue_depth", "Jobs queued in the daemon");
    obs::Gauge &deadlineSlack = obs::Registry::global().gauge(
        "serve_daemon_oldest_deadline_slack_ms",
        "Time until the most urgent queued deadline (0 when none)");
    obs::Counter &accepted = obs::Registry::global().counter(
        "serve_daemon_accepted_total", "Jobs accepted by the daemon");
    obs::Counter &shed = obs::Registry::global().counter(
        "serve_daemon_shed_total",
        "Jobs shed because their deadline was predicted unmeetable");
    obs::Counter &replayed = obs::Registry::global().counter(
        "serve_daemon_replayed_total",
        "Unfinished jobs re-run from the journal after a restart");
    obs::Counter &connections = obs::Registry::global().counter(
        "serve_daemon_connections_total", "Client connections accepted");
    obs::Counter &drains = obs::Registry::global().counter(
        "serve_daemon_drains_total", "Graceful drains initiated");
};

DaemonCounters &
daemonCounters()
{
    static DaemonCounters counters;
    return counters;
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** "unix:PATH" | "tcp:PORT" | "tcp:HOST:PORT" -> bound+listening fd. */
int
bindListener(const std::string &spec, std::string *unix_path,
             int *bound_port, std::string *error)
{
    if (spec.rfind("unix:", 0) == 0) {
        const std::string path = spec.substr(5);
        if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            *error = "bad unix socket path \"" + path + "\"";
            return -1;
        }
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            *error = "socket(AF_UNIX) failed";
            return -1;
        }
        ::unlink(path.c_str()); // stale socket from a crashed daemon
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            *error = "cannot bind/listen on " + spec + ": " +
                     std::strerror(errno);
            ::close(fd);
            return -1;
        }
        *unix_path = path;
        return fd;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        std::string rest = spec.substr(4);
        std::string host = "127.0.0.1";
        std::string port = rest;
        size_t colon = rest.rfind(':');
        if (colon != std::string::npos) {
            host = rest.substr(0, colon);
            port = rest.substr(colon + 1);
        }
        int portNum = 0;
        for (char c : port) {
            if (c < '0' || c > '9') {
                *error = "bad tcp port \"" + port + "\"";
                return -1;
            }
            portNum = portNum * 10 + (c - '0');
        }
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            *error = "socket(AF_INET) failed";
            return -1;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(portNum));
        addr.sin_addr.s_addr = host == "0.0.0.0"
                                   ? htonl(INADDR_ANY)
                                   : htonl(INADDR_LOOPBACK);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            *error = "cannot bind/listen on " + spec + ": " +
                     std::strerror(errno);
            ::close(fd);
            return -1;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len);
        *bound_port = ntohs(bound.sin_port);
        return fd;
    }
    *error = "listen spec must be unix:PATH or tcp:[HOST:]PORT, got \"" +
             spec + "\"";
    return -1;
}

std::string
httpResponse(int code, const char *status, const std::string &type,
             const std::string &body)
{
    std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                      "\r\nContent-Type: " + type +
                      "\r\nContent-Length: " +
                      std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      runner_(RunnerOptions{options_.batchSeed, options_.checkpointDir},
              std::make_shared<ArtifactCache>(options_.cacheBudgetBytes)),
      admission_(options_.limits),
      policy_{options_.limits, options_.slo},
      epoch_(std::chrono::steady_clock::now())
{
}

Daemon::~Daemon()
{
    if (running())
        stop();
}

double
Daemon::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Daemon::wake(char code)
{
    // Async-signal-safe: write(2) only.  A full pipe just means the IO
    // thread already has wakeups pending.
    if (controlPipe_[1] >= 0) {
        ssize_t ignored = ::write(controlPipe_[1], &code, 1);
        (void)ignored;
    }
}

void
Daemon::notifySignal(int sig)
{
    if (sig == SIGHUP)
        wake(kWakeReload);
    else
        wake(kWakeDrain);
}

void
Daemon::requestDrain()
{
    wake(kWakeDrain);
}

void
Daemon::requestReload()
{
    wake(kWakeReload);
}

DaemonStats
Daemon::stats() const
{
    DaemonStats s;
    s.connections = statConnections_.load(std::memory_order_relaxed);
    s.accepted = statAccepted_.load(std::memory_order_relaxed);
    s.rejected = statRejected_.load(std::memory_order_relaxed);
    s.shed = statShed_.load(std::memory_order_relaxed);
    s.completed = statCompleted_.load(std::memory_order_relaxed);
    s.replayed = statReplayed_.load(std::memory_order_relaxed);
    s.drainCancelled =
        statDrainCancelled_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        s.queueDepth = queue_.size();
    }
    return s;
}

void
Daemon::updateQueueGauges()
{
    // Caller holds queueMutex_.
    daemonCounters().queueDepth.set(static_cast<double>(queue_.size()));
    const double earliest = queue_.earliestDeadlineMs();
    daemonCounters().deadlineSlack.set(
        earliest > 0.0 ? std::max(earliest - nowMs(), 0.0) : 0.0);
}

void
Daemon::enqueue(QueuedJob job)
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    queue_.push(job.slo);
    queuedBySeq_.emplace(job.slo.seq, std::move(job));
    updateQueueGauges();
    queueCv_.notify_one();
}

bool
Daemon::start(std::string *error)
{
    panic_if(running(), "Daemon::start called twice");

    if (!options_.policyPath.empty()) {
        // A bad policy file at start is fatal (the operator asked for
        // those limits); a bad file at SIGHUP keeps the running policy.
        PolicyParseResult parsed =
            loadPolicyFile(options_.policyPath, policy_);
        if (!parsed.ok) {
            if (error != nullptr)
                *error = parsed.error;
            return false;
        }
        policy_ = parsed.policy;
        admission_.updateLimits(policy_.limits);
    }

    if (!options_.checkpointDir.empty()) {
        if (::mkdir(options_.checkpointDir.c_str(), 0755) != 0 &&
            errno != EEXIST) {
            if (error != nullptr)
                *error = "cannot create checkpoint dir " +
                         options_.checkpointDir + ": " +
                         std::strerror(errno);
            return false;
        }
    }

    // Replay the journal before accepting traffic: pending jobs from
    // the previous incarnation run first, in their original order.
    std::vector<QueuedJob> replayJobs;
    uint64_t nextSeq = 1;
    if (!options_.journalPath.empty()) {
        JournalReplay replay = Journal::replay(options_.journalPath);
        if (!replay.ok) {
            if (error != nullptr)
                *error = replay.error;
            return false;
        }
        nextSeq = replay.nextSeq;
        if (replay.malformedLines + replay.truncatedLines +
                replay.oversizedLines >
            0)
            obs::instantEvent(
                "daemon", "journal-debris",
                std::to_string(replay.malformedLines) + " malformed, " +
                    std::to_string(replay.truncatedLines) +
                    " truncated, " +
                    std::to_string(replay.oversizedLines) + " oversized");
        for (const JournalJob *pending : replay.pending()) {
            RequestParseResult parsed =
                parseRequest(pending->requestLine);
            if (!parsed.ok) {
                obs::instantEvent("daemon", "replay-unparsable",
                                  pending->id);
                continue;
            }
            PrepareOutcome prep = runner_.prepare(parsed.request);
            if (!prep.ok) {
                obs::instantEvent("daemon", "replay-invalid",
                                  pending->id);
                continue;
            }
            QueuedJob job;
            job.slo.seq = pending->seq;
            job.slo.costUnits = estimateJobCost(
                parsed.request, prep.job.problem->numVars());
            // Replayed jobs keep their priority class for ordering but
            // drop deadlines: those expired with the old incarnation,
            // and determinism requires the work to actually re-run.
            parsePriority(parsed.request.priority, &job.slo.priority);
            job.slo.arrival = arrivalCounter_++;
            job.prepared = std::move(prep.job);
            job.journalSeq = pending->seq;
            job.replayed = true;
            job.acceptMs = 0.0;
            replayJobs.push_back(std::move(job));
        }
        std::string journalErr;
        if (!journal_.open(options_.journalPath, nextSeq, &journalErr)) {
            if (error != nullptr)
                *error = journalErr;
            return false;
        }
    }

    if (!options_.resultsPath.empty()) {
        resultsFile_ = std::fopen(options_.resultsPath.c_str(), "ab");
        if (resultsFile_ == nullptr) {
            if (error != nullptr)
                *error = "cannot open results file " +
                         options_.resultsPath;
            journal_.close();
            return false;
        }
    }

    std::string bindErr;
    listenFd_ =
        bindListener(options_.listen, &unixPath_, &boundPort_, &bindErr);
    if (listenFd_ < 0) {
        if (error != nullptr)
            *error = bindErr;
        journal_.close();
        return false;
    }
    setNonBlocking(listenFd_);
    if (::pipe(controlPipe_) != 0) {
        if (error != nullptr)
            *error = "pipe() failed";
        ::close(listenFd_);
        listenFd_ = -1;
        journal_.close();
        return false;
    }
    setNonBlocking(controlPipe_[0]);
    setNonBlocking(controlPipe_[1]);

    if (options_.threads > 0)
        parallel::setThreadCount(options_.threads);

    for (QueuedJob &job : replayJobs) {
        statReplayed_.fetch_add(1, std::memory_order_relaxed);
        daemonCounters().replayed.inc();
        enqueue(std::move(job));
    }

    // Flight recorder: always on for a daemon unless RASENGAN_FLIGHT
    // or an explicit --flight decision turned it off; SIGQUIT (and
    // fatal signals) dump the ring.
    if (!obs::flight::explicitlyConfigured())
        obs::flight::configureFromEnv(/*defaultOn=*/true);
    obs::flight::installSignalHandlers();

    // Build identity + uptime, so /metrics says exactly what is
    // serving and for how long (uptime ticks in the IO loop).
    obs::Registry::global()
        .gauge("rasengan_build_info",
               "Build metadata carried in labels; the value is always 1",
               {{"version", buildVersion()},
                {"isa", qsim::simdIsaName(qsim::simdActiveIsa())},
                {"git", buildGitDescribe()}})
        .set(1.0);
    obs::Registry::global()
        .gauge("uptime_seconds", "Seconds since the daemon started")
        .set(0.0);

    running_.store(true, std::memory_order_release);
    draining_.store(false, std::memory_order_release);
    workerThread_ = std::thread([this] { workerLoop(); });
    ioThread_ = std::thread([this] { ioLoop(); });
    obs::instantEvent("daemon", "started", options_.listen);
    return true;
}

void
Daemon::wait()
{
    if (ioThread_.joinable())
        ioThread_.join();
    if (workerThread_.joinable())
        workerThread_.join();
    running_.store(false, std::memory_order_release);
}

void
Daemon::stop()
{
    requestDrain();
    wait();
}

// ---------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------

void
Daemon::ioLoop()
{
    static obs::Gauge &uptime = obs::Registry::global().gauge(
        "uptime_seconds", "Seconds since the daemon started");
    bool workerJoined = false;
    double lastFlightNoteMs = 0.0;
    while (true) {
        uptime.set(nowMs() * 1e-3);
        // Periodic metric snapshot into the flight recorder, so a
        // post-mortem dump shows the load shape leading up to the end.
        if (obs::flight::enabled() &&
            nowMs() - lastFlightNoteMs >= 5000.0) {
            lastFlightNoteMs = nowMs();
            DaemonStats s = stats();
            obs::flight::note(
                "metrics",
                "queue=" + std::to_string(s.queueDepth) +
                    " accepted=" + std::to_string(s.accepted) +
                    " completed=" + std::to_string(s.completed) +
                    " rejected=" + std::to_string(s.rejected) +
                    " shed=" + std::to_string(s.shed));
        }
        std::vector<pollfd> fds;
        fds.push_back({controlPipe_[0], POLLIN, 0});
        // Drain (in drainControlPipe below) closes the listener
        // mid-iteration; remember the layout fds was built with so the
        // connection indexes stay aligned.
        const bool polledListener = listenFd_ >= 0;
        if (polledListener)
            fds.push_back({listenFd_, POLLIN, 0});
        const size_t polledConns = conns_.size();
        for (const Conn &conn : conns_) {
            short events = POLLIN;
            if (!conn.outBuffer.empty())
                events |= POLLOUT;
            fds.push_back({conn.fd, events, 0});
        }

        int rc = ::poll(fds.data(), fds.size(), 500);
        if (rc < 0 && errno != EINTR)
            break;

        drainControlPipe();
        drainCompletions();

        size_t cursor = 1;
        if (polledListener) {
            if (listenFd_ >= 0 && (fds[cursor].revents & POLLIN))
                acceptClients();
            ++cursor;
        }
        // Walk the polled connections back to front so closeConn's
        // erase cannot skip an entry (poll order matches conns_
        // order; connections accepted this iteration sit past
        // polledConns and wait for the next poll).
        for (size_t i = polledConns; i-- > 0;) {
            const pollfd &pfd = fds[cursor + i];
            Conn &conn = conns_[i];
            if (pfd.fd != conn.fd)
                continue; // conns_ changed under us; next poll catches up
            if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
                closeConn(i);
                continue;
            }
            if (pfd.revents & POLLOUT)
                flushConn(conn);
            if (pfd.revents & POLLIN)
                readClient(conn);
            if (conn.fd >= 0 && conn.closeAfterFlush &&
                conn.outBuffer.empty())
                closeConn(i);
        }

        if (draining_.load(std::memory_order_acquire)) {
            bool done;
            {
                std::lock_guard<std::mutex> lock(queueMutex_);
                done = workerDone_;
            }
            if (done) {
                if (!workerJoined) {
                    // One final sweep: the worker may have pushed
                    // completions between our drain and its exit.
                    drainCompletions();
                    workerJoined = true;
                }
                // Flush what we can, then leave.
                bool pendingBytes = false;
                for (size_t i = conns_.size(); i-- > 0;) {
                    flushConn(conns_[i]);
                    if (conns_[i].fd >= 0 &&
                        !conns_[i].outBuffer.empty())
                        pendingBytes = true;
                }
                if (!pendingBytes)
                    break;
                // else: loop once more to POLLOUT the stragglers.
            }
        }
    }

    for (size_t i = conns_.size(); i-- > 0;)
        closeConn(i);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!unixPath_.empty())
        ::unlink(unixPath_.c_str());
    {
        std::lock_guard<std::mutex> lock(journalMutex_);
        journal_.close();
    }
    if (resultsFile_ != nullptr) {
        std::fflush(resultsFile_);
        std::fclose(resultsFile_);
        resultsFile_ = nullptr;
    }
    ::close(controlPipe_[0]);
    ::close(controlPipe_[1]);
    controlPipe_[0] = controlPipe_[1] = -1;
    obs::instantEvent("daemon", "stopped", options_.listen);
}

void
Daemon::drainControlPipe()
{
    char buf[64];
    ssize_t n;
    bool drain = false;
    bool reload = false;
    while ((n = ::read(controlPipe_[0], buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
            if (buf[i] == kWakeDrain)
                drain = true;
            else if (buf[i] == kWakeReload)
                reload = true;
            // kWakeCompletion / kWakeWorkerDone only wake the loop;
            // their payloads travel via completions_ / workerDone_.
        }
    }
    if (reload && !draining_.load(std::memory_order_acquire)) {
        compactJournal();
        reloadPolicy();
    }
    if (drain)
        beginDrain();
}

void
Daemon::beginDrain()
{
    if (draining_.exchange(true, std::memory_order_acq_rel))
        return; // already draining
    daemonCounters().drains.inc();
    obs::instantEvent("daemon", "drain", options_.listen);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
    std::lock_guard<std::mutex> lock(queueMutex_);
    drainRequested_ = true;
    if (runningToken_ != nullptr) {
        // Cooperative checkpoint-and-stop: the in-flight job stops at
        // its next cancellation checkpoint with its segment checkpoint
        // on disk; the journal keeps it pending, so the next
        // incarnation resumes it bit-exactly.
        runningToken_->cancel();
    }
    queueCv_.notify_all();
}

void
Daemon::compactJournal()
{
    if (options_.journalPath.empty())
        return;
    std::lock_guard<std::mutex> lock(journalMutex_);
    if (!journal_.isOpen())
        return;
    journal_.close();
    std::string err;
    if (!Journal::compact(options_.journalPath, &err))
        obs::instantEvent("daemon", "compact-failed", err);
    JournalReplay replay = Journal::replay(options_.journalPath);
    std::string openErr;
    if (!journal_.open(options_.journalPath, replay.nextSeq, &openErr)) {
        // Never continue journal-less silently: without the journal the
        // crash-safety contract is void.
        panic("daemon journal reopen failed after compaction: {}",
              openErr);
    }
    obs::instantEvent("daemon", "compacted", options_.journalPath);
}

void
Daemon::reloadPolicy()
{
    // IO thread only: admission and shed prediction read the policy on
    // this thread, so swapping it here is race-free for them; the mutex
    // covers policySnapshot() readers on other threads.
    if (options_.policyPath.empty())
        return;
    PolicyParseResult parsed =
        loadPolicyFile(options_.policyPath, policySnapshot());
    if (!parsed.ok) {
        // Keep serving under the current policy: a half-written file
        // during a config push must not take the daemon down.
        obs::instantEvent("daemon", "policy-reload-failed", parsed.error);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(policyMutex_);
        policy_ = parsed.policy;
    }
    admission_.updateLimits(parsed.policy.limits);
    statPolicyReloads_.fetch_add(1, std::memory_order_relaxed);
    obs::instantEvent("daemon", "policy-reloaded", options_.policyPath);
}

DaemonPolicy
Daemon::policySnapshot() const
{
    std::lock_guard<std::mutex> lock(policyMutex_);
    return policy_;
}

void
Daemon::acceptClients()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        Conn conn;
        conn.fd = fd;
        conn.id = nextConnId_++;
        conns_.push_back(std::move(conn));
        statConnections_.fetch_add(1, std::memory_order_relaxed);
        daemonCounters().connections.inc();
    }
}

void
Daemon::readClient(Conn &conn)
{
    char buf[4096];
    while (conn.fd >= 0) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            // Peer closed its write side; drop the connection once our
            // buffered responses are flushed.
            conn.closeAfterFlush = true;
            break;
        }
        if (n < 0)
            break; // EAGAIN or error; poll again
        for (ssize_t i = 0; i < n; ++i) {
            char c = buf[i];
            if (c == '\n') {
                if (conn.skippingLongLine || conn.lineHasNul) {
                    // Same uniform defect handling as LineReader:
                    // oversized or NUL-bearing lines are rejected whole,
                    // never parsed.
                    JobResult r;
                    r.rejectReason =
                        conn.lineHasNul
                            ? "request line contains a NUL byte"
                            : "request line exceeds " +
                                  std::to_string(options_.maxLineBytes) +
                                  " bytes";
                    conn.skippingLongLine = false;
                    conn.lineHasNul = false;
                    r.rejectCode = "validation";
                    statRejected_.fetch_add(1,
                                            std::memory_order_relaxed);
                    respond(conn, writeResult(r));
                } else {
                    std::string line = std::move(conn.inBuffer);
                    if (!line.empty() && line.back() == '\r')
                        line.pop_back();
                    if (!line.empty())
                        handleLine(conn, line);
                }
                conn.inBuffer.clear();
            } else if (c == '\0') {
                conn.inBuffer.clear();
                conn.lineHasNul = true;
            } else if (!conn.skippingLongLine && !conn.lineHasNul) {
                conn.inBuffer.push_back(c);
                if (conn.inBuffer.size() > options_.maxLineBytes) {
                    conn.inBuffer.clear();
                    conn.skippingLongLine = true;
                }
            }
        }
    }
}

void
Daemon::handleLine(Conn &conn, const std::string &line)
{
    if (line.rfind("GET ", 0) == 0 || line.rfind("HEAD ", 0) == 0)
        handleHttp(conn, line);
    else
        handleSubmit(conn, line);
}

void
Daemon::handleHttp(Conn &conn, const std::string &line)
{
    // "GET /path HTTP/1.x" -- everything after the path is ignored, as
    // are any request headers that follow (we answer from the request
    // line alone and close).
    size_t start = line.find(' ');
    size_t end = line.find(' ', start + 1);
    std::string path = end == std::string::npos
                           ? line.substr(start + 1)
                           : line.substr(start + 1, end - start - 1);
    std::string response;
    if (path == "/healthz") {
        response = httpResponse(200, "OK", "text/plain", "ok\n");
    } else if (path == "/readyz") {
        response = draining_.load(std::memory_order_acquire)
                       ? httpResponse(503, "Service Unavailable",
                                      "text/plain", "draining\n")
                       : httpResponse(200, "OK", "text/plain", "ready\n");
    } else if (path == "/metrics") {
        response = httpResponse(
            200, "OK", "text/plain; version=0.0.4",
            obs::Registry::global().promText());
    } else if (path == "/metrics.json") {
        response = httpResponse(200, "OK", "application/json",
                                obs::Registry::global().jsonText() + "\n");
    } else if (path == "/debug/flight") {
        response = obs::flight::enabled()
                       ? httpResponse(200, "OK", "application/json",
                                      obs::flight::renderJson() + "\n")
                       : httpResponse(503, "Service Unavailable",
                                      "text/plain",
                                      "flight recorder disabled\n");
    } else {
        response = httpResponse(404, "Not Found", "text/plain",
                                "unknown probe path\n");
    }
    conn.outBuffer += response;
    conn.closeAfterFlush = true;
    flushConn(conn);
}

void
Daemon::handleSubmit(Conn &conn, const std::string &line)
{
    JobResult rejection;
    auto reject = [&](const std::string &why, const char *code) {
        rejection.accepted = false;
        rejection.rejectReason = why;
        rejection.rejectCode = code;
        statRejected_.fetch_add(1, std::memory_order_relaxed);
        respond(conn, writeResult(rejection));
    };

    RequestParseResult parsed = parseRequest(line);
    if (!parsed.ok)
        return reject(parsed.error, "validation");
    const JobRequest &req = parsed.request;
    rejection.id = req.id;

    if (draining_.load(std::memory_order_acquire))
        return reject("daemon is draining", "admission");

    PrepareOutcome prep = runner_.prepare(req);
    if (!prep.ok)
        return reject(prep.error, "validation");
    const int numVars = prep.job.problem->numVars();

    // Shed prediction BEFORE reserving admission capacity: a shed job
    // must not consume queue slots or cost budget.
    SloJob slo;
    slo.priority = Priority::Batch;
    parsePriority(req.priority, &slo.priority);
    slo.deadlineMs = req.deadlineMs; // relative, for the predictor
    slo.costUnits = estimateJobCost(req, numVars);
    double backlogCost;
    double runningCost;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        backlogCost = queue_.backlogCostUnits();
        runningCost = runningCostUnits_;
    }
    // policy_.slo (not options_.slo): SIGHUP may have replaced it.
    // Written only by this thread, so the unlocked read is safe.
    ShedDecision shedded =
        shedDecision(slo, backlogCost, runningCost, policy_.slo);
    if (shedded.shed) {
        statShed_.fetch_add(1, std::memory_order_relaxed);
        daemonCounters().shed.inc();
        rejection.accepted = false;
        rejection.rejectReason = shedded.reason;
        rejection.rejectCode = "deadline-unmeetable";
        rejection.costUnits = slo.costUnits;
        {
            std::lock_guard<std::mutex> lock(journalMutex_);
            if (journal_.isOpen()) {
                uint64_t seq =
                    journal_.appendAccepted(req, prep.job.fingerprint);
                journal_.appendShed(seq, req.id, "deadline-unmeetable",
                                    shedded.reason);
            }
        }
        obs::instantEvent("daemon", "shed", req.id);
        respond(conn, writeResult(rejection));
        return;
    }

    AdmissionDecision decision = admission_.admit(req, numVars);
    if (!decision.admitted) {
        rejection.costUnits = decision.costUnits;
        return reject(decision.reason, "admission");
    }

    QueuedJob job;
    job.prepared = std::move(prep.job);
    job.slo = slo;
    job.slo.arrival = arrivalCounter_++;
    job.acceptMs = nowMs();
    // Queue ordering wants the ABSOLUTE deadline (EDF across jobs
    // accepted at different times); the relative value served the shed
    // predictor above.
    if (req.deadlineMs > 0.0)
        job.slo.deadlineMs = job.acceptMs + req.deadlineMs;
    job.connId = conn.id;
    {
        std::lock_guard<std::mutex> lock(journalMutex_);
        if (journal_.isOpen())
            job.journalSeq =
                journal_.appendAccepted(req, job.prepared.fingerprint);
        else
            job.journalSeq = arrivalCounter_; // unique: tracks arrivals
    }
    job.slo.seq = job.journalSeq;
    statAccepted_.fetch_add(1, std::memory_order_relaxed);
    daemonCounters().accepted.inc();
    obs::instantEvent("daemon", "job-queued", req.id);
    enqueue(std::move(job));
}

void
Daemon::respond(Conn &conn, const std::string &line)
{
    conn.outBuffer += line;
    conn.outBuffer += '\n';
    flushConn(conn);
}

void
Daemon::flushConn(Conn &conn)
{
    while (conn.fd >= 0 && !conn.outBuffer.empty()) {
        ssize_t n = ::send(conn.fd, conn.outBuffer.data(),
                           conn.outBuffer.size(), MSG_NOSIGNAL);
        if (n <= 0)
            break; // EAGAIN: poll will flag POLLOUT
        conn.outBuffer.erase(0, static_cast<size_t>(n));
    }
}

void
Daemon::closeConn(size_t index)
{
    Conn &conn = conns_[index];
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(index));
}

void
Daemon::drainCompletions()
{
    std::deque<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        batch.swap(completions_);
    }
    for (Completion &done : batch) {
        if (done.connId == 0)
            continue; // replayed job; client long gone
        for (Conn &conn : conns_) {
            if (conn.id == done.connId) {
                respond(conn, done.line);
                break;
            }
        }
        // Disconnected client: the result still lives in the journal
        // and the results file; nothing to do.
    }
}

// ---------------------------------------------------------------------
// Worker thread
// ---------------------------------------------------------------------

void
Daemon::workerLoop()
{
    while (true) {
        QueuedJob job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return drainRequested_ || !queue_.empty();
            });
            if (drainRequested_) {
                // Queued jobs stay journaled as pending; the next
                // incarnation replays them.
                workerDone_ = true;
                wake(kWakeWorkerDone);
                return;
            }
            SloJob next = queue_.pop();
            auto it = queuedBySeq_.find(next.seq);
            panic_if(it == queuedBySeq_.end(),
                     "daemon queue/payload maps out of sync");
            job = std::move(it->second);
            queuedBySeq_.erase(it);
            updateQueueGauges();
        }
        runOne(std::move(job));
    }
}

void
Daemon::runOne(QueuedJob job)
{
    // Same deterministic mint the batch scheduler performs, so a job's
    // telemetry line is byte-identical whether it ran here or in a
    // batch (a client-supplied hint wins, as everywhere else).
    if (job.prepared.req.traceHint.empty())
        job.prepared.req.traceHint = traceIdForJob(job.prepared);
    const JobRequest &req = job.prepared.req;
    {
        std::lock_guard<std::mutex> lock(journalMutex_);
        if (journal_.isOpen())
            journal_.appendRunning(job.journalSeq, req.id);
    }

    // Arm the cooperative deadline: the tighter of the remaining SLO
    // budget and the per-job timeout.  Replayed jobs run without one --
    // their deadlines expired with the previous incarnation, and the
    // determinism contract needs the work to actually happen.
    exec::CancelToken token;
    double budgetMs = 0.0;
    if (!job.replayed) {
        if (job.slo.deadlineMs > 0.0)
            budgetMs = job.slo.deadlineMs - nowMs();
        if (req.timeoutMs > 0.0 &&
            (budgetMs <= 0.0 ? job.slo.deadlineMs <= 0.0
                             : req.timeoutMs < budgetMs))
            budgetMs = req.timeoutMs;
        if (job.slo.deadlineMs > 0.0 && budgetMs <= 0.0)
            budgetMs = 1e-3; // already late: trip at the first check
        if (budgetMs > 0.0)
            token.setDeadlineSeconds(budgetMs * 1e-3);
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        runningToken_ = &token;
        runningCostUnits_ = job.slo.costUnits;
    }

    // Worker thread, strictly serial: the tuner hook may set per-job
    // tuning fields and apply process-wide knobs for this job.
    if (options_.onJobPrepared)
        options_.onJobPrepared(job.prepared);

    obs::SpanContext ctx;
    ctx.traceId = req.traceHint;
    obs::Span span("daemon", "job", req.id, ctx);
    const double startMs = nowMs();
    // The token is passed even when unarmed so a drain can still
    // cooperatively cancel a replayed or deadline-less job.
    JobResult result = runner_.run(job.prepared, &token);
    const double endMs = nowMs();
    result.costUnits = job.slo.costUnits;
    result.telemetry.traceId = req.traceHint;
    result.telemetry.queueWaitMs = std::max(startMs - job.acceptMs, 0.0);
    result.telemetry.wallMs = endMs - startMs;
    if (options_.onJobComplete)
        options_.onJobComplete(job.prepared, result);

    bool drainCancelled;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        runningToken_ = nullptr;
        runningCostUnits_ = 0.0;
        // The job only counts as checkpointed-by-drain when the drain
        // cancel (not a real deadline) is what stopped it.
        drainCancelled = drainRequested_ && !result.ok &&
                         token.cancelled() && !token.deadlineExpired();
    }
    finishJob(job, result, drainCancelled);
}

void
Daemon::finishJob(const QueuedJob &job, const JobResult &result,
                  bool checkpointed)
{
    const std::string line = writeResult(result);
    if (checkpointed) {
        // No terminal journal record: the job is still pending and the
        // next incarnation re-runs it (resuming from its segment
        // checkpoint), producing this exact line.
        statDrainCancelled_.fetch_add(1, std::memory_order_relaxed);
        obs::instantEvent("daemon", "drain-checkpointed",
                          job.prepared.req.id);
    } else {
        {
            std::lock_guard<std::mutex> lock(journalMutex_);
            if (journal_.isOpen())
                journal_.appendDone(job.journalSeq, job.prepared.req.id,
                                    line);
        }
        if (resultsFile_ != nullptr) {
            std::fwrite(line.data(), 1, line.size(), resultsFile_);
            std::fputc('\n', resultsFile_);
            std::fflush(resultsFile_);
        }
        statCompleted_.fetch_add(1, std::memory_order_relaxed);

        static obs::Counter &jobs_done = obs::Registry::global().counter(
            "serve_jobs_completed_total",
            "Jobs finished by the scheduler");
        static obs::Histogram &wall_hist =
            obs::Registry::global().histogram(
                "serve_job_wall_ms", "Per-job run time in milliseconds");
        static obs::Histogram &wait_hist =
            obs::Registry::global().histogram(
                "serve_job_queue_wait_ms",
                "Submission-to-start wait in milliseconds");
        jobs_done.inc();
        wall_hist.observe(result.telemetry.wallMs);
        wait_hist.observe(result.telemetry.queueWaitMs);
    }

    if (!job.replayed) {
        admission_.release();
        admission_.releaseCost(job.slo.costUnits);
    }

    if (!checkpointed) {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.push_back(Completion{job.connId, line});
    }
    wake(kWakeCompletion);
}

} // namespace rasengan::serve
