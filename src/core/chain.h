/**
 * @file
 * Transition-chain construction, pruning, and early stop (Section 4.1).
 *
 * Theorem 1: repeating the m transition Hamiltonians for m rounds (m^2
 * operators) covers every feasible solution reachable from the initial
 * one.  Pruning removes operators that expand nothing: a classical
 * reachability sweep tracks the set of feasible basis states the chain
 * prefix can populate (the offline equivalent of the paper's intermediate
 * measurements), drops steps that add no new state, and truncates the
 * tail after m consecutive useless steps (early stop).
 */

#ifndef RASENGAN_CORE_CHAIN_H
#define RASENGAN_CORE_CHAIN_H

#include <unordered_set>
#include <vector>

#include "common/bitvec.h"
#include "core/transition.h"

namespace rasengan::core {

struct ChainOptions
{
    int rounds = -1;           ///< basis repetitions; -1 = m (Theorem 1)
    bool prune = true;         ///< drop non-expanding operators (opt 2)
    bool earlyStop = true;     ///< truncate after m useless operators
    size_t maxTrackedStates = size_t{1} << 20; ///< reachability cap: the
                               ///< walk stops once the tracked feasible
                               ///< set outgrows it (scalability guard)
    size_t maxChainLength = 20000; ///< hard cap on kept steps
};

struct Chain
{
    /** Indices into the transition list, in execution order. */
    std::vector<int> steps;
    /** Reachable feasible-state count after each kept step. */
    std::vector<size_t> coverage;
    /** Steps of the unpruned m*rounds chain (for the Figure 17 bench). */
    std::vector<int> unprunedSteps;
    /** Coverage after each unpruned step. */
    std::vector<size_t> unprunedCoverage;
    /** Reachable feasible states at the end (capped runs: lower bound). */
    size_t reachableCount = 0;
    /** True when maxTrackedStates was hit and pruning went conservative. */
    bool capped = false;
};

/**
 * Build the transition chain starting from feasible state @p start.
 *
 * The reachability sweep applies each candidate operator to the current
 * reachable set R: states matching either pattern flip to their partner;
 * a step is kept (pruning on) iff it adds at least one new state to R.
 */
Chain buildChain(const std::vector<TransitionHamiltonian> &transitions,
                 const BitVec &start, const ChainOptions &options = {});

/**
 * One step of the reachability expansion: all partners of @p states under
 * @p transition (including already-known ones).
 */
std::vector<BitVec>
expandStates(const std::unordered_set<BitVec, BitVecHash> &states,
             const TransitionHamiltonian &transition);

} // namespace rasengan::core

#endif // RASENGAN_CORE_CHAIN_H
