/**
 * @file
 * Segmented execution (Section 4.2): partition the transition chain into
 * fixed-size segments that are executed as independent short circuits,
 * forwarding the measured probability distribution between segments by
 * allocating each basis state a share of the next segment's shots.
 */

#ifndef RASENGAN_CORE_SEGMENT_H
#define RASENGAN_CORE_SEGMENT_H

#include <vector>

#include "core/chain.h"

namespace rasengan::core {

struct Segment
{
    /** Positions into Chain::steps covered by this segment. */
    int firstStep = 0;
    int stepCount = 0;
};

/**
 * Split @p chain_length steps into segments of @p transitions_per_segment
 * (the last segment may be shorter).  transitions_per_segment <= 0 yields
 * a single segment (unsegmented ablation mode).
 */
std::vector<Segment> partitionChain(int chain_length,
                                    int transitions_per_segment);

} // namespace rasengan::core

#endif // RASENGAN_CORE_SEGMENT_H
