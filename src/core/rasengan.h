/**
 * @file
 * The end-to-end Rasengan solver (Sections 3-4).
 *
 * Pipeline: homogeneous basis -> (opt 1) simplification -> transition
 * Hamiltonians -> chain construction with (opt 2) pruning/early stop ->
 * (opt 3) segmentation -> training loop that tunes the evolution time of
 * every kept transition with a COBYLA-style optimizer, executing the
 * segmented pipeline and forwarding the measured distribution between
 * segments, with purification-based error mitigation between segments.
 *
 * Execution backends:
 *  - ExactSparse: propagate exact Born probabilities through the sparse
 *    simulator (noise-free algorithmic evaluation, Table 2);
 *  - SampledSparse: shot-sampled forwarding (adds shot noise; scales to
 *    the 105-variable instances);
 *  - NoisyInjected: SampledSparse plus per-segment error injection whose
 *    rate derives from the segment's CX count and the device's two-qubit
 *    error rate (the scalable stand-in for hardware noise, Figure 10d);
 *  - NoisyGateLevel: full gate-level trajectory simulation of each
 *    transpiled segment under a NoiseModel (the stand-in for the IBM
 *    hardware runs, Figures 11/16).
 */

#ifndef RASENGAN_CORE_RASENGAN_H
#define RASENGAN_CORE_RASENGAN_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/transpile.h"
#include "core/chain.h"
#include "core/segment.h"
#include "device/device.h"
#include "device/latency.h"
#include "exec/checkpoint.h"
#include "exec/executor.h"
#include "opt/factory.h"
#include "opt/optimizer.h"
#include "problems/problem.h"
#include "qsim/noise.h"
#include "qsim/sparseplan.h"
#include "qsim/sparsestate.h"

namespace rasengan::core {

struct RasenganOptions
{
    enum class Execution {
        ExactSparse,
        SampledSparse,
        NoisyInjected,
        NoisyGateLevel,
    };

    /// @name Ablation toggles (Section 5.6)
    /// @{
    bool simplify = true;          ///< opt 1: Algorithm 1
    bool prune = true;             ///< opt 2: chain pruning + early stop
    int transitionsPerSegment = 3; ///< opt 3: segment size; <= 0 = one segment
    bool purify = true;            ///< opt 3: purification between segments
    /// @}

    /// @name Training
    /// @{
    int maxIterations = 300;       ///< optimizer evaluation budget
    double initialTime = 0.6;      ///< initial evolution times
    uint64_t seed = 7;
    opt::Method optimizer = opt::Method::Cobyla;
    /// @}

    /// @name Execution
    /// @{
    Execution execution = Execution::ExactSparse;
    uint64_t shotsPerSegment = 1024;
    /**
     * Apply tensored readout-error mitigation (device/mitigation.h) to
     * each segment's raw counts before purification, using the noise
     * model's readout rate as the calibration.  Orthogonal to
     * purification: mitigation fixes measurement flips, purification
     * removes gate-error leakage out of the feasible space.
     */
    bool mitigateReadout = false;
    /**
     * Per-segment shot multiplier (Figure 7's "x10 for the third
     * segment" knob): segment s executes shotsPerSegment * growth^s
     * shots, trading execution overhead for sharper probability
     * forwarding deep in the chain.  1.0 = uniform shots.
     */
    double shotGrowth = 1.0;
    qsim::NoiseModel noise;        ///< for the two noisy backends
    int trajectories = 8;          ///< gate-level noisy trajectories
    circuit::TranspileMode transpileMode =
        circuit::TranspileMode::AncillaLadder;
    int rounds = -1;               ///< chain rounds; -1 = m (Theorem 1)
    size_t maxTrackedStates = size_t{1} << 20; ///< pruning reachability cap
    /**
     * Record the index-space structure of every sparse segment evolution
     * the first time it runs and replay it on later executions of the
     * same (segment, input state) -- the structure depends only on the
     * circuit, not the evolution times, so the optimizer's hundreds of
     * iterations skip partner searches and key merges entirely.  Replay
     * is bit-identical to direct execution: a plan is invalidated when
     * pruning changed the support while recording, and replay falls back
     * to the direct kernels the moment the current angles would prune.
     */
    bool cacheRotationPlans = true;
    /**
     * Use the dense direct-index partner lookup inside every sparse
     * pair rotation (SparseState::setDenseLookup) instead of the
     * per-state binary search.  Result-invariant by construction (the
     * lookup returns the same integer indices the search would), and
     * ignored above SparseState::kDenseLookupMaxQubits, so the adaptive
     * tuner may flip it freely.  Wins when the populated support is
     * large relative to log2(support) search cost; loses on tiny
     * supports where table population dominates -- exactly the
     * trade-off the tune/ cost model measures.
     */
    bool denseIndexLookup = false;
    /**
     * Post-rotation prune threshold on |amplitude|^2 forwarded to every
     * sparse kernel invocation (<= 0 disables pruning entirely, keeping
     * exact zeros in the support).
     */
    double sparsePruneThreshold = qsim::SparseState::kDefaultPruneThreshold;
    /// @}

    /** Device whose durations drive the quantum-latency estimate. */
    device::DeviceModel latencyDevice = device::DeviceModel::ibmQuebec();

    /// @name Artifact injection (src/serve)
    /// @{
    /**
     * Precomputed pipeline artifacts (transitions, chain, segments) to
     * adopt instead of recomputing them in the constructor.  Must have
     * been built by buildPipelineArtifacts() for the SAME problem and
     * the same simplify/prune/rounds/transitionsPerSegment/
     * maxTrackedStates configuration -- the serve layer's ArtifactCache
     * guarantees this by keying on the canonical problem + config text.
     */
    std::shared_ptr<const struct PipelineArtifacts> pipeline;
    /**
     * Optional transpile memo: when set, every segment lowering goes
     * through this hook instead of circuit::transpile directly, letting
     * the serve layer content-address transpiled circuits across jobs.
     * The hook MUST be semantically transparent (return exactly
     * transpile(circ, opts)); results are bit-identical with or without
     * it.
     */
    std::function<circuit::Circuit(const circuit::Circuit &,
                                   const circuit::TranspileOptions &)>
        lowerCircuit;
    /**
     * Optional cross-job rotation-plan store: when set, evolveSegment
     * resolves recorded segment plans through this hook (the serve layer
     * points it at its content-addressed ArtifactCache under the
     * "spplan" domain) instead of only the solver-local memo.  Keyed by
     * planStructureFingerprint, so two jobs solving the same problem
     * share partner-index plans.  Purely a performance hint: results
     * are bit-identical with or without it.
     */
    std::function<std::shared_ptr<const qsim::SparseSegmentPlan>(
        uint64_t fingerprint,
        const std::function<
            std::shared_ptr<const qsim::SparseSegmentPlan>()> &make)>
        planStore;
    /// @}

    /// @name Resilience (src/exec)
    /// @{
    /**
     * Retry/backoff, circuit-breaker, fault-injection, and degradation
     * configuration for the shot-based backends.  The fault injector is
     * enabled by `resilience.faults.rate > 0`; retries are always on.
     */
    exec::ResilienceOptions resilience;
    /**
     * When non-empty, run() checkpoints the solve to this file: the
     * trained evolution times after training, then the forwarded
     * distribution + RNG state after every segment of the final
     * execution.  A later run() with the same path resumes bit-exactly
     * from the last completed step instead of re-training.
     */
    std::string checkpointPath;
    /// @}
};

/**
 * The expensive reusable artifacts of one solver configuration: the
 * transition-Hamiltonian set over the problem's homogeneous basis, the
 * pruned chain, and its segmentation.  Computed once by
 * buildPipelineArtifacts and shareable across every solve of the same
 * (problem, pipeline-config) pair -- the serve layer memoizes these in
 * its content-addressed cache and injects them via
 * RasenganOptions::pipeline.
 */
struct PipelineArtifacts
{
    std::vector<TransitionHamiltonian> transitions;
    Chain chain;
    std::vector<Segment> segments;
};

/**
 * Build the pipeline artifacts exactly as the RasenganSolver
 * constructor would: basis extraction + simplification + augmentation,
 * chain construction with pruning/early-stop, and segmentation.  Only
 * the fields of @p options that shape the pipeline matter (simplify,
 * prune, rounds, transitionsPerSegment, maxTrackedStates).
 */
PipelineArtifacts buildPipelineArtifacts(const problems::Problem &problem,
                                         const RasenganOptions &options);

/**
 * Hooks into one segmented execution: checkpoint sink, resume source,
 * and a deterministic kill switch used by the resume tests.
 */
struct ExecHooks
{
    /** Called after each segment with the state needed to resume. */
    std::function<void(const exec::SegmentCheckpoint &)> onSegmentDone;
    /** Abort (as if killed) after this segment index; -1 = never. */
    int stopAfterSegment = -1;
    /** Resume from this snapshot instead of starting at segment 0. */
    const exec::SegmentCheckpoint *resumeFrom = nullptr;
};

/** Final output distribution of one pipeline execution. */
struct RasenganDistribution
{
    /** (state, probability) in ascending state order — deterministic, so
     *  equal-objective tie-breaks and FP accumulation over the entries do
     *  not depend on hash-map layout (live vs checkpoint-resumed runs). */
    std::vector<std::pair<BitVec, double>> entries;
    bool failed = false; ///< purification emptied a segment's output
    bool aborted = false; ///< stopped early by ExecHooks::stopAfterSegment
    /** Stopped by the resilience cancel token (deadline or drain). */
    bool deadlineHit = false;
    double prePurifyFeasibleFraction = 1.0; ///< feasible mass before purify
};

struct RasenganResult
{
    bool failed = false;
    BitVec solution;               ///< best feasible outcome found
    double objectiveValue = 0.0;   ///< objective at `solution`
    double expectedObjective = 0.0;///< expectation over final distribution
    double inConstraintsRate = 1.0;///< feasible fraction of raw output
    RasenganDistribution finalDistribution;

    int numParams = 0;             ///< trained evolution times
    int chainLength = 0;           ///< kept transition operators
    int unprunedLength = 0;        ///< m * rounds before pruning
    int numSegments = 0;
    int maxSegmentDepth = 0;       ///< transpiled+optimized segment depth
    int maxSegmentCx = 0;
    size_t feasibleCovered = 0;    ///< reachable feasible states

    double classicalSeconds = 0.0; ///< measured wall time (classical part)
    double quantumSeconds = 0.0;   ///< latency-model estimate
    opt::OptResult training;

    bool resumed = false; ///< produced from a checkpoint, training skipped
    /** Failed because the cancel token tripped (deadline or drain),
     *  not because execution itself broke. */
    bool deadlineHit = false;
    exec::ExecStats execStats;     ///< retries/failures/backoff summary
    exec::DegradationLevel degradation = exec::DegradationLevel::Full;
};

/** Rotation-plan cache effectiveness counters (see planStats()). */
struct PlanStats
{
    uint64_t recorded = 0;    ///< segment plans built by direct execution
    uint64_t replayed = 0;    ///< segment evolutions served from a plan
    uint64_t aborted = 0;     ///< replays that hit a prune and fell back
    uint64_t invalidated = 0; ///< plans unusable (pruning during record)

    uint64_t hits() const { return replayed; }
    uint64_t misses() const { return recorded + aborted + invalidated; }
};

class RasenganSolver
{
  public:
    RasenganSolver(problems::Problem problem, RasenganOptions options = {});

    const problems::Problem &problem() const { return problem_; }
    const RasenganOptions &opts() const { return options_; }

    /// @name Pipeline artifacts (available after construction)
    /// @{
    const std::vector<TransitionHamiltonian> &transitions() const
    {
        return transitions_;
    }
    const Chain &chain() const { return chain_; }
    const std::vector<Segment> &segments() const { return segments_; }
    int numParams() const { return static_cast<int>(chain_.steps.size()); }
    /// @}

    /**
     * Gate-level circuit of segment @p seg_index: X-gates preparing
     * @p init, then the segment's transition operators at @p times
     * (indexed by chain position).
     */
    circuit::Circuit segmentCircuit(int seg_index, const BitVec &init,
                                    const std::vector<double> &times) const;

    /**
     * Depth and CX count of the deepest segment after transpilation and
     * peephole optimization (the paper's deployable-depth metric).
     */
    std::pair<int, int> maxSegmentCost() const;

    /** Execute the segmented pipeline once with the given times. */
    RasenganDistribution execute(const std::vector<double> &times,
                                 Rng &rng) const;

    /** Execute with checkpoint/resume/kill hooks. */
    RasenganDistribution execute(const std::vector<double> &times,
                                 Rng &rng, const ExecHooks &hooks) const;

    /** Train the evolution times and return the full result. */
    RasenganResult run();

    /**
     * The resilient executor all shot-based executions route through
     * (per-solver state: retry stats, breaker, degradation ladder).
     */
    exec::ResilientExecutor &executor() const { return *executor_; }

    /** Rotation-plan cache counters accumulated across executions. */
    const PlanStats &planStats() const { return planStats_; }

    /**
     * Largest sparse-simulator support seen at any segment boundary
     * across every execution so far -- the observed support-growth
     * summary the serve telemetry and the adaptive tuner's measurement
     * records carry (large supports are where the dense direct-index
     * lookup pays off).
     */
    uint64_t maxObservedSupport() const { return maxObservedSupport_; }

  private:
    /** transpile() via options_.lowerCircuit when set (serve memo). */
    circuit::Circuit lowerSegment(const circuit::Circuit &circ) const;
    double scoreDistribution(const RasenganDistribution &dist) const;
    RasenganResult summarize(const std::vector<double> &times,
                             opt::OptResult training, double classical_s,
                             double quantum_s,
                             const exec::SegmentCheckpoint *resume) const;
    double perExecutionQuantumSeconds() const;
    const std::vector<double> &segmentSeconds() const;
    qsim::Counts sampleSegment(int seg_index,
                               const std::vector<double> &times,
                               const std::vector<std::pair<BitVec,
                                   uint64_t>> &alloc,
                               Rng &rng) const;
    /**
     * Evolve |init> through segment @p seg_index at the given times --
     * the single sparse-evolution entry point shared by the exact and
     * sampled backends.  Uses the rotation-plan cache when enabled;
     * always bit-identical to the direct kernels.
     */
    qsim::SparseState evolveSegment(int seg_index, const BitVec &init,
                                    const std::vector<double> &times) const;

    problems::Problem problem_;
    RasenganOptions options_;
    std::vector<TransitionHamiltonian> transitions_;
    Chain chain_;
    std::vector<Segment> segments_;
    std::unique_ptr<exec::ResilientExecutor> executor_;
    mutable std::vector<double> segmentSeconds_; ///< latency cache
    /**
     * Solver-local rotation-plan memo keyed by structural fingerprint.
     * Like executor_, this is per-solver mutable state: a solver
     * instance is driven from one thread at a time (the serve layer
     * builds one solver per job), so no synchronization is needed.
     * An entry may be marked !replayable; it is kept to suppress
     * repeated recording attempts.
     */
    mutable std::unordered_map<uint64_t,
                               std::shared_ptr<const qsim::SparseSegmentPlan>>
        planCache_;
    mutable PlanStats planStats_;
    mutable uint64_t maxObservedSupport_ = 0;
    /** Lazily built per-segment (mask, pattern) lists for fingerprints. */
    mutable std::vector<std::vector<std::pair<BitVec, BitVec>>>
        segmentStructures_;
};

} // namespace rasengan::core

#endif // RASENGAN_CORE_RASENGAN_H
