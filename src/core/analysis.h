/**
 * @file
 * Pipeline introspection: a structured report of everything the Rasengan
 * pipeline decided for a problem (basis sizes, simplification effect,
 * chain statistics, per-segment compiled costs, modeled latency), plus a
 * formatted printout.  Used by the examples and available to downstream
 * users who want to inspect a deployment before running it.
 */

#ifndef RASENGAN_CORE_ANALYSIS_H
#define RASENGAN_CORE_ANALYSIS_H

#include <string>
#include <vector>

#include "core/rasengan.h"

namespace rasengan::core {

struct SegmentReport
{
    int index = 0;
    int transitions = 0;
    int depth = 0;      ///< transpiled + peephole-optimized
    int cxCount = 0;
    double shotTimeUs = 0.0; ///< latency model, one shot
};

struct PipelineReport
{
    std::string problemId;
    int numVars = 0;
    int numConstraints = 0;

    int rawBasisSize = 0;
    int rawNonZeros = 0;
    int executableVectors = 0; ///< after simplification + augmentation
    int executableNonZeros = 0;

    int unprunedChain = 0;
    int prunedChain = 0;
    size_t reachableStates = 0;
    bool coverageCapped = false;

    std::vector<SegmentReport> segments;
    int maxSegmentDepth = 0;
    double quantumSecondsPerExecution = 0.0;

    /** Human-readable multi-line summary. */
    std::string toString() const;
};

/** Analyze the already-constructed solver (no training involved). */
PipelineReport analyzePipeline(const RasenganSolver &solver);

} // namespace rasengan::core

#endif // RASENGAN_CORE_ANALYSIS_H
