/**
 * @file
 * Homogeneous-basis extraction and simplification (Section 4.1).
 *
 * The homogeneous basis of a problem is an integer basis of ker(C); the
 * paper's Algorithm 1 ("Hamiltonian simplification") replaces basis
 * vectors by +/- combinations with fewer nonzero entries, which shortens
 * every transition operator (the circuit cost is linear in the nonzero
 * count k).
 */

#ifndef RASENGAN_CORE_BASIS_H
#define RASENGAN_CORE_BASIS_H

#include <vector>

#include "linalg/matrix.h"
#include "problems/problem.h"

namespace rasengan::core {

/**
 * Homogeneous basis of @p problem's constraints, one integer vector per
 * nullspace dimension.  Aborts if any entry falls outside {-1, 0, 1}
 * (Definition 1 requires signed-0/1 vectors; every encoding in
 * src/problems satisfies this).
 */
std::vector<linalg::IntVec> homogeneousBasis(const problems::Problem &problem);

/**
 * Algorithm 1: greedy pairwise simplification.  For each ordered pair
 * (u_i, u_j), try u_i + u_j and u_i - u_j; replace u_i when the candidate
 * stays in {-1,0,1}^n and has strictly fewer nonzeros.
 *
 * @param max_passes repeat the O(m^2 n) sweep until a fixed point or this
 *                   many passes (1 reproduces the paper's single sweep).
 */
std::vector<linalg::IntVec>
simplifyBasis(std::vector<linalg::IntVec> basis, int max_passes = 8);

/** Total nonzero entries across @p basis (the simplification metric). */
int totalNonZeros(const std::vector<linalg::IntVec> &basis);

/**
 * The executable transition-vector set for a problem: the (optionally
 * simplified) homogeneous basis, augmented so the feasible set is
 * CONNECTED under single-transition moves.
 *
 * Theorem 1 guarantees chain coverage for totally unimodular constraint
 * matrices; for general encodings the +/-u walk can leave feasible
 * states unreachable (every intermediate stop would be non-binary).  When
 * the feasible set is enumerable, this pass detects unreached states and
 * appends difference vectors u = x_g - x_p -- kernel vectors in
 * {-1,0,1}^n by construction, per Equation 3 -- until the walk covers
 * everything.  Non-enumerable (scalability) instances return the basis
 * unchanged.
 *
 * @param max_feasible skip augmentation when the feasible set is larger.
 */
std::vector<linalg::IntVec>
transitionVectors(const problems::Problem &problem, bool simplify = true,
                  size_t max_feasible = size_t{1} << 18);

} // namespace rasengan::core

#endif // RASENGAN_CORE_BASIS_H
