/**
 * @file
 * The transition Hamiltonian (Definition 1 of the paper).
 *
 * For a homogeneous basis vector u in {-1,0,1}^n,
 *     H^tau(u) = (x)_i sigma(u_i)  +  (x)_i sigma(-u_i)
 * with sigma(+1) = raising, sigma(-1) = lowering, sigma(0) = identity.
 * Acting on a basis state |x>, the first term produces |x+u> when that
 * stays binary, the second |x-u>; at most one survives, so each basis
 * state either pairs with x XOR support(u) or is annihilated (dark).
 *
 * This class precomputes the support mask and the raising pattern, offers
 * the exact sparse-state evolution e^{-i H^tau t} (a two-level rotation,
 * Equation 6), and synthesizes the equivalent gate circuit in the paper's
 * Figure 4 form: an X/CX conjugation plus a symmetric pair of
 * multi-controlled phase gates.
 */

#ifndef RASENGAN_CORE_TRANSITION_H
#define RASENGAN_CORE_TRANSITION_H

#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "linalg/matrix.h"
#include "qsim/pauli.h"
#include "qsim/sparsestate.h"

namespace rasengan::core {

class TransitionHamiltonian
{
  public:
    /** Build from a homogeneous basis vector with entries in {-1,0,1}. */
    explicit TransitionHamiltonian(linalg::IntVec u);

    const linalg::IntVec &vector() const { return u_; }
    int numVars() const { return static_cast<int>(u_.size()); }

    /** Number of nonzero entries k (drives the 34k CX cost). */
    int support() const { return supportSize_; }

    /** Support bits of u. */
    const BitVec &mask() const { return mask_; }

    /** Support-restricted pattern a state must match for x+u to be valid. */
    const BitVec &patternPlus() const { return patternPlus_; }

    /**
     * H^tau |x>: the partner basis state, or nullopt when |x> is dark.
     * (H^tau maps the partner back to x: Equation 5.)
     */
    std::optional<BitVec> partner(const BitVec &x) const;

    /** True when applying the transition to |x> can produce a new state. */
    bool applicable(const BitVec &x) const { return partner(x).has_value(); }

    /**
     * Exact evolution e^{-i H^tau t} on a sparse state (Equation 6).
     * @p prune_threshold and @p record forward to
     * SparseState::applyPairRotation: the threshold drops states rotated
     * below it (<= 0 keeps everything), the optional plan records the
     * rotation's angle-independent index structure for replay.
     */
    void applyTo(qsim::SparseState &state, double t,
                 double prune_threshold =
                     qsim::SparseState::kDefaultPruneThreshold,
                 qsim::SparseStepPlan *record = nullptr) const;

    /**
     * Append the transition operator tau(u, t) to @p circ: X conjugation
     * on the lowering entries, a CX fan-out from the first support qubit,
     * and a controlled-RX core realized as two multi-controlled phase
     * gates (Figure 4).  Exact: no global-phase or Trotter error.
     */
    void appendToCircuit(circuit::Circuit &circ, double t) const;

    /**
     * Synthesize tau(u, t) alone on @p num_qubits wires.
     */
    circuit::Circuit toCircuit(int num_qubits, double t) const;

    /**
     * Pauli-sum expansion of H^tau(u): substituting sigma(+/-1) =
     * (X +/- iY)/2 and keeping the Hermitian (even-Y) terms yields
     *     H^tau = 1/2^{k-1} * sum_{|T| even} (-1)^{|T|/2}
     *             prod_{i in T} sign(u_i) * P_T,
     * where P_T has Y on the qubits of T and X on the rest of the
 * support.  All 2^{k-1} strings commute pairwise, so the product of
     * their exact evolutions equals e^{-i H^tau t} -- the alternative
     * gate decomposition commute-mixer methods use, cross-validated in
     * the tests against the Figure-4 circuit.
     */
    std::vector<std::pair<double, qsim::PauliString>>
    pauliDecomposition() const;

  private:
    linalg::IntVec u_;
    BitVec mask_;
    BitVec patternPlus_;
    std::vector<int> supportQubits_;
    int supportSize_ = 0;
};

/** Wrap each basis vector into a TransitionHamiltonian. */
std::vector<TransitionHamiltonian>
makeTransitions(const std::vector<linalg::IntVec> &basis);

} // namespace rasengan::core

#endif // RASENGAN_CORE_TRANSITION_H
